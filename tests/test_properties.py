"""Cross-layer property-based invariants (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import winapi
from repro.hooking import hook_manager_of, looks_hooked
from repro.winsim import Machine
from repro.winsim.errors import Win32Error

_ascii_names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_",
    min_size=1, max_size=12)

_EXPORT_POOL = (
    "kernel32.dll!IsDebuggerPresent", "kernel32.dll!GetTickCount",
    "kernel32.dll!CreateFileA", "ntdll.dll!NtOpenKeyEx",
    "advapi32.dll!RegOpenKeyExA", "user32.dll!FindWindowA",
    "shell32.dll!ShellExecuteExW",
)


def _fresh_api():
    machine = Machine().boot()
    process = machine.spawn_process("prop.exe", parent=machine.explorer)
    return machine, process, winapi.bind(machine, process)


class TestApiRegistryFaithfulness:
    """The Win32 registry view agrees with the substrate exactly."""

    @given(names=st.lists(_ascii_names, min_size=1, max_size=5, unique=True),
           data=st.text(max_size=20))
    @settings(max_examples=30, deadline=None)
    def test_api_writes_visible_directly_and_vice_versa(self, names, data):
        machine, _, api = _fresh_api()
        for index, name in enumerate(names):
            if index % 2 == 0:
                err, key = api.RegCreateKeyExA("HKEY_CURRENT_USER",
                                               f"Software\\P\\{name}")
                api.RegSetValueExA(key, "v", data)
            else:
                machine.registry.set_value(
                    f"HKCU\\Software\\P\\{name}", "v", data)
        for name in names:
            assert machine.registry.get_data(
                f"HKCU\\Software\\P\\{name}", "v") == data
            err, key = api.RegOpenKeyExA("HKEY_CURRENT_USER",
                                         f"Software\\P\\{name}")
            assert err == Win32Error.ERROR_SUCCESS
            err, read = api.RegQueryValueExA(key, "v")
            assert read == data


class TestHookInstallRemoveInvariants:
    @given(exports=st.lists(st.sampled_from(_EXPORT_POOL), min_size=1,
                            max_size=7, unique=True),
           remove_order=st.randoms())
    @settings(max_examples=30, deadline=None)
    def test_install_remove_roundtrip_restores_prologues(self, exports,
                                                         remove_order):
        _, process, api = _fresh_api()
        manager = hook_manager_of(process, create=True)
        for export in exports:
            manager.install(export, lambda call, *a, **k:
                            call.original(*a, **k))
            assert looks_hooked(api.read_function_prologue(export, 2))
        shuffled = list(exports)
        remove_order.shuffle(shuffled)
        for export in shuffled:
            assert manager.remove(export)
        for export in exports:
            assert not looks_hooked(api.read_function_prologue(export, 2))
        assert len(manager) == 0

    @given(exports=st.lists(st.sampled_from(_EXPORT_POOL), min_size=1,
                            max_size=4, unique=True))
    @settings(max_examples=20, deadline=None)
    def test_passthrough_hooks_preserve_behaviour(self, exports):
        machine, process, api = _fresh_api()
        bare_tick = api.GetTickCount()
        bare_dbg = api.IsDebuggerPresent()
        manager = hook_manager_of(process, create=True)
        for export in exports:
            manager.install(export, lambda call, *a, **k:
                            call.original(*a, **k))
        assert api.IsDebuggerPresent() == bare_dbg
        assert api.GetTickCount() >= bare_tick


class TestSnapshotIdentity:
    @given(files=st.lists(_ascii_names, max_size=4, unique=True),
           mutexes=st.lists(_ascii_names, max_size=3, unique=True),
           domains=st.lists(_ascii_names, max_size=3, unique=True))
    @settings(max_examples=25, deadline=None)
    def test_mutate_restore_returns_to_snapshot(self, files, mutexes,
                                                domains):
        machine = Machine().boot()
        machine.filesystem.write_file("C:\\base.txt", b"base")
        state = machine.snapshot()
        for name in files:
            machine.filesystem.write_file(f"C:\\mut\\{name}.bin", b"x")
        for name in mutexes:
            machine.mutexes.create(name)
        for name in domains:
            machine.network.register_domain(f"{name}.example")
        machine.registry.bulk_padding_bytes += 1
        machine.restore(state)
        assert machine.snapshot() == state
        assert machine.filesystem.read_file("C:\\base.txt") == b"base"

    @given(st.data())
    @settings(max_examples=15, deadline=None)
    def test_double_restore_idempotent(self, data):
        machine = Machine().boot()
        state = machine.snapshot()
        name = data.draw(_ascii_names)
        machine.mutexes.create(name)
        machine.restore(state)
        first = machine.snapshot()
        machine.restore(state)
        assert machine.snapshot() == first


class TestDisjunctionSemantics:
    """Sample evasive logic is a true short-circuit disjunction."""

    @given(order=st.permutations(["is_debugger_present",
                                  "vbox_registry_key", "sandbox_dlls",
                                  "low_memory"]))
    @settings(max_examples=20, deadline=None)
    def test_any_order_detects_under_scarecrow(self, order):
        from repro.core import ScarecrowController
        from repro.malware.payloads import FileWriterPayload
        from repro.malware.sample import EvadeAction, EvasiveSample
        machine = Machine().boot()
        controller = ScarecrowController(machine)
        sample = EvasiveSample(
            md5="fe" * 16, exe_name="perm.exe", family="Prop",
            check_names=tuple(order), evade_action=EvadeAction.TERMINATE,
            payload=FileWriterPayload(("x.bin",)))
        target = controller.launch(sample.image_path)
        result = sample.run(machine, target)
        assert result.evaded
        # Short-circuit: exactly one check was evaluated (all are deceived).
        assert len(result.checks_evaluated) == 1
        assert result.checks_evaluated[0][0] == order[0]

    @given(order=st.permutations(["is_debugger_present",
                                  "vbox_registry_key", "sandbox_dlls",
                                  "low_memory"]))
    @settings(max_examples=10, deadline=None)
    def test_any_order_detonates_on_clean_machine(self, order):
        from repro.malware.payloads import FileWriterPayload
        from repro.malware.sample import EvadeAction, EvasiveSample
        machine = Machine().boot()
        machine.hardware.cpu.cores = 4
        sample = EvasiveSample(
            md5="fd" * 16, exe_name="perm.exe", family="Prop",
            check_names=tuple(order), evade_action=EvadeAction.TERMINATE,
            payload=FileWriterPayload(("x.bin",)))
        process = machine.spawn_process(sample.exe_name, sample.image_path,
                                        parent=machine.explorer)
        result = sample.run(machine, process)
        assert result.executed_payload
        assert len(result.checks_evaluated) == len(order)
