"""ABExperiment: deterministic arms, weighted splits, per-arm lift."""

import pytest

from repro.core import DeceptionDatabase
from repro.dbops import (BASE_VERSION, ABExperiment, ArmSpec,
                         CollectorPipeline, VersionStore, arm_bucket)
from repro.fleet import FleetService, build_fleet_report

pytestmark = pytest.mark.dbops

FACTORY = "bare-metal-light"

#: seed 42 / 8 endpoints routes every event to endpoints 1 and 5;
#: salt 10 puts those two endpoints in *different* 50/50 arms, so both
#: cohorts of the experiment actually see malware.
SPLIT_SALT = 10


def _store_with_version():
    store = VersionStore()
    CollectorPipeline(store, database=DeceptionDatabase(),
                      seed=2026).run(4)
    return store, store.latest().version_id


def _experiment(store, target, **kwargs):
    kwargs.setdefault("salt", SPLIT_SALT)
    return ABExperiment.from_store(
        store, (ArmSpec("control", BASE_VERSION),
                ArmSpec("treat", target)), **kwargs)


def _service(**kwargs):
    kwargs.setdefault("endpoints", 8)
    kwargs.setdefault("events", 48)
    kwargs.setdefault("seed", 42)
    kwargs.setdefault("queue_limit", 16)
    kwargs.setdefault("machine_factory", FACTORY)
    return FleetService(**kwargs)


class TestAssignment:
    def test_arm_of_is_pure_and_total(self):
        store, target = _store_with_version()
        experiment = _experiment(store, target)
        first = [experiment.arm_of(e).name for e in range(32)]
        second = [experiment.arm_of(e).name for e in range(32)]
        assert first == second
        assert set(first) == {"control", "treat"}

    def test_salt_ten_splits_the_hot_endpoints(self):
        assert arm_bucket(1, SPLIT_SALT, 2) != arm_bucket(5, SPLIT_SALT, 2)

    def test_weights_skew_the_split(self):
        store, target = _store_with_version()
        experiment = ABExperiment.from_store(
            store, (ArmSpec("control", BASE_VERSION, weight=9),
                    ArmSpec("treat", target, weight=1)))
        arms = experiment.endpoint_arms(1000)
        treat_share = sum(1 for arm in arms.values()
                          if arm == "treat") / len(arms)
        assert treat_share < 0.25

    def test_endpoint_arms_covers_the_fleet(self):
        store, target = _store_with_version()
        arms = _experiment(store, target).endpoint_arms(8)
        assert sorted(arms) == list(range(8))


class TestValidation:
    def test_needs_two_arms_with_unique_names(self):
        with pytest.raises(ValueError):
            ABExperiment((ArmSpec("only"),))
        with pytest.raises(ValueError):
            ABExperiment((ArmSpec("dup"), ArmSpec("dup")))

    def test_non_base_arm_needs_a_blob(self):
        with pytest.raises(ValueError):
            ABExperiment((ArmSpec("control"), ArmSpec("treat", 3)))

    def test_control_defaults_to_the_first_base_arm(self):
        store, target = _store_with_version()
        experiment = ABExperiment.from_store(
            store, (ArmSpec("treat", target), ArmSpec("hold", BASE_VERSION)))
        assert experiment.control_arm == "hold"

    def test_explicit_control_must_be_an_arm(self):
        store, target = _store_with_version()
        with pytest.raises(ValueError):
            _experiment(store, target, control="nope")

    def test_arm_spec_bounds(self):
        with pytest.raises(ValueError):
            ArmSpec("")
        with pytest.raises(ValueError):
            ArmSpec("a", version=-1)
        with pytest.raises(ValueError):
            ArmSpec("a", weight=0)


class TestNoopArms:
    def test_base_identical_arm_is_never_stamped(self):
        """Arms still report, but the *verdicts* must not move a byte."""
        store = VersionStore()
        base = DeceptionDatabase()
        store.publish(base, label="identical")
        experiment = ABExperiment.from_store(
            store, (ArmSpec("control", BASE_VERSION),
                    ArmSpec("treat", 1)), salt=SPLIT_SALT)
        reference = [r.to_dict() for r in _service().run().records]
        result = _service(version_router=experiment).run()
        assert [r.to_dict() for r in result.records] == reference
        assert all(r.db_version == BASE_VERSION for r in result.records)
        assert result.dbops["stamped_batches"] == 0
        assert experiment.version_blobs() == {}


class TestExperimentRun:
    def test_records_are_stamped_by_arm(self):
        store, target = _store_with_version()
        result = _service(
            version_router=_experiment(store, target)).run()
        arms = result.endpoint_arms
        assert result.control_arm == "control"
        for record in result.records:
            expected = target if arms[record.endpoint_id] == "treat" \
                else BASE_VERSION
            assert record.db_version == expected
        assert result.dbops["mode"] == "ab"
        assert result.dbops["stamped_batches"] > 0

    def test_report_carries_per_arm_lift(self):
        store, target = _store_with_version()
        report = build_fleet_report(
            _service(version_router=_experiment(store, target)).run())
        by_arm = {rollup.arm: rollup for rollup in report.arms}
        assert set(by_arm) == {"control", "treat"}
        assert by_arm["control"].lift == 0.0
        assert by_arm["control"].malware > 0
        assert by_arm["treat"].malware > 0
        assert by_arm["treat"].lift == pytest.approx(
            by_arm["treat"].rate - by_arm["control"].rate, abs=1e-4)

    def test_rendered_report_shows_the_arm_table(self):
        from repro.fleet import render_fleet_report
        store, target = _store_with_version()
        report = build_fleet_report(
            _service(version_router=_experiment(store, target)).run())
        text = render_fleet_report(report)
        assert "arm" in text and "lift" in text
        assert "treat" in text and "control" in text

    def test_experiment_is_reproducible(self):
        store, target = _store_with_version()
        first = build_fleet_report(_service(
            version_router=_experiment(store, target)).run()).to_json()
        second = build_fleet_report(_service(
            version_router=_experiment(store, target)).run()).to_json()
        assert first == second

    def test_different_salt_reassigns_endpoints(self):
        store, target = _store_with_version()
        base_arms = _experiment(store, target).endpoint_arms(64)
        moved = _experiment(store, target, salt=14).endpoint_arms(64)
        assert base_arms != moved
