"""CollectorPipeline: seeded drift, skip paths, version lineage."""

import pytest

from repro.core import DeceptionDatabase
from repro.dbops import (SKIP_EMPTY_DIFF, CollectorPipeline,
                         SyntheticSandboxFeed, VersionStore,
                         content_fingerprint)
from repro.telemetry.metrics import TELEMETRY, recording

pytestmark = pytest.mark.dbops

#: Seed whose first eight cycles include both quiet (skip) and drifting
#: (publish) cycles — pinned by the tests below.
SEED = 2026


def _run(cycles=8, **kwargs):
    store = VersionStore()
    kwargs.setdefault("seed", SEED)
    pipeline = CollectorPipeline(store, **kwargs)
    results = pipeline.run(cycles)
    return store, pipeline, results


class TestCycleOutcomes:
    def test_quiet_cycles_skip_with_a_structured_reason(self):
        _, _, results = _run()
        skipped = [r for r in results if r.published is None]
        assert skipped, "seed must produce at least one quiet cycle"
        assert all(r.skipped_reason == SKIP_EMPTY_DIFF for r in skipped)
        assert all(r.counts == () for r in skipped)

    def test_drifting_cycles_publish_with_counts(self):
        _, _, results = _run()
        published = [r for r in results if r.published is not None]
        assert published, "seed must produce at least one drifting cycle"
        for result in published:
            assert result.skipped_reason == ""
            counts = dict(result.counts)
            assert counts["files"] > 0
            assert counts["registry_entries"] > 0

    def test_cycle_results_stamp_the_virtual_clock(self):
        _, pipeline, results = _run(cycles=4)
        assert [r.collected_at_ms for r in results] == \
            [pipeline.cycle_ms * (i + 1) for i in range(4)]
        published = [r.published for r in results if r.published]
        assert all(v.created_at_ms == r.collected_at_ms
                   for r, v in zip([r for r in results if r.published],
                                   published))

    def test_cycle_result_to_dict_is_json_native(self):
        import json
        _, _, results = _run(cycles=4)
        for result in results:
            payload = json.loads(json.dumps(result.to_dict()))
            assert payload["cycle"] == result.cycle


class TestVersionLineage:
    def test_ids_are_dense_and_parents_chain(self):
        store, _, _ = _run()
        versions = store.versions()
        assert [v.version_id for v in versions] == \
            list(range(1, len(versions) + 1))
        assert versions[0].parent_id == 0
        for parent, child in zip(versions, versions[1:]):
            assert child.parent_id == parent.version_id

    def test_latest_blob_matches_the_working_database(self):
        store, pipeline, _ = _run()
        latest = store.latest()
        assert latest is not None
        assert content_fingerprint(pipeline.database.snapshot_bytes()) == \
            latest.fingerprint

    def test_changelogs_count_only_fresh_resources(self):
        store, _, _ = _run()
        for version in store.versions():
            changelog = version.changelog_dict()
            assert set(changelog) == {"files", "processes",
                                      "registry_keys", "registry_values"}
            assert changelog["files"] > 0


class TestDeterminism:
    def test_same_seed_publishes_identical_fingerprints(self):
        first, _, _ = _run()
        second, _, _ = _run()
        assert [v.fingerprint for v in first.versions()] == \
            [v.fingerprint for v in second.versions()]
        assert [v.to_dict() for v in first.versions()] == \
            [v.to_dict() for v in second.versions()]

    def test_different_seeds_diverge(self):
        first, _, _ = _run()
        second, _, _ = _run(seed=SEED + 1)
        assert [v.fingerprint for v in first.versions()] != \
            [v.fingerprint for v in second.versions()]

    def test_grows_a_caller_supplied_database_in_place(self):
        database = DeceptionDatabase()
        before = database.counts()["files"]
        _, pipeline, _ = _run(database=database)
        assert pipeline.database is database
        assert database.counts()["files"] > before


class TestFeedAndValidation:
    def test_feed_quiet_cycles_add_nothing(self):
        feed = SyntheticSandboxFeed(SEED, machines=2)
        added = [feed.drift(cycle) for cycle in range(8)]
        assert 0 in added and any(count > 0 for count in added)

    def test_feed_rejects_zero_machines(self):
        with pytest.raises(ValueError):
            SyntheticSandboxFeed(SEED, machines=0)

    def test_pipeline_rejects_bad_cycle_length(self):
        with pytest.raises(ValueError):
            CollectorPipeline(VersionStore(), cycle_ms=0)

    def test_run_with_no_cycles_is_a_noop(self):
        store, pipeline, results = _run(cycles=0)
        assert results == []
        assert store.versions() == ()
        assert pipeline.cycles_run == 0


class TestTelemetry:
    @pytest.fixture(autouse=True)
    def _clean_registry(self):
        TELEMETRY.reset()
        TELEMETRY.disable()
        yield
        TELEMETRY.reset()
        TELEMETRY.disable()

    def test_counters_track_cycles_skips_and_publishes(self):
        with recording():
            _, _, results = _run()
        snapshot = TELEMETRY.snapshot()
        published = sum(1 for r in results if r.published)
        assert snapshot.counters["dbops.cycles"] == len(results)
        assert snapshot.counters["dbops.published"] == published
        assert snapshot.counters["dbops.skipped_cycles"] == \
            len(results) - published
        assert snapshot.counters["dbops.resources_added"] > 0

    def test_disabled_registry_records_nothing(self):
        _run(cycles=2)
        assert TELEMETRY.snapshot().counters == {}
