"""The operator surface: ``repro dbops ...`` and the serve hot-swap RPC."""

import asyncio
import json

import pytest

from repro.cli import build_parser, main
from repro.core import DeceptionDatabase
from repro.dbops import CollectorPipeline, VersionStore
from repro.fleet import generate_events
from repro.serve import FleetServer, ServeConfig
from repro.serve.protocol import (ERROR_INVALID_PARAMS, METHODS,
                                  event_to_dict)

pytestmark = pytest.mark.dbops

FACTORY = "bare-metal-light"


def _collect(tmp_path, cycles=6):
    root = str(tmp_path / "store")
    assert main(["dbops", "collect", "--store", root,
                 "--cycles", str(cycles)]) == 0
    return root


class TestParser:
    def test_dbops_requires_a_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["dbops"])

    def test_collect_defaults(self):
        args = build_parser().parse_args(
            ["dbops", "collect", "--store", "s"])
        assert args.cycles == 4 and args.seed == 2026
        assert args.machines == 2 and args.cycle_ms == 60000

    def test_rollout_defaults(self):
        args = build_parser().parse_args(
            ["dbops", "rollout", "--store", "s", "--version", "1"])
        assert args.endpoints == 8 and args.events == 64
        assert args.min_samples == 8 and not args.no_health
        assert args.stage is None

    def test_rollout_requires_a_version(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["dbops", "rollout", "--store", "s"])


class TestCollectCommand:
    def test_collect_publishes_and_reports_cycles(self, tmp_path, capsys):
        root = _collect(tmp_path)
        out = capsys.readouterr().out
        assert "published v1" in out
        assert "skipped (empty-diff)" in out
        assert "store " + root + " now at v" in out
        assert VersionStore(root).latest() is not None

    def test_collect_rejects_zero_cycles(self, tmp_path, capsys):
        assert main(["dbops", "collect", "--store",
                     str(tmp_path / "s"), "--cycles", "0"]) == 2

    def test_versions_lists_lineage(self, tmp_path, capsys):
        root = _collect(tmp_path)
        capsys.readouterr()
        assert main(["dbops", "versions", "--store", root]) == 0
        out = capsys.readouterr().out
        assert "v1 <- v0" in out
        assert "files+" in out

    def test_versions_on_an_empty_store(self, tmp_path, capsys):
        root = str(tmp_path / "empty")
        assert main(["dbops", "versions", "--store", root]) == 0
        assert "no published versions" in capsys.readouterr().out


class TestRolloutCommand:
    def test_rollout_renders_report_and_verdict(self, tmp_path, capsys):
        root = _collect(tmp_path)
        capsys.readouterr()
        target = VersionStore(root).latest().version_id
        assert main(["dbops", "rollout", "--store", root,
                     "--version", str(target), "--events", "24",
                     "--factory", FACTORY]) == 0
        out = capsys.readouterr().out
        assert f"rollout v{target}:" in out
        assert "stamped batches:" in out
        assert "db version" in out  # per-version verdict table

    def test_rollout_with_ramp_stages(self, tmp_path, capsys):
        root = _collect(tmp_path)
        capsys.readouterr()
        assert main(["dbops", "rollout", "--store", root, "--version", "1",
                     "--events", "24", "--factory", FACTORY,
                     "--stage", "0:0", "--stage", "1:100",
                     "--no-health"]) == 0
        assert "rollout v1:" in capsys.readouterr().out

    def test_rollout_of_missing_version_fails(self, tmp_path, capsys):
        root = _collect(tmp_path)
        capsys.readouterr()
        assert main(["dbops", "rollout", "--store", root,
                     "--version", "99", "--factory", FACTORY]) == 2
        assert "dbops:" in capsys.readouterr().err

    def test_bad_stage_syntax_fails(self, tmp_path, capsys):
        root = _collect(tmp_path)
        capsys.readouterr()
        assert main(["dbops", "rollout", "--store", root, "--version", "1",
                     "--factory", FACTORY, "--stage", "nope"]) == 2


def _server(**kwargs):
    kwargs.setdefault("machine_factory", FACTORY)
    return FleetServer(ServeConfig(**kwargs))


def _handle(server, payload):
    return json.loads(asyncio.run(server.handle_line(json.dumps(payload))))


def _store_on_disk(tmp_path):
    root = str(tmp_path / "store")
    store = VersionStore(root)
    CollectorPipeline(store, database=DeceptionDatabase(),
                      seed=2026).run(4)
    return root, store.latest().version_id


class TestServeRpc:
    def test_methods_advertise_the_dbops_surface(self):
        assert "dbops.rollout" in METHODS
        assert "dbops.status" in METHODS

    def test_status_starts_at_the_base_version(self):
        response = _handle(_server(), {"id": 1, "method": "dbops.status"})
        assert response["result"]["database_version"] == 0
        assert response["result"]["rollouts"] == 0

    def test_rollout_swaps_and_stamps_verdicts(self, tmp_path):
        root, target = _store_on_disk(tmp_path)
        server = _server(tenant_limit=64)
        swap = _handle(server, {"id": 1, "method": "dbops.rollout",
                                "params": {"store": root,
                                           "version": target}})
        assert swap["result"]["adopted"] == target
        assert swap["result"]["rollouts"] == 1

        events = generate_events(7, 4, 12)
        submit = _handle(server, {
            "id": 2, "method": "submit",
            "params": {"tenant": "default",
                       "events": [event_to_dict(e) for e in events]}})
        verdicts = submit["result"]["verdicts"]
        assert verdicts and all(v["db_version"] == target
                                for v in verdicts)

        status = _handle(server, {"id": 3, "method": "dbops.status"})
        assert status["result"]["database_version"] == target
        assert status["result"]["fingerprint"]  # recomputed post-swap

    def test_stats_carry_the_dbops_block(self, tmp_path):
        root, target = _store_on_disk(tmp_path)
        server = _server()
        _handle(server, {"id": 1, "method": "dbops.rollout",
                         "params": {"store": root, "version": target}})
        stats = _handle(server, {"id": 2, "method": "stats"})
        assert stats["result"]["dbops"]["database_version"] == target
        assert stats["result"]["serve"]["rollouts"] == 1

    def test_invalid_params_are_rejected(self, tmp_path):
        root, _ = _store_on_disk(tmp_path)
        server = _server()
        for params in ({"version": 1},                   # no store
                       {"store": root},                  # no version
                       {"store": root, "version": 0},    # base not allowed
                       {"store": root, "version": True},  # bool is not int
                       {"store": root, "version": 99}):  # unpublished
            response = _handle(server, {"id": 1, "method": "dbops.rollout",
                                        "params": params})
            assert response["error"]["code"] == ERROR_INVALID_PARAMS
        status = _handle(server, {"id": 2, "method": "dbops.status"})
        assert status["result"]["rollouts"] == 0
