"""VersionStore: append-only publish, reopen, integrity, atomicity."""

import json
import os
import pickle

import pytest

from repro.core import DeceptionDatabase
from repro.core.collector import ResourceDiff
from repro.core.database import FrozenDeceptionDatabase
from repro.dbops import (BASE_VERSION, MANIFEST_NAME, DatabaseVersion,
                         VersionIntegrityError, VersionStore,
                         VersionStoreError, changelog_from_diff,
                         content_fingerprint)

pytestmark = pytest.mark.dbops


class TestContentFingerprint:
    def test_crc_length_shape(self):
        fp = content_fingerprint(b"hello")
        crc, length = fp.split(":")
        assert len(crc) == 8 and int(length) == 5

    def test_distinct_blobs_distinct_fingerprints(self):
        assert content_fingerprint(b"a") != content_fingerprint(b"b")

    def test_matches_the_shared_registry_idiom(self):
        from repro.parallel.shared import database_fingerprint
        blob = DeceptionDatabase().snapshot_bytes()
        assert content_fingerprint(blob) == database_fingerprint(blob)


class TestChangelog:
    def test_counts_every_resource_kind(self):
        diff = ResourceDiff(files={"a", "b"}, processes={"p.exe"},
                            registry_keys={"hklm\\k"},
                            registry_values={("hklm\\k", "v"),
                                             ("hklm\\k", "w")})
        assert changelog_from_diff(diff) == {
            "files": 2, "processes": 1,
            "registry_keys": 1, "registry_values": 2}

    def test_version_round_trips_through_json(self):
        version = DatabaseVersion(
            version_id=3, parent_id=2, fingerprint="deadbeef:10",
            label="cycle-007", created_at_ms=420_000,
            changelog=(("files", 4), ("processes", 1)))
        rehydrated = DatabaseVersion.from_dict(
            json.loads(json.dumps(version.to_dict())))
        assert rehydrated == version
        assert rehydrated.changelog_dict() == {"files": 4, "processes": 1}


class TestInMemoryStore:
    def test_publish_assigns_dense_ids_and_parent_links(self):
        store = VersionStore()
        db = DeceptionDatabase()
        first = store.publish(db, label="one")
        second = store.publish(db, label="two")
        assert (first.version_id, first.parent_id) == (1, BASE_VERSION)
        assert (second.version_id, second.parent_id) == (2, 1)
        assert store.latest() == second
        assert [v.label for v in store.versions()] == ["one", "two"]

    def test_explicit_parent_is_honoured(self):
        store = VersionStore()
        db = DeceptionDatabase()
        store.publish(db)
        branched = store.publish(db, parent_id=BASE_VERSION)
        assert branched.parent_id == BASE_VERSION

    def test_blob_round_trip_and_rehydration(self):
        store = VersionStore()
        db = DeceptionDatabase()
        version = store.publish(db)
        blob = store.load_blob(version.version_id)
        assert blob == db.snapshot_bytes()
        assert content_fingerprint(blob) == version.fingerprint
        frozen = store.load_database(version.version_id)
        assert isinstance(frozen, FrozenDeceptionDatabase)
        assert frozen.counts() == db.counts()

    def test_accepts_a_prepickled_blob(self):
        store = VersionStore()
        blob = DeceptionDatabase().snapshot_bytes()
        version = store.publish(blob, label="raw")
        assert store.load_blob(version.version_id) == blob

    def test_missing_version_raises(self):
        store = VersionStore()
        with pytest.raises(VersionStoreError):
            store.get(1)
        store.publish(DeceptionDatabase())
        with pytest.raises(VersionStoreError):
            store.load_blob(2)
        assert store.latest() is not None

    def test_empty_store_has_no_latest(self):
        assert VersionStore().latest() is None
        assert VersionStore().versions() == ()


class TestOnDiskStore:
    def test_reopen_sees_published_versions(self, tmp_path):
        root = str(tmp_path / "store")
        db = DeceptionDatabase()
        store = VersionStore(root)
        store.publish(db, label="one", created_at_ms=60_000)
        store.publish(db, label="two", created_at_ms=120_000)

        reopened = VersionStore(root)
        assert reopened.versions() == store.versions()
        assert reopened.load_blob(1) == db.snapshot_bytes()
        assert reopened.load_database(2).counts() == db.counts()

    def test_publish_leaves_no_temp_files(self, tmp_path):
        root = str(tmp_path / "store")
        store = VersionStore(root)
        store.publish(DeceptionDatabase())
        names = sorted(os.listdir(root))
        assert names == [MANIFEST_NAME, "v0001.snapshot"]

    def test_corrupted_blob_is_detected_on_load(self, tmp_path):
        root = str(tmp_path / "store")
        VersionStore(root).publish(DeceptionDatabase())
        blob_path = os.path.join(root, "v0001.snapshot")
        with open(blob_path, "ab") as stream:
            stream.write(b"tamper")
        fresh = VersionStore(root)  # cold cache: must read from disk
        with pytest.raises(VersionIntegrityError):
            fresh.load_blob(1)

    def test_deleted_blob_is_a_store_error(self, tmp_path):
        root = str(tmp_path / "store")
        VersionStore(root).publish(DeceptionDatabase())
        os.remove(os.path.join(root, "v0001.snapshot"))
        with pytest.raises(VersionStoreError):
            VersionStore(root).load_blob(1)

    def test_sparse_manifest_is_rejected(self, tmp_path):
        root = str(tmp_path / "store")
        store = VersionStore(root)
        store.publish(DeceptionDatabase())
        manifest = os.path.join(root, MANIFEST_NAME)
        with open(manifest, "r", encoding="utf-8") as stream:
            payload = json.load(stream)
        payload["versions"][0]["version"] = 3  # break the dense sequence
        with open(manifest, "w", encoding="utf-8") as stream:
            json.dump(payload, stream)
        with pytest.raises(VersionStoreError):
            VersionStore(root)

    def test_garbage_manifest_is_a_store_error(self, tmp_path):
        root = str(tmp_path / "store")
        os.makedirs(root)
        with open(os.path.join(root, MANIFEST_NAME), "w",
                  encoding="utf-8") as stream:
            stream.write("{not json")
        with pytest.raises(VersionStoreError):
            VersionStore(root)

    def test_stored_blob_pickles_a_snapshot(self, tmp_path):
        root = str(tmp_path / "store")
        store = VersionStore(root)
        store.publish(DeceptionDatabase())
        state = pickle.loads(store.load_blob(1))
        assert state.files  # the default database is non-trivial
