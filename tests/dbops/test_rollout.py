"""RolloutEngine: ramping, pins, auto-rollback, mid-run determinism.

The determinism contract for a run with an *active* rollout is narrower
than the plain fleet's: the health gate is evaluated per shard, so the
matrix is **fixed shard count** × {serial, pooled} × {fresh, resumed}.
These tests pin that matrix, plus the no-op escape hatch (a target
content-identical to the base must not move a byte — the hypothesis
property in ``test_rollout_properties.py`` generalises it).

Workload note: the fleet's LCG event generator concentrates traffic on
a few endpoints (seed 42 / 8 endpoints → endpoints 1 and 5 carry all
events), so the scenarios below use *pins* to guarantee both the target
and the base cohort actually see malware.
"""

import dataclasses

import pytest

from repro.core import DeceptionDatabase
from repro.dbops import (BASE_VERSION, FULL_RAMP, CollectorPipeline,
                         HealthGate, RampStage, RolloutEngine, VersionStore,
                         ramp_bucket, rollback_triggered)
from repro.fleet import FleetService, build_fleet_report
from repro.fleet.endpoint import FAILED_LABEL, EventRecord
from repro.fleet.events import EVENT_BENIGN, EVENT_MALWARE

pytestmark = pytest.mark.dbops

FACTORY = "bare-metal-light"

#: seed 42 / 8 endpoints routes every event to endpoints 1 and 5.
HOT, COLD = 1, 5


def _store_with_good_target():
    """A store grown from the default database by the collector."""
    store = VersionStore()
    CollectorPipeline(store, database=DeceptionDatabase(),
                      seed=2026).run(4)
    assert store.latest() is not None
    return store, store.latest().version_id


def _store_with_bad_target():
    """A store whose only version is a database stripped of resources.

    Deactivation against it regresses far past the default health gate
    (the paper's whole mechanism needs the resource inventory).
    """
    base = DeceptionDatabase()
    stripped = dataclasses.replace(
        base.snapshot(), files={}, basenames={}, folders={}, processes={},
        libraries={}, windows=[], registry_keys={}, registry_values={},
        devices={}, mutexes={})
    store = VersionStore()
    store.publish(DeceptionDatabase.from_snapshot(stripped), label="bad")
    return store, 1


def _service(tmp_path=None, **kwargs):
    kwargs.setdefault("endpoints", 8)
    kwargs.setdefault("events", 48)
    kwargs.setdefault("seed", 42)
    kwargs.setdefault("queue_limit", 16)
    kwargs.setdefault("machine_factory", FACTORY)
    if tmp_path is not None:
        kwargs.setdefault("checkpoint_path", str(tmp_path / "fleet.ckpt"))
    return FleetService(**kwargs)


def _rollup(result):
    return build_fleet_report(result).to_json()


def _record(seq, version, deactivated, *, kind=EVENT_MALWARE,
            label="sample", endpoint_id=HOT):
    return EventRecord(seq=seq, endpoint_id=endpoint_id, kind=kind,
                       ref=seq, label=label, deactivated=deactivated,
                       db_version=version)


class TestRampMechanics:
    def test_bucket_is_deterministic_and_version_salted(self):
        assert ramp_bucket(3, 1) == ramp_bucket(3, 1)
        buckets = {ramp_bucket(3, version) for version in range(1, 20)}
        assert len(buckets) > 1  # a new version ramps a new subset

    def test_stage_percent_follows_the_schedule(self):
        engine = RolloutEngine(1, b"blob", stages=(
            RampStage(0, 0), RampStage(2, 50), RampStage(4, 100)))
        assert [engine.stage_percent(r) for r in range(6)] == \
            [0, 0, 50, 50, 100, 100]

    def test_full_ramp_is_everything_from_round_zero(self):
        engine = RolloutEngine(1, b"blob")
        assert engine.stages == FULL_RAMP
        assert engine.stage_percent(0) == 100


class TestValidation:
    def test_rejects_unpublished_target(self):
        with pytest.raises(ValueError):
            RolloutEngine(0, b"blob")

    def test_rejects_empty_or_unordered_stages(self):
        with pytest.raises(ValueError):
            RolloutEngine(1, b"blob", stages=())
        with pytest.raises(ValueError):
            RolloutEngine(1, b"blob",
                          stages=(RampStage(4, 10), RampStage(2, 50)))
        with pytest.raises(ValueError):
            RolloutEngine(1, b"blob",
                          stages=(RampStage(2, 10), RampStage(2, 50)))

    def test_rejects_pins_to_third_party_versions(self):
        with pytest.raises(ValueError):
            RolloutEngine(2, b"blob", pins={0: 1})
        RolloutEngine(2, b"blob", pins={0: 2, 1: BASE_VERSION})

    def test_stage_and_gate_bounds(self):
        with pytest.raises(ValueError):
            RampStage(-1, 10)
        with pytest.raises(ValueError):
            RampStage(0, 101)
        with pytest.raises(ValueError):
            HealthGate(min_samples=0)
        with pytest.raises(ValueError):
            HealthGate(max_regression=1.5)


class TestNoopDetection:
    def test_target_identical_to_base_disables_routing(self):
        blob = DeceptionDatabase().snapshot_bytes()
        engine = RolloutEngine(1, blob)
        engine.bind_base(blob)
        assert engine.version_blobs() == {}
        assert engine.summary()["noop"] is True

    def test_noop_rollout_run_is_byte_identical_to_routerless(self):
        store = VersionStore()
        store.publish(DeceptionDatabase(), label="same-content")
        reference = _rollup(_service().run())
        routed = _service(
            version_router=RolloutEngine.from_store(store, 1)).run()
        assert _rollup(routed) == reference
        assert routed.dbops["noop"] is True
        assert routed.dbops["stamped_batches"] == 0


class TestRollbackTrigger:
    GATE = HealthGate(min_samples=2, max_regression=0.25)

    def test_quiet_until_both_cohorts_have_samples(self):
        records = [_record(0, 1, False), _record(1, 1, False),
                   _record(2, BASE_VERSION, True)]
        assert not rollback_triggered(records, 1, self.GATE)

    def test_triggers_on_regression_past_the_gate(self):
        records = [_record(0, BASE_VERSION, True),
                   _record(1, BASE_VERSION, True),
                   _record(2, 1, False), _record(3, 1, False)]
        assert rollback_triggered(records, 1, self.GATE)

    def test_within_bound_regression_is_tolerated(self):
        records = [_record(0, BASE_VERSION, True),
                   _record(1, BASE_VERSION, True),
                   _record(2, 1, True), _record(3, 1, True)]
        assert not rollback_triggered(records, 1, self.GATE)

    def test_verdict_latches_on_the_offending_prefix(self):
        """Later recovery must not erase an observed regression."""
        records = [_record(0, BASE_VERSION, True),
                   _record(1, BASE_VERSION, True),
                   _record(2, 1, False), _record(3, 1, False)]
        records += [_record(seq, 1, True) for seq in range(4, 40)]
        assert rollback_triggered(records, 1, self.GATE)

    def test_failed_benign_and_foreign_records_are_ignored(self):
        noise = [_record(0, 1, False, label=FAILED_LABEL),
                 _record(1, 1, None, kind=EVENT_BENIGN),
                 _record(2, 7, False), _record(3, 7, False),
                 _record(4, BASE_VERSION, True),
                 _record(5, BASE_VERSION, True)]
        assert not rollback_triggered(noise, 1, self.GATE)


class TestHealthyRollout:
    def test_collected_version_ships_without_rollback(self):
        store, target = _store_with_good_target()
        engine = RolloutEngine.from_store(
            store, target, pins={HOT: target, COLD: BASE_VERSION},
            health=HealthGate())
        result = _service(version_router=engine).run()
        assert result.completed
        assert result.dbops["rolled_back"] is False
        assert result.dbops["stamped_batches"] > 0
        stamped = {r.db_version for r in result.records
                   if r.endpoint_id == HOT}
        assert stamped == {target}
        assert all(r.db_version == BASE_VERSION for r in result.records
                   if r.endpoint_id == COLD)

    def test_report_splits_verdicts_by_version(self):
        store, target = _store_with_good_target()
        engine = RolloutEngine.from_store(
            store, target, pins={HOT: target, COLD: BASE_VERSION})
        report = build_fleet_report(_service(version_router=engine).run())
        by_version = {rollup.version: rollup for rollup in report.versions}
        assert set(by_version) == {BASE_VERSION, target}
        assert by_version[BASE_VERSION].malware > 0
        assert by_version[target].malware > 0

    def test_merged_metrics_expose_rollout_counters(self):
        store, target = _store_with_good_target()
        engine = RolloutEngine.from_store(store, target,
                                          pins={HOT: target})
        merged = _service(version_router=engine).run().merged_metrics()
        assert merged.counters["dbops.stamped_batches"] > 0
        assert merged.counters["dbops.rollbacks"] == 0
        assert merged.gauges["dbops.target_version"] == float(target)


class TestAutoRollback:
    def _engine(self, store, target, **kwargs):
        kwargs.setdefault("pins", {HOT: target, COLD: BASE_VERSION})
        kwargs.setdefault("health", HealthGate(min_samples=5))
        return RolloutEngine.from_store(store, target, **kwargs)

    def test_regressing_version_is_rolled_back(self):
        store, target = _store_with_bad_target()
        result = _service(version_router=self._engine(store, target)).run()
        assert result.dbops["rolled_back"] is True
        assert result.dbops["rolled_back_shards"], "shard+round recorded"
        merged = result.merged_metrics()
        assert merged.counters["dbops.rollbacks"] == 1

    def test_rollback_stops_stamping_for_the_rest_of_the_run(self):
        store, target = _store_with_bad_target()
        result = _service(version_router=self._engine(store, target)).run()
        hot_versions = [r.db_version for r in result.records
                        if r.endpoint_id == HOT]
        assert hot_versions[0] == target  # enrolled before the gate fired
        assert hot_versions[-1] == BASE_VERSION  # back on base after it

    def test_without_a_health_gate_nothing_rolls_back(self):
        store, target = _store_with_bad_target()
        engine = self._engine(store, target, health=None)
        result = _service(version_router=engine).run()
        assert result.dbops["rolled_back"] is False
        assert all(r.db_version == target for r in result.records
                   if r.endpoint_id == HOT)


class TestMidRunDeterminism:
    """Fixed shard count × {serial, pooled} × {fresh, resumed}."""

    STAGES = (RampStage(0, 0), RampStage(2, 100))

    def _engine(self, store, target):
        return RolloutEngine.from_store(
            store, target, stages=self.STAGES,
            pins={COLD: BASE_VERSION}, health=HealthGate())

    def test_serial_rollout_is_reproducible(self):
        store, target = _store_with_good_target()
        first = _rollup(_service(
            shards=2, version_router=self._engine(store, target)).run())
        second = _rollup(_service(
            shards=2, version_router=self._engine(store, target)).run())
        assert first == second

    @pytest.mark.slow
    def test_pooled_matches_serial_at_fixed_shards(self):
        store, target = _store_with_good_target()
        serial = _rollup(_service(
            shards=2, version_router=self._engine(store, target)).run())
        pooled = _rollup(_service(
            shards=2, max_workers=2,
            version_router=self._engine(store, target)).run())
        assert pooled == serial

    def test_resumed_matches_fresh_across_a_ramp_boundary(self, tmp_path):
        store, target = _store_with_good_target()
        reference = _rollup(_service(
            shards=2, version_router=self._engine(store, target)).run())
        partial = _service(tmp_path, shards=2,
                           version_router=self._engine(store, target)
                           ).run(stop_after_rounds=2)
        assert not partial.completed
        resumed = _service(tmp_path, shards=2, resume=True,
                           version_router=self._engine(store, target)).run()
        assert resumed.completed
        assert _rollup(resumed) == reference

    def test_checkpoint_fingerprint_carries_the_rollout_config(self):
        store, target = _store_with_good_target()
        blob = DeceptionDatabase().snapshot_bytes()
        routed = _service(version_router=self._engine(store, target))
        routed.version_router.bind_base(blob)
        assert "dbops" in routed._fingerprint(blob)
        # Routerless runs keep the pre-dbops fingerprint: their old
        # checkpoints stay resumable.
        assert "dbops" not in _service()._fingerprint(blob)

    def test_changing_the_rollout_config_invalidates_checkpoints(
            self, tmp_path):
        from repro.fleet import FleetCheckpointError
        store, target = _store_with_good_target()
        _service(tmp_path, shards=2,
                 version_router=self._engine(store, target)
                 ).run(stop_after_rounds=1)
        retuned = RolloutEngine.from_store(
            store, target, stages=(RampStage(0, 100),),
            pins={COLD: BASE_VERSION}, health=HealthGate())
        with pytest.raises(FleetCheckpointError):
            _service(tmp_path, shards=2, resume=True,
                     version_router=retuned).run()
