"""Property: a content-identical rollout never moves a byte.

The no-op escape hatch is the keystone of the dbops determinism story:
when the target version's snapshot is content-identical to the run's
base database, the router must degrade to *nothing* — no stamping, no
side-loaded blobs — and the run must be byte-identical to a routerless
one. ``test_rollout.py`` pins one instance; hypothesis sweeps the
workload space (seed, fleet shape, ramp schedule, pins).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DeceptionDatabase
from repro.dbops import (BASE_VERSION, HealthGate, RampStage, RolloutEngine,
                         VersionStore)
from repro.fleet import FleetService, build_fleet_report

pytestmark = pytest.mark.dbops

FACTORY = "bare-metal-light"

#: Small workloads keep each drawn example to a fraction of a second.
fleet_shapes = st.tuples(
    st.integers(min_value=1, max_value=400),   # seed
    st.integers(min_value=2, max_value=6),     # endpoints
    st.sampled_from((12, 24)),                 # events
)

ramp_schedules = st.sampled_from((
    (RampStage(0, 100),),
    (RampStage(0, 0), RampStage(1, 50), RampStage(3, 100)),
    (RampStage(0, 25),),
))


def _noop_engine(stages, pins):
    store = VersionStore()
    store.publish(DeceptionDatabase(), label="identical")
    return RolloutEngine.from_store(store, 1, stages=stages, pins=pins,
                                    health=HealthGate(min_samples=1))


@settings(max_examples=6, deadline=None)
@given(shape=fleet_shapes, stages=ramp_schedules,
       pin_hot=st.booleans())
def test_noop_rollout_preserves_routerless_bytes(shape, stages, pin_hot):
    seed, endpoints, events = shape
    pins = {0: 1, 1: BASE_VERSION} if pin_hot else None

    def service(router=None):
        return FleetService(endpoints=endpoints, events=events, seed=seed,
                            queue_limit=16, machine_factory=FACTORY,
                            version_router=router)

    reference = build_fleet_report(service().run()).to_json()
    routed = service(_noop_engine(stages, pins)).run()
    assert build_fleet_report(routed).to_json() == reference
    assert routed.dbops["noop"] is True
    assert routed.dbops["stamped_batches"] == 0
    assert routed.dbops["rolled_back"] is False
    assert all(record.db_version == BASE_VERSION
               for record in routed.records)


@settings(max_examples=6, deadline=None)
@given(shape=fleet_shapes)
def test_same_rollout_config_is_reproducible(shape):
    """Two identical routed runs agree byte-for-byte (any target)."""
    seed, endpoints, events = shape
    store = VersionStore()
    database = DeceptionDatabase()
    from repro.dbops import CollectorPipeline
    CollectorPipeline(store, database=database, seed=7).run(2)
    target = store.latest().version_id

    def run():
        engine = RolloutEngine.from_store(store, target,
                                          health=HealthGate())
        service = FleetService(endpoints=endpoints, events=events,
                               seed=seed, queue_limit=16,
                               machine_factory=FACTORY,
                               version_router=engine)
        return build_fleet_report(service.run()).to_json()

    assert run() == run()
