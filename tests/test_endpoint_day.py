"""A full 'day in the life' integration story on one protected endpoint.

One end-user machine, one Scarecrow controller, Deep Freeze snapshots
between incidents: benign software installs cleanly, three waves of
evasive malware arrive and are deactivated, telemetry accumulates, and the
machine's user data survives the day untouched.
"""

import pytest

from repro import winapi
from repro.analysis.deepfreeze import DeepFreeze
from repro.analysis.environments import build_end_user_machine
from repro.core import ScarecrowConfig, ScarecrowController
from repro.malware import (build_cnet_corpus, build_kasidet, build_locky,
                           build_wannacry_variant)
from repro.malware.corpus import build_malgene_corpus
from repro.malware.families import TOP10_FAMILY_SPECS

USER_FILES = ("C:\\Users\\john\\Documents\\q3_report.docx",
              "C:\\Users\\john\\Documents\\payroll.xlsx")


@pytest.fixture(scope="module")
def day():
    """Run the whole day once; the tests inspect the aftermath."""
    machine = build_end_user_machine()
    for path in USER_FILES:
        machine.filesystem.write_file(path, b"precious")
    controller = ScarecrowController(
        machine, config=ScarecrowConfig(enable_username=False))
    log = {"benign": [], "hostile": [], "machine": machine,
           "controller": controller}

    # Morning: the user installs two programs through the controller
    # (corporate policy: everything downloaded runs under Scarecrow).
    for program in build_cnet_corpus()[:2]:
        target = controller.launch(program.image_path)
        log["benign"].append(program.run(machine, target))

    # Midday onward: three hostile arrivals.
    hostile = [build_wannacry_variant(), build_locky(), build_kasidet()]
    spawner = next(s for s in build_malgene_corpus([TOP10_FAMILY_SPECS[0]])
                   if s.evade_action.value == "self_spawn")
    hostile.append(spawner)
    for sample in hostile:
        machine.filesystem.write_file(sample.image_path, b"MZ")
        target = controller.launch(sample.image_path)
        log["hostile"].append((sample, sample.run(machine, target)))
    return log


class TestBenignMorning:
    def test_installs_clean(self, day):
        for report in day["benign"]:
            assert report.installed and report.error is None

    def test_program_files_present(self, day):
        machine = day["machine"]
        assert machine.filesystem.is_dir("C:\\Program Files\\Google Chrome")


class TestHostileWaves:
    def test_every_sample_deactivated(self, day):
        for sample, result in day["hostile"]:
            assert not result.executed_payload, sample.family

    def test_user_files_intact(self, day):
        machine = day["machine"]
        for path in USER_FILES:
            assert machine.filesystem.read_file(path) == b"precious"
        assert not any(p.lower().endswith((".wcry", ".locky"))
                       for p in machine.filesystem.all_paths())

    def test_no_malicious_processes_survive(self, day):
        machine = day["machine"]
        for name in ("wormspread.exe", "@WanaDecryptor@.exe"):
            assert not machine.processes.name_exists(name)

    def test_spawner_alarmed(self, day):
        assert any(alarm.spawn_count >= 10
                   for alarm in day["controller"].alarms)


class TestTelemetry:
    def test_fingerprint_log_spans_categories(self, day):
        summary = day["controller"].summary()
        assert "network" in summary      # WannaCry kill switch
        assert "debugger" in summary     # the Symmi spawner
        assert summary["debugger"] > 100  # one probe per respawn iteration

    def test_triggers_attributable_per_sample(self, day):
        triggers = {sample.family: result.trigger
                    for sample, result in day["hostile"]}
        assert triggers["WannaCry"] == "InternetOpenUrlA()"
        assert triggers["Locky"] == "RegOpenKeyEx()"
        assert triggers["Symmi"] == "IsDebuggerPresent()"


class TestEndOfDayReset:
    def test_deepfreeze_rollback_clears_the_day(self):
        machine = build_end_user_machine()
        freeze = DeepFreeze(machine)
        freeze.freeze()
        controller = ScarecrowController(machine)
        sample = build_locky()
        machine.filesystem.write_file(sample.image_path, b"MZ")
        sample.run(machine, controller.launch(sample.image_path))
        controller.shutdown()
        freeze.reset()
        assert not machine.filesystem.exists(sample.image_path)
        assert not machine.processes.name_exists("scarecrow.exe")
        # A fresh controller protects the reset machine just fine.
        fresh = ScarecrowController(machine)
        api = winapi.bind(machine, fresh.launch("C:\\dl\\next.exe"))
        assert api.IsDebuggerPresent() is True
