"""Cross-module integration: benign coexistence (E7) and full stories."""

import pytest

from repro import winapi
from repro.analysis.environments import build_end_user_machine
from repro.core import (ScarecrowConfig, ScarecrowController)
from repro.malware.benign import build_cnet_corpus


def _run_benign(program, with_scarecrow):
    machine = build_end_user_machine()
    if with_scarecrow:
        controller = ScarecrowController(
            machine, config=ScarecrowConfig(enable_username=False))
        process = controller.launch(program.image_path)
    else:
        process = machine.spawn_process(
            program.spec.exe_name, program.image_path,
            parent=machine.explorer)
    return program.run(machine, process), machine


class TestBenignImpact:
    """§IV-C.1: 'All of these software programs installed and operated
    without any issues' — and behaved identically."""

    @pytest.fixture(scope="class")
    def reports(self):
        pairs = {}
        for program in build_cnet_corpus():
            without, _ = _run_benign(program, with_scarecrow=False)
            with_sc, _ = _run_benign(program, with_scarecrow=True)
            pairs[program.spec.name] = (without, with_sc)
        return pairs

    def test_all_twenty_install_and_run_under_scarecrow(self, reports):
        for name, (_, with_sc) in reports.items():
            assert with_sc.installed and with_sc.ran, name
            assert with_sc.error is None, name

    def test_behaviour_fingerprints_identical(self, reports):
        for name, (without, with_sc) in reports.items():
            assert without.fingerprint == with_sc.fingerprint, name

    def test_install_artifacts_real(self):
        program = build_cnet_corpus()[0]
        report, machine = _run_benign(program, with_scarecrow=True)
        assert machine.filesystem.exists(
            f"{program.install_dir}\\resources.dat")
        assert machine.registry.key_exists(
            "HKLM\\SOFTWARE\\Microsoft\\Windows\\CurrentVersion\\"
            f"Uninstall\\{program.spec.name}")

    def test_oversized_requirement_would_fail_as_paper_warns(self):
        """The documented caveat: software demanding more than the faked
        50 GB sees the deceptive value and errors out."""
        from repro.malware.benign import BenignProgram, BenignSpec
        greedy = BenignProgram(BenignSpec(
            "HugeGame", "huge_setup.exe", "Big", 80 * 1024 ** 3,
            512 * 1024 ** 2, "updates.hugegame.example"))
        without, _ = _run_benign(greedy, with_scarecrow=False)
        with_sc, _ = _run_benign(greedy, with_scarecrow=True)
        assert without.installed
        assert not with_sc.installed
        assert with_sc.error == "insufficient disk space"


class TestOnDemandProtection:
    def test_protect_existing_process(self, machine):
        controller = ScarecrowController(machine)
        running = machine.spawn_process("already.exe",
                                        parent=machine.explorer)
        controller.protect_existing(running)
        api = winapi.bind(machine, running)
        assert api.IsDebuggerPresent() is True

    def test_multiple_targets_one_controller(self, machine):
        controller = ScarecrowController(machine)
        first = controller.launch("C:\\dl\\a.exe")
        second = controller.launch("C:\\dl\\b.exe")
        for target in (first, second):
            api = winapi.bind(machine, target)
            assert api.IsDebuggerPresent() is True
        assert first.parent is second.parent is controller.process


class TestAblations:
    """Config groups gate exactly their own deceptions."""

    CASES = [
        ("enable_debugger", lambda api: api.IsDebuggerPresent() is True),
        ("enable_hardware",
         lambda api: api.GetSystemInfo().number_of_processors == 1),
        ("enable_network",
         lambda api: api.DnsQuery_A("ablation-nx.invalid") is not None),
        ("enable_timing",
         lambda api: api.GetTickCount() < 12 * 60 * 1000),
        ("enable_identity",
         lambda api: api.GetModuleFileNameA(None).startswith("C:\\sample")),
    ]

    @pytest.mark.parametrize("flag,probe", CASES,
                             ids=[c[0] for c in CASES])
    def test_flag_off_disables_group(self, flag, probe):
        machine = build_end_user_machine()
        controller = ScarecrowController(
            machine, config=ScarecrowConfig(**{flag: False}))
        target = controller.launch("C:\\dl\\probe.exe")
        api = winapi.bind(machine, target)
        assert not probe(api), flag

    @pytest.mark.parametrize("flag,probe", CASES,
                             ids=[c[0] for c in CASES])
    def test_flag_on_enables_group(self, flag, probe):
        machine = build_end_user_machine()
        controller = ScarecrowController(machine)
        target = controller.launch("C:\\dl\\probe.exe")
        api = winapi.bind(machine, target)
        assert probe(api), flag

    def test_software_flag_gates_registry_files_windows(self):
        from repro.winsim.errors import Win32Error
        machine = build_end_user_machine()
        controller = ScarecrowController(
            machine, config=ScarecrowConfig(enable_software=False))
        target = controller.launch("C:\\dl\\probe.exe")
        api = winapi.bind(machine, target)
        err, _ = api.RegOpenKeyExA(
            "HKEY_LOCAL_MACHINE",
            "SOFTWARE\\Oracle\\VirtualBox Guest Additions")
        assert err == Win32Error.ERROR_FILE_NOT_FOUND
        assert api.GetModuleHandleA("SbieDll.dll") is None
        assert api.FindWindowA("OLLYDBG") is None
