"""Merge algebra of the shard partials — the determinism load-bearer.

The cross-shard byte-identity contract reduces to three algebraic facts
proven here property-style: :class:`ShardRollup.merge` is associative,
commutative and has :meth:`ShardRollup.empty` as identity; partitioning
a record set *any* way and merging the partials reproduces the
single-fold rollup; and the same holds for the telemetry
:class:`MetricsSnapshot` machinery the rollups ride on. Together these
mean neither shard count nor shard completion order can change the
global rollup bytes.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet import (EVENT_BENIGN, EVENT_MALWARE, EVENT_RESET,
                         EventRecord, ShardRollup, finalize_report,
                         merge_shard_rollups)
from repro.telemetry.snapshot import MetricsSnapshot

pytestmark = pytest.mark.fleet

_FAMILIES = ("Symmi", "Zbot", "Selfdel")


@st.composite
def records(draw):
    kind = draw(st.sampled_from((EVENT_MALWARE, EVENT_BENIGN, EVENT_RESET)))
    seq = draw(st.integers(min_value=0, max_value=10_000))
    endpoint = draw(st.integers(min_value=0, max_value=31))
    failed = draw(st.booleans()) and kind != EVENT_RESET and \
        draw(st.integers(0, 9)) == 0
    return EventRecord(
        seq=seq, endpoint_id=endpoint, kind=kind,
        ref=draw(st.integers(min_value=0, max_value=7)),
        label="(failed)" if failed else f"sample-{seq % 5}",
        family=draw(st.sampled_from(_FAMILIES))
        if kind == EVENT_MALWARE else "",
        ok=draw(st.booleans()),
        deactivated=draw(st.booleans()) if kind == EVENT_MALWARE else None,
        reports=draw(st.integers(min_value=0, max_value=3)),
        latency_ns=draw(st.integers(min_value=0, max_value=10**9)),
        retries=draw(st.integers(min_value=0, max_value=2)))


record_lists = st.lists(records(), max_size=40)


def _json(rollup):
    return rollup.to_json()


class TestMergeAlgebra:
    @settings(max_examples=60, deadline=None)
    @given(record_lists, record_lists)
    def test_commutative(self, first, second):
        left = ShardRollup.from_records(first)
        right = ShardRollup.from_records(second)
        assert _json(left.merge(right)) == _json(right.merge(left))

    @settings(max_examples=60, deadline=None)
    @given(record_lists, record_lists, record_lists)
    def test_associative(self, first, second, third):
        partials = [ShardRollup.from_records(group)
                    for group in (first, second, third)]
        left_fold = partials[0].merge(partials[1]).merge(partials[2])
        right_fold = partials[0].merge(partials[1].merge(partials[2]))
        assert _json(left_fold) == _json(right_fold)

    @settings(max_examples=60, deadline=None)
    @given(record_lists)
    def test_empty_is_the_identity(self, entries):
        rollup = ShardRollup.from_records(entries)
        assert _json(ShardRollup.empty().merge(rollup)) == _json(rollup)
        assert _json(rollup.merge(ShardRollup.empty())) == _json(rollup)


class TestPartitionInvariance:
    """Any sharding of the records merges back to the unsharded fold."""

    @settings(max_examples=60, deadline=None)
    @given(record_lists, st.integers(min_value=1, max_value=6))
    def test_modular_sharding_reproduces_the_global_fold(self, entries,
                                                         shard_count):
        whole = ShardRollup.from_records(entries)
        partials = [
            ShardRollup.from_records(
                [record for record in entries
                 if record.endpoint_id % shard_count == index])
            for index in range(shard_count)]
        assert _json(merge_shard_rollups(partials)) == _json(whole)

    @settings(max_examples=60, deadline=None)
    @given(record_lists, st.randoms(use_true_random=False))
    def test_completion_order_cannot_change_the_bytes(self, entries, rng):
        groups = [[record for record in entries
                   if record.endpoint_id % 4 == index] for index in range(4)]
        partials = [ShardRollup.from_records(group) for group in groups]
        shuffled = list(partials)
        rng.shuffle(shuffled)
        assert _json(merge_shard_rollups(shuffled)) == \
            _json(merge_shard_rollups(partials))

    @settings(max_examples=40, deadline=None)
    @given(record_lists, st.integers(min_value=1, max_value=4))
    def test_report_bytes_are_partition_invariant(self, entries,
                                                  shard_count):
        def report(merged):
            return finalize_report(
                merged, endpoints=32, seed=1, events_planned=len(entries),
                queue_depth_hwm=8, backpressure_stalls=2, rounds=3,
                completed=True).to_json()

        whole = ShardRollup.from_records(entries)
        partials = [
            ShardRollup.from_records(
                [record for record in entries
                 if record.endpoint_id % shard_count == index])
            for index in range(shard_count)]
        assert report(merge_shard_rollups(partials)) == report(whole)


class TestSnapshotMergeAlgebra:
    """The telemetry layer the rollups ride on obeys the same algebra."""

    snapshots = st.builds(
        MetricsSnapshot,
        counters=st.dictionaries(
            st.sampled_from(("fleet.events", "fleet.retries",
                             "shard.rounds", "serve.events")),
            st.integers(min_value=0, max_value=1000), max_size=4),
        gauges=st.dictionaries(
            st.sampled_from(("fleet.queue_depth_hwm", "shard.count")),
            st.floats(min_value=0, max_value=64, allow_nan=False),
            max_size=2))

    @settings(max_examples=60, deadline=None)
    @given(snapshots, snapshots, snapshots)
    def test_snapshot_merge_is_associative(self, first, second, third):
        left = first.merge(second).merge(third)
        right = first.merge(second.merge(third))
        assert left.to_json() == right.to_json()

    @settings(max_examples=60, deadline=None)
    @given(snapshots, snapshots)
    def test_snapshot_merge_is_commutative(self, first, second):
        assert first.merge(second).to_json() == \
            second.merge(first).to_json()
