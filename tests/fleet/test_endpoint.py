"""Protected-endpoint lifecycle: events, resets, report-buffer bounds."""

import pytest

from repro.fleet import (EVENT_BENIGN, EVENT_MALWARE, EVENT_RESET,
                         FAILED_LABEL, EventRecord, FleetEvent,
                         ProtectedEndpoint, build_sample_pool,
                         failed_event_record)
from repro.malware.benign import build_cnet_corpus
from repro.parallel import resolve_machine_factory

pytestmark = pytest.mark.fleet


def _endpoint(endpoint_id=0, **kwargs):
    machine = resolve_machine_factory("bare-metal-light")()
    return ProtectedEndpoint(endpoint_id, machine, **kwargs)


@pytest.fixture(scope="module")
def sample_pool():
    return build_sample_pool()


@pytest.fixture(scope="module")
def benign_pool():
    return build_cnet_corpus()


def _event(seq, kind, ref=0, endpoint_id=0, at_ms=100):
    return FleetEvent(seq, at_ms, endpoint_id, kind, ref)


class TestMalwareEvents:
    def test_malware_event_yields_a_verdict(self, sample_pool, benign_pool):
        endpoint = _endpoint()
        try:
            record = endpoint.handle_event(
                _event(0, EVENT_MALWARE, ref=0), sample_pool, benign_pool)
        finally:
            endpoint.close()
        sample = sample_pool[0]
        assert record.kind == EVENT_MALWARE
        assert record.label == sample.md5
        assert record.family == sample.family
        assert record.deactivated in (True, False)
        assert record.ok
        assert record.latency_ns >= 0

    def test_ref_wraps_around_the_pool(self, sample_pool, benign_pool):
        endpoint = _endpoint()
        try:
            record = endpoint.handle_event(
                _event(0, EVENT_MALWARE, ref=len(sample_pool)),
                sample_pool, benign_pool)
        finally:
            endpoint.close()
        assert record.label == sample_pool[0].md5

    def test_same_sample_same_verdict_across_endpoints(self, sample_pool,
                                                       benign_pool):
        verdicts = []
        for _ in range(2):
            endpoint = _endpoint()
            try:
                record = endpoint.handle_event(
                    _event(0, EVENT_MALWARE, ref=3), sample_pool,
                    benign_pool)
            finally:
                endpoint.close()
            verdicts.append((record.deactivated, record.trigger))
        assert verdicts[0] == verdicts[1]


class TestBenignEvents:
    def test_benign_install_is_ok_not_a_verdict(self, sample_pool,
                                                benign_pool):
        endpoint = _endpoint()
        try:
            record = endpoint.handle_event(
                _event(0, EVENT_BENIGN, ref=0), sample_pool, benign_pool)
        finally:
            endpoint.close()
        assert record.kind == EVENT_BENIGN
        assert record.deactivated is None
        assert record.ok
        assert record.error == ""


class TestResetEvents:
    def test_reset_thaws_and_reattaches_one_controller(self, sample_pool,
                                                       benign_pool):
        endpoint = _endpoint()
        try:
            first_controller = endpoint.controller
            record = endpoint.handle_event(
                _event(0, EVENT_RESET), sample_pool, benign_pool)
            assert record.kind == EVENT_RESET
            assert endpoint.reset_count == 1
            assert endpoint.controller is not first_controller
            # The thawed machine carries exactly the fresh controller's
            # bus subscription — stale subscribers were cleared.
            assert endpoint.machine.bus.subscriber_count == 1
        finally:
            endpoint.close()

    def test_reset_rewinds_malware_side_effects(self, sample_pool,
                                                benign_pool):
        endpoint = _endpoint()
        try:
            baseline = endpoint.machine.snapshot()
            endpoint.handle_event(_event(0, EVENT_MALWARE, ref=0),
                                  sample_pool, benign_pool)
            endpoint.handle_event(_event(1, EVENT_RESET), sample_pool,
                                  benign_pool)
            endpoint.controller.shutdown()
            assert endpoint.machine.snapshot() == baseline
            endpoint.controller = endpoint._attach()
        finally:
            endpoint.close()


class TestBookkeeping:
    def test_events_handled_counts_every_kind(self, sample_pool,
                                              benign_pool):
        endpoint = _endpoint()
        try:
            endpoint.handle_event(_event(0, EVENT_MALWARE, ref=1),
                                  sample_pool, benign_pool)
            endpoint.handle_event(_event(1, EVENT_BENIGN, ref=1),
                                  sample_pool, benign_pool)
            endpoint.handle_event(_event(2, EVENT_RESET), sample_pool,
                                  benign_pool)
        finally:
            endpoint.close()
        assert endpoint.events_handled == 3

    def test_unknown_kind_raises(self, sample_pool, benign_pool):
        endpoint = _endpoint()
        try:
            with pytest.raises(ValueError):
                endpoint.handle_event(_event(0, "meteor"), sample_pool,
                                      benign_pool)
        finally:
            endpoint.close()

    def test_record_dict_roundtrip(self, sample_pool, benign_pool):
        endpoint = _endpoint()
        try:
            record = endpoint.handle_event(
                _event(4, EVENT_MALWARE, ref=2), sample_pool, benign_pool)
        finally:
            endpoint.close()
        assert EventRecord.from_dict(record.to_dict()) == record

    def test_failed_event_record_shape(self):
        record = failed_event_record(_event(9, EVENT_MALWARE, ref=1),
                                     endpoint_id=3, retries=2,
                                     error="RuntimeError: boom")
        assert record.label == FAILED_LABEL
        assert not record.ok
        assert record.retries == 2
        assert record.deactivated is None
        assert EventRecord.from_dict(record.to_dict()) == record


class TestReportBufferBound:
    """The resident-deployment satellite: a bounded report inbox."""

    def test_default_bound_is_set(self):
        endpoint = _endpoint()
        try:
            assert endpoint.controller.ipc.controller.max_pending == \
                endpoint.report_buffer_limit
        finally:
            endpoint.close()

    def test_undrained_endpoint_stays_within_the_bound(self, sample_pool,
                                                       benign_pool):
        endpoint = _endpoint(report_buffer_limit=4)
        try:
            # Run malware without ever draining: the inbox must cap at 4
            # and count the evictions honestly.
            for seq in range(3):
                endpoint.handle_event(_event(seq, EVENT_MALWARE, ref=0),
                                      sample_pool, benign_pool)
            controller = endpoint.controller
            assert controller.ipc.controller.pending <= 4
            # handle_event drains per event; flood the channel directly to
            # exercise the eviction path.
            for _ in range(10):
                controller.ipc.dll.send("report", probe="x")
            assert controller.ipc.controller.pending == 4
            assert controller.dropped_reports >= 6
        finally:
            endpoint.close()
