"""Fleet scheduler: admission, dispatch, degradation, checkpoint/resume.

The contract under test is byte-identity: same ``(seed, endpoints,
events, queue_limit, profile)`` must yield the same canonical report
serial or pooled, fresh or resumed, healthy or degraded.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet import (FleetCheckpointError, FleetService, build_fleet_report,
                         generate_events, plan_rounds)

pytestmark = pytest.mark.fleet

FACTORY = "bare-metal-light"


def _service(tmp_path=None, **kwargs):
    kwargs.setdefault("endpoints", 4)
    kwargs.setdefault("events", 24)
    kwargs.setdefault("seed", 42)
    kwargs.setdefault("queue_limit", 8)
    kwargs.setdefault("machine_factory", FACTORY)
    if tmp_path is not None:
        kwargs.setdefault("checkpoint_path", str(tmp_path / "fleet.ckpt"))
    return FleetService(**kwargs)


def _rollup(result):
    return build_fleet_report(result).to_json()


class TestPlanRounds:
    def test_total_events_and_order_preserved(self):
        events = generate_events(7, 4, 50)
        plan = plan_rounds(events, queue_limit=8)
        flattened = [event for round_batches in plan.rounds
                     for _, batch in round_batches for event in batch]
        assert sorted(flattened, key=lambda e: e.seq) == events

    def test_rounds_respect_the_queue_bound(self):
        events = generate_events(3, 4, 50)
        plan = plan_rounds(events, queue_limit=8)
        for round_batches in plan.rounds:
            assert sum(len(batch) for _, batch in round_batches) <= 8
        assert plan.queue_depth_hwm <= 8

    def test_stalls_count_the_forced_drains(self):
        events = generate_events(5, 2, 33)
        plan = plan_rounds(events, queue_limit=8)
        assert plan.backpressure_stalls == 4  # 33 events / 8-slot queue
        assert len(plan.rounds) == 5

    def test_endpoint_events_stay_in_arrival_order(self):
        events = generate_events(11, 3, 64)
        plan = plan_rounds(events, queue_limit=16)
        for round_batches in plan.rounds:
            for _, batch in round_batches:
                seqs = [event.seq for event in batch]
                assert seqs == sorted(seqs)

    def test_small_stream_fits_one_round(self):
        events = generate_events(1, 2, 5)
        plan = plan_rounds(events, queue_limit=8)
        assert len(plan.rounds) == 1
        assert plan.backpressure_stalls == 0
        assert plan.queue_depth_hwm == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            plan_rounds([], queue_limit=0)


class TestServiceValidation:
    @pytest.mark.parametrize("kwargs", [
        {"endpoints": 0}, {"events": -1}, {"max_workers": 0},
        {"queue_limit": 0}, {"chunksize": 0}, {"max_retries": -1},
        {"resume": True},
    ])
    def test_bad_configuration_rejected(self, kwargs):
        with pytest.raises(ValueError):
            _service(**kwargs)


class TestSerialDeterminism:
    def test_same_seed_same_rollup(self):
        first = _service().run()
        second = _service().run()
        assert _rollup(first) == _rollup(second)

    def test_seed_changes_the_rollup(self):
        assert _rollup(_service(seed=1).run()) != \
            _rollup(_service(seed=2).run())

    def test_template_off_matches_template_on(self):
        templated = _service(template=True).run()
        fresh = _service(template=False).run()
        assert _rollup(templated) == _rollup(fresh)

    def test_zero_events_completes_empty(self):
        result = _service(events=0).run()
        assert result.completed
        assert result.records == []
        assert result.rounds_total == 0


@pytest.mark.slow
class TestPoolParity:
    def test_pool_rollup_matches_serial(self):
        serial = _service().run()
        pooled = _service(max_workers=2).run()
        assert pooled.used_process_pool
        assert _rollup(pooled) == _rollup(serial)
        assert [r.to_dict() for r in pooled.records] == \
            [r.to_dict() for r in serial.records]


class TestDegradation:
    """A poisoned pool costs the pool, never the run or its rollup."""

    def test_poisoned_pool_degrades_in_process(self, monkeypatch):
        baseline = _service().run()

        class PoisonedFuture:
            def result(self):
                raise RuntimeError("injected pool poisoning")

        class PoisonedExecutor:
            def submit(self, fn, *args):
                return PoisonedFuture()

            def __enter__(self):
                return self

            def __exit__(self, *exc_info):
                return False

        monkeypatch.setattr("repro.fleet.service.make_executor",
                            lambda *args: (PoisonedExecutor(), True))
        degraded = _service(max_workers=2).run()
        assert not degraded.used_process_pool  # honest, despite the pool
        assert degraded.degraded_chunks == degraded.chunks > 0
        assert degraded.completed
        assert _rollup(degraded) == _rollup(baseline)


class TestCheckpointResume:
    def test_interrupt_and_resume_reproduces_uninterrupted_rollup(
            self, tmp_path):
        uninterrupted = _service(events=48).run()
        partial = _service(tmp_path, events=48).run(stop_after_rounds=2)
        assert not partial.completed
        assert 0 < partial.rounds_done < partial.rounds_total
        resumed = _service(tmp_path, events=48, resume=True).run()
        assert resumed.completed
        assert resumed.resumed_rounds == partial.rounds_done
        assert resumed.events_resumed == len(partial.records)
        assert _rollup(resumed) == _rollup(uninterrupted)

    def test_resume_may_change_execution_shape(self, tmp_path):
        """Workers/chunksize are free to differ across the interruption."""
        uninterrupted = _service(events=48).run()
        _service(tmp_path, events=48, chunksize=1).run(stop_after_rounds=1)
        resumed = _service(tmp_path, events=48, resume=True,
                           chunksize=3).run()
        assert _rollup(resumed) == _rollup(uninterrupted)

    def test_resume_of_a_finished_run_executes_nothing(self, tmp_path):
        done = _service(tmp_path).run()
        assert done.completed
        again = _service(tmp_path, resume=True).run()
        assert again.completed
        assert again.events_resumed == len(done.records)
        assert again.chunks == 0
        assert not again.used_process_pool
        assert _rollup(again) == _rollup(done)

    def test_checkpoint_written_after_every_round(self, tmp_path):
        service = _service(tmp_path, events=48)
        service.run(stop_after_rounds=1)
        payload = json.loads((tmp_path / "fleet.ckpt").read_text())
        assert payload["rounds_done"] == 1
        assert payload["batches"]

    def test_fingerprint_mismatch_refuses_to_resume(self, tmp_path):
        _service(tmp_path, seed=1).run(stop_after_rounds=1)
        with pytest.raises(FleetCheckpointError):
            _service(tmp_path, seed=2, resume=True).run()

    def test_unreadable_checkpoint_is_an_error(self, tmp_path):
        (tmp_path / "fleet.ckpt").write_text("not json{")
        with pytest.raises(FleetCheckpointError):
            _service(tmp_path, resume=True).run()

    def test_missing_checkpoint_resumes_from_scratch(self, tmp_path):
        result = _service(tmp_path, resume=True).run()
        assert result.completed
        assert result.resumed_rounds == 0
        assert _rollup(result) == _rollup(_service().run())


class TestDeterminismProperties:
    """The ISSUE's property: any triple rolls up identically across modes."""

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 2**16), endpoints=st.integers(1, 3),
           events=st.integers(0, 16), queue_limit=st.integers(1, 8))
    def test_fresh_equals_interrupt_plus_resume(self, tmp_path_factory,
                                                seed, endpoints, events,
                                                queue_limit):
        tmp_path = tmp_path_factory.mktemp("fleet-prop")
        config = dict(endpoints=endpoints, events=events, seed=seed,
                      queue_limit=queue_limit, machine_factory=FACTORY)
        fresh = FleetService(**config).run()
        checkpoint = str(tmp_path / "fleet.ckpt")
        FleetService(**config, checkpoint_path=checkpoint).run(
            stop_after_rounds=1)
        resumed = FleetService(**config, checkpoint_path=checkpoint,
                               resume=True).run()
        assert resumed.completed
        assert _rollup(resumed) == _rollup(fresh)

    @pytest.mark.slow
    @settings(max_examples=3, deadline=None)
    @given(seed=st.integers(0, 2**16), endpoints=st.integers(1, 3),
           events=st.integers(1, 16))
    def test_serial_equals_pool(self, seed, endpoints, events):
        config = dict(endpoints=endpoints, events=events, seed=seed,
                      queue_limit=8, machine_factory=FACTORY)
        serial = FleetService(**config).run()
        pooled = FleetService(**config, max_workers=2).run()
        assert _rollup(serial) == _rollup(pooled)
