"""Fleet rollup: verdict counts, families, SLO latency, byte identity."""

import json

import pytest

from repro.fleet import (EVENT_BENIGN, EVENT_MALWARE, EVENT_RESET,
                         FamilyRollup, FleetService, LatencyRollup,
                         build_fleet_report, render_fleet_report)

pytestmark = pytest.mark.fleet

FACTORY = "bare-metal-light"


@pytest.fixture(scope="module")
def run_result():
    return FleetService(endpoints=4, events=32, seed=42, queue_limit=8,
                        machine_factory=FACTORY).run()


@pytest.fixture(scope="module")
def report(run_result):
    return build_fleet_report(run_result)


class TestRollupArithmetic:
    def test_event_kinds_partition_the_records(self, report):
        assert report.events_processed == report.events_planned
        assert (report.malware_events + report.benign_events +
                report.resets + report.event_failures) == \
            report.events_processed

    def test_deactivation_rate_is_consistent(self, report):
        assert report.deactivated <= report.malware_events
        assert report.deactivation_rate == pytest.approx(
            report.deactivated / report.malware_events)

    def test_family_rollups_sum_to_the_totals(self, report):
        assert sum(f.arrivals for f in report.families) == \
            report.malware_events
        assert sum(f.deactivated for f in report.families) == \
            report.deactivated

    def test_families_are_sorted_and_rated(self, report):
        names = [f.family for f in report.families]
        assert names == sorted(names)
        for rollup in report.families:
            assert 0.0 <= rollup.rate <= 1.0

    def test_latency_counts_timed_events_only(self, run_result, report):
        timed = [r for r in run_result.records
                 if r.kind in (EVENT_MALWARE, EVENT_BENIGN) and r.ok or
                 r.kind == EVENT_BENIGN and not r.ok]
        assert report.latency.count == report.malware_events + \
            report.benign_events
        assert report.latency.count <= len(timed) + report.benign_events
        assert report.latency.p50_ns <= report.latency.p99_ns

    def test_empty_family_rollup_rate_is_zero(self):
        assert FamilyRollup("Ghost", 0, 0).rate == 0.0

    def test_latency_mean_handles_zero_count(self):
        assert LatencyRollup(0, 0, 0, 0).mean_ns == 0


class TestByteIdentity:
    def test_to_json_is_canonical_and_stable(self, run_result):
        first = build_fleet_report(run_result).to_json()
        second = build_fleet_report(run_result).to_json()
        assert first == second
        assert json.loads(first)  # well-formed

    def test_telemetry_on_off_reports_are_byte_identical(self):
        """The latency rollup must not depend on whether telemetry ran:
        the record-rebuilt histogram matches the telemetry one exactly."""
        config = dict(endpoints=3, events=24, seed=7, queue_limit=8,
                      machine_factory=FACTORY)
        with_telemetry = FleetService(**config, telemetry=True).run()
        without = FleetService(**config, telemetry=False).run()
        assert with_telemetry.merged_metrics().histograms.get(
            "fleet.event_latency_ns") is not None
        assert without.merged_metrics().histograms.get(
            "fleet.event_latency_ns") is None
        assert build_fleet_report(with_telemetry).to_json() == \
            build_fleet_report(without).to_json()

    def test_execution_shape_stays_out_of_the_canonical_report(
            self, run_result):
        text = build_fleet_report(run_result).to_json()
        for field in ("chunks", "degraded", "used_process_pool",
                      "resumed"):
            assert field not in text


class TestMergedMetrics:
    def test_service_counters_always_present(self, run_result):
        snapshot = run_result.merged_metrics()
        assert snapshot.counters["fleet.rounds"] == run_result.rounds_done
        assert snapshot.counters["fleet.chunks"] == run_result.chunks
        assert snapshot.gauges["fleet.endpoints"] == \
            float(run_result.endpoints)

    def test_batch_deltas_fold_in_when_telemetry_ran(self):
        result = FleetService(endpoints=2, events=16, seed=5,
                              queue_limit=8, machine_factory=FACTORY,
                              telemetry=True).run()
        snapshot = result.merged_metrics()
        assert snapshot.counters["fleet.events"] == len(result.records)
        malware = sum(1 for r in result.records
                      if r.kind == EVENT_MALWARE)
        assert snapshot.counters.get("fleet.events_malware", 0) == malware


class TestRender:
    def test_render_mentions_the_headline_numbers(self, report,
                                                  run_result):
        text = render_fleet_report(report, run_result)
        assert "Fleet protection report" in text
        assert f"endpoints: {report.endpoints}" in text
        assert "deactivated" in text
        assert "queue hwm" in text
        for rollup in report.families:
            assert rollup.family in text

    def test_render_without_result_omits_execution_shape(self, report):
        assert "execution:" not in render_fleet_report(report)

    def test_partial_run_is_marked(self, tmp_path):
        service = FleetService(endpoints=4, events=48, seed=42,
                               queue_limit=8, machine_factory=FACTORY,
                               checkpoint_path=str(tmp_path / "c.ckpt"))
        partial = service.run(stop_after_rounds=1)
        text = render_fleet_report(build_fleet_report(partial), partial)
        assert "(PARTIAL)" in text

    def test_resumed_run_renders_resume_line(self, tmp_path):
        checkpoint = str(tmp_path / "c.ckpt")
        config = dict(endpoints=4, events=48, seed=42, queue_limit=8,
                      machine_factory=FACTORY, checkpoint_path=checkpoint)
        FleetService(**config).run(stop_after_rounds=1)
        resumed = FleetService(**config, resume=True).run()
        text = render_fleet_report(build_fleet_report(resumed), resumed)
        assert "resumed 1/" in text
