"""Sharded dispatch: routing, per-shard checkpoints, cross-shard identity.

The tentpole contract under test: same seed ⇒ byte-identical global
rollup for ``shards ∈ {1, 2, 4}``, serial or pooled, fresh or resumed —
admission is planned globally before routing, batch outcomes are pure
per ``(endpoint_id, events)``, and per-shard partials merge through an
associative monoid, so the shard count must never move a byte.
"""

import os

import pytest

from repro.fleet import (FleetCheckpointError, FleetService, build_fleet_report,
                         route_round, shard_checkpoint_path, shard_of)
from repro.fleet.shard import BatchJob

pytestmark = pytest.mark.fleet

FACTORY = "bare-metal-light"


def _service(tmp_path=None, **kwargs):
    kwargs.setdefault("endpoints", 8)
    kwargs.setdefault("events", 48)
    kwargs.setdefault("seed", 42)
    kwargs.setdefault("queue_limit", 16)
    kwargs.setdefault("machine_factory", FACTORY)
    if tmp_path is not None:
        kwargs.setdefault("checkpoint_path", str(tmp_path / "fleet.ckpt"))
    return FleetService(**kwargs)


def _rollup(result):
    return build_fleet_report(result).to_json()


class TestRouting:
    def test_shard_of_is_modular(self):
        assert [shard_of(e, 4) for e in range(8)] == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_shard_of_single_shard_is_always_zero(self):
        assert all(shard_of(e, 1) == 0 for e in range(16))

    def test_shard_of_rejects_bad_count(self):
        with pytest.raises(ValueError):
            shard_of(3, 0)

    def test_route_round_partitions_disjointly_in_order(self):
        jobs = [BatchJob(i, endpoint_id, ()) for i, endpoint_id
                in enumerate([5, 2, 8, 1, 4, 7])]
        routed = route_round(jobs, 3)
        assert len(routed) == 3
        for index, shard_jobs in enumerate(routed):
            assert all(job.endpoint_id % 3 == index for job in shard_jobs)
        flattened = sorted((job for shard_jobs in routed
                            for job in shard_jobs),
                           key=lambda job: job.index)
        assert flattened == jobs

    def test_checkpoint_path_single_shard_is_the_base(self):
        assert shard_checkpoint_path("x.ckpt", 0, 1) == "x.ckpt"
        assert shard_checkpoint_path(None, 0, 4) is None

    def test_checkpoint_path_multi_shard_is_suffixed(self):
        assert shard_checkpoint_path("x.ckpt", 1, 4) == \
            "x.ckpt.shard-01-of-04"


class TestCrossShardIdentity:
    """shards ∈ {1, 2, 4} × serial × {fresh, resumed} — same bytes."""

    def test_fresh_serial_rollup_is_shard_invariant(self):
        reference = _rollup(_service().run())
        for shards in (2, 4):
            assert _rollup(_service(shards=shards).run()) == reference

    def test_shard_count_exceeding_endpoints_is_harmless(self):
        reference = _rollup(_service(endpoints=2, events=12).run())
        sharded = _service(endpoints=2, events=12, shards=4).run()
        assert _rollup(sharded) == reference

    @pytest.mark.parametrize("shards", (1, 2, 4))
    def test_interrupt_resume_rollup_is_shard_invariant(self, tmp_path,
                                                        shards):
        reference = _rollup(_service().run())
        partial = _service(tmp_path, shards=shards).run(stop_after_rounds=2)
        assert not partial.completed
        resumed = _service(tmp_path, shards=shards, resume=True).run()
        assert resumed.completed
        assert resumed.resumed_rounds > 0
        assert _rollup(resumed) == reference

    def test_shard_rollups_merge_to_the_global_report(self):
        result = _service(shards=4).run()
        rollups = result.shard_rollups()
        assert len(rollups) == 4
        assert sum(rollup.events_processed for rollup in rollups) == \
            len(result.records)


@pytest.mark.slow
class TestCrossShardIdentityPooled:
    """The pooled column of the determinism matrix."""

    def test_pooled_sharded_rollup_matches_serial_unsharded(self):
        reference = _rollup(_service().run())
        pooled = _service(shards=2, max_workers=2).run()
        assert _rollup(pooled) == reference

    def test_pooled_resume_of_serial_sharded_interrupt(self, tmp_path):
        reference = _rollup(_service().run())
        _service(tmp_path, shards=2).run(stop_after_rounds=2)
        resumed = _service(tmp_path, shards=2, max_workers=2,
                           resume=True).run()
        assert _rollup(resumed) == reference


class TestShardCheckpoints:
    def test_multi_shard_run_writes_one_file_per_shard(self, tmp_path):
        # seed 7 spreads events over even and odd endpoints, so both
        # shards own rounds; a shard with no rounds writes no file.
        _service(tmp_path, seed=7, shards=2).run(stop_after_rounds=2)
        names = sorted(os.listdir(tmp_path))
        assert names == ["fleet.ckpt.shard-00-of-02",
                         "fleet.ckpt.shard-01-of-02"]

    def test_single_shard_keeps_the_flat_layout(self, tmp_path):
        _service(tmp_path).run(stop_after_rounds=1)
        assert sorted(os.listdir(tmp_path)) == ["fleet.ckpt"]

    def test_shard_checkpoint_refuses_a_different_seed(self, tmp_path):
        _service(tmp_path, shards=2, seed=1).run(stop_after_rounds=1)
        with pytest.raises(FleetCheckpointError):
            _service(tmp_path, shards=2, seed=2, resume=True).run()

    def test_resumed_finished_sharded_run_executes_nothing(self, tmp_path):
        done = _service(tmp_path, shards=2).run()
        assert done.completed
        again = _service(tmp_path, shards=2, resume=True).run()
        assert again.completed
        assert again.chunks == 0
        assert not again.used_process_pool
        assert _rollup(again) == _rollup(done)


class TestShardAccounting:
    def test_outcomes_cover_every_shard(self):
        result = _service(shards=4).run()
        assert [outcome.index for outcome in result.shard_outcomes] == \
            [0, 1, 2, 3]
        assert sum(outcome.rounds_done
                   for outcome in result.shard_outcomes) == \
            result.shard_rounds_done
        assert sum(outcome.chunks for outcome in result.shard_outcomes) == \
            result.chunks

    def test_single_shard_round_accounting_matches_legacy(self):
        result = _service().run()
        assert result.shards == 1
        assert result.shard_rounds_total == result.rounds_total
        assert result.shard_rounds_done == result.rounds_done

    def test_merged_metrics_carry_shard_counters(self):
        merged = _service(shards=2).run().merged_metrics()
        assert merged.gauges["shard.count"] == 2.0
        assert merged.counters["shard.rounds"] > 0

    def test_validation_rejects_bad_shard_count(self):
        with pytest.raises(ValueError):
            FleetService(shards=0)
