"""The workload generator is a pure function of (seed, endpoints, count)."""

import pytest

from repro.fleet import (DEFAULT_FLEET_FAMILIES, EVENT_BENIGN, EVENT_KINDS,
                         EVENT_MALWARE, EVENT_RESET, FleetEvent, FleetRng,
                         WorkloadProfile, build_sample_pool, generate_events)
from repro.malware.benign import CNET_TOP20

pytestmark = pytest.mark.fleet


class TestFleetRng:
    def test_same_seed_same_sequence(self):
        first = FleetRng(1234)
        second = FleetRng(1234)
        assert [first.next_u31() for _ in range(32)] == \
            [second.next_u31() for _ in range(32)]

    def test_different_seeds_diverge(self):
        first = [FleetRng(1).next_u31() for _ in range(4)]
        second = [FleetRng(2).next_u31() for _ in range(4)]
        assert first != second

    def test_randint_stays_in_bound(self):
        rng = FleetRng(7)
        assert all(0 <= rng.randint(13) < 13 for _ in range(200))

    def test_randint_rejects_empty_range(self):
        with pytest.raises(ValueError):
            FleetRng(0).randint(0)

    def test_weighted_respects_zero_weights(self):
        rng = FleetRng(99)
        draws = {rng.weighted((0, 5, 0)) for _ in range(50)}
        assert draws == {1}

    def test_weighted_rejects_nonpositive_total(self):
        with pytest.raises(ValueError):
            FleetRng(0).weighted((0, 0))


class TestGenerateEvents:
    def test_same_triple_is_byte_identical(self):
        first = generate_events(42, 8, 64)
        second = generate_events(42, 8, 64)
        assert first == second

    def test_seed_changes_the_stream(self):
        assert generate_events(1, 8, 64) != generate_events(2, 8, 64)

    def test_seq_matches_position_and_time_increases(self):
        events = generate_events(7, 4, 48)
        assert [e.seq for e in events] == list(range(48))
        times = [e.at_ms for e in events]
        assert all(later > earlier
                   for earlier, later in zip(times, times[1:]))

    def test_fields_stay_in_their_domains(self):
        profile = WorkloadProfile()
        events = generate_events(3, 5, 120, profile)
        for event in events:
            assert 0 <= event.endpoint_id < 5
            assert event.kind in EVENT_KINDS
            if event.kind == EVENT_MALWARE:
                assert 0 <= event.ref < profile.pool_size
            elif event.kind == EVENT_BENIGN:
                assert 0 <= event.ref < len(CNET_TOP20)
            else:
                assert event.ref == 0

    def test_all_kinds_appear_in_a_long_stream(self):
        kinds = {e.kind for e in generate_events(11, 4, 200)}
        assert kinds == set(EVENT_KINDS)

    def test_zero_count_is_empty(self):
        assert generate_events(1, 1, 0) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_events(1, 0, 10)
        with pytest.raises(ValueError):
            generate_events(1, 1, -1)

    def test_event_dict_roundtrip(self):
        for event in generate_events(5, 3, 12):
            assert FleetEvent.from_dict(event.to_dict()) == event


class TestWorkloadProfile:
    def test_default_pool_size_covers_the_family_mix(self):
        profile = WorkloadProfile()
        assert profile.pool_size == sum(
            spec.total for spec in DEFAULT_FLEET_FAMILIES)
        assert profile.pool_size == len(build_sample_pool(profile))

    def test_fingerprint_is_json_stable(self):
        import json
        first = json.dumps(WorkloadProfile().fingerprint(), sort_keys=True)
        second = json.dumps(WorkloadProfile().fingerprint(), sort_keys=True)
        assert first == second

    def test_sample_pool_order_is_stable(self):
        first = [s.md5 for s in build_sample_pool()]
        second = [s.md5 for s in build_sample_pool()]
        assert first == second

    def test_reset_events_can_be_disabled(self):
        profile = WorkloadProfile(reset_weight=0)
        kinds = {e.kind for e in generate_events(1, 2, 100, profile)}
        assert EVENT_RESET not in kinds
