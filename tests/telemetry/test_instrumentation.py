"""Instrumentation coverage: hot paths feed the registry, pools agree.

The headline guarantee: a pooled sweep's merged telemetry is
byte-identical (modulo ``wallclock.*``) to a serial run of the same
samples — the instrumentation only ever reads the virtual clock.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.malware.corpus import build_malgene_corpus
from repro.parallel.executor import fork_available
from repro.parallel.sweep import ParallelSweep
from repro.telemetry.metrics import TELEMETRY, recording

pytestmark = pytest.mark.telemetry


@pytest.fixture(autouse=True)
def _clean_registry():
    TELEMETRY.reset()
    TELEMETRY.disable()
    yield
    TELEMETRY.reset()
    TELEMETRY.disable()


class TestHotPathInstrumentation:
    def test_api_dispatch_counts_calls_and_latency(self, api):
        with recording():
            api.IsDebuggerPresent()
            api.GetTickCount()
        snapshot = TELEMETRY.snapshot()
        assert snapshot.counters["api.calls"] == 2
        latency = snapshot.histograms[
            "api.latency_ns.kernel32.dll!IsDebuggerPresent"]
        assert latency.count == 1
        assert latency.total > 0

    def test_disabled_registry_stays_empty(self, api):
        api.IsDebuggerPresent()
        assert TELEMETRY.snapshot().is_empty

    def test_hooked_call_records_hook_and_engine_counters(self,
                                                          protected_api):
        with recording():
            protected_api.IsDebuggerPresent()
        snapshot = TELEMETRY.snapshot()
        assert snapshot.counters["hook.calls"] >= 1
        assert snapshot.counters["engine.reports"] >= 1
        assert snapshot.counters["engine.reports.debugger"] >= 1
        assert any(name.startswith("hook.handler_ns.")
                   for name in snapshot.histograms)

    def test_unhooked_call_on_protected_process_counts_passthrough(
            self, protected_api):
        with recording():
            protected_api.GetCommandLineA()
        assert TELEMETRY.snapshot().counters.get("hook.passthrough", 0) >= 1

    def test_trampoline_counter_fires_when_handler_calls_original(
            self, protected_api):
        with recording():
            # A registry open with no deceptive resource behind it falls
            # through the hook handler to the genuine implementation.
            protected_api.RegOpenKeyExA(
                "HKEY_LOCAL_MACHINE",
                "SOFTWARE\\Microsoft\\Windows NT\\CurrentVersion")
        assert TELEMETRY.snapshot().counters.get("hook.trampoline", 0) >= 1

    def test_engine_decision_counters_split_by_outcome(self, protected_api):
        with recording():
            # A deceptive registry resource hit and a plain miss.
            protected_api.RegOpenKeyExA(
                "HKEY_LOCAL_MACHINE", "HARDWARE\\ACPI\\DSDT\\VBOX__")
        snapshot = TELEMETRY.snapshot()
        assert snapshot.counters.get("engine.decisions", 0) >= 1


class TestSweepParity:
    def test_serial_sweep_attaches_metrics_and_merges(self):
        samples = build_malgene_corpus()[:2]
        result = ParallelSweep(max_workers=1, telemetry=True).run(samples)
        merged = result.merged_metrics()
        assert merged is not None
        assert merged.counters["worker.jobs"] == 2
        assert all(entry.metrics is not None for entry in result.entries)
        # The sweep restored the caller's (disabled) flag.
        assert not TELEMETRY.enabled

    def test_telemetry_off_means_no_snapshots(self):
        samples = build_malgene_corpus()[:1]
        result = ParallelSweep(max_workers=1, telemetry=False).run(samples)
        assert result.merged_metrics() is None

    @pytest.mark.slow
    @pytest.mark.skipif(not fork_available(),
                        reason="needs fork start method")
    @given(picks=st.lists(st.integers(0, 11), min_size=1, max_size=3,
                          unique=True))
    @settings(max_examples=3, deadline=None)
    def test_pooled_totals_match_serial_exactly(self, picks):
        corpus = build_malgene_corpus()
        samples = [corpus[index] for index in picks]
        serial = ParallelSweep(max_workers=1, telemetry=True).run(samples)
        pooled = ParallelSweep(max_workers=2, telemetry=True).run(samples)
        serial_metrics = serial.merged_metrics().deterministic()
        pooled_metrics = pooled.merged_metrics().deterministic()
        assert serial_metrics.to_json() == pooled_metrics.to_json()
