"""Property-based invariants of snapshot merging (hypothesis).

The sweep aggregates per-job deltas in whatever order workers finish, so
``MetricsSnapshot.merge`` must be associative and commutative with
``empty()`` as identity — otherwise pooled totals would depend on
scheduling and the serial-vs-pool parity guarantee would collapse.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.telemetry.metrics import LatencyHistogram
from repro.telemetry.snapshot import MetricsSnapshot

pytestmark = pytest.mark.telemetry

_names = st.sampled_from((
    "api.calls", "hook.calls", "engine.decisions", "worker.jobs",
    "api.latency_ns.kernel32.dll!IsDebuggerPresent", "wallclock.job_ns"))


def _histogram_state(values):
    histogram = LatencyHistogram("h")
    for value in values:
        histogram.record(value)
    return histogram.state()


# Strategies stay zero-free: the snapshots the sweep actually merges are
# job deltas, whose zero-valued entries diff_from() has already dropped.
_histograms = st.dictionaries(
    _names,
    st.lists(st.integers(0, 10**9), min_size=1,
             max_size=8).map(_histogram_state),
    max_size=3)

_snapshots = st.builds(
    MetricsSnapshot,
    counters=st.dictionaries(_names, st.integers(1, 10**6), max_size=4),
    gauges=st.dictionaries(_names, st.integers(0, 10**6).map(float),
                           max_size=3),
    histograms=_histograms)


class TestMergeAlgebra:
    @given(a=_snapshots, b=_snapshots)
    @settings(max_examples=60, deadline=None)
    def test_merge_is_commutative(self, a, b):
        assert a.merge(b).to_json() == b.merge(a).to_json()

    @given(a=_snapshots, b=_snapshots, c=_snapshots)
    @settings(max_examples=60, deadline=None)
    def test_merge_is_associative(self, a, b, c):
        left = a.merge(b).merge(c)
        right = a.merge(b.merge(c))
        assert left.to_json() == right.to_json()

    @given(a=_snapshots)
    @settings(max_examples=30, deadline=None)
    def test_empty_is_the_identity(self, a):
        assert a.merge(MetricsSnapshot.empty()).to_json() == a.to_json()
        assert MetricsSnapshot.empty().merge(a).to_json() == a.to_json()

    @given(a=_snapshots, b=_snapshots)
    @settings(max_examples=40, deadline=None)
    def test_totals_are_additive_under_merge(self, a, b):
        merged = a.merge(b).totals()
        expected = dict(a.totals())
        for name, value in b.totals().items():
            expected[name] = expected.get(name, 0) + value
        assert merged == expected

    @given(a=_snapshots, b=_snapshots)
    @settings(max_examples=40, deadline=None)
    def test_diff_inverts_merge_onto_a_baseline(self, a, b):
        # Gauges are max-merged (not invertible), so compare the
        # counter/histogram planes only.
        merged = a.merge(b)
        delta = merged.diff_from(a)
        recovered = a.merge(delta)
        assert recovered.counters == merged.counters
        assert recovered.histograms == merged.histograms

    @given(a=_snapshots)
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_through_json_dict(self, a):
        assert MetricsSnapshot.from_dict(a.to_dict()).to_json() == a.to_json()

    @given(a=_snapshots, b=_snapshots)
    @settings(max_examples=40, deadline=None)
    def test_deterministic_commutes_with_merge(self, a, b):
        direct = a.merge(b).deterministic()
        viewed = a.deterministic().merge(b.deterministic())
        assert direct.to_json() == viewed.to_json()
