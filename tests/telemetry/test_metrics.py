"""Direct unit tests for the telemetry primitives and registry."""

import pytest

from repro.telemetry.metrics import (TELEMETRY, Counter, Gauge,
                                     LatencyHistogram, MetricsRegistry,
                                     get_registry, recording)
from repro.telemetry.snapshot import (HistogramState, MetricsSnapshot,
                                      bucket_index, bucket_upper_bound)

pytestmark = pytest.mark.telemetry


class TestPrimitives:
    def test_counter_increments(self):
        counter = Counter("api.calls")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_gauge_keeps_the_last_value(self):
        gauge = Gauge("pool.workers")
        gauge.set(2)
        gauge.set(8)
        assert gauge.value == 8

    def test_histogram_mean_is_exact_not_bucketed(self):
        histogram = LatencyHistogram("x")
        for value in (100, 200, 300):
            histogram.record(value)
        assert histogram.count == 3
        assert histogram.total == 600
        assert histogram.mean == 200.0

    def test_histogram_percentile_reports_bucket_upper_bound(self):
        histogram = LatencyHistogram("x")
        for value in (1, 1, 1, 1000):
            histogram.record(value)
        assert histogram.percentile(50) == bucket_upper_bound(bucket_index(1))
        assert histogram.percentile(100) == \
            bucket_upper_bound(bucket_index(1000))

    def test_histogram_clamps_negative_observations(self):
        histogram = LatencyHistogram("x")
        histogram.record(-5)
        assert histogram.count == 1
        assert histogram.total == 0

    def test_bucket_bounds_nest(self):
        for value in (0, 1, 2, 3, 511, 512, 10**9):
            assert value <= bucket_upper_bound(bucket_index(value))


class TestRegistry:
    def test_disabled_fast_paths_record_nothing(self):
        registry = MetricsRegistry()
        registry.count("api.calls")
        registry.observe("lat", 5)
        registry.set_gauge("g", 1.0)
        assert registry.snapshot().is_empty

    def test_enabled_fast_paths_record(self):
        registry = MetricsRegistry()
        registry.enable()
        registry.count("api.calls", 3)
        registry.observe("lat", 5)
        registry.set_gauge("g", 2.0)
        snapshot = registry.snapshot()
        assert snapshot.counters["api.calls"] == 3
        assert snapshot.histograms["lat"].count == 1
        assert snapshot.gauges["g"] == 2.0

    def test_explicit_instruments_work_while_disabled(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        assert registry.snapshot().counters["c"] == 1

    def test_instruments_are_get_or_create(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")
        assert registry.histogram("h") is registry.histogram("h")
        assert registry.gauge("g") is registry.gauge("g")

    def test_reset_clears_instruments_but_not_the_flag(self):
        registry = MetricsRegistry()
        registry.enable()
        registry.count("c")
        registry.reset()
        assert registry.snapshot().is_empty
        assert registry.enabled

    def test_recording_context_restores_the_prior_flag(self):
        registry = MetricsRegistry()
        with recording(registry):
            assert registry.enabled
            registry.count("inside")
        assert not registry.enabled
        assert registry.snapshot().counters["inside"] == 1

    def test_recording_defaults_to_the_global_registry(self):
        prior = TELEMETRY.enabled
        with recording():
            assert TELEMETRY.enabled
        assert TELEMETRY.enabled == prior

    def test_get_registry_returns_the_process_global(self):
        assert get_registry() is TELEMETRY


class TestSnapshotBasics:
    def test_diff_from_drops_zero_deltas(self):
        registry = MetricsRegistry()
        registry.enable()
        registry.count("stable")
        before = registry.snapshot()
        registry.count("active", 2)
        delta = registry.snapshot().diff_from(before)
        assert delta.counters == {"active": 2}

    def test_diff_from_rejects_backwards_counters(self):
        bigger = MetricsSnapshot(counters={"c": 5}, gauges={}, histograms={})
        smaller = MetricsSnapshot(counters={"c": 2}, gauges={}, histograms={})
        with pytest.raises(ValueError):
            smaller.diff_from(bigger)

    def test_deterministic_view_drops_wallclock_metrics(self):
        snapshot = MetricsSnapshot(
            counters={"api.calls": 1, "wallclock.weird": 2},
            gauges={"wallclock.g": 1.0},
            histograms={"wallclock.job_ns": HistogramState(1, 5, (1,))})
        clean = snapshot.deterministic()
        assert clean.counters == {"api.calls": 1}
        assert clean.gauges == {}
        assert clean.histograms == {}

    def test_json_roundtrip(self):
        registry = MetricsRegistry()
        registry.enable()
        registry.count("c", 3)
        registry.observe("h", 40)
        registry.set_gauge("g", 1.5)
        snapshot = registry.snapshot()
        clone = MetricsSnapshot.from_dict(snapshot.to_dict())
        assert clone == snapshot
        assert clone.to_json() == snapshot.to_json()

    def test_totals_flatten_counters_and_histograms(self):
        registry = MetricsRegistry()
        registry.enable()
        registry.count("c", 2)
        registry.observe("h", 10)
        registry.observe("h", 30)
        totals = registry.snapshot().totals()
        assert totals["c"] == 2
        assert totals["h.count"] == 2
        assert totals["h.total"] == 40
