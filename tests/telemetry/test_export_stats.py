"""JSONL export schema: roundtrip, validation, summarisation."""

import pytest

from repro.analysis import Tracer
from repro.telemetry import export
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.snapshot import MetricsSnapshot

pytestmark = pytest.mark.telemetry


def _snapshot() -> MetricsSnapshot:
    registry = MetricsRegistry()
    registry.enable()
    registry.count("api.calls", 7)
    registry.observe("api.latency_ns.kernel32.dll!IsDebuggerPresent", 400)
    registry.observe("api.latency_ns.kernel32.dll!IsDebuggerPresent", 900)
    registry.observe("hook.handler_ns.kernel32.dll!IsDebuggerPresent", 120)
    return registry.snapshot()


class TestRecordConstructors:
    def test_meta_record_carries_schema_version(self):
        record = export.meta_record(command="sweep")
        assert record["type"] == "meta"
        assert record["v"] == export.SCHEMA_VERSION
        assert record["command"] == "sweep"

    def test_metrics_record_embeds_the_snapshot_dict(self):
        record = export.metrics_record(_snapshot(), scope="sweep")
        assert record["scope"] == "sweep"
        clone = MetricsSnapshot.from_dict(record["snapshot"])
        assert clone.counters["api.calls"] == 7

    def test_trace_records_mirror_kernel_events(self, machine, api):
        tracer = Tracer(machine, label="probe",
                        include_api_calls=True).start()
        api.IsDebuggerPresent()
        trace = tracer.stop()
        records = list(export.trace_records(trace))
        assert len(records) == len(trace.events)
        assert all(r["type"] == "event" and r["trace"] == "probe"
                   for r in records)
        assert any(r["category"] == "api" for r in records)
        for record in records:
            export.validate_record(record)


class TestValidation:
    def test_unknown_type_is_rejected(self):
        with pytest.raises(export.TelemetryFormatError):
            export.validate_record({"type": "bogus"})

    def test_missing_required_field_is_rejected(self):
        with pytest.raises(export.TelemetryFormatError):
            export.validate_record({"type": "metrics", "scope": "run"})

    def test_non_object_record_is_rejected(self):
        with pytest.raises(export.TelemetryFormatError):
            export.validate_record(["not", "a", "dict"])


class TestFileRoundtrip:
    def test_write_then_read_preserves_records(self, tmp_path):
        path = str(tmp_path / "telemetry.jsonl")
        records = [export.meta_record(command="test"),
                   export.metrics_record(_snapshot())]
        assert export.write_records(path, records) == 2
        loaded = export.read_records(path)
        assert loaded == records

    def test_read_rejects_invalid_json_with_location(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type":"meta","v":1,"kind":"run"}\nnot json\n')
        with pytest.raises(export.TelemetryFormatError, match=":2:"):
            export.read_records(str(path))

    def test_read_rejects_schema_violations_with_location(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type":"metrics","scope":"run"}\n')
        with pytest.raises(export.TelemetryFormatError, match=":1:"):
            export.read_records(str(path))

    def test_writer_refuses_invalid_records(self, tmp_path):
        path = str(tmp_path / "telemetry.jsonl")
        with pytest.raises(export.TelemetryFormatError):
            export.write_records(path, [{"type": "bogus"}])


class TestSummarize:
    def test_summary_merges_metrics_and_counts_records(self):
        records = [
            export.meta_record(command="sweep"),
            export.metrics_record(_snapshot()),
            export.metrics_record(_snapshot()),
            {"type": "sample", "md5": "ab", "index": 0},
            {"type": "error", "md5": "cd", "index": 1,
             "error_type": "RuntimeError"},
        ]
        summary = export.summarize_records(records)
        assert summary.record_counts == {"meta": 1, "metrics": 2,
                                         "sample": 1, "error": 1}
        assert summary.snapshot.counters["api.calls"] == 14
        assert summary.samples == 1
        assert summary.errors == 1

    def test_latency_rows_strip_prefix_and_sort_by_calls(self):
        summary = export.summarize_records([export.metrics_record(
            _snapshot())])
        assert summary.api_rows[0][0] == "kernel32.dll!IsDebuggerPresent"
        assert summary.api_rows[0][1] == 2
        assert summary.hook_rows[0][0] == "kernel32.dll!IsDebuggerPresent"

    def test_empty_stream_summarises_cleanly(self):
        summary = export.summarize_records([])
        assert summary.record_counts == {}
        assert summary.snapshot.is_empty
        assert summary.api_rows == [] and summary.hook_rows == []
