"""Machine templating parity — rewound machines equal fresh builds, in bytes.

The templating tentpole only holds if a worker's rewound machine is
indistinguishable — to the sample, to the tracer, to pickle — from the
fresh-factory machine the serial path would have built. These tests pin
that guarantee three ways: a hypothesis property over every registered
factory, whole-sweep byte comparisons across template modes, and a
deliberately drifting factory that ``template="verify"`` must catch.
"""

import itertools
import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.database import DeceptionDatabase
from repro.malware.corpus import build_malgene_corpus
from repro.malware.families import FamilySpec
from repro.parallel import (TEMPLATE_PARITY_ERROR, MachineTemplate,
                            ParallelSweep, available_factories,
                            canonical_entry)
from repro.parallel.worker import (PairJob, execute_pair_job,
                                   initialize_worker, reset_worker)

#: 4 samples spanning deactivatable, sleeper and failing archetypes.
SPEC = FamilySpec("Mixed", (("spawn_idp", 1), ("term_vm", 1),
                            ("sleep_sbx", 1), ("fail_peb", 1)))

#: Every factory registered at import time (the built-in testbeds).
FACTORIES = tuple(sorted(available_factories()))

_DB_SNAPSHOT = DeceptionDatabase().snapshot()

#: ``factory name -> [pickled canonical fresh-factory entry, ...]`` cache,
#: so the hypothesis property pays each reference sweep only once.
_FRESH_CACHE = {}


@pytest.fixture(scope="module")
def corpus():
    samples = build_malgene_corpus([SPEC])
    assert len(samples) == 4
    return samples


def _worker_entries(corpus, factory, template, indices=None):
    """Run jobs through the worker entry point under one init mode."""
    initialize_worker(factory, _DB_SNAPSHOT, None, telemetry=False,
                      template=template)
    try:
        picked = range(len(corpus)) if indices is None else indices
        return [execute_pair_job(PairJob(i, corpus[i])) for i in picked]
    finally:
        reset_worker()


def _fresh_pickles(corpus, factory):
    if factory not in _FRESH_CACHE:
        entries = _worker_entries(corpus, factory, template=False)
        _FRESH_CACHE[factory] = [
            pickle.dumps(canonical_entry(e)) for e in entries]
    return _FRESH_CACHE[factory]


class TestTemplateParityProperty:
    @settings(max_examples=10, deadline=None)
    @given(factory=st.sampled_from(FACTORIES),
           indices=st.lists(st.integers(min_value=0, max_value=3),
                            min_size=1, max_size=4))
    def test_templated_entries_match_fresh_factory(self, corpus, factory,
                                                   indices):
        """Any job order, any factory: templated == fresh, in bytes.

        Repeated indices matter — re-running a sample on a rewound machine
        (second, third checkout) must still match the fresh reference.
        """
        fresh = _fresh_pickles(corpus, factory)
        entries = _worker_entries(corpus, factory, template=True,
                                  indices=indices)
        for index, entry in zip(indices, entries):
            assert pickle.dumps(canonical_entry(entry)) == fresh[index]


class TestSweepModesAgree:
    def test_all_template_modes_produce_identical_sweeps(self, corpus):
        results = {mode: ParallelSweep(max_workers=1, template=mode)
                   .run(corpus) for mode in (False, True, "verify")}
        for mode, result in results.items():
            assert not result.errors, (mode, result.errors)
        baseline = results[False]
        for mode in (True, "verify"):
            assert pickle.dumps(results[mode].outcomes) == \
                pickle.dumps(baseline.outcomes), mode
            assert pickle.dumps(results[mode].canonical_entries()) == \
                pickle.dumps(baseline.canonical_entries()), mode

    def test_invalid_template_mode_rejected(self):
        with pytest.raises(ValueError, match="template"):
            ParallelSweep(template="sometimes")
        with pytest.raises(ValueError, match="chunksize"):
            ParallelSweep(chunksize=0)


_DRIFT = itertools.count()


def _drifting_factory():
    """A factory whose every build boots at a different tick — the exact
    nondeterminism ``template="verify"`` exists to catch."""
    from repro.winsim import Machine
    return Machine(boot_tick_ms=19_237_512 + next(_DRIFT) * 1_000).boot()


class TestVerifyMode:
    def test_verify_flags_divergent_factory(self, corpus):
        result = ParallelSweep(max_workers=1,
                               machine_factory=_drifting_factory,
                               template="verify").run(corpus)
        assert result.errors, "drifting factory must fail parity"
        assert all(e.error_type == TEMPLATE_PARITY_ERROR
                   for e in result.errors)


class TestMachineTemplate:
    def test_build_is_idempotent(self):
        template = MachineTemplate("bare-metal-light")
        assert not template.built
        machine = template.build()
        assert template.built
        assert template.build() is machine

    def test_first_checkout_is_pristine_then_rewinds(self):
        template = MachineTemplate("bare-metal-light")
        machine = template.checkout()
        assert template.restore_count == 0  # fresh build needs no rewind
        machine.spawn_process("mal.exe")
        machine.filesystem.write_file("C:\\Windows\\Temp\\drop.bin", b"x")
        again = template.checkout()
        assert again is machine  # checkouts alias one machine
        assert template.restore_count == 1
        assert not machine.processes.name_exists("mal.exe")
        assert not machine.filesystem.exists("C:\\Windows\\Temp\\drop.bin")
