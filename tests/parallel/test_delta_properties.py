"""Dirty-set delta-restore parity — proven as properties, not examples.

Two guarantees carry the zero-copy dispatch tentpole:

* **Delta == full.** Whatever sequence of subsystem mutations a job
  performs, a delta-restoring template must rewind the machine to a
  state byte-identical (pickled ``snapshot_state``) to what a
  full-restoring template produces — and to the captured template state
  itself.
* **Shared == pickled.** A worker that inherited its database and
  template through the fork-shared registry must produce canonical sweep
  entries byte-identical to a worker that rebuilt everything from the
  pickled blob.

Hypothesis drives both over random mutation sequences / job orders.
"""

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.database import DeceptionDatabase, FrozenDeceptionDatabase
from repro.malware.corpus import build_malgene_corpus
from repro.malware.families import FamilySpec
from repro.parallel import MachineTemplate, canonical_entry
from repro.parallel import shared as shared_registry
from repro.parallel.template import TemplateParityError
from repro.parallel.worker import (PairJob, execute_pair_job,
                                   initialize_worker, reset_worker)
from repro.winsim.machine import TRACKED_SUBSYSTEMS

pytestmark = pytest.mark.delta

FACTORY = "bare-metal-light"

#: One mutating operation per tracked subsystem, parameterised by a small
#: integer so repeated picks stay distinct.
MUTATORS = {
    "registry": lambda m, n: m.registry.set_value(
        "HKEY_CURRENT_USER\\Software\\DeltaTest", f"v{n}", n),
    "filesystem": lambda m, n: m.filesystem.write_file(
        f"C:\\Windows\\Temp\\delta_{n}.bin", b"x" * (n + 1)),
    "gui": lambda m, n: m.gui.create_window(f"DeltaClass{n}", f"delta {n}"),
    "devices": lambda m, n: m.devices.register(f"\\\\.\\DeltaDev{n}"),
    "mutexes": lambda m, n: m.mutexes.create(f"Global\\delta-{n}"),
    "services": lambda m, n: m.services.install(f"deltasvc{n}"),
    "eventlog": lambda m, n: m.eventlog.append("DeltaTest", 7000 + n),
    "dnscache": lambda m, n: m.dnscache.add(f"delta{n}.example.com"),
    "network": lambda m, n: m.network.resolve(f"nx-{n}.example.invalid"),
}

assert set(MUTATORS) == set(TRACKED_SUBSYSTEMS)

op_sequences = st.lists(
    st.sampled_from(sorted(MUTATORS)), min_size=0, max_size=12)


def _apply(machine, ops):
    for n, name in enumerate(ops):
        MUTATORS[name](machine, n)


class TestDeltaEqualsFull:
    @settings(max_examples=25, deadline=None)
    @given(rounds=st.lists(op_sequences, min_size=1, max_size=3))
    def test_delta_restore_matches_full_restore(self, rounds):
        """Any mutation mix, over several checkout rounds: the
        delta-restored machine and the full-restored machine end up
        byte-identical — to each other and to the captured template."""
        delta_t = MachineTemplate(FACTORY, delta=True)
        full_t = MachineTemplate(FACTORY, delta=False)
        delta_m = delta_t.checkout()
        full_m = full_t.checkout()
        reference = pickle.dumps(delta_m.snapshot_state())
        assert pickle.dumps(full_m.snapshot_state()) == reference
        for ops in rounds:
            _apply(delta_m, ops)
            _apply(full_m, ops)
            assert delta_t.checkout() is delta_m
            assert full_t.checkout() is full_m
            assert pickle.dumps(delta_m.snapshot_state()) == reference
            assert pickle.dumps(full_m.snapshot_state()) == reference

    @settings(max_examples=25, deadline=None)
    @given(ops=op_sequences)
    def test_dirty_set_is_exactly_what_was_touched(self, ops):
        template = MachineTemplate(FACTORY, delta=True)
        machine = template.checkout()
        # Settle the pristine fast-path so last_dirty reflects `ops` only.
        template.checkout()
        _apply(machine, ops)
        template.checkout()
        assert template.last_dirty == set(ops)

    @settings(max_examples=10, deadline=None)
    @given(ops=op_sequences)
    def test_verify_mode_accepts_honest_deltas(self, ops):
        """delta="verify" re-proves every skipped subsystem; tracked
        mutations never trip it because the counters never lie."""
        template = MachineTemplate(FACTORY, delta="verify")
        machine = template.checkout()
        _apply(machine, ops)
        template.checkout()  # must not raise TemplateParityError

    def test_verify_mode_catches_counterless_mutation(self):
        """A mutation that bypasses the generation counters is exactly
        the lie delta="verify" exists to catch."""
        template = MachineTemplate(FACTORY, delta="verify")
        machine = template.checkout()
        template.checkout()
        # Sneak past the counter: mutate internals directly.
        machine.mutexes._mutexes["sneaky"] = "sneaky"
        with pytest.raises(TemplateParityError, match="mutexes"):
            template.checkout()


#: Registry operations for the path-granular journal: creates, value
#: writes on fresh *and* template keys, deletes of template subtrees,
#: create-then-delete churn — everything the subtree splicer handles.
REG_OPS = {
    "new_deep_value": lambda r, n: r.set_value(
        f"HKEY_CURRENT_USER\\Software\\PathDelta\\A{n}\\B", f"v{n}", n),
    "template_value": lambda r, n: r.set_value(
        "HKEY_LOCAL_MACHINE\\SOFTWARE\\Microsoft\\Windows\\CurrentVersion"
        "\\Run", f"evil{n}", f"C:\\{n}.exe"),
    "delete_template_subtree": lambda r, n: r.delete_key(
        "HKEY_LOCAL_MACHINE\\SOFTWARE\\Microsoft\\Windows NT"
        "\\CurrentVersion"),
    # Guarded: delete_template_subtree may already have removed the key.
    "delete_template_value": lambda r, n: (
        lambda key: key and key.delete_value("ProductName"))(r.open_key(
            "HKEY_LOCAL_MACHINE\\SOFTWARE\\Microsoft\\Windows NT"
            "\\CurrentVersion")),
    "churn": lambda r, n: (r.create_key(
        f"HKEY_LOCAL_MACHINE\\SOFTWARE\\Churn{n}"),
        r.delete_key(f"HKEY_LOCAL_MACHINE\\SOFTWARE\\Churn{n}")),
}

#: Filesystem operations for the same journal mechanism: deep creates,
#: overwrites, deletes of template subtrees, renames, churn.
FS_OPS = {
    "new_deep_file": lambda f, n: f.write_file(
        f"C:\\Users\\analyst\\AppData\\Local\\X{n}\\payload.bin",
        b"x" * (n + 1)),
    "overwrite": lambda f, n: f.write_file(
        "C:\\Windows\\Temp\\shared.tmp", bytes([n % 251])),
    "delete_template_dir": lambda f, n: f.delete(
        "C:\\Users\\analyst\\Documents"),
    "mkdir_churn": lambda f, n: (f.makedirs(f"C:\\Churn{n}\\deep"),
                                 f.delete(f"C:\\Churn{n}")),
    "rename": lambda f, n: (f.write_file(f"C:\\Windows\\Temp\\a{n}.tmp",
                                         b"r"),
                            f.rename(f"C:\\Windows\\Temp\\a{n}.tmp",
                                     f"C:\\Windows\\Temp\\b{n}.exe")),
}


class TestPathGranularDelta:
    """The dirty-path journals (registry and filesystem) must splice the
    trees back to exactly what a full rebuild produces — same bytes,
    same child insertion order."""

    @settings(max_examples=20, deadline=None)
    @given(ops=st.lists(st.sampled_from(sorted(REG_OPS)),
                        min_size=1, max_size=10))
    def test_registry_splice_matches_full_rebuild(self, ops):
        delta_t = MachineTemplate(FACTORY, delta=True)
        full_t = MachineTemplate(FACTORY, delta=False)
        delta_m = delta_t.checkout()
        full_m = full_t.checkout()
        reference = pickle.dumps(delta_m.snapshot_state())
        for rounds in range(2):
            for n, name in enumerate(ops):
                REG_OPS[name](delta_m.registry, n)
                REG_OPS[name](full_m.registry, n)
            delta_t.checkout()
            full_t.checkout()
            assert pickle.dumps(delta_m.snapshot_state()) == reference
            assert pickle.dumps(full_m.snapshot_state()) == reference

    @settings(max_examples=20, deadline=None)
    @given(ops=st.lists(st.sampled_from(sorted(FS_OPS)),
                        min_size=1, max_size=10))
    def test_filesystem_splice_matches_full_rebuild(self, ops):
        delta_t = MachineTemplate(FACTORY, delta=True)
        full_t = MachineTemplate(FACTORY, delta=False)
        delta_m = delta_t.checkout()
        full_m = full_t.checkout()
        reference = pickle.dumps(delta_m.snapshot_state())
        for rounds in range(2):
            for n, name in enumerate(ops):
                FS_OPS[name](delta_m.filesystem, n)
                FS_OPS[name](full_m.filesystem, n)
            delta_t.checkout()
            full_t.checkout()
            assert pickle.dumps(delta_m.snapshot_state()) == reference
            assert pickle.dumps(full_m.snapshot_state()) == reference

    def test_journal_overflow_degrades_to_full_rebuild(self):
        template = MachineTemplate(FACTORY, delta=True)
        machine = template.checkout()
        template.checkout()  # settle; journal now tracks from here
        reference = pickle.dumps(machine.snapshot_state())
        for n in range(200):  # well past _JOURNAL_CAP
            machine.registry.set_value(
                f"HKEY_CURRENT_USER\\Software\\Flood\\K{n}", "v", n)
        assert machine.registry._dirty_paths is None
        template.checkout()
        assert pickle.dumps(machine.snapshot_state()) == reference
        # The journal re-arms after the (full) rebuild.
        assert machine.registry._dirty_paths == set()

    def test_foreign_state_dict_forces_full_rebuild(self):
        """Splicing is only sound against the state the journal diverged
        from; restoring to a structurally-equal but different dict must
        take the full path."""
        machine = MachineTemplate(FACTORY, delta=True).checkout()
        foreign = machine.snapshot_state()
        machine.registry.set_value(
            "HKEY_CURRENT_USER\\Software\\Foreign", "v", 1)
        machine.restore_state(foreign)
        assert machine.registry._last_restored_state \
            is foreign["registry"]
        assert machine.registry.get_value(
            "HKEY_CURRENT_USER\\Software\\Foreign", "v") is None


#: Process-table operations for the dirty-pid journal: spawns (with and
#: without lineage), kills of fresh *and* template processes, tag writes
#: (the notify-on-write TagDict surface), suspend/resume, module loads,
#: thread churn.
PROC_OPS = {
    "spawn": lambda m, n: m.spawn_process(f"proc{n}.exe"),
    "spawn_child": lambda m, n: m.spawn_process(
        f"child{n}.exe", parent=m.explorer),
    "spawn_and_kill": lambda m, n: m.processes.terminate(
        m.spawn_process(f"victim{n}.exe").pid),
    # Guarded: find_by_name only returns live processes, so a second kill
    # in the same op sequence is a no-op.
    "kill_template_process": lambda m, n: [
        m.processes.terminate(p.pid)
        for p in m.processes.find_by_name("dwm.exe")],
    "tag_explorer": lambda m, n: m.explorer.tags.__setitem__(f"t{n}", n),
    "untag": lambda m, n: (m.explorer.tags.__setitem__("gone", n),
                           m.explorer.tags.pop("gone")),
    "suspend_resume": lambda m, n: (m.explorer.suspend(),
                                    m.explorer.resume()),
    "module_load": lambda m, n: m.explorer.modules.load(f"delta{n}.dll"),
    "thread": lambda m, n: m.explorer.spawn_thread(),
}


class TestProcessTableDelta:
    """The dirty-pid journal must splice the process table back to
    exactly what a full rebuild produces — same bytes, and the same
    parent-link *identity* (``descendants`` compares with ``is``)."""

    @settings(max_examples=20, deadline=None)
    @given(ops=st.lists(st.sampled_from(sorted(PROC_OPS)),
                        min_size=1, max_size=10))
    def test_pid_splice_matches_full_rebuild(self, ops):
        delta_t = MachineTemplate(FACTORY, delta=True)
        full_t = MachineTemplate(FACTORY, delta=False)
        delta_m = delta_t.checkout()
        full_m = full_t.checkout()
        reference = pickle.dumps(delta_m.snapshot_state())
        for _ in range(2):
            for n, name in enumerate(ops):
                PROC_OPS[name](delta_m, n)
                PROC_OPS[name](full_m, n)
            delta_t.checkout()
            full_t.checkout()
            assert pickle.dumps(delta_m.snapshot_state()) == reference
            assert pickle.dumps(full_m.snapshot_state()) == reference

    def test_splice_heals_parent_identity(self):
        """A clean child whose parent pid was reloaded must point at the
        *new* parent object, or ancestor walks silently go stale."""
        template = MachineTemplate(FACTORY, delta=True)
        machine = template.checkout()
        template.checkout()  # settle; journal now tracks from here
        explorer = machine.explorer
        explorer.tags["dirty"] = True  # journals only explorer's pid
        machine.spawn_process("leaf.exe", parent=explorer)
        template.checkout()
        restored = machine.processes.get(explorer.pid)
        assert restored is not explorer  # reloaded from its blob
        assert "dirty" not in restored.tags
        for process in machine.processes.all():
            if process.parent_pid:
                assert process.parent \
                    is machine.processes.get(process.parent_pid)
        assert not machine.processes.find_by_name("leaf.exe")

    def test_pid_journal_overflow_degrades_to_full_rebuild(self):
        template = MachineTemplate(FACTORY, delta=True)
        machine = template.checkout()
        template.checkout()  # settle; journal now tracks from here
        reference = pickle.dumps(machine.snapshot_state())
        for n in range(100):  # well past the journal cap
            machine.spawn_process(f"flood{n}.exe")
        assert machine.processes._dirty_pids is None
        template.checkout()
        assert pickle.dumps(machine.snapshot_state()) == reference
        # The journal re-arms after the (full) rebuild.
        assert machine.processes._dirty_pids == set()


SPEC = FamilySpec("Mixed", (("spawn_idp", 1), ("term_vm", 1),
                            ("sleep_sbx", 1), ("fail_peb", 1)))

_DB_BLOB = DeceptionDatabase().snapshot_bytes()


@pytest.fixture(scope="module")
def corpus():
    samples = build_malgene_corpus([SPEC])
    assert len(samples) == 4
    return samples


def _entries_with_keys(corpus, indices, keys):
    initialize_worker(FACTORY, _DB_BLOB, None, telemetry=False,
                      template=True, delta=True, shared_keys=keys)
    try:
        return [pickle.dumps(canonical_entry(
            execute_pair_job(PairJob(i, corpus[i])))) for i in indices]
    finally:
        reset_worker()


class TestSharedEqualsPickled:
    @settings(max_examples=8, deadline=None)
    @given(indices=st.lists(st.integers(min_value=0, max_value=3),
                            min_size=1, max_size=5))
    def test_shared_registry_rollups_match_pickled_transfer(self, corpus,
                                                            indices):
        """Same jobs, same order: a worker on fork-inherited state and a
        worker on the pickled path produce byte-identical canonical
        entries."""
        shared_registry.clear()
        try:
            db_key = shared_registry.publish_database(
                _DB_BLOB, FrozenDeceptionDatabase.from_snapshot(
                    pickle.loads(_DB_BLOB)))
            from repro.parallel.factories import resolve_machine_factory
            factory = resolve_machine_factory(FACTORY)
            t_key = shared_registry.template_key(FACTORY, id(factory), True)
            prebuilt = MachineTemplate(factory, delta=True)
            prebuilt.build()
            shared_registry.publish_template(t_key, prebuilt)
            keys = shared_registry.SharedKeys(database=db_key,
                                              template=t_key)
            via_shared = _entries_with_keys(corpus, indices, keys)
        finally:
            shared_registry.clear()
        via_pickle = _entries_with_keys(corpus, indices,
                                        shared_registry.SharedKeys())
        assert via_shared == via_pickle
