"""Performance guard: the pool must not lose to the serial path again.

PR 1 shipped a pool that was *slower* than serial (0.687× at 2 workers in
the committed ``BENCH_parallel.json``) because every run rebuilt its
machine from scratch. Machine templating plus chunked dispatch is the
fix; this guard pins it so a regression fails CI on multi-core machines
instead of silently re-appearing in the next benchmark run.

The reference measurement is the *fresh-factory serial* path
(``template=False``) — the historical cost the templated pool has to
beat. ``benchmarks/bench_parallel.py`` measures the same ratio with more
detail (per-phase timings, 4-worker scaling).
"""

import os
import pickle

import pytest

from repro.malware.corpus import build_malgene_corpus
from repro.malware.families import FamilySpec
from repro.parallel import ParallelSweep

#: 32 samples over the five headline archetypes (the benchmark corpus).
GUARD_SPEC = FamilySpec("PerfGuard", (("spawn_idp", 12), ("term_vm", 8),
                                      ("sleep_sbx", 6), ("fail_peb", 4),
                                      ("selfdel", 2)))


def _wall_time(samples, **kwargs):
    result = ParallelSweep(machine_factory="bare-metal-light",
                           **kwargs).run(samples)
    assert not result.errors, result.errors
    return result.wall_time_s, result


@pytest.mark.perf
@pytest.mark.slow
@pytest.mark.skipif((os.cpu_count() or 1) < 2,
                    reason="parallel speedup needs >=2 CPU cores")
def test_pooled_sweep_beats_fresh_factory_serial():
    samples = build_malgene_corpus([GUARD_SPEC])
    assert len(samples) >= 32

    fresh_serial_s, fresh = _wall_time(samples, max_workers=1,
                                       template=False)
    pooled_s, pooled = _wall_time(samples, max_workers=2, template=True)
    assert pooled.used_process_pool
    # Same verdicts, or the speedup is meaningless.
    assert pooled.comparisons == fresh.comparisons

    speedup = fresh_serial_s / pooled_s
    assert speedup >= 1.0, (
        f"2-worker templated pool ran at {speedup:.3f}x the fresh-factory "
        f"serial path ({pooled_s:.4f}s vs {fresh_serial_s:.4f}s); "
        "templating + chunking should make the pool at least break even")


@pytest.mark.perf
@pytest.mark.slow
def test_zero_copy_pool_vs_templated_serial():
    """The zero-copy bar, keyed off the core count.

    On a multi-core box the fork-shared, delta-restoring pool must match
    or beat the *templated* serial path — the strictest reference, since
    templated serial pays no dispatch tax at all. On a single core that
    timing comparison is meaningless (workers time-slice one core), so
    byte-parity of the rollup is the guarantee that must hold.
    """
    samples = build_malgene_corpus([GUARD_SPEC])

    serial_s, serial = _wall_time(samples, max_workers=1, template=True)
    pooled_s, pooled = _wall_time(samples, max_workers=2, template=True,
                                  delta=True, shared_state=True)
    assert pooled.used_process_pool

    # Parity is unconditional: every mode, every core count.
    assert [pickle.dumps(e) for e in pooled.canonical_entries()] == \
        [pickle.dumps(e) for e in serial.canonical_entries()]

    if (os.cpu_count() or 1) >= 2:
        speedup = serial_s / pooled_s
        assert speedup >= 1.0, (
            f"zero-copy 2-worker pool ran at {speedup:.3f}x the templated "
            f"serial path ({pooled_s:.4f}s vs {serial_s:.4f}s); "
            "fork-shared bring-up + delta-restore should at least break "
            "even against serial templating on >=2 cores")
