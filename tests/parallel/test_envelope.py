"""Binary result envelopes — round-trip fidelity, corruption, size.

The framed chunk format replaces per-entry pickle blobs on the pool's
return path. Its contract: decode(encode(x)) is *pickle-byte* identical
to x for every record type, any corruption raises
:class:`~repro.parallel.envelope.EnvelopeError` instead of returning
garbage, and the framed form is smaller than the naive pickled form it
replaced.
"""

import pickle

import pytest

from repro.core.database import DeceptionDatabase
from repro.malware.corpus import build_malgene_corpus
from repro.malware.families import FamilySpec
from repro.parallel.envelope import (ChunkHeader, EnvelopeError, SweepError,
                                     decode_chunk, decode_record,
                                     encode_chunk, encode_record)
from repro.parallel.worker import (PairJob, execute_pair_job,
                                   initialize_worker, reset_worker)
from repro.telemetry.snapshot import MetricsSnapshot

pytestmark = pytest.mark.delta

SPEC = FamilySpec("Mixed", (("spawn_idp", 1), ("term_vm", 1),
                            ("sleep_sbx", 1), ("fail_peb", 1)))


@pytest.fixture(scope="module")
def entries():
    """Real sweep entries of both kinds, produced by the worker path."""
    samples = build_malgene_corpus([SPEC])
    initialize_worker("bare-metal-light", DeceptionDatabase().snapshot(),
                      None, telemetry=True, template=True)
    try:
        produced = [execute_pair_job(PairJob(i, s))
                    for i, s in enumerate(samples)]
    finally:
        reset_worker()
    return produced


HEADER = ChunkHeader(worker_pid=4242, shared_database=True,
                     shared_template=True, delta_restores=7,
                     full_restores=1, dirty_subsystems=12)


def _via_pickled_transfer(record):
    """What the parent would have held under the replaced wire format:
    the record after one pickle round-trip across the process boundary."""
    return pickle.loads(pickle.dumps(record))


class TestRoundTrip:
    def test_every_record_type_roundtrips_byte_identically(self, entries):
        """Framed decode == pickled-transfer decode, in re-pickled bytes —
        the parity the binary format owes the old per-entry pickle path."""
        error = SweepError(index=9, sample_md5="f" * 32,
                           error_type="RuntimeError", message="boom",
                           traceback="tb", worker_pid=1, retry_count=2,
                           metrics=MetricsSnapshot(counters={"a": 1}))
        for record in [*entries, error, HEADER]:
            decoded = decode_record(encode_record(record))
            assert type(decoded) is type(record)
            assert pickle.dumps(decoded) == \
                pickle.dumps(_via_pickled_transfer(record))

    def test_chunk_roundtrip_preserves_order_and_header(self, entries):
        blob = encode_chunk(entries, HEADER)
        decoded, header = decode_chunk(blob)
        assert header == HEADER
        assert [pickle.dumps(e) for e in decoded] == \
            [pickle.dumps(_via_pickled_transfer(e)) for e in entries]

    def test_empty_chunk_roundtrips(self):
        decoded, header = decode_chunk(encode_chunk([], HEADER))
        assert decoded == [] and header == HEADER


class TestCorruption:
    def test_bad_chunk_magic(self, entries):
        blob = bytearray(encode_chunk(entries[:1], HEADER))
        blob[0] ^= 0xFF
        with pytest.raises(EnvelopeError, match="magic"):
            decode_chunk(bytes(blob))

    def test_truncated_chunk(self, entries):
        blob = encode_chunk(entries[:1], HEADER)
        with pytest.raises(EnvelopeError, match="truncated"):
            decode_chunk(blob[:len(blob) // 2])

    def test_payload_bitflip_fails_crc(self, entries):
        blob = bytearray(encode_chunk(entries[:1], HEADER))
        blob[-1] ^= 0x01  # last payload byte of the last frame
        with pytest.raises(EnvelopeError, match="crc"):
            decode_chunk(bytes(blob))

    def test_trailing_garbage_is_rejected(self, entries):
        blob = encode_chunk(entries[:1], HEADER)
        with pytest.raises(EnvelopeError, match="trailing"):
            decode_chunk(blob + b"\x00")

    def test_record_type_tag_is_enforced(self):
        framed = bytearray(encode_record(HEADER))
        # Rewrite the type tag in place ("ChunkHeader" -> same-length junk).
        tag = b"ChunkHeader"
        index = bytes(framed).index(tag)
        framed[index:index + len(tag)] = b"XhunkHeader"
        with pytest.raises(EnvelopeError):
            decode_record(bytes(framed))

    def test_record_rejects_trailing_bytes(self):
        with pytest.raises(EnvelopeError, match="trailing"):
            decode_record(encode_record(HEADER) + b"!")


class TestSize:
    def test_binary_chunk_smaller_than_pickled_entries(self):
        """The replaced wire format: one pickle blob per entry in a list.
        On a 32-sample corpus the framed+compressed chunk must win."""
        samples = build_malgene_corpus([SPEC]) * 8
        assert len(samples) == 32
        initialize_worker("bare-metal-light",
                          DeceptionDatabase().snapshot(), None,
                          telemetry=False, template=True)
        try:
            produced = [execute_pair_job(PairJob(i, s))
                        for i, s in enumerate(samples)]
        finally:
            reset_worker()
        pickled = sum(len(pickle.dumps(e)) for e in produced)
        framed = len(encode_chunk(produced, HEADER))
        assert framed < pickled, (framed, pickled)
