"""The tentpole's keystone: parallel sweeps are byte-identical to serial.

A 12-sample corpus (spanning every archetype class: respawners, terminators,
sleepers, failures, selfdel) runs through the legacy serial path and through
:class:`repro.parallel.ParallelSweep` at ``max_workers=1``, 2 and 4; the
ordered :class:`ComparisonResult` sequences must agree verdict for verdict —
and, pickled, byte for byte.
"""

import pickle

import pytest

from repro.experiments.runner import run_pairs
from repro.malware.corpus import build_malgene_corpus
from repro.malware.families import FamilySpec
from repro.parallel import ParallelSweep

#: 12 samples covering deactivatable, failing and inconclusive archetypes.
MIXED_SPEC = FamilySpec("Mixed", (("spawn_idp", 4), ("term_vm", 3),
                                  ("sleep_sbx", 2), ("fail_peb", 2),
                                  ("selfdel", 1)))


@pytest.fixture(scope="module")
def corpus():
    samples = build_malgene_corpus([MIXED_SPEC])
    assert len(samples) == 12
    return samples


@pytest.fixture(scope="module")
def serial_outcomes(corpus):
    return run_pairs(corpus)


@pytest.fixture(scope="module")
def serial_comparisons(serial_outcomes):
    return [outcome.comparison for outcome in serial_outcomes]


def _sweep_outcomes(corpus, max_workers):
    result = ParallelSweep(max_workers=max_workers).run(corpus)
    assert not result.errors, result.errors
    return result.outcomes


class TestDeterminism:
    def test_single_worker_pool_matches_serial_path(self, corpus,
                                                    serial_outcomes):
        parallel = _sweep_outcomes(corpus, max_workers=1)
        assert [o.comparison for o in parallel] == \
            [o.comparison for o in serial_outcomes]
        # The engine's hard guarantee: *full outcomes* — samples, run
        # records, traces, comparisons — pickle to the same bytestring.
        # (Byte equality is the strongest check available: payloads
        # compare by identity, so whole-outcome ``==`` across runs is
        # meaningless, but their pickled form is pure value.)
        assert pickle.dumps(parallel) == pickle.dumps(serial_outcomes)

    @pytest.mark.slow
    @pytest.mark.parametrize("workers", [2, 4])
    def test_multi_worker_pool_matches_serial_path(self, corpus,
                                                   serial_outcomes,
                                                   workers):
        parallel = _sweep_outcomes(corpus, max_workers=workers)
        assert [o.comparison for o in parallel] == \
            [o.comparison for o in serial_outcomes]
        assert pickle.dumps(parallel) == pickle.dumps(serial_outcomes)

    def test_order_follows_submission_order(self, corpus):
        result = ParallelSweep(max_workers=1).run(corpus)
        assert [o.sample.md5 for o in result.outcomes] == \
            [s.md5 for s in corpus]
        assert [s.index for s in result.stats] == list(range(len(corpus)))

    def test_verdict_counts_survive_parallelism(self, corpus,
                                                serial_comparisons):
        """Aggregates (the Figure 4 numbers) agree with the serial path."""
        from repro.analysis.comparison import summarize
        parallel = [o.comparison
                    for o in _sweep_outcomes(corpus, max_workers=1)]
        assert summarize(parallel) == summarize(serial_comparisons)
