"""Fault injection: the sweep degrades gracefully instead of aborting.

A sample whose ``run()`` raises becomes a structured
:class:`~repro.parallel.SweepError` (sample id + traceback) while the rest
of the corpus completes; a transient failure that succeeds on retry is
recorded with ``retry_count == 1``.
"""

import dataclasses

import pytest

from repro.malware.corpus import build_malgene_corpus
from repro.malware.families import FamilySpec
from repro.malware.sample import EvasiveSample
from repro.parallel import ParallelSweep, SweepError, SweepExecutionError

SPEC = FamilySpec("Mixed", (("term_vm", 2), ("sleep_sbx", 1)))


class AlwaysFailingSample(EvasiveSample):
    """`run()` raises every time — the permanent-failure case."""

    def run(self, machine, process):
        raise RuntimeError("injected permanent failure")


class FlakyOnceSample(EvasiveSample):
    """`run()` raises on the first call only — the transient case.

    The failure flag lives on the instance, so the in-worker retry (which
    re-runs the same deserialized sample in the same worker) sees it.
    """

    def run(self, machine, process):
        if not self.__dict__.get("_already_failed"):
            self.__dict__["_already_failed"] = True
            raise OSError("injected transient failure")
        return super().run(machine, process)


def _recast(sample, cls):
    fields = {f.name: getattr(sample, f.name)
              for f in dataclasses.fields(EvasiveSample)}
    return cls(**fields)


def _corpus_with_fault(cls, position=1):
    samples = build_malgene_corpus([SPEC])
    samples[position] = _recast(samples[position], cls)
    return samples


class TestPermanentFailure:
    def test_failure_becomes_sweep_error_and_rest_completes(self):
        samples = _corpus_with_fault(AlwaysFailingSample)
        result = ParallelSweep(max_workers=1).run(samples)
        assert len(result.errors) == 1
        error = result.errors[0]
        assert isinstance(error, SweepError)
        assert error.sample_md5 == samples[1].md5
        assert error.error_type == "RuntimeError"
        assert "injected permanent failure" in error.traceback
        assert error.retry_count == 1  # retried once, then gave up
        # The two healthy samples still completed, in submission order.
        assert [o.sample.md5 for o in result.outcomes] == \
            [samples[0].md5, samples[2].md5]

    def test_outcomes_or_raise_reports_failures(self):
        samples = _corpus_with_fault(AlwaysFailingSample)
        result = ParallelSweep(max_workers=1).run(samples)
        with pytest.raises(SweepExecutionError) as excinfo:
            result.outcomes_or_raise()
        assert samples[1].md5 in str(excinfo.value)
        assert excinfo.value.errors == result.errors

    @pytest.mark.slow
    def test_failure_in_process_pool_does_not_sink_sweep(self):
        samples = _corpus_with_fault(AlwaysFailingSample)
        result = ParallelSweep(max_workers=2).run(samples)
        assert result.used_process_pool
        assert [e.sample_md5 for e in result.errors] == [samples[1].md5]
        assert "injected permanent failure" in result.errors[0].traceback
        assert len(result.outcomes) == 2

    def test_run_pairs_raises_like_the_historical_serial_path(self):
        from repro.experiments.runner import run_pairs
        with pytest.raises(SweepExecutionError):
            run_pairs(_corpus_with_fault(AlwaysFailingSample))


class TestRetry:
    def test_transient_failure_recovers_with_retry_count_one(self):
        samples = _corpus_with_fault(FlakyOnceSample)
        result = ParallelSweep(max_workers=1).run(samples)
        assert not result.errors
        by_md5 = {s.sample_md5: s for s in result.stats}
        assert by_md5[samples[1].md5].retry_count == 1
        assert by_md5[samples[0].md5].retry_count == 0
        assert by_md5[samples[2].md5].retry_count == 0
        assert result.total_retries() == 1

    def test_flaky_verdict_matches_healthy_run(self):
        """A retried sample's verdict equals the never-failing baseline."""
        healthy = build_malgene_corpus([SPEC])
        baseline = ParallelSweep(max_workers=1).run(healthy)
        flaky = ParallelSweep(max_workers=1).run(
            _corpus_with_fault(FlakyOnceSample))
        assert flaky.comparisons == baseline.comparisons

    @pytest.mark.slow
    def test_transient_failure_recovers_in_process_pool(self):
        samples = _corpus_with_fault(FlakyOnceSample)
        result = ParallelSweep(max_workers=2).run(samples)
        assert result.used_process_pool
        assert not result.errors
        by_md5 = {s.sample_md5: s for s in result.stats}
        assert by_md5[samples[1].md5].retry_count == 1

    def test_zero_retries_budget_fails_fast(self):
        samples = _corpus_with_fault(FlakyOnceSample)
        result = ParallelSweep(max_workers=1, max_retries=0).run(samples)
        assert [e.sample_md5 for e in result.errors] == [samples[1].md5]
        assert result.errors[0].retry_count == 0
