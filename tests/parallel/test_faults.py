"""Fault injection: the sweep degrades gracefully instead of aborting.

A sample whose ``run()`` raises becomes a structured
:class:`~repro.parallel.SweepError` (sample id + traceback) while the rest
of the corpus completes; a transient failure that succeeds on retry is
recorded with ``retry_count == 1``.
"""

import dataclasses

import pytest

from repro.malware.corpus import build_malgene_corpus
from repro.malware.families import FamilySpec
from repro.malware.sample import EvasiveSample
from repro.parallel import ParallelSweep, SweepError, SweepExecutionError

SPEC = FamilySpec("Mixed", (("term_vm", 2), ("sleep_sbx", 1)))


class AlwaysFailingSample(EvasiveSample):
    """`run()` raises every time — the permanent-failure case."""

    def run(self, machine, process):
        raise RuntimeError("injected permanent failure")


class FlakyOnceSample(EvasiveSample):
    """`run()` raises on the first call only — the transient case.

    The failure flag lives on the instance, so the in-worker retry (which
    re-runs the same deserialized sample in the same worker) sees it.
    """

    def run(self, machine, process):
        if not self.__dict__.get("_already_failed"):
            self.__dict__["_already_failed"] = True
            raise OSError("injected transient failure")
        return super().run(machine, process)


def _recast(sample, cls):
    fields = {f.name: getattr(sample, f.name)
              for f in dataclasses.fields(EvasiveSample)}
    return cls(**fields)


def _corpus_with_fault(cls, position=1):
    samples = build_malgene_corpus([SPEC])
    samples[position] = _recast(samples[position], cls)
    return samples


class TestPermanentFailure:
    def test_failure_becomes_sweep_error_and_rest_completes(self):
        samples = _corpus_with_fault(AlwaysFailingSample)
        result = ParallelSweep(max_workers=1).run(samples)
        assert len(result.errors) == 1
        error = result.errors[0]
        assert isinstance(error, SweepError)
        assert error.sample_md5 == samples[1].md5
        assert error.error_type == "RuntimeError"
        assert "injected permanent failure" in error.traceback
        assert error.retry_count == 1  # retried once, then gave up
        # The two healthy samples still completed, in submission order.
        assert [o.sample.md5 for o in result.outcomes] == \
            [samples[0].md5, samples[2].md5]

    def test_outcomes_or_raise_reports_failures(self):
        samples = _corpus_with_fault(AlwaysFailingSample)
        result = ParallelSweep(max_workers=1).run(samples)
        with pytest.raises(SweepExecutionError) as excinfo:
            result.outcomes_or_raise()
        assert samples[1].md5 in str(excinfo.value)
        assert excinfo.value.errors == result.errors

    @pytest.mark.slow
    def test_failure_in_process_pool_does_not_sink_sweep(self):
        samples = _corpus_with_fault(AlwaysFailingSample)
        result = ParallelSweep(max_workers=2).run(samples)
        assert result.used_process_pool
        assert [e.sample_md5 for e in result.errors] == [samples[1].md5]
        assert "injected permanent failure" in result.errors[0].traceback
        assert len(result.outcomes) == 2

    def test_run_pairs_raises_like_the_historical_serial_path(self):
        from repro.experiments.runner import run_pairs
        with pytest.raises(SweepExecutionError):
            run_pairs(_corpus_with_fault(AlwaysFailingSample))


class TestRetry:
    def test_transient_failure_recovers_with_retry_count_one(self):
        samples = _corpus_with_fault(FlakyOnceSample)
        result = ParallelSweep(max_workers=1).run(samples)
        assert not result.errors
        by_md5 = {s.sample_md5: s for s in result.stats}
        assert by_md5[samples[1].md5].retry_count == 1
        assert by_md5[samples[0].md5].retry_count == 0
        assert by_md5[samples[2].md5].retry_count == 0
        assert result.total_retries() == 1

    def test_flaky_verdict_matches_healthy_run(self):
        """A retried sample's verdict equals the never-failing baseline."""
        healthy = build_malgene_corpus([SPEC])
        baseline = ParallelSweep(max_workers=1).run(healthy)
        flaky = ParallelSweep(max_workers=1).run(
            _corpus_with_fault(FlakyOnceSample))
        assert flaky.comparisons == baseline.comparisons

    @pytest.mark.slow
    def test_transient_failure_recovers_in_process_pool(self):
        samples = _corpus_with_fault(FlakyOnceSample)
        result = ParallelSweep(max_workers=2).run(samples)
        assert result.used_process_pool
        assert not result.errors
        by_md5 = {s.sample_md5: s for s in result.stats}
        assert by_md5[samples[1].md5].retry_count == 1

    def test_zero_retries_budget_fails_fast(self):
        samples = _corpus_with_fault(FlakyOnceSample)
        result = ParallelSweep(max_workers=1, max_retries=0).run(samples)
        assert [e.sample_md5 for e in result.errors] == [samples[1].md5]
        assert result.errors[0].retry_count == 0


# -- zero-copy faults: every shared-state shortcut must fail safe -------------

@pytest.mark.delta
class TestSpawnFallback:
    """A spawn-start-method pool cannot inherit the fork-shared registry;
    the sweep must fall back to pickled transfer and say so."""

    @pytest.mark.slow
    def test_spawn_pool_degrades_to_pickled_transfer(self, monkeypatch):
        import multiprocessing

        from repro.parallel import sweep as sweep_module
        monkeypatch.setattr(sweep_module, "pool_context",
                            lambda: multiprocessing.get_context("spawn"))
        samples = build_malgene_corpus([SPEC])
        result = ParallelSweep(max_workers=2, shared_state=True).run(samples)
        assert result.used_process_pool
        assert not result.errors
        # Honest provenance: every chunk reports the fallback path.
        assert result.chunk_headers
        assert not result.shared_state_used
        assert all(not h.shared_database and not h.shared_template
                   for h in result.chunk_headers)
        # And the rollup is still byte-identical to the serial run.
        import pickle as _pickle
        reference = ParallelSweep(max_workers=1).run(samples)
        assert [_pickle.dumps(e) for e in result.canonical_entries()] == \
            [_pickle.dumps(e) for e in reference.canonical_entries()]


@pytest.mark.delta
class TestCorruptedSharedRegistry:
    """Bogus keys and poisoned registry entries must read as misses."""

    def _run_jobs(self, keys):
        import pickle as _pickle

        from repro.core.database import DeceptionDatabase
        from repro.parallel import canonical_entry
        from repro.parallel.worker import (PairJob, _STATE,
                                           execute_pair_job,
                                           initialize_worker, reset_worker)
        samples = build_malgene_corpus([SPEC])
        blob = DeceptionDatabase().snapshot_bytes()
        initialize_worker("bare-metal-light", blob, None, telemetry=False,
                          template=True, delta=True, shared_keys=keys)
        try:
            flags = (_STATE["shared_database"], _STATE["shared_template"])
            entries = [_pickle.dumps(canonical_entry(
                execute_pair_job(PairJob(i, s))))
                for i, s in enumerate(samples)]
        finally:
            reset_worker()
        return flags, entries

    def test_bogus_fingerprint_falls_back_honestly(self):
        from repro.parallel.shared import SharedKeys
        baseline_flags, baseline = self._run_jobs(SharedKeys())
        assert baseline_flags == (False, False)
        flags, entries = self._run_jobs(
            SharedKeys(database="deadbeef:123", template="no-such-key"))
        assert flags == (False, False)
        assert entries == baseline

    def test_poisoned_registry_value_is_refused(self):
        """Right fingerprint, wrong object: type validation turns the hit
        into a miss instead of handing a job a corrupted database."""
        from repro.core.database import DeceptionDatabase
        from repro.parallel import shared as shared_registry
        from repro.parallel.shared import SharedKeys
        blob = DeceptionDatabase().snapshot_bytes()
        key = shared_registry.database_fingerprint(blob)
        shared_registry.clear()
        try:
            shared_registry._REGISTRY[("database", key)] = {"not": "a db"}
            shared_registry._REGISTRY[("template", "k")] = object()
            flags, entries = self._run_jobs(
                SharedKeys(database=key, template="k"))
        finally:
            shared_registry.clear()
        assert flags == (False, False)
        _, baseline = self._run_jobs(SharedKeys())
        assert entries == baseline


@pytest.mark.delta
class TestUntrackedSubsystemFallback:
    """A machine that snapshots state the generation counters do not
    cover makes dirty-set restores unsound — the template must detect it
    and fall back to full restores, with honest telemetry."""

    def test_unknown_snapshot_key_forces_full_restores(self):
        from repro.parallel import MachineTemplate
        from repro.parallel.factories import resolve_machine_factory
        from repro.telemetry.metrics import TELEMETRY

        base = resolve_machine_factory("bare-metal-light")

        def weird_factory():
            machine = base()
            original = machine.snapshot_state

            def snapshot_state():
                state = original()
                state["sidecar"] = {"untracked": True}
                return state
            machine.snapshot_state = snapshot_state
            return machine

        template = MachineTemplate(weird_factory, delta=True)
        template.build()
        assert not template.delta_capable
        machine = template.checkout()
        machine.mutexes.create("Global\\x")
        prior = TELEMETRY.enabled
        TELEMETRY.enabled = True
        try:
            baseline = TELEMETRY.snapshot()
            template.checkout()
            delta = TELEMETRY.snapshot().diff_from(baseline)
        finally:
            TELEMETRY.enabled = prior
        assert template.full_restore_count == 1
        assert template.delta_restore_count == 0
        assert delta.counters.get("parallel.delta_fallbacks") == 1
        # The fallback restore is still a *correct* restore.
        assert not machine.mutexes.exists("Global\\x")
