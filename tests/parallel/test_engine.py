"""Unit tests for the sweep engine's building blocks."""

import os
import pickle

import pytest

from repro.core import (DeceptionDatabase, FrozenDatabaseError,
                        FrozenDeceptionDatabase)
from repro.malware.corpus import build_malgene_corpus
from repro.malware.families import FamilySpec
from repro.parallel import (ImmediateFuture, ParallelSweep, SerialExecutor,
                            SweepExecutionError, available_factories,
                            register_machine_factory,
                            resolve_machine_factory, run_tasks,
                            run_tasks_or_raise)

SPEC = FamilySpec("Mixed", (("term_vm", 2), ("selfdel", 1)))


class TestSerialExecutor:
    def test_submit_returns_completed_future(self):
        future = SerialExecutor().submit(divmod, 7, 3)
        assert future.done()
        assert future.result() == (2, 1)
        assert future.exception() is None

    def test_submit_captures_exceptions_like_a_future(self):
        future = SerialExecutor(roundtrip=False).submit(divmod, 7, 0)
        assert isinstance(future.exception(), ZeroDivisionError)
        with pytest.raises(ZeroDivisionError):
            future.result()

    def test_initializer_runs_once_at_construction(self):
        calls = []
        with SerialExecutor(initializer=calls.append, initargs=(1,)):
            pass
        assert calls == [1]

    def test_roundtrip_breaks_object_identity(self):
        payload = {"shared": ["x"]}
        future = SerialExecutor().submit(lambda p: (p, p), payload)
        first, second = future.result()
        assert first == payload and first is not payload
        assert first is second  # sharing *inside* one payload survives

    def test_immediate_future_roundtrip_matches_pickle(self):
        value = {"k": ("a", 1)}
        assert ImmediateFuture(lambda: value, (),
                               roundtrip=True).result() == value


class TestFactoryRegistry:
    def test_builtins_cover_every_experiment_environment(self):
        names = available_factories()
        for required in ("bare-metal", "bare-metal-light", "cuckoo-vm",
                         "cuckoo-vm-transparent", "end-user",
                         "end-user-documents"):
            assert required in names

    def test_resolve_name_builds_a_machine(self):
        machine = resolve_machine_factory("bare-metal-light")()
        assert machine.processes.find_by_name("explorer.exe")

    def test_resolve_passes_callables_through(self):
        sentinel = lambda: None  # noqa: E731
        assert resolve_machine_factory(sentinel) is sentinel

    def test_unknown_name_lists_alternatives(self):
        with pytest.raises(KeyError, match="bare-metal"):
            resolve_machine_factory("no-such-env")

    def test_duplicate_registration_rejected(self):
        register_machine_factory("test-dup-factory", _dummy_factory)
        with pytest.raises(ValueError):
            register_machine_factory("test-dup-factory",
                                     lambda: _dummy_factory())
        register_machine_factory("test-dup-factory", _dummy_factory)  # same

    def test_unpicklable_factory_rejected_before_pool_start(self):
        corpus = build_malgene_corpus([SPEC])
        sweep = ParallelSweep(max_workers=2,
                              machine_factory=lambda: _dummy_factory())
        with pytest.raises(ValueError, match="not picklable"):
            sweep.run(corpus)


def _dummy_factory():
    from repro.winsim import Machine
    return Machine().boot()


class TestSweepStats:
    def test_every_outcome_carries_stats(self):
        corpus = build_malgene_corpus([SPEC])
        result = ParallelSweep(max_workers=1).run(corpus)
        assert len(result.stats) == len(corpus)
        for stats in result.stats:
            assert stats.wall_time_s > 0
            assert stats.worker_pid == os.getpid()  # in-process fallback
            assert stats.retry_count == 0
            assert stats.trace_events > 0
        # With-Scarecrow runs of evasive samples log fingerprint attempts.
        assert any(s.fingerprint_events > 0 for s in result.stats)
        assert all(s.checks_evaluated > 0 for s in result.stats)

    def test_outcomes_are_detached_from_simulation_objects(self):
        corpus = build_malgene_corpus([SPEC])
        outcome = ParallelSweep(max_workers=1).run(corpus).outcomes[0]
        assert outcome.without.machine is None
        assert outcome.with_scarecrow.machine is None
        assert outcome.with_scarecrow.controller is None
        pickle.dumps(outcome)  # the envelope contract

    def test_worker_database_is_frozen(self):
        """A worker's rehydrated database refuses mutation."""
        from repro.parallel.worker import _STATE, initialize_worker
        initialize_worker("bare-metal", DeceptionDatabase().snapshot(), None)
        database = _STATE["database"]
        assert isinstance(database, FrozenDeceptionDatabase)
        with pytest.raises(FrozenDatabaseError):
            database.add_file("C:\\evil.sys", "vmware")


class TestRunTasks:
    def test_results_ordered_and_labelled(self):
        results = run_tasks([("a", divmod, (7, 3)), ("b", divmod, (9, 2))])
        assert [(r.label, r.value) for r in results] == \
            [("a", (2, 1)), ("b", (4, 1))]
        assert all(r.ok for r in results)

    def test_task_failure_is_contained(self):
        results = run_tasks([("good", divmod, (4, 2)),
                             ("bad", divmod, (4, 0))])
        assert results[0].ok and results[0].value == (2, 0)
        assert not results[1].ok
        assert results[1].error.error_type == "ZeroDivisionError"
        assert "divmod" not in results[1].error.message  # msg, not repr

    def test_run_tasks_or_raise_unwraps_values(self):
        assert run_tasks_or_raise([("x", divmod, (5, 2))]) == [(2, 1)]
        with pytest.raises(SweepExecutionError):
            run_tasks_or_raise([("x", divmod, (5, 0))])

    @pytest.mark.slow
    def test_tasks_shard_across_processes(self):
        results = run_tasks([("p1", os.getpid, ()), ("p2", os.getpid, ()),
                             ("p3", os.getpid, ()), ("p4", os.getpid, ())],
                            max_workers=2)
        assert all(r.ok for r in results)
        assert all(r.value != os.getpid() for r in results)
