"""Collector edge cases: empty diffs, conflicting inventories, re-apply.

The continuous collection pipeline (``repro.dbops``) leans on three
properties of the Section II-C primitives that the happy-path tests
never pinned down: a diff of identical inventories is empty, duplicate
and conflicting registry observations across sandboxes collapse to one
entry, and re-applying the same diff to a database is idempotent.
"""

import dataclasses

from repro.analysis.environments import build_clean_baseline
from repro.core import DeceptionDatabase
from repro.core.collector import (CrawlerReport, diff_reports,
                                  extend_database, run_crawler)


def _report(label="sandbox", **fields):
    report = CrawlerReport(machine_label=label)
    for name, value in fields.items():
        setattr(report, name, value)
    return report


class TestEmptyDiff:
    def test_identical_inventories_diff_to_nothing(self):
        machine = build_clean_baseline()
        baseline = run_crawler(machine, "baseline")
        sandbox = run_crawler(machine, "sandbox")
        diff = diff_reports([sandbox], baseline)
        assert not diff.files
        assert not diff.processes
        assert not diff.registry_keys
        assert not diff.registry_values
        assert diff.registry_entry_count == 0

    def test_no_reports_diff_to_nothing(self):
        baseline = run_crawler(build_clean_baseline(), "baseline")
        diff = diff_reports([], baseline)
        assert not (diff.files or diff.processes or diff.registry_keys
                    or diff.registry_values)

    def test_extending_with_empty_diff_changes_nothing(self):
        machine = build_clean_baseline()
        report = run_crawler(machine, "m")
        diff = diff_reports([report], report)
        db = DeceptionDatabase()
        before_counts = db.counts()
        before_blob = db.snapshot_bytes()
        added = extend_database(db, diff)
        assert added == {"files": 0, "processes": 0, "registry_entries": 0}
        assert db.counts() == before_counts
        assert db.snapshot_bytes() == before_blob


class TestConflictingRegistryObservations:
    def test_duplicate_keys_across_sandboxes_collapse(self):
        baseline = _report("baseline")
        first = _report("a", registry_keys={"hklm\\software\\agent"},
                        registry_values={("hklm\\software\\agent", "v")})
        second = _report("b", registry_keys={"hklm\\software\\agent"},
                         registry_values={("hklm\\software\\agent", "v")})
        diff = diff_reports([first, second], baseline)
        assert diff.registry_keys == {"hklm\\software\\agent"}
        assert diff.registry_values == {("hklm\\software\\agent", "v")}
        assert diff.registry_entry_count == 2

    def test_same_key_different_value_names_both_survive(self):
        baseline = _report("baseline")
        first = _report("a", registry_values={("hklm\\sw\\agent", "left")})
        second = _report("b", registry_values={("hklm\\sw\\agent", "right")})
        diff = diff_reports([first, second], baseline)
        assert diff.registry_values == {("hklm\\sw\\agent", "left"),
                                        ("hklm\\sw\\agent", "right")}

    def test_baseline_presence_beats_any_sandbox_observation(self):
        baseline = _report("baseline",
                           registry_keys={"hklm\\software\\common"})
        sandbox = _report("a", registry_keys={"hklm\\software\\common",
                                              "hklm\\software\\agent"})
        diff = diff_reports([sandbox], baseline)
        assert diff.registry_keys == {"hklm\\software\\agent"}


class TestIdempotentReapply:
    def _diff(self):
        baseline = _report("baseline")
        sandbox = _report(
            "a",
            files={"c:\\analyzer\\agent.py", "c:\\analyzer\\hooks.dll"},
            processes={"vboxservice.exe"},
            registry_keys={"hklm\\software\\vbox"},
            registry_values={("hklm\\software\\vbox", "guestversion")})
        return diff_reports([sandbox], baseline)

    def test_reapplying_the_same_diff_is_a_fixed_point(self):
        diff = self._diff()
        db = DeceptionDatabase()
        first = extend_database(db, diff)
        counts_after_first = db.counts()
        blob_after_first = db.snapshot_bytes()
        second = extend_database(db, diff)
        assert second == first  # counts report the diff, not the delta
        assert db.counts() == counts_after_first
        assert db.snapshot_bytes() == blob_after_first

    def test_reapply_preserves_lookups_and_origin(self):
        from repro.core.resources import Origin
        diff = self._diff()
        db = DeceptionDatabase()
        extend_database(db, diff)
        extend_database(db, diff)
        resource = db.lookup_file("C:\\analyzer\\agent.py")
        assert resource is not None
        assert resource.origin is Origin.CRAWLED

    def test_mixed_case_observations_do_not_duplicate(self):
        baseline = _report("baseline")
        # run_crawler lowercases; a hand-built report may not. The
        # database's own lowercasing must still collapse the pair.
        sandbox = _report("a", files={"C:\\Analyzer\\Agent.py",
                                      "c:\\analyzer\\agent.py"})
        diff = diff_reports([sandbox], baseline)
        assert len(diff.files) == 2  # set semantics: distinct strings
        db = DeceptionDatabase()
        before = db.counts()["files"]
        extend_database(db, diff)
        assert db.counts()["files"] == before + 1  # one canonical entry


class TestDiffIsPureSetAlgebra:
    def test_diff_does_not_mutate_inputs(self):
        baseline = _report("baseline", files={"c:\\windows\\system32.dll"})
        sandbox = _report("a", files={"c:\\windows\\system32.dll",
                                      "c:\\analyzer\\agent.py"})
        before_baseline = dataclasses.replace(
            baseline, files=set(baseline.files))
        before_sandbox = dataclasses.replace(
            sandbox, files=set(sandbox.files))
        diff_reports([sandbox], baseline)
        assert baseline.files == before_baseline.files
        assert sandbox.files == before_sandbox.files
