"""The deception handlers behind the 29 hooked APIs, as seen by a
protected process. Uses the full controller stack (conftest fixtures)."""

import pytest

from repro.core.handlers import CORE_29_APIS, DECOY_APIS
from repro.hooking import hook_manager_of, looks_hooked
from repro.winapi.ntdll import (ProcessInformationClass,
                                SystemInformationClass)
from repro.winsim.errors import NtStatus, Win32Error, nt_success


class TestHookInventory:
    def test_core_api_count_is_29(self):
        assert len(CORE_29_APIS) == 29
        assert len(set(CORE_29_APIS)) == 29

    def test_all_core_apis_hooked(self, protected):
        manager = hook_manager_of(protected)
        for export in CORE_29_APIS:
            assert manager.is_hooked(export), export

    def test_decoys_hooked(self, protected):
        manager = hook_manager_of(protected)
        for export in DECOY_APIS:
            assert manager.is_hooked(export), export

    def test_network_aux_hooked(self, protected):
        manager = hook_manager_of(protected)
        assert manager.is_hooked("dnsapi.dll!DnsQuery_A")
        assert manager.is_hooked("wininet.dll!InternetOpenUrlA")


class TestRegistryDeception:
    def test_vbox_key_exists(self, protected_api):
        err, handle = protected_api.RegOpenKeyExA(
            "HKEY_LOCAL_MACHINE",
            "SOFTWARE\\Oracle\\VirtualBox Guest Additions")
        assert err == Win32Error.ERROR_SUCCESS
        err, version = protected_api.RegQueryValueExA(handle, "Version")
        assert err == Win32Error.ERROR_SUCCESS and version == "5.2.8"

    def test_native_path_deceived(self, protected_api):
        status, handle = protected_api.NtOpenKeyEx(
            "HKEY_LOCAL_MACHINE\\SOFTWARE\\VMware, Inc.\\VMware Tools")
        assert nt_success(status)
        status, data = protected_api.NtQueryValueKey(handle, "InstallPath")
        assert nt_success(status) and "VMware" in data

    def test_bios_value_on_real_key(self, protected_api):
        err, handle = protected_api.RegOpenKeyExA(
            "HKEY_LOCAL_MACHINE", "HARDWARE\\Description\\System")
        err, bios = protected_api.RegQueryValueExA(handle,
                                                   "SystemBiosVersion")
        assert "VBOX" in bios and "QEMU" in bios

    def test_ide_enum_materialized_with_children(self, protected_api):
        status, handle = protected_api.NtOpenKeyEx(
            "HKEY_LOCAL_MACHINE\\SYSTEM\\CurrentControlSet\\Enum\\IDE")
        assert nt_success(status)
        status, name = protected_api.NtEnumerateKey(handle, 0)
        assert nt_success(status) and "vbox" in name.lower()

    def test_non_deceptive_keys_pass_through(self, protected_api, machine):
        machine.registry.set_value("HKLM\\SOFTWARE\\RealApp", "v", 1)
        err, handle = protected_api.RegOpenKeyExA("HKEY_LOCAL_MACHINE",
                                                  "SOFTWARE\\RealApp")
        assert err == Win32Error.ERROR_SUCCESS
        err, data = protected_api.RegQueryValueExA(handle, "v")
        assert data == 1

    def test_missing_non_deceptive_key_still_missing(self, protected_api):
        err, _ = protected_api.RegOpenKeyExA("HKEY_LOCAL_MACHINE",
                                             "SOFTWARE\\TotallyAbsent")
        assert err == Win32Error.ERROR_FILE_NOT_FOUND

    def test_fake_keys_invisible_to_unprotected(self, machine, api):
        err, _ = api.RegOpenKeyExA(
            "HKEY_LOCAL_MACHINE",
            "SOFTWARE\\Oracle\\VirtualBox Guest Additions")
        assert err == Win32Error.ERROR_FILE_NOT_FOUND

    def test_machine_registry_not_mutated(self, machine, protected_api):
        protected_api.RegOpenKeyExA(
            "HKEY_LOCAL_MACHINE",
            "SOFTWARE\\Oracle\\VirtualBox Guest Additions")
        assert not machine.registry.key_exists(
            "HKLM\\SOFTWARE\\Oracle\\VirtualBox Guest Additions")


class TestFileDeviceDeception:
    def test_vm_driver_file_attrs(self, protected_api):
        from repro.winapi.kernel32 import INVALID_FILE_ATTRIBUTES
        assert protected_api.GetFileAttributesA(
            "C:\\Windows\\System32\\drivers\\vmmouse.sys") != \
            INVALID_FILE_ATTRIBUTES

    def test_nt_query_attributes(self, protected_api):
        status, _ = protected_api.NtQueryAttributesFile(
            "C:\\Windows\\System32\\drivers\\VBoxMouse.sys")
        assert nt_success(status)

    def test_folder_reports_directory(self, protected_api):
        from repro.winsim.filesystem import FILE_ATTRIBUTE_DIRECTORY
        attrs = protected_api.GetFileAttributesA("C:\\analysis")
        assert attrs & FILE_ATTRIBUTE_DIRECTORY

    def test_create_file_fake_handle(self, protected_api):
        handle = protected_api.CreateFileA(
            "C:\\Windows\\System32\\drivers\\vmhgfs.sys")
        assert handle

    def test_device_deceived(self, protected_api):
        assert protected_api.CreateFileA("\\\\.\\vmci")
        assert protected_api.CreateFileA("\\\\.\\VBoxGuest")

    def test_find_first_file_matches_db(self, protected_api):
        name = protected_api.FindFirstFileA(
            "C:\\Windows\\System32\\drivers\\vm*.sys")
        assert name is not None and name.lower().startswith("vm")

    def test_real_files_still_pass_through(self, machine, protected_api):
        machine.filesystem.write_file("C:\\real.txt", b"x")
        handle = protected_api.CreateFileA("C:\\real.txt")
        assert protected_api.ReadFile(handle) == b"x"

    def test_writes_never_deceived(self, machine, protected_api):
        handle = protected_api.CreateFileA("C:\\drop.bin", write=True)
        assert protected_api.WriteFile(handle, b"payload")
        assert machine.filesystem.read_file("C:\\drop.bin") == b"payload"


class TestSystemInfoDeception:
    def test_memory_faked(self, protected_api):
        assert protected_api.GlobalMemoryStatusEx().total_phys < 1024 ** 3

    def test_cores_faked(self, protected_api):
        assert protected_api.GetSystemInfo().number_of_processors == 1

    def test_disk_faked(self, protected_api):
        ok, free, total = protected_api.GetDiskFreeSpaceExA("C:\\")
        assert ok and total == 50 * 1024 ** 3

    def test_geometry_faked(self, protected_api):
        from repro.winapi.kernel32 import IOCTL_DISK_GET_DRIVE_GEOMETRY
        geometry = protected_api.DeviceIoControl(
            "\\\\.\\PhysicalDrive0", IOCTL_DISK_GET_DRIVE_GEOMETRY)
        total = (geometry["cylinders"] * geometry["tracks_per_cylinder"] *
                 geometry["sectors_per_track"] * geometry["bytes_per_sector"])
        assert total < 51 * 1024 ** 3

    def test_nt_basic_information_faked(self, protected_api):
        _, info = protected_api.NtQuerySystemInformation(
            SystemInformationClass.SystemBasicInformation)
        assert info["number_of_processors"] == 1

    def test_process_listing_augmented(self, protected_api):
        _, listing = protected_api.NtQuerySystemInformation(
            SystemInformationClass.SystemProcessInformation)
        names = {p["name"].lower() for p in listing}
        assert "vboxservice.exe" in names
        assert "wireshark.exe" in names

    def test_kernel_debugger_faked(self, protected_api):
        _, info = protected_api.NtQuerySystemInformation(
            SystemInformationClass.SystemKernelDebuggerInformation)
        assert info["debugger_enabled"] is True

    def test_peb_not_faked(self, machine, protected_api):
        """The cbdda64 bypass: PEB reads see the true core count."""
        assert protected_api.read_peb().number_of_processors == \
            machine.hardware.cpu.cores


class TestDebuggerDeception:
    def test_is_debugger_present_true(self, protected_api):
        assert protected_api.IsDebuggerPresent() is True

    def test_check_remote_true(self, protected_api):
        assert protected_api.CheckRemoteDebuggerPresent() is True

    def test_debug_port_faked(self, protected_api):
        _, port = protected_api.NtQueryInformationProcess(
            ProcessInformationClass.ProcessDebugPort)
        assert port == 0xFFFFFFFF

    def test_debug_flags_faked(self, protected_api):
        _, flags = protected_api.NtQueryInformationProcess(
            ProcessInformationClass.ProcessDebugFlags)
        assert flags == 0

    def test_parent_passthrough(self, protected_api, controller):
        _, info = protected_api.NtQueryInformationProcess(
            ProcessInformationClass.ProcessBasicInformation)
        assert info["parent_pid"] == controller.process.pid


class TestModuleWindowDeception:
    def test_sbiedll_handle_faked(self, protected_api):
        assert protected_api.GetModuleHandleA("SbieDll.dll") is not None

    def test_load_library_faked(self, protected_api):
        assert protected_api.LoadLibraryA("api_log.dll") is not None

    def test_wine_export_faked(self, protected_api):
        base = protected_api.GetModuleHandleA("kernel32.dll")
        assert protected_api.GetProcAddress(
            base, "wine_get_unix_file_name") is not None

    def test_normal_modules_pass_through(self, protected_api):
        assert protected_api.GetModuleHandleA("ghost.dll") is None

    def test_debugger_window_faked(self, protected_api):
        assert protected_api.FindWindowA("OLLYDBG") is not None
        assert protected_api.FindWindowA("VBoxTrayToolWndClass") is not None

    def test_unknown_window_passthrough(self, protected_api):
        assert protected_api.FindWindowA("SomeRandomApp") is None

    def test_toolhelp_augmented_with_fake_pids(self, protected_api, machine):
        snapshot = protected_api.CreateToolhelp32Snapshot()
        entries = []
        entry = protected_api.Process32First(snapshot)
        while entry is not None:
            entries.append(entry)
            entry = protected_api.Process32Next(snapshot)
        by_name = {name.lower(): pid for pid, name in entries}
        assert "olydbg.exe" in by_name
        # The fake pid does not correspond to a live process -> kill-proof.
        assert machine.processes.get(by_name["olydbg.exe"]) is None


class TestTimingIdentityDeception:
    def test_tick_count_low_uptime(self, protected_api):
        assert protected_api.GetTickCount() < 12 * 60 * 1000

    def test_tick_rate_slowed(self, protected_api):
        before = protected_api.GetTickCount()
        protected_api.Sleep(1000)
        delta = protected_api.GetTickCount() - before
        assert delta < 900  # sandbox-like acceleration discrepancy

    def test_username_faked(self, protected_api):
        assert protected_api.GetUserNameA() == "currentuser"

    def test_module_path_faked_keeps_basename(self, protected_api,
                                              protected):
        path = protected_api.GetModuleFileNameA(None)
        assert path.startswith("C:\\sample\\")
        assert path.endswith(protected.name)


class TestNetworkDeception:
    def test_nx_domain_sinkholed(self, protected_api):
        ip = protected_api.DnsQuery_A("dga-feed-98765.example-c2.net")
        assert ip == "192.0.2.66"

    def test_real_domain_passthrough(self, machine, protected_api):
        machine.network.register_domain("update.example.com", "4.4.4.4")
        assert protected_api.DnsQuery_A("update.example.com") == "4.4.4.4"

    def test_gethostbyname_sinkholed(self, protected_api):
        assert protected_api.gethostbyname("nx-12345.invalid") is not None

    def test_http_to_nx_succeeds(self, protected_api):
        assert protected_api.InternetOpenUrlA("http://nx-98765.invalid/")

    def test_http_to_real_unreachable_fails(self, machine, protected_api):
        machine.network.register_domain("dead-site.com", "9.9.9.9")
        assert not protected_api.InternetOpenUrlA("http://dead-site.com/")


class TestDecoyHooks:
    def test_decoys_detectable_but_neutral(self, machine, protected_api):
        assert looks_hooked(protected_api.read_function_prologue(
            "shell32.dll!ShellExecuteExW", 2))
        assert looks_hooked(protected_api.read_function_prologue(
            "kernel32.dll!DeleteFileA", 2))
        machine.filesystem.write_file("C:\\x.txt", b"1")
        assert protected_api.DeleteFileA("C:\\x.txt")  # behaviour unchanged
