"""Engine internals, fingerprint log, profile conflict masking (VI-B)."""

import pytest

from repro.core.engine import DeceptionEngine
from repro.core.events import FingerprintEvent, FingerprintLog
from repro.core.profiles import (ALL_PROFILES, ProfileManager,
                                 ScarecrowConfig, VM_PROFILES)
from repro.core.resources import (DeceptiveResource, Origin,
                                  ResourceCategory,
                                  registry_value_identity,
                                  split_registry_value_identity)


class TestFingerprintLog:
    def _event(self, category="debugger", api="kernel32.dll!IsDebuggerPresent"):
        return FingerprintEvent(category, api, "r", 4, 0)

    def test_record_and_first(self):
        log = FingerprintLog()
        assert log.first() is None
        log.record(self._event())
        log.record(self._event("registry", "ntdll.dll!NtOpenKeyEx"))
        assert log.first().category == "debugger"
        assert len(log) == 2

    def test_by_category(self):
        log = FingerprintLog()
        log.record(self._event())
        log.record(self._event("registry"))
        assert len(log.by_category("registry")) == 1

    def test_trigger_name_format(self):
        assert self._event().trigger_name == "IsDebuggerPresent()"

    def test_clear(self):
        log = FingerprintLog()
        log.record(self._event())
        log.clear()
        assert len(log) == 0


class TestResources:
    def test_matches_exact(self):
        resource = DeceptiveResource(ResourceCategory.PROCESS,
                                     "VBoxTray.exe", "vbox")
        assert resource.matches("vboxtray.exe")
        assert not resource.matches("other.exe")

    def test_file_basename_match(self):
        resource = DeceptiveResource(
            ResourceCategory.FILE,
            "C:\\Windows\\System32\\drivers\\vmmouse.sys", "vmware")
        assert resource.matches("vmmouse.sys")
        assert resource.matches("D:\\other\\vmmouse.sys")

    def test_registry_value_identity_roundtrip(self):
        identity = registry_value_identity("HKLM\\A\\B", "Version")
        assert split_registry_value_identity(identity) == \
            ("HKLM\\A\\B", "Version")
        assert split_registry_value_identity("no-separator") is None


class TestEngine:
    def test_applies_checks_profile(self):
        engine = DeceptionEngine(
            config=ScarecrowConfig(profiles={"vmware"}))
        vbox = DeceptiveResource(ResourceCategory.FILE, "f", "vbox")
        vmware = DeceptiveResource(ResourceCategory.FILE, "f", "vmware")
        assert not engine.applies(vbox)
        assert engine.applies(vmware)
        assert not engine.applies(None)

    def test_report_appends_and_ipc(self):
        from repro.hooking.ipc import IpcChannel
        channel = IpcChannel()
        engine = DeceptionEngine(ipc=channel.dll)
        engine.report("debugger", "kernel32.dll!IsDebuggerPresent",
                      "IsDebuggerPresent", 4, 0)
        assert len(engine.log) == 1
        assert channel.controller.receive().kind == "fingerprint_report"

    def test_fake_tick_low_and_slow(self, machine):
        engine = DeceptionEngine()
        engine.attach_process(machine, 400)
        first = engine.fake_tick(machine, 400)
        assert first == engine.db.identity.fake_uptime_base_ms
        machine.clock.advance_ms(1000)
        second = engine.fake_tick(machine, 400)
        assert second - first == pytest.approx(500, abs=32)

    def test_fake_tick_unattached_pid_selfbases(self, machine):
        engine = DeceptionEngine()
        assert engine.fake_tick(machine, 999) == \
            engine.db.identity.fake_uptime_base_ms

    def test_materialize_registry_key_path(self):
        engine = DeceptionEngine()
        key = engine.materialize_registry_key(
            "HKEY_LOCAL_MACHINE\\SOFTWARE\\Oracle\\"
            "VirtualBox Guest Additions")
        assert key.path().endswith("VirtualBox Guest Additions")
        assert key.get_value("Version") is not None

    def test_materialize_counted_key(self):
        engine = DeceptionEngine()
        key = engine.materialize_counted_key("HKLM\\SOFTWARE\\Counted",
                                             subkeys=29, values=3)
        assert key.subkey_count() == 29
        assert key.value_count() == 3

    def test_reset(self, machine):
        engine = DeceptionEngine()
        engine.report("debugger", "a!b", "r", 4, 0)
        engine.attach_process(machine, 4)
        engine.reset()
        assert len(engine.log) == 0


class TestProfileManager:
    def test_all_profiles_active_by_default(self):
        manager = ProfileManager(ScarecrowConfig())
        assert manager.active == set(ALL_PROFILES)

    def test_restricted_profiles(self):
        manager = ProfileManager(ScarecrowConfig(profiles={"vbox"}))
        assert manager.is_active("vbox")
        assert not manager.is_active("vmware")

    def test_no_masking_without_exclusive_mode(self):
        manager = ProfileManager(ScarecrowConfig())
        manager.observe_probe("vbox")
        assert manager.is_active("vmware")
        assert manager.committed_vm is None

    def test_exclusive_mode_masks_conflicting_vms(self):
        manager = ProfileManager(ScarecrowConfig(exclusive_profiles=True))
        manager.observe_probe("vbox")
        assert manager.committed_vm == "vbox"
        assert manager.is_active("vbox")
        for other in VM_PROFILES - {"vbox"}:
            assert not manager.is_active(other)

    def test_exclusive_mode_keeps_compatible_profiles(self):
        manager = ProfileManager(ScarecrowConfig(exclusive_profiles=True))
        manager.observe_probe("vmware")
        assert manager.is_active("debugger")
        assert manager.is_active("sandboxie")

    def test_commitment_is_sticky(self):
        manager = ProfileManager(ScarecrowConfig(exclusive_profiles=True))
        manager.observe_probe("vbox")
        manager.observe_probe("vmware")  # too late, vbox committed
        assert manager.committed_vm == "vbox"
        assert not manager.is_active("vmware")

    def test_compatible_probe_never_commits(self):
        manager = ProfileManager(ScarecrowConfig(exclusive_profiles=True))
        manager.observe_probe("debugger")
        assert manager.committed_vm is None

    def test_reset(self):
        manager = ProfileManager(ScarecrowConfig(exclusive_profiles=True))
        manager.observe_probe("vbox")
        manager.reset()
        assert manager.committed_vm is None
        assert manager.is_active("vmware")


class TestExclusiveProfilesEndToEnd:
    def test_cross_vendor_consistency_check_defeated(self, machine):
        """VI-B: after probing VBox, VMware resources vanish."""
        from repro.core import ScarecrowController
        from repro import winapi
        from repro.winsim.errors import Win32Error
        controller = ScarecrowController(
            machine, config=ScarecrowConfig(exclusive_profiles=True))
        target = controller.launch("C:\\dl\\consistency_checker.exe")
        api = winapi.bind(machine, target)
        err, _ = api.RegOpenKeyExA(
            "HKEY_LOCAL_MACHINE",
            "SOFTWARE\\Oracle\\VirtualBox Guest Additions")
        assert err == Win32Error.ERROR_SUCCESS
        # The conflicting VMware identity is now masked.
        err, _ = api.RegOpenKeyExA("HKEY_LOCAL_MACHINE",
                                   "SOFTWARE\\VMware, Inc.\\VMware Tools")
        assert err == Win32Error.ERROR_FILE_NOT_FOUND
        status, _ = api.NtQueryAttributesFile(
            "C:\\Windows\\System32\\drivers\\vmmouse.sys")
        from repro.winsim.errors import nt_success
        assert not nt_success(status)
