"""Deception database: curated inventory, lookups, crawled extension."""

import pytest

from repro.core.database import (ANALYSIS_DLLS, COMBINED_BIOS_VERSION,
                                 DEBUGGER_WINDOWS, DeceptionDatabase,
                                 PROTECTED_PROCESSES, SANDBOX_WINDOWS)
from repro.core.resources import Origin, ResourceCategory


@pytest.fixture
def db():
    return DeceptionDatabase()


class TestCuratedInventory:
    def test_paper_counts(self, db):
        """Section II-B inventory: 24 processes, 15 DLLs, 6+4 windows."""
        assert len(PROTECTED_PROCESSES) == 24
        assert len(ANALYSIS_DLLS) == 15
        assert len(DEBUGGER_WINDOWS) == 6
        assert len(SANDBOX_WINDOWS) == 4
        counts = db.counts()
        assert counts["processes"] == 24
        assert counts["libraries"] == 15
        assert counts["windows"] == 10

    def test_all_processes_protected(self, db):
        assert len(db.protected_process_names()) == 24

    def test_combined_bios_covers_three_vms(self):
        for marker in ("VBOX", "QEMU", "BOCHS"):
            assert marker in COMBINED_BIOS_VERSION


class TestFileLookups:
    def test_full_path_match(self, db):
        hit = db.lookup_file("C:\\Windows\\System32\\drivers\\vmmouse.sys")
        assert hit is not None and hit.profile == "vmware"

    def test_basename_fallback(self, db):
        assert db.lookup_file("D:\\elsewhere\\vmmouse.sys") is not None

    def test_folder_match(self, db):
        hit = db.lookup_file("C:\\Program Files\\VMware\\VMware Tools")
        assert hit is not None
        assert hit.category is ResourceCategory.FOLDER

    def test_miss(self, db):
        assert db.lookup_file("C:\\Windows\\notepad.exe") is None

    def test_case_insensitive(self, db):
        assert db.lookup_file("C:\\WINDOWS\\SYSTEM32\\DRIVERS\\VMMOUSE.SYS")


class TestProcessLibraryWindowLookups:
    def test_process(self, db):
        assert db.lookup_process("vboxservice.exe").protected
        assert db.lookup_process("notepad.exe") is None

    def test_library_dll_suffix_optional(self, db):
        assert db.lookup_library("SbieDll") is not None
        assert db.lookup_library("SbieDll.dll") is not None
        assert db.lookup_library("harmless.dll") is None

    def test_window_by_class(self, db):
        assert db.lookup_window("OLLYDBG", None) is not None
        assert db.lookup_window("VBoxTrayToolWndClass", None) is not None

    def test_window_by_title(self, db):
        assert db.lookup_window(None, "Immunity Debugger") is not None

    def test_window_both_none(self, db):
        assert db.lookup_window(None, None) is None

    def test_window_mismatch(self, db):
        assert db.lookup_window("OLLYDBG", "Wrong Title") is None


class TestRegistryLookups:
    def test_exact_key(self, db):
        assert db.lookup_registry_key(
            "HKEY_LOCAL_MACHINE\\SOFTWARE\\Oracle\\"
            "VirtualBox Guest Additions") is not None

    def test_ancestor_match(self, db):
        assert db.lookup_registry_key(
            "HKEY_LOCAL_MACHINE\\SOFTWARE\\VMware, Inc.") is not None

    def test_no_descendant_match(self, db):
        assert db.lookup_registry_key(
            "HKEY_LOCAL_MACHINE\\SOFTWARE\\Oracle\\"
            "VirtualBox Guest Additions\\Deeper\\Than\\Db") is None

    def test_miss(self, db):
        assert db.lookup_registry_key("HKLM\\SOFTWARE\\Microsoft") is None

    def test_value_lookup(self, db):
        hit = db.lookup_registry_value(
            "HKEY_LOCAL_MACHINE\\HARDWARE\\Description\\System",
            "SystemBiosVersion")
        assert hit.data == COMBINED_BIOS_VERSION

    def test_values_for_key(self, db):
        values = dict(db.registry_values_for_key(
            "HKEY_LOCAL_MACHINE\\HARDWARE\\Description\\System"))
        assert "systembiosversion" in values
        assert "videobiosversion" in values

    def test_subkeys_for_key(self, db):
        children = db.registry_subkeys_for_key(
            "HKEY_LOCAL_MACHINE\\SYSTEM\\CurrentControlSet\\Enum\\IDE")
        assert any("vbox" in child.lower() for child in children)


class TestDeviceLookups:
    def test_vmci(self, db):
        assert db.lookup_device("\\\\.\\vmci").profile == "vmware"

    def test_vboxguest(self, db):
        assert db.lookup_device("\\\\.\\VBoxGuest").profile == "vbox"

    def test_miss(self, db):
        assert db.lookup_device("\\\\.\\PhysicalDrive0") is None


class TestExtension:
    def test_add_crawled_resources_tracked_by_origin(self, db):
        db.add_file("C:\\vt\\unique.bin", "sandbox-generic",
                    origin=Origin.CRAWLED)
        db.add_process("vt_agent.exe", "sandbox-generic",
                       origin=Origin.CRAWLED)
        db.add_registry_key("HKLM\\SOFTWARE\\VtSandbox", "sandbox-generic",
                            origin=Origin.CRAWLED)
        crawled = db.counts_by_origin(Origin.CRAWLED)
        assert crawled == {"files": 1, "processes": 1, "registry_entries": 1}

    def test_curated_origin_default(self, db):
        curated = db.counts_by_origin(Origin.CURATED)
        assert curated["files"] == db.counts()["files"]


class TestProfiles:
    def test_hardware_profile_paper_values(self, db):
        assert db.hardware.disk_total_bytes == 50 * 1024 ** 3
        assert db.hardware.cpu_cores == 1
        assert db.hardware.ram_total_bytes < 1024 ** 3

    def test_weartear_profile_table3_values(self, db):
        assert db.weartear.dnscache_entries == 4
        assert db.weartear.sysevt_count == 8000
        assert db.weartear.device_cls_count == 29
        assert db.weartear.autorun_count == 3
        assert db.weartear.regsize_bytes == 53 * 1024 * 1024

    def test_weartear_managed_keys_cover_table3(self, db):
        managed = db.weartear.managed_keys()
        assert any("DeviceClasses" in key for key in managed)
        assert any("UserAssist" in key for key in managed)
        assert any("FirewallRules" in key for key in managed)
        assert any("UsbStor" in key for key in managed)

    def test_identity_profile(self, db):
        assert db.identity.username == "currentuser"
        assert db.identity.sample_directory == "C:\\sample"
        assert 0 < db.identity.tick_rate < 1
