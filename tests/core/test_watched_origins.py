"""On-demand service mode: auto-protecting untrusted-origin launches."""

import pytest

from repro import winapi
from repro.core import ScarecrowController
from repro.hooking import is_injected


@pytest.fixture
def watching(machine):
    controller = ScarecrowController(machine)
    controller.watch_untrusted_origins()
    return controller


def _launch(machine, image_path, name=None):
    return machine.spawn_process(name or image_path.rsplit("\\", 1)[-1],
                                 image_path, parent=machine.explorer)


class TestWatchedOrigins:
    def test_download_launch_auto_protected(self, machine, watching):
        target = _launch(machine,
                         "C:\\Users\\user\\Downloads\\freebie.exe")
        assert watching.is_tracked(target.pid)
        assert is_injected(target, "scarecrow.dll")
        assert target.tags["untrusted"] is True
        api = winapi.bind(machine, target)
        assert api.IsDebuggerPresent() is True

    def test_temp_launch_auto_protected(self, machine, watching):
        target = _launch(
            machine,
            "C:\\Users\\user\\AppData\\Local\\Temp\\attachment.exe")
        assert watching.is_tracked(target.pid)

    def test_system_binaries_untouched(self, machine, watching):
        target = _launch(machine, "C:\\Windows\\System32\\notepad.exe")
        assert not watching.is_tracked(target.pid)
        assert not is_injected(target, "scarecrow.dll")
        api = winapi.bind(machine, target)
        assert api.IsDebuggerPresent() is False

    def test_program_files_untouched(self, machine, watching):
        target = _launch(machine,
                         "C:\\Program Files\\Google Chrome\\chrome.exe")
        assert not watching.is_tracked(target.pid)

    def test_children_of_auto_protected_followed(self, machine, watching):
        target = _launch(machine,
                         "C:\\Users\\user\\Downloads\\dropper.exe")
        api = winapi.bind(machine, target)
        child = api.CreateProcessA("C:\\Windows\\Temp\\stage2.exe")
        assert watching.is_tracked(child.pid)
        assert is_injected(child, "scarecrow.dll")

    def test_custom_prefixes(self, machine):
        controller = ScarecrowController(machine)
        controller.watch_untrusted_origins(["D:\\incoming"])
        machine.filesystem.add_drive("D:", 10 * 1024 ** 3)
        hot = _launch(machine, "D:\\incoming\\sample.exe")
        cold = _launch(machine, "C:\\Users\\user\\Downloads\\other.exe")
        assert controller.is_tracked(hot.pid)
        assert not controller.is_tracked(cold.pid)

    def test_auto_protected_root_not_counted_as_self_spawn(self, machine,
                                                           watching):
        # Two *independent* launches of the same download must not trip
        # the spawn-loop policy (they are fresh roots, not a respawn loop).
        for _ in range(12):
            _launch(machine, "C:\\Users\\user\\Downloads\\popular.exe")
        assert watching.alarms == []

    def test_spawn_loop_still_detected_inside_tree(self, machine, watching):
        target = _launch(machine, "C:\\Users\\user\\Downloads\\bomb.exe")
        current = target
        for _ in range(10):
            api = winapi.bind(machine, current)
            current = api.CreateProcessW(target.image_path)
        assert watching.alarms

    def test_without_watch_mode_nothing_happens(self, machine, controller):
        target = _launch(machine, "C:\\Users\\user\\Downloads\\x.exe")
        assert not controller.is_tracked(target.pid)
