"""Section II-B(g): exception-processing timing deception."""

import pytest

from repro import winapi
from repro.malware.techniques import get_check


class TestRaiseExceptionApi:
    def test_native_dispatch_cheap(self, machine, api):
        before = machine.clock.now_ns
        api.RaiseException(0xC0000005)
        cost = machine.clock.now_ns - before
        assert cost < 10_000  # well under 10 µs

    def test_debugged_dispatch_expensive(self, machine, api, target):
        target.peb.being_debugged = True
        before = machine.clock.now_ns
        api.RaiseException(0xC0000005)
        assert machine.clock.now_ns - before > 100_000

    def test_exception_event_published(self, machine, api):
        events = []
        machine.bus.subscribe(events.append)
        api.RaiseException(0xDEAD)
        assert any(e.category == "exception" and e.detail("code") == 0xDEAD
                   for e in events)


class TestExceptionTimingCheck:
    def test_clean_machine_negative(self, api):
        assert not get_check("exception_timing").run(api)

    def test_real_debugger_positive(self, api, target):
        target.peb.being_debugged = True
        assert get_check("exception_timing").run(api)

    def test_scarecrow_fakes_the_discrepancy(self, machine, protected_api):
        """The deception makes the *timing* look debugged even though the
        PEB flag is untouched (benign software never notices)."""
        assert get_check("exception_timing").run(protected_api)
        assert protected_api.read_peb().being_debugged is False

    def test_timing_flag_gates_it(self, machine):
        from repro.core import ScarecrowConfig, ScarecrowController
        controller = ScarecrowController(
            machine, config=ScarecrowConfig(enable_timing=False))
        target = controller.launch("C:\\dl\\x.exe")
        api = winapi.bind(machine, target)
        assert not get_check("exception_timing").run(api)

    def test_reported_as_timing_category(self, machine, controller,
                                         protected_api):
        get_check("exception_timing").run(protected_api)
        assert any(e.category == "timing" and e.resource == "RaiseException"
                   for e in controller.fingerprint_events())
