"""Property-based invariants for database snapshot/freeze (hypothesis).

The parallel sweep engine ships one :class:`DatabaseSnapshot` per worker
pool and rehydrates a :class:`FrozenDeceptionDatabase` inside each worker.
Two properties keep that safe:

* arbitrary interleavings of *reads* on a frozen snapshot never mutate the
  parent database, and
* a frozen snapshot pickles/unpickles to an equal object (the pool pipe is
  lossless).
"""

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (DeceptionDatabase, FrozenDatabaseError,
                        FrozenDeceptionDatabase)

_names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789_", min_size=1, max_size=10)
_profiles = st.sampled_from(
    ["vmware", "vbox", "cuckoo", "debugger", "forensic", "sandbox-generic"])

#: One mutation of the parent database: (method, args-builder).
_mutations = st.one_of(
    st.tuples(st.just("add_file"),
              st.tuples(_names.map(lambda n: f"C:\\extra\\{n}.sys"),
                        _profiles)),
    st.tuples(st.just("add_folder"),
              st.tuples(_names.map(lambda n: f"C:\\extra\\{n}"), _profiles)),
    st.tuples(st.just("add_process"),
              st.tuples(_names.map(lambda n: f"{n}.exe"), _profiles)),
    st.tuples(st.just("add_library"),
              st.tuples(_names.map(lambda n: f"{n}.dll"), _profiles)),
    st.tuples(st.just("add_registry_key"),
              st.tuples(_names.map(lambda n: f"HKEY_LOCAL_MACHINE\\SOFTWARE\\{n}"),
                        _profiles)),
    st.tuples(st.just("add_device"),
              st.tuples(_names.map(lambda n: f"\\\\.\\{n}"), _profiles)),
    st.tuples(st.just("add_mutex"), st.tuples(_names, _profiles)),
)

#: One read against a database: (method, args).
_reads = st.one_of(
    st.tuples(st.just("lookup_file"),
              st.tuples(st.one_of(
                  _names.map(lambda n: f"C:\\probe\\{n}"),
                  st.just("C:\\Windows\\System32\\drivers\\vmmouse.sys")))),
    st.tuples(st.just("lookup_process"),
              st.tuples(st.one_of(_names, st.just("vmtoolsd.exe")))),
    st.tuples(st.just("lookup_library"),
              st.tuples(st.one_of(_names, st.just("SbieDll.dll")))),
    st.tuples(st.just("lookup_registry_key"),
              st.tuples(st.one_of(
                  _names.map(lambda n: f"HKEY_LOCAL_MACHINE\\{n}"),
                  st.just("HKEY_CURRENT_USER\\Software\\Wine")))),
    st.tuples(st.just("lookup_device"),
              st.tuples(_names.map(lambda n: f"\\\\.\\{n}"))),
    st.tuples(st.just("lookup_mutex"),
              st.tuples(st.one_of(_names, st.just("Frz_State")))),
    st.tuples(st.just("lookup_window"),
              st.tuples(st.just("OLLYDBG"), st.none())),
    st.tuples(st.just("registry_values_for_key"),
              st.tuples(st.just(
                  "HKEY_LOCAL_MACHINE\\HARDWARE\\Description\\System"))),
    st.tuples(st.just("registry_subkeys_for_key"),
              st.tuples(st.just("HKEY_LOCAL_MACHINE\\SOFTWARE"))),
    st.tuples(st.just("protected_process_names"), st.tuples()),
    st.tuples(st.just("deceptive_process_names"), st.tuples()),
    st.tuples(st.just("counts"), st.tuples()),
)


def _apply(database, calls):
    for method, args in calls:
        getattr(database, method)(*args)


class TestFrozenReadsNeverMutateParent:
    @given(mutations=st.lists(_mutations, max_size=8),
           reads=st.lists(_reads, max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_read_interleavings_leave_parent_untouched(self, mutations,
                                                       reads):
        parent = DeceptionDatabase()
        _apply(parent, mutations)
        before = parent.snapshot()
        frozen = parent.freeze()
        for method, args in reads:
            getattr(frozen, method)(*args)
        assert parent.snapshot() == before
        assert parent == DeceptionDatabase.from_snapshot(before)

    @given(mutations=st.lists(_mutations, min_size=1, max_size=6))
    @settings(max_examples=30, deadline=None)
    def test_parent_mutations_never_reach_the_frozen_copy(self, mutations):
        parent = DeceptionDatabase()
        frozen = parent.freeze()
        reference = parent.snapshot()
        _apply(parent, mutations)
        assert frozen.snapshot() == reference

    @given(mutation=_mutations)
    @settings(max_examples=30, deadline=None)
    def test_every_mutator_raises_on_frozen(self, mutation):
        frozen = DeceptionDatabase().freeze()
        method, args = mutation
        before = frozen.snapshot()
        with pytest.raises(FrozenDatabaseError):
            getattr(frozen, method)(*args)
        assert frozen.snapshot() == before


class TestSnapshotPickleFidelity:
    @given(mutations=st.lists(_mutations, max_size=8))
    @settings(max_examples=30, deadline=None)
    def test_frozen_snapshot_pickles_to_equal_object(self, mutations):
        parent = DeceptionDatabase()
        _apply(parent, mutations)
        frozen = parent.freeze()
        clone = pickle.loads(pickle.dumps(frozen))
        assert isinstance(clone, FrozenDeceptionDatabase)
        assert clone == frozen
        assert clone.snapshot() == frozen.snapshot()
        with pytest.raises(FrozenDatabaseError):
            clone.add_mutex("post_pickle", "sandbox-generic")

    @given(mutations=st.lists(_mutations, max_size=8))
    @settings(max_examples=30, deadline=None)
    def test_snapshot_roundtrip_preserves_equality(self, mutations):
        parent = DeceptionDatabase()
        _apply(parent, mutations)
        snapshot = pickle.loads(pickle.dumps(parent.snapshot()))
        rebuilt = DeceptionDatabase.from_snapshot(snapshot)
        assert rebuilt == parent
        assert rebuilt.counts() == parent.counts()

    def test_thaw_restores_mutability(self):
        frozen = DeceptionDatabase().freeze()
        thawed = frozen.thaw()
        assert type(thawed) is DeceptionDatabase
        thawed.add_file("C:\\extra\\post_thaw.sys", "vmware")
        assert thawed.lookup_file("C:\\extra\\post_thaw.sys") is not None
        assert frozen.lookup_file("C:\\extra\\post_thaw.sys") is None


class TestSnapshotBytesMemoInvalidation:
    """The snapshot_bytes() memo must never survive a state restore.

    Regression: _restore_snapshot replaces every container wholesale
    without going through the add_* mutation counter, so a live instance
    with a warm memo kept serving the pre-restore blob. The restore path
    now bumps the counter and drops the cached blob explicitly.
    """

    def test_restore_in_place_invalidates_warm_memo(self):
        state_a = DeceptionDatabase().snapshot()
        richer = DeceptionDatabase()
        richer.add_file("C:\\extra\\restored_marker.sys", "vmware")
        state_b = richer.snapshot()

        db = DeceptionDatabase.from_snapshot(state_a)
        stale = db.snapshot_bytes()
        assert db.snapshot_bytes() is stale  # memo is warm

        db._restore_snapshot(state_b)
        fresh = db.snapshot_bytes()
        assert fresh != stale
        restored = pickle.loads(fresh)
        assert "c:\\extra\\restored_marker.sys" in restored.files

    def test_version_based_rehydration_round_trips_bytes(self):
        # The dbops worker path: blob -> FrozenDeceptionDatabase ->
        # snapshot_bytes must reproduce content, not a stale memo.
        richer = DeceptionDatabase()
        richer.add_process("rollout_probe.exe", "sandbox-generic")
        blob = richer.snapshot_bytes()
        rehydrated = FrozenDeceptionDatabase.from_snapshot(
            pickle.loads(blob))
        assert pickle.loads(rehydrated.snapshot_bytes()).processes.keys() \
            == pickle.loads(blob).processes.keys()

    def test_mutation_after_restore_yields_third_distinct_blob(self):
        db = DeceptionDatabase.from_snapshot(DeceptionDatabase().snapshot())
        first = db.snapshot_bytes()
        db._restore_snapshot(DeceptionDatabase().snapshot())
        second = db.snapshot_bytes()
        db.add_file("C:\\extra\\after_restore.sys", "vbox")
        third = db.snapshot_bytes()
        assert first is not second
        assert third != second
        assert "c:\\extra\\after_restore.sys" in pickle.loads(third).files
