"""Wide-char API variants are deceived identically to their A siblings.

An unhooked ``...W`` export would be a clean deception bypass (malware
routinely calls the W family); these tests pin the alias coverage.
"""

import pytest

from repro.core.handlers import W_VARIANT_ALIASES
from repro.hooking import hook_manager_of
from repro.winsim.errors import Win32Error


class TestAliasInventory:
    def test_every_alias_targets_registered_handler(self, protected):
        manager = hook_manager_of(protected)
        for alias, base in W_VARIANT_ALIASES.items():
            assert manager.is_hooked(alias), alias
            assert manager.is_hooked(base), base

    def test_alias_names_are_w_variants(self):
        for alias, base in W_VARIANT_ALIASES.items():
            assert alias.endswith("W")
            assert base.endswith("A")
            assert alias[:-1] == base[:-1]


class TestWideDeception:
    def test_module_handle_w(self, protected_api):
        assert protected_api.GetModuleHandleW("SbieDll.dll") is not None

    def test_find_window_w(self, protected_api):
        assert protected_api.FindWindowW("WinDbgFrameClass") is not None

    def test_reg_open_w(self, protected_api):
        err, handle = protected_api.RegOpenKeyExW(
            "HKEY_LOCAL_MACHINE",
            "SOFTWARE\\Oracle\\VirtualBox Guest Additions")
        assert err == Win32Error.ERROR_SUCCESS
        err, version = protected_api.RegQueryValueExW(handle, "Version")
        assert version == "5.2.8"

    def test_file_attributes_w(self, protected_api):
        from repro.winapi.kernel32 import INVALID_FILE_ATTRIBUTES
        assert protected_api.GetFileAttributesW(
            "C:\\Windows\\System32\\drivers\\vmhgfs.sys") != \
            INVALID_FILE_ATTRIBUTES

    def test_create_file_w_device(self, protected_api):
        assert protected_api.CreateFileW("\\\\.\\VBoxGuest")

    def test_username_w(self, protected_api):
        assert protected_api.GetUserNameW() == "currentuser"

    def test_module_file_name_w(self, protected_api):
        assert protected_api.GetModuleFileNameW(None).startswith(
            "C:\\sample\\")


class TestWideParityWithNarrow:
    """W and A answers must agree, hooked or not."""

    @pytest.mark.parametrize("fixture_name", ["api", "protected_api"])
    def test_agreement(self, fixture_name, request):
        api = request.getfixturevalue(fixture_name)
        assert api.GetModuleHandleW("SbieDll.dll") == \
            api.GetModuleHandleA("SbieDll.dll")
        assert api.FindWindowW("OLLYDBG") == api.FindWindowA("OLLYDBG")
        assert api.GetUserNameW() == api.GetUserNameA()
        assert api.GetModuleFileNameW(None) == api.GetModuleFileNameA(None)
        w_err, _ = api.RegOpenKeyExW("HKEY_LOCAL_MACHINE",
                                     "SOFTWARE\\VMware, Inc.\\VMware Tools")
        a_err, _ = api.RegOpenKeyExA("HKEY_LOCAL_MACHINE",
                                     "SOFTWARE\\VMware, Inc.\\VMware Tools")
        assert w_err == a_err
