"""Controller lifecycle, child following, IPC reports, spawn-loop policy."""

import pytest

from repro import winapi
from repro.core import (ScarecrowConfig, ScarecrowController, SpawnLoopPolicy)
from repro.core.controller import CONTROLLER_IMAGE
from repro.hooking import hook_manager_of, is_injected


class TestLaunch:
    def test_controller_process_spawned(self, controller, protected):
        assert controller.process.name == "scarecrow.exe"
        assert controller.process.image_path == CONTROLLER_IMAGE

    def test_start_idempotent(self, controller):
        first = controller.start()
        assert controller.start() is first

    def test_target_parent_is_controller(self, controller, protected):
        assert protected.parent is controller.process

    def test_target_marked_untrusted(self, protected):
        assert protected.tags["untrusted"] is True

    def test_dll_injected(self, protected):
        assert is_injected(protected, "scarecrow.dll")
        assert protected.modules.is_loaded("scarecrow.dll")

    def test_hooks_installed_counted(self, protected):
        assert protected.tags["scarecrow_hooks_installed"] >= 29

    def test_protect_existing(self, machine, controller):
        existing = machine.spawn_process("running.exe",
                                         parent=machine.explorer)
        controller.protect_existing(existing)
        assert is_injected(existing, "scarecrow.dll")
        assert controller.is_tracked(existing.pid)


class TestChildFollowing:
    def test_child_injected(self, machine, controller, protected):
        api = winapi.bind(machine, protected)
        child = api.CreateProcessA("C:\\evil\\stage2.exe")
        assert is_injected(child, "scarecrow.dll")
        assert controller.is_tracked(child.pid)

    def test_grandchild_injected(self, machine, controller, protected):
        api = winapi.bind(machine, protected)
        child = api.CreateProcessA("C:\\evil\\stage2.exe")
        child_api = winapi.bind(machine, child)
        grandchild = child_api.CreateProcessA("C:\\evil\\stage3.exe")
        assert is_injected(grandchild, "scarecrow.dll")

    def test_unrelated_processes_not_injected(self, machine, controller,
                                              protected):
        bystander = machine.spawn_process("benign.exe",
                                          parent=machine.explorer)
        assert not is_injected(bystander, "scarecrow.dll")

    def test_child_sees_deception(self, machine, controller, protected):
        api = winapi.bind(machine, protected)
        child = api.CreateProcessA("C:\\evil\\stage2.exe")
        child_api = winapi.bind(machine, child)
        assert child_api.IsDebuggerPresent() is True

    def test_shutdown_stops_following(self, machine, controller, protected):
        controller.shutdown()
        child = machine.spawn_process("late.exe", parent=protected)
        assert not is_injected(child, "scarecrow.dll")
        assert not controller.process.alive


class TestReports:
    def test_fingerprint_events_recorded(self, machine, controller,
                                         protected_api):
        protected_api.IsDebuggerPresent()
        events = controller.fingerprint_events()
        assert events and events[0].category == "debugger"
        assert controller.first_trigger().trigger_name == \
            "IsDebuggerPresent()"

    def test_ipc_reports_delivered(self, controller, protected_api):
        protected_api.IsDebuggerPresent()
        protected_api.GetModuleHandleA("SbieDll.dll")
        messages = controller.drain_reports()
        assert len(messages) == 2
        assert messages[0].kind == "fingerprint_report"
        assert controller.drain_reports() == []

    def test_summary_by_category(self, controller, protected_api):
        protected_api.IsDebuggerPresent()
        protected_api.GetTickCount()
        summary = controller.summary()
        assert summary["debugger"] == 1
        assert summary["timing"] == 1


class TestConfigUpdates:
    def test_push_config_disables_group(self, machine, controller,
                                         protected_api):
        assert protected_api.IsDebuggerPresent() is True
        controller.push_config_update(enable_debugger=False)
        assert protected_api.IsDebuggerPresent() is False

    def test_push_config_unknown_field_rejected(self, controller, protected):
        with pytest.raises(AttributeError):
            controller.push_config_update(no_such_flag=True)

    def test_config_update_sent_over_ipc(self, controller, protected):
        controller.push_config_update(enable_network=False)
        messages = controller.ipc.dll.drain()
        assert any(m.kind == "config_update" for m in messages)

    def test_weartear_enable_at_runtime(self, machine, controller,
                                        protected_api):
        machine.dnscache.populate(f"h{i}.com" for i in range(50))
        assert len(protected_api.DnsGetCacheDataTable()) == 50
        controller.push_config_update(enable_weartear=True)
        assert len(protected_api.DnsGetCacheDataTable()) == 4


class TestSpawnLoopPolicy:
    def _spawn_loop(self, machine, controller, protected, count):
        current = protected
        for _ in range(count):
            api = winapi.bind(machine, current)
            current = api.CreateProcessW(protected.image_path)
        return current

    def test_alarm_raised_at_threshold(self, machine, controller, protected):
        self._spawn_loop(machine, controller, protected, 10)
        assert len(controller.alarms) == 1
        alarm = controller.alarms[0]
        assert alarm.spawn_count == 10 and not alarm.mitigated

    def test_single_alarm_per_image(self, machine, controller, protected):
        self._spawn_loop(machine, controller, protected, 15)
        assert len(controller.alarms) == 1

    def test_below_threshold_no_alarm(self, machine, controller, protected):
        self._spawn_loop(machine, controller, protected, 5)
        assert controller.alarms == []

    def test_alarm_event_published(self, machine, controller, protected):
        events = []
        machine.bus.subscribe(events.append)
        self._spawn_loop(machine, controller, protected, 10)
        assert any(e.category == "scarecrow" and e.name == "SpawnLoopAlarm"
                   for e in events)

    def test_active_mitigation_kills_lineage(self, machine):
        controller = ScarecrowController(
            machine, policy=SpawnLoopPolicy(active_mitigation=True))
        protected = controller.launch("C:\\dl\\bomb.exe")
        current = protected
        for _ in range(10):
            api = winapi.bind(machine, current)
            current = api.CreateProcessW(protected.image_path)
            if not current.alive:
                break
        assert controller.alarms and controller.alarms[0].mitigated
        assert not current.alive

    def test_policy_counts(self):
        policy = SpawnLoopPolicy(threshold=3)
        assert policy.spawn_count("x.exe") == 0
        assert not policy.is_looping("x.exe")

    def test_non_self_spawn_not_counted(self, machine, controller,
                                        protected):
        api = winapi.bind(machine, protected)
        for index in range(12):
            api.CreateProcessA(f"C:\\drop\\unique_{index}.exe")
        assert controller.alarms == []
