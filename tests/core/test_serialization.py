"""JSON round-tripping of the deception database and configuration."""

import json

import pytest

from repro.core import DeceptionDatabase, ScarecrowConfig
from repro.core.resources import Origin
from repro.core.serialization import (dump_config, dump_database,
                                      load_config, load_database,
                                      load_database_file, save_database)


class TestDatabaseRoundtrip:
    def test_curated_roundtrip_preserves_counts(self):
        db = DeceptionDatabase()
        loaded = load_database(dump_database(db))
        assert loaded.counts() == db.counts()

    def test_lookup_equivalence(self):
        loaded = load_database(dump_database(DeceptionDatabase()))
        assert loaded.lookup_file(
            "C:\\Windows\\System32\\drivers\\vmmouse.sys") is not None
        assert loaded.lookup_process("VBoxTray.exe").protected
        assert loaded.lookup_window("OLLYDBG", None) is not None
        assert loaded.lookup_registry_value(
            "HKEY_LOCAL_MACHINE\\HARDWARE\\Description\\System",
            "SystemBiosVersion").data == \
            DeceptionDatabase().lookup_registry_value(
                "HKEY_LOCAL_MACHINE\\HARDWARE\\Description\\System",
                "SystemBiosVersion").data
        assert loaded.lookup_mutex(
            "Sandboxie_SingleInstanceMutex_Control") is not None

    def test_crawled_resources_survive(self):
        db = DeceptionDatabase()
        db.add_file("C:\\vt\\crawled.bin", "sandbox-generic",
                    origin=Origin.CRAWLED)
        loaded = load_database(dump_database(db))
        resource = loaded.lookup_file("C:\\vt\\crawled.bin")
        assert resource is not None and resource.origin is Origin.CRAWLED
        assert loaded.counts_by_origin(Origin.CRAWLED)["files"] == 1

    def test_profiles_survive(self):
        db = DeceptionDatabase()
        db.hardware.disk_total_bytes = 77
        db.weartear.dnscache_entries = 9
        loaded = load_database(dump_database(db))
        assert loaded.hardware.disk_total_bytes == 77
        assert loaded.weartear.dnscache_entries == 9

    def test_json_serializable(self):
        json.dumps(dump_database(DeceptionDatabase()))

    def test_file_roundtrip(self, tmp_path):
        path = str(tmp_path / "scarecrow_db.json")
        db = DeceptionDatabase()
        db.add_registry_key("HKLM\\SOFTWARE\\Persisted", "sandbox-generic",
                            origin=Origin.MALGENE)
        save_database(db, path)
        loaded = load_database_file(path)
        hit = loaded.lookup_registry_key("HKLM\\SOFTWARE\\Persisted")
        assert hit is not None and hit.origin is Origin.MALGENE

    def test_version_gate(self):
        blob = dump_database(DeceptionDatabase())
        blob["version"] = 99
        with pytest.raises(ValueError):
            load_database(blob)

    def test_loaded_db_drives_deception(self, machine):
        from repro import winapi
        from repro.core import ScarecrowController
        loaded = load_database(dump_database(DeceptionDatabase()))
        controller = ScarecrowController(machine, database=loaded)
        target = controller.launch("C:\\dl\\x.exe")
        api = winapi.bind(machine, target)
        assert api.IsDebuggerPresent() is True
        assert api.GetModuleHandleA("SbieDll.dll") is not None


class TestConfigRoundtrip:
    def test_default_roundtrip(self):
        config = ScarecrowConfig()
        assert load_config(dump_config(config)) == config

    def test_custom_roundtrip(self):
        config = ScarecrowConfig(enable_weartear=True,
                                 enable_username=False,
                                 exclusive_profiles=True,
                                 profiles={"vbox", "debugger"})
        loaded = load_config(dump_config(config))
        assert loaded == config
        assert loaded.profiles == {"vbox", "debugger"}

    def test_json_serializable(self):
        json.dumps(dump_config(ScarecrowConfig(profiles={"vbox"})))

    def test_unknown_fields_rejected(self):
        with pytest.raises(ValueError):
            load_config({"enable_everything": True})
