"""Wear-and-tear handler internals: managed keys, event cursor, quota."""

import pytest

from repro import winapi
from repro.core import ScarecrowConfig, ScarecrowController
from repro.winapi.ntdll import SystemInformationClass
from repro.winsim.errors import Win32Error, nt_success


@pytest.fixture
def wt_api(machine):
    # Age the machine so the clamping is observable.
    machine.dnscache.populate(f"h{i}.com" for i in range(100))
    machine.eventlog.extend_synthetic(20_000,
                                      [f"S{i}" for i in range(30)])
    for index in range(120):
        machine.registry.create_key(
            "HKLM\\SYSTEM\\CurrentControlSet\\Control\\DeviceClasses\\"
            f"{{real-{index:03d}}}")
        machine.registry.set_value(
            "HKLM\\SOFTWARE\\Microsoft\\Windows\\CurrentVersion\\Run",
            f"Auto{index:03d}", "app.exe")
    controller = ScarecrowController(
        machine, config=ScarecrowConfig(enable_weartear=True))
    target = controller.launch("C:\\dl\\wt.exe")
    return winapi.bind(machine, target)


class TestManagedRegistryKeys:
    def test_device_classes_clamped_native(self, wt_api):
        status, handle = wt_api.NtOpenKeyEx(
            "HKEY_LOCAL_MACHINE\\SYSTEM\\CurrentControlSet\\Control\\"
            "DeviceClasses")
        assert nt_success(status)
        status, info = wt_api.NtQueryKey(handle)
        assert info["subkeys"] == 29

    def test_device_classes_clamped_win32(self, wt_api):
        err, handle = wt_api.RegOpenKeyExA(
            "HKEY_LOCAL_MACHINE",
            "SYSTEM\\CurrentControlSet\\Control\\DeviceClasses")
        assert err == Win32Error.ERROR_SUCCESS
        err, info = wt_api.RegQueryInfoKeyA(handle)
        assert info["subkeys"] == 29

    def test_autorun_values_clamped(self, wt_api):
        status, handle = wt_api.NtOpenKeyEx(
            "HKEY_LOCAL_MACHINE\\SOFTWARE\\Microsoft\\Windows\\"
            "CurrentVersion\\Run")
        status, info = wt_api.NtQueryKey(handle)
        assert info["values"] == 3

    def test_counted_key_enumeration_consistent(self, wt_api):
        """Enumerating the materialized key yields exactly the clamped
        cardinality — counts and enumeration cannot disagree."""
        status, handle = wt_api.NtOpenKeyEx(
            "HKEY_LOCAL_MACHINE\\SYSTEM\\CurrentControlSet\\Control\\"
            "DeviceClasses")
        names = []
        index = 0
        while True:
            st, name = wt_api.NtEnumerateKey(handle, index)
            if not nt_success(st) or name is None:
                break
            names.append(name)
            index += 1
        assert len(names) == 29

    def test_real_registry_untouched(self, machine, wt_api):
        wt_api.NtOpenKeyEx(
            "HKEY_LOCAL_MACHINE\\SYSTEM\\CurrentControlSet\\Control\\"
            "DeviceClasses")
        real = machine.registry.open_key(
            "HKLM\\SYSTEM\\CurrentControlSet\\Control\\DeviceClasses")
        assert real.subkey_count() == 120

    def test_unmanaged_keys_unaffected(self, machine, wt_api):
        machine.registry.create_key("HKLM\\SOFTWARE\\Untouched\\A")
        status, handle = wt_api.NtOpenKeyEx("HKEY_LOCAL_MACHINE\\SOFTWARE\\"
                                            "Untouched")
        status, info = wt_api.NtQueryKey(handle)
        assert info["subkeys"] == 1


class TestEventAndDnsClamps:
    def test_evt_cursor_yields_exactly_8000(self, wt_api):
        query = wt_api.EvtQuery("System")
        total = 0
        sources = set()
        while True:
            batch = wt_api.EvtNext(query, 750)
            if not batch:
                break
            total += len(batch)
            sources.update(record.source for record in batch)
        assert total == 8000
        assert len(sources) == 6

    def test_dns_table_truncated_to_recent_4(self, wt_api):
        table = wt_api.DnsGetCacheDataTable()
        assert len(table) == 4
        # Most-recent entries survive the truncation.
        assert table[-1][0] == "h99.com"

    def test_registry_quota_53mb(self, wt_api):
        status, info = wt_api.NtQuerySystemInformation(
            SystemInformationClass.SystemRegistryQuotaInformation)
        assert info["registry_quota_used"] == 53 * 1024 * 1024


class TestDisabledByDefault:
    def test_weartear_off_means_passthrough(self, machine, controller,
                                            protected_api):
        machine.dnscache.populate(f"x{i}.com" for i in range(40))
        assert len(protected_api.DnsGetCacheDataTable()) == 40
