"""Mutex namespace, new PEB/mutex techniques, and the vaccination baseline."""

import pytest

from repro.core import (KNOWN_VACCINES, ScarecrowController,
                        VaccinationAgent, build_marker_gated_corpus)
from repro.core.vaccine import FamilyVaccine
from repro.malware.techniques import get_check
from repro.winsim.mutexes import MutexNamespace


class TestMutexNamespace:
    def test_create_then_exists(self):
        ns = MutexNamespace()
        assert ns.create("Global\\Marker")
        assert ns.exists("marker")
        assert ns.exists("Local\\MARKER")

    def test_second_create_reports_existing(self):
        ns = MutexNamespace()
        assert ns.create("M")
        assert not ns.create("M")

    def test_release(self):
        ns = MutexNamespace()
        ns.create("M")
        assert ns.release("Global\\m")
        assert not ns.exists("M")
        assert not ns.release("M")

    def test_snapshot(self):
        ns = MutexNamespace()
        ns.create("A")
        state = ns.snapshot()
        ns.create("B")
        ns.restore(state)
        assert ns.exists("A") and not ns.exists("B")


class TestMutexApis:
    def test_create_mutex_already_exists_error(self, machine, api):
        handle = api.CreateMutexA("OnlyOnce")
        assert handle and api.get_last_error() == 0
        api.CreateMutexA("OnlyOnce")
        assert api.get_last_error() == 183

    def test_open_mutex(self, machine, api):
        assert api.OpenMutexA("Ghost") is None
        machine.mutexes.create("Real")
        assert api.OpenMutexA("Real") is not None

    def test_anonymous_mutex(self, api):
        assert api.CreateMutexA(None)

    def test_mutex_event_published(self, machine, api):
        events = []
        machine.bus.subscribe(events.append)
        api.CreateMutexA("Traced")
        assert any(e.category == "mutex" for e in events)


class TestNewTechniques:
    def test_heap_flags_peb_only(self, api, target):
        check = get_check("heap_flags_debugged")
        assert not check.scarecrow_fakeable
        assert not check.run(api)
        target.peb.heap_flags |= 0x60
        assert check.run(api)

    def test_nt_global_flag(self, api, target):
        check = get_check("nt_global_flag")
        assert not check.run(api)
        target.peb.nt_global_flag = 0x70
        assert check.run(api)

    def test_output_debug_string_trick(self, api, target):
        check = get_check("output_debug_string")
        assert not check.run(api)
        target.peb.being_debugged = True
        assert check.run(api)

    def test_qpc_gap_never_fires_normally(self, api):
        assert not get_check("qpc_timing_gap").run(api)

    def test_sandboxie_mutex_deceived_by_scarecrow(self, machine,
                                                   protected_api, api):
        check = get_check("sandboxie_mutex")
        assert check.run(protected_api)
        assert not check.run(api)

    def test_infection_marker_without_tag(self, api):
        assert not get_check("infection_marker_mutex").run(api)

    def test_infection_marker_with_existing_mutex(self, machine, api,
                                                  target):
        target.tags["infection_marker"] = "FamMarker"
        machine.mutexes.create("FamMarker")
        assert get_check("infection_marker_mutex").run(api)

    def test_infection_marker_first_run_creates(self, machine, api, target):
        target.tags["infection_marker"] = "FamMarker"
        assert not get_check("infection_marker_mutex").run(api)
        assert machine.mutexes.exists("FamMarker")
        # The second run (e.g. re-infection attempt) now stands down.
        assert get_check("infection_marker_mutex").run(api)


class TestVaccinationAgent:
    def test_inoculate_all(self, machine):
        agent = VaccinationAgent()
        count = agent.inoculate(machine)
        assert count == len(KNOWN_VACCINES)
        for vaccine in KNOWN_VACCINES:
            assert agent.is_inoculated(machine, vaccine.family)

    def test_inoculate_selected_family(self, machine):
        agent = VaccinationAgent()
        assert agent.inoculate(machine, families=["Zeus"]) == 1
        assert agent.is_inoculated(machine, "zeus")
        assert not agent.is_inoculated(machine, "Conficker")

    def test_markers_land_on_all_surfaces(self, machine):
        agent = VaccinationAgent([FamilyVaccine(
            "Tri", mutex_markers=("TriM",), file_markers=("C:\\tri.dat",),
            registry_markers=("HKLM\\SOFTWARE\\Tri",))])
        agent.inoculate(machine)
        assert machine.mutexes.exists("TriM")
        assert machine.filesystem.exists("C:\\tri.dat")
        assert machine.registry.key_exists("HKLM\\SOFTWARE\\Tri")

    def test_covers(self):
        agent = VaccinationAgent()
        assert agent.covers("Sality") and not agent.covers("Unheard")

    def test_unknown_family_not_inoculated(self, machine):
        assert not VaccinationAgent().is_inoculated(machine, "Unheard")


class TestBaselineTradeoff:
    """The related-work critique, quantified."""

    def test_vaccine_stops_pure_marker_sample(self, machine):
        sample = build_marker_gated_corpus()[0]
        VaccinationAgent().inoculate(machine)
        process = machine.spawn_process(sample.exe_name, sample.image_path,
                                        parent=machine.explorer)
        result = sample.run(machine, process)
        assert not result.executed_payload
        assert result.trigger == "CreateMutex()"

    def test_scarecrow_misses_pure_marker_sample(self, machine):
        """Family-specific guards are invisible to environment deception."""
        sample = build_marker_gated_corpus()[0]
        controller = ScarecrowController(machine)
        target = controller.launch(sample.image_path)
        result = sample.run(machine, target)
        assert result.executed_payload

    def test_vaccine_misses_environment_fingerprinting_sample(self, machine):
        """'If the malware fingerprints analysis environment, it cannot
        generate resources' — vaccination is inert here."""
        from repro.malware import build_kasidet
        sample = build_kasidet()
        VaccinationAgent().inoculate(machine)
        process = machine.spawn_process(sample.exe_name, sample.image_path,
                                        parent=machine.explorer)
        result = sample.run(machine, process)
        assert result.executed_payload

    def test_scarecrow_stops_hybrid_sample(self, machine):
        hybrid = build_marker_gated_corpus()[1]
        controller = ScarecrowController(machine)
        target = controller.launch(hybrid.image_path)
        result = hybrid.run(machine, target)
        assert not result.executed_payload
        assert result.trigger == "IsDebuggerPresent()"

    def test_unvaccinated_family_detonates(self, machine):
        """Vaccines require per-family marker knowledge."""
        agent = VaccinationAgent()
        agent.inoculate(machine, families=["Conficker"])  # wrong family
        sample = build_marker_gated_corpus()[0]           # Zeus
        process = machine.spawn_process(sample.exe_name, sample.image_path,
                                        parent=machine.explorer)
        assert sample.run(machine, process).executed_payload
