"""Section II-C collector pipeline and the Table III wear-and-tear module."""

import pytest

from repro.analysis.environments import (build_clean_baseline,
                                         build_public_sandbox,
                                         build_public_sandboxes)
from repro.core import (DeceptionDatabase, ScarecrowController,
                        collect_from_public_sandboxes, diff_reports,
                        enable_weartear, extend_database, run_crawler)
from repro.core.resources import Origin
from repro.core.weartear import TABLE3_ROWS, faked_artifact_names


@pytest.fixture(scope="module")
def crawl_counts():
    db = DeceptionDatabase()
    counts = collect_from_public_sandboxes(
        db, build_public_sandboxes(), build_clean_baseline())
    return db, counts


class TestCrawler:
    def test_crawler_inventories_machine(self):
        baseline = build_clean_baseline()
        report = run_crawler(baseline, "clean")
        assert report.machine_label == "clean"
        assert "explorer.exe" in report.processes
        assert report.disk_total_bytes > 0
        assert report.cpu_cores > 0

    def test_malwr_has_famous_5gb_drive(self):
        malwr = build_public_sandbox("malwr")
        report = run_crawler(malwr, "malwr")
        assert report.disk_total_bytes == 5 * 1024 ** 3

    def test_unknown_sandbox_rejected(self):
        with pytest.raises(ValueError):
            build_public_sandbox("hybrid-analysis")


class TestDiff:
    def test_paper_counts_reproduced(self, crawl_counts):
        """Section II-C: 17,540 files / 24 processes / 1,457 reg entries."""
        _, counts = crawl_counts
        assert counts == {"files": 17540, "processes": 24,
                          "registry_entries": 1457}

    def test_crawled_resources_marked(self, crawl_counts):
        db, _ = crawl_counts
        crawled = db.counts_by_origin(Origin.CRAWLED)
        assert crawled["files"] == 17540
        assert crawled["processes"] == 24

    def test_baseline_resources_not_included(self, crawl_counts):
        db, _ = crawl_counts
        assert db.lookup_process("explorer.exe") is None
        assert db.lookup_registry_key(
            "HKLM\\SOFTWARE\\Microsoft\\Windows NT\\CurrentVersion") is None

    def test_diff_empty_against_self(self):
        baseline = build_clean_baseline()
        report = run_crawler(baseline, "x")
        diff = diff_reports([report], report)
        assert not diff.files and not diff.processes
        assert diff.registry_entry_count == 0

    def test_extend_database_counts_match_diff(self):
        baseline = build_clean_baseline()
        sandbox = build_public_sandbox("malwr")
        diff = diff_reports([run_crawler(sandbox, "m")],
                            run_crawler(baseline, "b"))
        db = DeceptionDatabase()
        counts = extend_database(db, diff)
        assert counts["files"] == len(diff.files)

    def test_crawled_resource_usable_for_deception(self, machine,
                                                   crawl_counts):
        db, _ = crawl_counts
        from repro import winapi
        controller = ScarecrowController(machine, database=db)
        target = controller.launch("C:\\dl\\x.exe")
        api = winapi.bind(machine, target)
        # A crawled Malwr-unique process name is now advertised.
        snapshot = api.CreateToolhelp32Snapshot()
        names = set()
        entry = api.Process32First(snapshot)
        while entry is not None:
            names.add(entry[1])
            entry = api.Process32Next(snapshot)
        assert "malwr_svc_00.exe" in names


class TestWearTearModule:
    def test_table3_row_count(self):
        """Top 5 + 11 registry rows, exactly as printed."""
        assert len(TABLE3_ROWS) == 16
        assert sum(1 for r in TABLE3_ROWS if r.category == "Top 5") == 5
        assert sum(1 for r in TABLE3_ROWS
                   if r.category == "Registry related") == 11

    def test_faked_artifact_names(self):
        names = faked_artifact_names()
        assert "dnscacheEntries" in names and "USBStorCount" in names

    def test_associated_apis_from_table(self):
        by_artifact = {r.artifact: r for r in TABLE3_ROWS}
        assert by_artifact["dnscacheEntries"].associated_apis == \
            ("DnsGetCacheDataTable()",)
        assert "NtQuerySystemInformation()" in \
            by_artifact["regSize"].associated_apis
        assert "NtQueryValueKey()" in \
            by_artifact["shimCacheCount"].associated_apis

    def test_enable_weartear_helper(self, machine):
        controller = ScarecrowController(machine)
        controller.launch("C:\\dl\\x.exe")
        assert not controller.engine.config.enable_weartear
        enable_weartear(controller)
        assert controller.engine.config.enable_weartear

    def test_enable_weartear_custom_profile(self, machine):
        from repro.core import WearTearProfile
        controller = ScarecrowController(machine)
        controller.launch("C:\\dl\\x.exe")
        enable_weartear(controller, WearTearProfile(dnscache_entries=7))
        assert controller.engine.db.weartear.dnscache_entries == 7
