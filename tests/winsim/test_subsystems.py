"""GUI, devices, services, event log, DNS cache subsystems."""

import pytest

from repro.winsim.devices import (DeviceNamespace, VBOX_DEVICES,
                                  normalize_device_name)
from repro.winsim.dnscache import DnsCache
from repro.winsim.eventlog import EventLog
from repro.winsim.gui import WindowManager
from repro.winsim.services import ServiceManager, ServiceState


class TestWindowManager:
    def test_find_by_class(self):
        gui = WindowManager()
        gui.create_window("OLLYDBG", "OllyDbg - main")
        assert gui.find_window("OLLYDBG") is not None

    def test_find_by_title_wildcard_class(self):
        gui = WindowManager()
        gui.create_window("SomeClass", "Immunity Debugger")
        assert gui.find_window(None, "Immunity Debugger") is not None

    def test_find_requires_both_when_given(self):
        gui = WindowManager()
        gui.create_window("A", "title-1")
        assert gui.find_window("A", "title-2") is None

    def test_find_case_insensitive(self):
        gui = WindowManager()
        gui.create_window("OLLYDBG", None)
        assert gui.find_window("ollydbg") is not None

    def test_destroy(self):
        gui = WindowManager()
        window = gui.create_window("X", None)
        assert gui.destroy_window(window.hwnd)
        assert gui.find_window("X") is None
        assert not gui.destroy_window(window.hwnd)

    def test_hwnds_unique(self):
        gui = WindowManager()
        hwnds = {gui.create_window("C", None).hwnd for _ in range(10)}
        assert len(hwnds) == 10

    def test_cursor_static_by_default(self):
        gui = WindowManager()
        gui.move_cursor(10, 20)
        assert gui.cursor_at_time(0) == (10, 20)
        assert gui.cursor_at_time(10 ** 12) == (10, 20)

    def test_cursor_humanized_moves_with_time(self):
        gui = WindowManager()
        gui.humanized = True
        assert gui.cursor_at_time(0) != gui.cursor_at_time(2 * 10 ** 9)

    def test_cursor_move_count(self):
        gui = WindowManager()
        gui.move_cursor(1, 1)
        gui.move_cursor(1, 1)  # no-op
        gui.move_cursor(2, 2)
        assert gui.cursor_move_count == 2

    def test_windows_for_pid(self):
        gui = WindowManager()
        gui.create_window("A", None, owner_pid=44)
        gui.create_window("B", None, owner_pid=48)
        assert len(gui.windows_for_pid(44)) == 1

    def test_snapshot_roundtrip(self):
        gui = WindowManager()
        gui.create_window("A", "t")
        gui.humanized = True
        state = gui.snapshot()
        gui.create_window("B", None)
        gui.humanized = False
        gui.restore(state)
        assert gui.find_window("B") is None
        assert gui.humanized


class TestDevices:
    def test_normalize(self):
        assert normalize_device_name("\\\\.\\VBoxGuest") == "vboxguest"
        assert normalize_device_name("\\\\.\\pipe\\cuckoo") == "pipe\\cuckoo"

    def test_register_exists(self):
        devices = DeviceNamespace()
        devices.register("\\\\.\\vmci")
        assert devices.exists("\\\\.\\VMCI")

    def test_unregister(self):
        devices = DeviceNamespace()
        devices.register("\\\\.\\vmci")
        assert devices.unregister("\\\\.\\vmci")
        assert not devices.exists("\\\\.\\vmci")

    def test_vbox_device_list(self):
        devices = DeviceNamespace()
        for name in VBOX_DEVICES:
            devices.register(name)
        assert devices.exists("\\\\.\\VBoxGuest")

    def test_snapshot(self):
        devices = DeviceNamespace()
        devices.register("\\\\.\\HGFS")
        state = devices.snapshot()
        devices.unregister("\\\\.\\HGFS")
        devices.restore(state)
        assert devices.exists("\\\\.\\HGFS")


class TestServices:
    def test_install_and_get(self):
        services = ServiceManager()
        services.install("VBoxService")
        assert services.exists("vboxservice")
        assert services.get("VBoxService").state is ServiceState.RUNNING

    def test_uninstall(self):
        services = ServiceManager()
        services.install("VBoxSF")
        assert services.uninstall("VBoxSF")
        assert not services.exists("VBoxSF")

    def test_running_filter(self):
        services = ServiceManager()
        services.install("A")
        services.install("B", state=ServiceState.STOPPED)
        assert [s.name for s in services.running()] == ["A"]

    def test_snapshot(self):
        services = ServiceManager()
        services.install("A")
        state = services.snapshot()
        services.install("B")
        services.restore(state)
        assert not services.exists("B")


class TestEventLog:
    def test_append_assigns_record_ids(self):
        log = EventLog()
        first = log.append("Src", 1000)
        second = log.append("Src", 1001)
        assert (first.record_id, second.record_id) == (1, 2)

    def test_extend_synthetic_counts(self):
        log = EventLog()
        log.extend_synthetic(100, ["A", "B", "C"])
        assert log.count() == 100
        assert log.distinct_sources() == {"A", "B", "C"}

    def test_extend_requires_sources(self):
        log = EventLog()
        with pytest.raises(ValueError):
            log.extend_synthetic(10, [])

    def test_recent_limit(self):
        log = EventLog()
        log.extend_synthetic(50, ["A"])
        assert len(log.recent(10)) == 10
        assert log.recent(10)[-1].record_id == 50

    def test_distinct_sources_recent_window(self):
        log = EventLog()
        log.extend_synthetic(10, ["Old"])
        log.extend_synthetic(10, ["New"])
        assert log.distinct_sources(limit=10) == {"New"}

    def test_snapshot(self):
        log = EventLog()
        log.extend_synthetic(5, ["A"])
        state = log.snapshot()
        log.extend_synthetic(5, ["B"])
        log.restore(state)
        assert log.count() == 5


class TestDnsCache:
    def test_add_and_count(self):
        cache = DnsCache()
        cache.populate(["a.com", "b.com"])
        assert cache.count() == 2

    def test_readd_moves_to_recent(self):
        cache = DnsCache()
        cache.populate(["a.com", "b.com"])
        cache.add("a.com")
        assert cache.entries()[-1].name == "a.com"
        assert cache.count() == 2

    def test_recent(self):
        cache = DnsCache()
        cache.populate(f"h{i}.com" for i in range(10))
        recent = cache.recent(4)
        assert [e.name for e in recent] == ["h6.com", "h7.com", "h8.com",
                                            "h9.com"]

    def test_flush(self):
        cache = DnsCache()
        cache.add("a.com")
        cache.flush()
        assert cache.count() == 0

    def test_names_lowercased(self):
        cache = DnsCache()
        cache.add("WWW.Example.COM")
        assert cache.entries()[0].name == "www.example.com"
