"""Process table: lifecycle, lineage, protection, events."""

import pytest

from repro.winsim.process import (Process, ProcessState, ProcessTable,
                                  populate_baseline)


@pytest.fixture
def table():
    return ProcessTable()


@pytest.fixture
def booted():
    table = ProcessTable()
    explorer = populate_baseline(table)
    return table, explorer


class TestSpawn:
    def test_spawn_assigns_unique_pids(self, table):
        pids = {table.spawn(f"p{i}.exe").pid for i in range(20)}
        assert len(pids) == 20

    def test_pids_are_multiples_of_four(self, table):
        assert all(p.pid % 4 == 0 for p in [table.spawn("a.exe"),
                                            table.spawn("b.exe")])

    def test_parent_lineage(self, table):
        parent = table.spawn("parent.exe")
        child = table.spawn("child.exe", parent=parent)
        grandchild = table.spawn("gc.exe", parent=child)
        assert [a.name for a in grandchild.ancestors()] == \
            ["child.exe", "parent.exe"]

    def test_spawn_suspended(self, table):
        process = table.spawn("s.exe", suspended=True)
        assert process.state is ProcessState.SUSPENDED
        process.resume()
        assert process.state is ProcessState.RUNNING

    def test_command_line_defaults_to_image(self, table):
        process = table.spawn("x.exe", "C:\\x.exe")
        assert process.command_line == "C:\\x.exe"

    def test_default_modules_loaded(self, table):
        process = table.spawn("x.exe")
        assert process.modules.is_loaded("kernel32.dll")
        assert process.modules.is_loaded("ntdll.dll")


class TestTermination:
    def test_terminate(self, table):
        process = table.spawn("x.exe")
        assert table.terminate(process.pid, exit_code=3)
        assert not process.alive
        assert process.exit_code == 3

    def test_double_terminate_returns_false(self, table):
        process = table.spawn("x.exe")
        table.terminate(process.pid)
        assert not table.terminate(process.pid)

    def test_terminate_unknown_pid(self, table):
        assert not table.terminate(999_999)

    def test_protected_process_resists_untrusted_kill(self, table):
        protected = table.spawn("wireshark.exe", protected=True)
        assert not table.terminate(protected.pid, by_untrusted=True)
        assert protected.alive

    def test_protected_process_allows_trusted_kill(self, table):
        protected = table.spawn("wireshark.exe", protected=True)
        assert table.terminate(protected.pid, by_untrusted=False)

    def test_terminated_process_not_in_running(self, table):
        process = table.spawn("x.exe")
        table.terminate(process.pid)
        assert process not in table.running()


class TestQueries:
    def test_find_by_name_case_insensitive(self, table):
        table.spawn("VBoxService.exe")
        assert table.name_exists("vboxservice.exe")

    def test_find_by_name_excludes_dead(self, table):
        process = table.spawn("x.exe")
        table.terminate(process.pid)
        assert not table.name_exists("x.exe")

    def test_descendants(self, table):
        root = table.spawn("root.exe")
        child = table.spawn("c.exe", parent=root)
        table.spawn("gc.exe", parent=child)
        table.spawn("unrelated.exe")
        assert len(table.descendants(root)) == 2


class TestBaseline:
    def test_baseline_has_explorer(self, booted):
        table, explorer = booted
        assert explorer.name == "explorer.exe"
        assert table.name_exists("explorer.exe")

    def test_baseline_core_processes(self, booted):
        table, _ = booted
        for name in ("System", "csrss.exe", "services.exe", "lsass.exe",
                     "svchost.exe", "winlogon.exe"):
            assert table.name_exists(name), name

    def test_baseline_rooted_at_system(self, booted):
        table, explorer = booted
        ancestors = list(explorer.ancestors())
        assert ancestors[-1].name == "System"


class TestEvents:
    def test_create_listener_fires(self, table):
        seen = []
        table.on_create(lambda p: seen.append(p.name))
        table.spawn("evil.exe")
        assert seen == ["evil.exe"]

    def test_terminate_listener_fires(self, table):
        seen = []
        table.on_terminate(lambda p: seen.append(p.pid))
        process = table.spawn("x.exe")
        table.terminate(process.pid)
        assert seen == [process.pid]

    def test_untrusted_kill_does_not_fire_terminate(self, table):
        seen = []
        table.on_terminate(lambda p: seen.append(p.pid))
        protected = table.spawn("procmon.exe", protected=True)
        table.terminate(protected.pid, by_untrusted=True)
        assert seen == []


class TestPeb:
    def test_peb_defaults(self, table):
        process = table.spawn("x.exe")
        assert process.peb.being_debugged is False
        assert process.peb.number_of_processors == 1

    def test_peb_command_line(self, table):
        process = table.spawn("x.exe", command_line="x.exe --flag")
        assert process.peb.process_parameters_command_line == "x.exe --flag"

    def test_threads(self, table):
        process = table.spawn("x.exe")
        thread = process.spawn_thread()
        assert thread.tid != process.threads[0].tid
        process.suspend()
        assert all(t.suspended for t in process.threads)
        process.resume()
        assert not any(t.suspended for t in process.threads)
