"""Runtime twin of scarelint SC006: every public mutating operation on a
tracked subsystem must advance that subsystem's ``mutations`` generation
counter, or dirty-set delta-restore silently skips it.

The static rule proves each method *contains* a bump path; this test
proves the bump actually fires for representative operations against
every entry in :data:`TRACKED_SUBSYSTEMS`.
"""

import pytest

from repro.analysis.environments import build_bare_metal_sandbox
from repro.winsim.machine import TRACKED_SUBSYSTEMS


def fresh_machine():
    # The sweep-engine factory: a bare-metal host with drives mounted,
    # so filesystem ops have somewhere to land.
    return build_bare_metal_sandbox(aged=False)

#: Ordered mutating operations per tracked subsystem. Later ops may
#: depend on earlier ones (register → unregister); each single op must
#: strictly advance the counter on its own.
OPS = {
    "registry": [
        ("set_value", lambda m: m.registry.set_value(
            "HKEY_CURRENT_USER\\Software\\MutTest", "v", 1)),
        ("create_key", lambda m: m.registry.create_key(
            "HKEY_CURRENT_USER\\Software\\MutTest\\Child")),
        ("delete_key", lambda m: m.registry.delete_key(
            "HKEY_CURRENT_USER\\Software\\MutTest\\Child")),
    ],
    "filesystem": [
        ("write_file", lambda m: m.filesystem.write_file(
            "C:\\Windows\\Temp\\mut.bin", b"x")),
        ("delete", lambda m: m.filesystem.delete(
            "C:\\Windows\\Temp\\mut.bin")),
    ],
    "gui": [
        ("create_window", lambda m: m.gui.create_window(
            "MutClass", "mutation test")),
        ("create_window#2", lambda m: m.gui.create_window(
            "MutClass", "mutation test 2")),
    ],
    "devices": [
        ("register", lambda m: m.devices.register("\\\\.\\MutDev")),
        ("unregister", lambda m: m.devices.unregister("\\\\.\\MutDev")),
    ],
    "mutexes": [
        ("create", lambda m: m.mutexes.create("Global\\mut-test")),
        ("release", lambda m: m.mutexes.release("Global\\mut-test")),
    ],
    "services": [
        ("install", lambda m: m.services.install("mutsvc")),
        ("start", lambda m: m.services.start("mutsvc")),
        ("stop", lambda m: m.services.stop("mutsvc")),
        ("uninstall", lambda m: m.services.uninstall("mutsvc")),
    ],
    "eventlog": [
        ("append", lambda m: m.eventlog.append("MutTest", 7001)),
        ("append#2", lambda m: m.eventlog.append("MutTest", 7002)),
    ],
    "dnscache": [
        ("add", lambda m: m.dnscache.add("mut.example.com")),
        ("flush", lambda m: m.dnscache.flush()),
    ],
    "network": [
        ("resolve", lambda m: m.network.resolve(
            "nx-mut.example.invalid")),
    ],
}


def test_every_tracked_subsystem_has_ops():
    assert set(OPS) == set(TRACKED_SUBSYSTEMS)


@pytest.mark.parametrize("subsystem", TRACKED_SUBSYSTEMS)
def test_mutators_advance_generation_counter(subsystem):
    machine = fresh_machine()
    target = getattr(machine, subsystem)
    for label, op in OPS[subsystem]:
        before = target.mutations
        op(machine)
        assert target.mutations > before, \
            f"{subsystem}.{label} did not bump mutations"


@pytest.mark.parametrize("subsystem", TRACKED_SUBSYSTEMS)
def test_subsystem_versions_sees_the_bump(subsystem):
    machine = fresh_machine()
    before = machine.subsystem_versions()
    for _, op in OPS[subsystem]:
        op(machine)
    after = machine.subsystem_versions()
    assert set(before) == set(TRACKED_SUBSYSTEMS)
    assert after[subsystem] > before[subsystem]


def test_read_only_probes_leave_counters_alone():
    machine = fresh_machine()
    machine.registry.set_value(
        "HKEY_CURRENT_USER\\Software\\MutTest", "v", 1)
    machine.filesystem.write_file("C:\\Windows\\Temp\\mut.bin", b"x")
    before = machine.subsystem_versions()
    machine.registry.get_value(
        "HKEY_CURRENT_USER\\Software\\MutTest", "v")
    machine.filesystem.exists("C:\\Windows\\Temp\\mut.bin")
    machine.gui.find_window("MutClass")
    machine.devices.exists("\\\\.\\MutDev")
    assert machine.subsystem_versions() == before
