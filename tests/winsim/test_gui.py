"""Direct unit tests for the GUI window manager.

``FindWindow`` matching semantics carry the debugger-window anti-debug
probe (and Scarecrow's deceptive answer to it), and the cursor model
carries Pafish's mouse-activity check — both deserve direct coverage
rather than only the integration paths that happen to exercise them.
"""

from repro.winsim.gui import WindowManager


class TestWindows:
    def test_create_assigns_distinct_even_hwnds(self):
        wm = WindowManager()
        first = wm.create_window("Shell_TrayWnd", "Taskbar")
        second = wm.create_window("Notepad", "Untitled - Notepad")
        assert first.hwnd != second.hwnd
        assert first.hwnd % 2 == 0 and second.hwnd % 2 == 0
        assert [w.hwnd for w in wm.windows()] == [first.hwnd, second.hwnd]

    def test_destroy_removes_only_the_named_window(self):
        wm = WindowManager()
        keep = wm.create_window("A", "a")
        doomed = wm.create_window("B", "b")
        assert wm.destroy_window(doomed.hwnd) is True
        assert [w.hwnd for w in wm.windows()] == [keep.hwnd]

    def test_destroy_unknown_hwnd_reports_false(self):
        wm = WindowManager()
        wm.create_window("A", "a")
        assert wm.destroy_window(0xDEAD) is False
        assert len(wm.windows()) == 1

    def test_windows_for_pid_filters_by_owner(self):
        wm = WindowManager()
        wm.create_window("A", "a", owner_pid=4)
        mine = wm.create_window("B", "b", owner_pid=7)
        assert [w.hwnd for w in wm.windows_for_pid(7)] == [mine.hwnd]
        assert wm.windows_for_pid(99) == []


class TestFindWindow:
    def test_match_by_class_is_case_insensitive(self):
        wm = WindowManager()
        window = wm.create_window("OLLYDBG", None)
        assert wm.find_window("ollydbg") is window
        assert wm.find_window("OllyDbg", None) is window

    def test_match_by_title_only(self):
        wm = WindowManager()
        window = wm.create_window(None, "Immunity Debugger")
        assert wm.find_window(None, "immunity debugger") is window

    def test_both_arguments_must_match(self):
        wm = WindowManager()
        wm.create_window("WinDbgFrameClass", "WinDbg")
        assert wm.find_window("WinDbgFrameClass", "wrong title") is None
        assert wm.find_window("WinDbgFrameClass", "WinDbg") is not None

    def test_none_class_on_window_never_matches_a_class_query(self):
        wm = WindowManager()
        wm.create_window(None, "titled")
        assert wm.find_window("AnyClass") is None

    def test_first_registered_window_wins(self):
        wm = WindowManager()
        first = wm.create_window("OLLYDBG", "one")
        wm.create_window("OLLYDBG", "two")
        assert wm.find_window("OLLYDBG") is first

    def test_miss_returns_none(self):
        assert WindowManager().find_window("OLLYDBG") is None


class TestCursor:
    def test_move_cursor_counts_only_real_moves(self):
        wm = WindowManager()
        wm.move_cursor(10, 20)
        wm.move_cursor(10, 20)  # same position: not a move
        wm.move_cursor(11, 20)
        assert wm.cursor_pos == (11, 20)
        assert wm.cursor_move_count == 2

    def test_static_session_cursor_ignores_time(self):
        wm = WindowManager()
        wm.move_cursor(5, 5)
        assert wm.cursor_at_time(0) == (5, 5)
        assert wm.cursor_at_time(10_000_000_000) == (5, 5)

    def test_humanized_cursor_moves_over_time(self):
        wm = WindowManager()
        wm.humanized = True
        early = wm.cursor_at_time(0)
        late = wm.cursor_at_time(1_000_000_000)
        assert early != late

    def test_humanized_cursor_is_a_pure_function_of_time(self):
        wm = WindowManager()
        wm.humanized = True
        assert wm.cursor_at_time(500_000_000) == \
            wm.cursor_at_time(500_000_000)


class TestSnapshotRestore:
    def test_roundtrip_preserves_windows_and_cursor_state(self):
        wm = WindowManager()
        wm.create_window("OLLYDBG", "dbg", owner_pid=3)
        wm.move_cursor(100, 200)
        wm.humanized = True
        state = wm.snapshot()
        wm.destroy_window(wm.windows()[0].hwnd)
        wm.move_cursor(0, 0)
        wm.humanized = False
        wm.restore(state)
        assert wm.find_window("OLLYDBG").owner_pid == 3
        assert wm.cursor_pos == (100, 200)
        assert wm.cursor_move_count == 1
        assert wm.humanized is True

    def test_snapshot_is_isolated_from_later_mutation(self):
        wm = WindowManager()
        window = wm.create_window("A", "a")
        state = wm.snapshot()
        window.title = "mutated"
        assert state["windows"][0].title == "a"

    def test_restore_legacy_snapshot_defaults_humanized_off(self):
        wm = WindowManager()
        state = wm.snapshot()
        del state["humanized"]
        wm.humanized = True
        wm.restore(state)
        assert wm.humanized is False
