"""Direct unit tests for the simulated Windows event log."""

import pytest

from repro.winsim.eventlog import EventLog


class TestAppend:
    def test_record_ids_are_sequential_from_one(self):
        log = EventLog()
        first = log.append("Service Control Manager", 7036)
        second = log.append("EventLog", 6005, timestamp_ms=1000)
        assert (first.record_id, second.record_id) == (1, 2)
        assert log.count() == 2
        assert log.records()[0].source == "Service Control Manager"
        assert second.timestamp_ms == 1000
        assert second.level == "Information"

    def test_default_channel_is_system(self):
        assert EventLog().channel == "System"
        assert EventLog("Application").channel == "Application"


class TestExtendSynthetic:
    def test_cycles_sources_and_spaces_timestamps(self):
        log = EventLog()
        log.extend_synthetic(5, ["A", "B"], start_ms=100, step_ms=10)
        records = log.records()
        assert [r.source for r in records] == ["A", "B", "A", "B", "A"]
        assert [r.timestamp_ms for r in records] == [100, 110, 120, 130, 140]
        assert [r.event_id for r in records] == [1000, 1001, 1002, 1003, 1004]

    def test_event_ids_cycle_modulo_97(self):
        log = EventLog()
        log.extend_synthetic(98, ["src"])
        records = log.records()
        assert records[0].event_id == 1000
        assert records[96].event_id == 1096
        assert records[97].event_id == 1000  # wrapped

    def test_empty_sources_rejected(self):
        with pytest.raises(ValueError):
            EventLog().extend_synthetic(10, [])

    def test_zero_count_is_a_noop(self):
        log = EventLog()
        log.extend_synthetic(0, ["src"])
        assert log.count() == 0


class TestQueries:
    def test_recent_returns_newest_slice(self):
        log = EventLog()
        log.extend_synthetic(10, ["src"])
        recent = log.recent(3)
        assert [r.record_id for r in recent] == [8, 9, 10]
        assert log.recent(0) == []

    def test_distinct_sources_full_and_windowed(self):
        log = EventLog()
        log.extend_synthetic(4, ["old-only"])
        log.extend_synthetic(4, ["new-a", "new-b"])
        assert log.distinct_sources() == {"old-only", "new-a", "new-b"}
        # The last four records only cycle the two new sources.
        assert log.distinct_sources(limit=4) == {"new-a", "new-b"}

    def test_snapshot_restore_roundtrip(self):
        log = EventLog("Security")
        log.extend_synthetic(3, ["src"])
        state = log.snapshot()
        fresh = EventLog()
        fresh.restore(state)
        assert fresh.channel == "Security"
        assert fresh.records() == log.records()
