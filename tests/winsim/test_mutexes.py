"""Direct unit tests for the named-mutex namespace.

Duplicate creation is the load-bearing behaviour: single-instance guards —
and the vaccination baseline built on them — key off the
``ERROR_ALREADY_EXISTS`` signal that ``create`` models by returning False.
"""

from repro.winsim.mutexes import MutexNamespace


class TestCreate:
    def test_first_create_succeeds_duplicate_signals_already_exists(self):
        ns = MutexNamespace()
        assert ns.create("Global\\MsWinZonesCacheCounterMutexA") is True
        assert ns.create("Global\\MsWinZonesCacheCounterMutexA") is False
        assert len(ns.names()) == 1

    def test_duplicate_detection_is_case_insensitive(self):
        ns = MutexNamespace()
        assert ns.create("Frz_State") is True
        assert ns.create("FRZ_STATE") is False

    def test_global_and_local_prefixes_collapse_to_one_namespace(self):
        ns = MutexNamespace()
        assert ns.create("Global\\single-instance") is True
        assert ns.create("Local\\single-instance") is False
        assert ns.create("single-instance") is False
        assert ns.exists("Global\\Single-Instance")

    def test_duplicate_create_updates_display_name(self):
        ns = MutexNamespace()
        ns.create("Global\\Marker")
        ns.create("Local\\MARKER")
        assert ns.names() == ["Local\\MARKER"]


class TestLifecycle:
    def test_release_frees_the_name_for_recreation(self):
        ns = MutexNamespace()
        ns.create("Global\\Marker")
        assert ns.release("marker") is True
        assert not ns.exists("Global\\Marker")
        assert ns.release("marker") is False  # already gone
        assert ns.create("Global\\Marker") is True  # fresh again

    def test_exists_on_empty_namespace(self):
        assert MutexNamespace().exists("anything") is False

    def test_snapshot_restore_roundtrip(self):
        ns = MutexNamespace()
        ns.create("Global\\A")
        ns.create("B")
        state = ns.snapshot()
        ns.release("A")
        fresh = MutexNamespace()
        fresh.restore(state)
        assert sorted(fresh.names()) == ["B", "Global\\A"]
        assert fresh.exists("Local\\a")
