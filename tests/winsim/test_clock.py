"""Virtual clock: determinism, tick granularity, timing profiles."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.winsim.clock import NS_PER_MS, TimingProfile, VirtualClock


class TestAdvancing:
    def test_advance_moves_time(self):
        clock = VirtualClock(boot_tick_ms=0)
        clock.advance_ms(100)
        assert clock.now_ns == 100 * NS_PER_MS

    def test_negative_advance_rejected(self):
        clock = VirtualClock()
        with pytest.raises(ValueError):
            clock.advance_ns(-1)

    def test_sleep_advances_full_duration(self):
        clock = VirtualClock(boot_tick_ms=0)
        clock.sleep(500)
        assert clock.now_ns == 500 * NS_PER_MS


class TestTickCount:
    def test_boot_tick_baseline(self):
        clock = VirtualClock(boot_tick_ms=60_000)
        assert abs(clock.tick_count_ms() - 60_000) <= 16

    def test_tick_granularity(self):
        clock = VirtualClock(TimingProfile(tick_resolution_ms=16),
                             boot_tick_ms=0)
        clock.advance_ms(20)
        assert clock.tick_count_ms() % 16 == 0

    def test_tick_monotonic(self):
        clock = VirtualClock(boot_tick_ms=0)
        previous = clock.tick_count_ms()
        for _ in range(50):
            clock.advance_ms(7)
            current = clock.tick_count_ms()
            assert current >= previous
            previous = current


class TestRdtsc:
    def test_rdtsc_strictly_increases(self):
        clock = VirtualClock(boot_tick_ms=0)
        first = clock.rdtsc()
        second = clock.rdtsc()
        assert second > first

    def test_rdtsc_deterministic_across_instances(self):
        a = VirtualClock(boot_tick_ms=0)
        b = VirtualClock(boot_tick_ms=0)
        assert [a.rdtsc() for _ in range(5)] == [b.rdtsc() for _ in range(5)]

    def test_cpuid_cost_charged(self):
        clock = VirtualClock(TimingProfile(cpuid_overhead_ns=1000),
                             boot_tick_ms=0)
        before = clock.now_ns
        clock.cpuid_cost()
        assert clock.now_ns - before == 1000


class TestSnapshot:
    def test_roundtrip(self):
        clock = VirtualClock(boot_tick_ms=1000)
        clock.rdtsc()
        state = clock.snapshot()
        sequence = [clock.rdtsc() for _ in range(3)]
        clock.restore(state)
        assert [clock.rdtsc() for _ in range(3)] == sequence

    def test_restore_profile(self):
        clock = VirtualClock(TimingProfile(cpuid_overhead_ns=77))
        state = clock.snapshot()
        clock.profile.cpuid_overhead_ns = 1
        clock.restore(state)
        assert clock.profile.cpuid_overhead_ns == 77


class TestProperties:
    @given(steps=st.lists(st.integers(0, 10_000), max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_time_never_goes_backwards(self, steps):
        clock = VirtualClock(boot_tick_ms=0)
        previous = clock.now_ns
        for step in steps:
            clock.advance_ns(step)
            assert clock.now_ns >= previous
            previous = clock.now_ns

    @given(ms=st.integers(0, 100_000))
    @settings(max_examples=50, deadline=None)
    def test_tick_rounding_bound(self, ms):
        clock = VirtualClock(boot_tick_ms=0)
        clock.advance_ms(ms)
        assert 0 <= ms - clock.tick_count_ms() < 16
