"""Direct unit tests for the resolver cache and its NXDOMAIN interplay."""

from repro import winapi
from repro.winsim import Machine
from repro.winsim.dnscache import DnsCache, DnsCacheEntry


def _api():
    machine = Machine().boot()
    process = machine.spawn_process("dns.exe", parent=machine.explorer)
    return machine, winapi.bind(machine, process)


class TestDnsCache:
    def test_entries_are_ordered_most_recent_last(self):
        cache = DnsCache()
        cache.populate(["a.example", "b.example", "c.example"])
        assert [e.name for e in cache.entries()] == \
            ["a.example", "b.example", "c.example"]
        assert cache.count() == 3

    def test_re_resolving_moves_entry_to_most_recent(self):
        cache = DnsCache()
        cache.populate(["a.example", "b.example", "c.example"])
        cache.add("a.example")
        assert [e.name for e in cache.entries()] == \
            ["b.example", "c.example", "a.example"]
        assert cache.count() == 3  # moved, not duplicated

    def test_names_are_case_folded(self):
        cache = DnsCache()
        cache.add("WWW.Example.COM")
        cache.add("www.example.com")
        assert cache.entries() == [DnsCacheEntry("www.example.com")]

    def test_recent_returns_newest_slice(self):
        cache = DnsCache()
        cache.populate([f"host{i}.example" for i in range(6)])
        assert [e.name for e in cache.recent(2)] == \
            ["host4.example", "host5.example"]
        assert cache.recent(0) == []
        assert len(cache.recent(99)) == 6

    def test_flush_and_snapshot_restore(self):
        cache = DnsCache()
        cache.populate(["a.example", "b.example"])
        state = cache.snapshot()
        cache.flush()
        assert cache.count() == 0
        cache.restore(state)
        assert [e.name for e in cache.entries()] == ["a.example", "b.example"]


class TestNxDomainSinkholing:
    """The resolver-cache/sinkhole interplay the kill-switch checks probe."""

    def test_nx_name_misses_cache_without_sinkhole(self):
        machine, api = _api()
        machine.network.nx_sinkhole_ip = None
        assert api.DnsQuery_A("definitely-not-registered.invalid") is None
        # NXDOMAIN answers are never cached.
        assert api.DnsGetCacheDataTable() == \
            [(e.name, e.record_type) for e in machine.dnscache.entries()]
        assert "definitely-not-registered.invalid" not in \
            [name for name, _ in api.DnsGetCacheDataTable()]

    def test_sinkhole_answers_nx_names_and_caches_them(self):
        machine, api = _api()
        machine.network.nx_sinkhole_ip = "192.0.2.66"
        ip = api.DnsQuery_A("definitely-not-registered.invalid")
        assert ip == "192.0.2.66"
        assert ("definitely-not-registered.invalid", 1) in \
            api.DnsGetCacheDataTable()

    def test_registered_domain_wins_over_sinkhole(self):
        machine, api = _api()
        machine.network.nx_sinkhole_ip = "192.0.2.66"
        real = machine.network.register_domain("update.example.com")
        assert api.DnsQuery_A("update.example.com") == real
        assert real != "192.0.2.66"

    def test_queries_are_logged_lowercased(self):
        machine, api = _api()
        api.DnsQuery_A("MiXeD.Example.COM")
        assert machine.network.query_log[-1] == "mixed.example.com"

    def test_flush_resolver_cache_empties_the_table(self):
        machine, api = _api()
        machine.network.nx_sinkhole_ip = "192.0.2.66"
        api.DnsQuery_A("cached.invalid")
        assert api.DnsGetCacheDataTable()
        assert api.DnsFlushResolverCache() is True
        assert api.DnsGetCacheDataTable() == []
