"""Machine aggregate: boot, snapshot/restore, process reset, event bus."""

import pytest

from repro.winsim import Machine, MachineIdentity
from repro.winsim.bus import EventBus, KernelEvent


class TestBoot:
    def test_boot_creates_baseline_tree(self, machine):
        assert machine.explorer is not None
        assert machine.processes.name_exists("explorer.exe")

    def test_boot_creates_system_dirs(self, machine):
        assert machine.filesystem.is_dir("C:\\Windows\\System32")
        assert machine.filesystem.is_dir("C:\\Users\\user\\Documents")

    def test_boot_seeds_registry(self, machine):
        assert machine.registry.get_data(
            "HKLM\\SOFTWARE\\Microsoft\\Windows NT\\CurrentVersion",
            "ProductName") == "Windows 7 Professional"

    def test_boot_adds_default_drive(self):
        machine = Machine().boot()
        assert machine.filesystem.drive("C:") is not None

    def test_pebs_synced_to_hardware(self, machine):
        process = machine.spawn_process("x.exe")
        assert process.peb.number_of_processors == \
            machine.hardware.cpu.cores

    def test_identity(self):
        machine = Machine(MachineIdentity(hostname="HOST-9",
                                          username="alice")).boot()
        assert machine.user_profile_dir() == "C:\\Users\\alice"


class TestConveniences:
    def test_memory_status_reflects_hardware(self, machine):
        machine.hardware.total_ram = 4 * 1024 ** 3
        assert machine.memory_status().total_phys == 4 * 1024 ** 3

    def test_system_info_reflects_cores(self, machine):
        machine.hardware.cpu.cores = 2
        assert machine.system_info().number_of_processors == 2


class TestSnapshotRestore:
    def test_full_roundtrip(self, machine):
        machine.registry.set_value("HKLM\\SOFTWARE\\Mark", "v", 1)
        state = machine.snapshot()
        machine.registry.set_value("HKLM\\SOFTWARE\\Mark", "v", 2)
        machine.filesystem.write_file("C:\\tampered.txt", b"x")
        machine.devices.register("\\\\.\\Evil")
        machine.restore(state)
        assert machine.registry.get_data("HKLM\\SOFTWARE\\Mark", "v") == 1
        assert not machine.filesystem.exists("C:\\tampered.txt")
        assert not machine.devices.exists("\\\\.\\Evil")

    def test_reset_processes_reboots_baseline(self, machine):
        machine.spawn_process("malware.exe")
        machine.reset_processes()
        assert not machine.processes.name_exists("malware.exe")
        assert machine.processes.name_exists("explorer.exe")
        assert machine.explorer.alive

    def test_restore_does_not_touch_processes(self, machine):
        state = machine.snapshot()
        process = machine.spawn_process("still-here.exe")
        machine.restore(state)
        assert machine.processes.get(process.pid) is not None


class TestEventBus:
    def test_process_creation_published(self, machine):
        events = []
        machine.bus.subscribe(events.append)
        machine.spawn_process("x.exe")
        assert any(e.name == "CreateProcess" and e.detail("name") == "x.exe"
                   for e in events)

    def test_process_termination_published(self, machine):
        events = []
        machine.bus.subscribe(events.append)
        process = machine.spawn_process("x.exe")
        machine.processes.terminate(process.pid, 5)
        terminate = [e for e in events if e.name == "TerminateProcess"]
        assert terminate and terminate[0].detail("exit_code") == 5

    def test_events_survive_process_reset(self, machine):
        events = []
        machine.bus.subscribe(events.append)
        machine.reset_processes()
        machine.spawn_process("after-reset.exe")
        assert any(e.detail("name") == "after-reset.exe" for e in events)


class TestBusPrimitive:
    def test_unsubscribe(self):
        bus = EventBus()
        events = []
        unsubscribe = bus.subscribe(events.append)
        bus.emit("c", "n", 1, 0)
        unsubscribe()
        bus.emit("c", "n", 1, 0)
        assert len(events) == 1
        unsubscribe()  # idempotent

    def test_emit_allows_name_detail(self):
        bus = EventBus()
        events = []
        bus.subscribe(events.append)
        bus.emit("image", "LoadImage", 4, 0, name="scarecrow.dll")
        assert events[0].detail("name") == "scarecrow.dll"

    def test_kernel_event_detail_default(self):
        event = KernelEvent("c", "n", 1, 0, {})
        assert event.detail("missing", "fallback") == "fallback"

    def test_subscriber_count(self):
        bus = EventBus()
        assert bus.subscriber_count == 0
        bus.subscribe(lambda e: None)
        assert bus.subscriber_count == 1
