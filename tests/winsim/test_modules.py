"""Per-process module lists."""

import pytest

from repro.winsim.modules import (DEFAULT_SYSTEM_MODULES, Module,
                                  ModuleList, populate_default_modules)


@pytest.fixture
def modules():
    module_list = ModuleList("target.exe", "C:\\target.exe")
    populate_default_modules(module_list)
    return module_list


class TestLoading:
    def test_executable_first(self, modules):
        assert modules.executable.name == "target.exe"
        assert modules.executable.base_address == 0x400000

    def test_default_system_set(self, modules):
        for name in DEFAULT_SYSTEM_MODULES:
            assert modules.is_loaded(name), name

    def test_load_idempotent(self, modules):
        first = modules.load("extra.dll")
        second = modules.load("extra.dll")
        assert first is second

    def test_bases_distinct_and_nonoverlapping(self, modules):
        loaded = list(modules)
        for index, module in enumerate(loaded):
            for other in loaded[index + 1:]:
                assert not module.contains(other.base_address)

    def test_find_without_dll_suffix(self, modules):
        assert modules.find("kernel32") is not None
        assert modules.find("KERNEL32.DLL") is not None

    def test_find_miss(self, modules):
        assert modules.find("sbiedll.dll") is None
        assert not modules.is_loaded("sbiedll")


class TestUnloading:
    def test_unload(self, modules):
        modules.load("plugin.dll")
        assert modules.unload("plugin.dll")
        assert not modules.is_loaded("plugin.dll")

    def test_unload_missing(self, modules):
        assert not modules.unload("ghost.dll")

    def test_cannot_unload_executable(self, modules):
        assert not modules.unload("target.exe")
        assert modules.executable.name == "target.exe"


class TestAddressResolution:
    def test_module_at_base(self, modules):
        module = modules.load("addr.dll", size=0x1000)
        assert modules.module_at(module.base_address) is module
        assert modules.module_at(module.base_address + 0xFFF) is module

    def test_module_at_miss(self, modules):
        assert modules.module_at(0x1) is None

    def test_names_and_len(self, modules):
        assert "target.exe" in modules.names()
        assert len(modules) == 1 + len(DEFAULT_SYSTEM_MODULES)

    def test_contains_bounds(self):
        module = Module("m.dll", "C:\\m.dll", 0x1000, size=0x100)
        assert module.contains(0x1000)
        assert module.contains(0x10FF)
        assert not module.contains(0x1100)
        assert not module.contains(0xFFF)
