"""Service Control Manager: install/query/start/stop/snapshot semantics."""

import dataclasses

import pytest

from repro.winsim.services import Service, ServiceManager, ServiceState


@pytest.fixture
def scm():
    manager = ServiceManager()
    manager.install("VBoxService", "VirtualBox Guest Additions Service")
    manager.install("Spooler", "Print Spooler",
                    state=ServiceState.STOPPED)
    return manager


class TestInstallAndQuery:
    def test_install_defaults(self, scm):
        service = scm.get("VBoxService")
        assert service.display_name == \
            "VirtualBox Guest Additions Service"
        assert service.image_path == \
            "C:\\Windows\\System32\\VBoxService.exe"
        assert service.state is ServiceState.RUNNING

    def test_display_name_defaults_to_name(self):
        service = ServiceManager().install("vmtools")
        assert service.display_name == "vmtools"

    def test_lookup_is_case_insensitive(self, scm):
        assert scm.exists("VBOXSERVICE")
        assert scm.get("vboxservice") is scm.get("VBoxService")

    def test_missing_service(self, scm):
        assert scm.get("nosuch") is None
        assert not scm.exists("nosuch")

    def test_uninstall(self, scm):
        assert scm.uninstall("spooler") is True
        assert not scm.exists("Spooler")
        assert scm.uninstall("spooler") is False

    def test_reinstall_replaces(self, scm):
        scm.install("Spooler", "Replacement Spooler")
        assert scm.get("spooler").display_name == "Replacement Spooler"
        assert scm.get("spooler").state is ServiceState.RUNNING


class TestStartStop:
    def test_start_a_stopped_service(self, scm):
        assert not scm.is_running("Spooler")
        assert scm.start("Spooler") is True
        assert scm.is_running("Spooler")

    def test_stop_a_running_service(self, scm):
        assert scm.is_running("VBoxService")
        assert scm.stop("VBoxService") is True
        assert not scm.is_running("VBoxService")
        assert scm.exists("VBoxService")  # stopped, not uninstalled

    def test_start_stop_are_idempotent(self, scm):
        assert scm.start("VBoxService") is True
        assert scm.is_running("VBoxService")
        assert scm.stop("Spooler") is True
        assert not scm.is_running("Spooler")

    def test_start_stop_missing_service_is_false(self, scm):
        assert scm.start("nosuch") is False
        assert scm.stop("nosuch") is False
        assert not scm.is_running("nosuch")


class TestEnumeration:
    def test_running_filters_stopped(self, scm):
        names = [service.name for service in scm.running()]
        assert names == ["VBoxService"]

    def test_all_lists_every_state(self, scm):
        assert {service.name for service in scm.all()} == \
            {"VBoxService", "Spooler"}


class TestSnapshotRestore:
    def test_snapshot_restore_roundtrip(self, scm):
        frozen = scm.snapshot()
        scm.stop("VBoxService")
        scm.uninstall("Spooler")
        scm.install("evil", "Evil Service")
        scm.restore(frozen)
        assert scm.is_running("VBoxService")
        assert scm.exists("Spooler")
        assert not scm.exists("evil")

    def test_snapshot_is_isolated_from_later_mutation(self, scm):
        frozen = scm.snapshot()
        scm.get("VBoxService").state = ServiceState.STOPPED
        assert frozen["vboxservice"].state is ServiceState.RUNNING

    def test_restore_copies_rather_than_aliases(self, scm):
        frozen = scm.snapshot()
        scm.restore(frozen)
        scm.stop("VBoxService")
        assert frozen["vboxservice"].state is ServiceState.RUNNING

    def test_service_is_a_plain_dataclass(self):
        service = Service("s", "S", "C:\\s.exe")
        assert dataclasses.replace(service) == service
