"""Handles, structures, MAC helpers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.winsim.types import (GIB, Handle, HandleTable,
                                INVALID_HANDLE_VALUE, MemoryStatusEx,
                                OsVersionInfo, Peb, SystemInfo, format_mac,
                                parse_mac)


class TestHandleTable:
    def test_open_resolve(self):
        table = HandleTable()
        handle = table.open({"x": 1}, "file")
        assert table.resolve(handle) == {"x": 1}

    def test_kind_checked_resolution(self):
        table = HandleTable()
        handle = table.open("obj", "key")
        assert table.resolve(handle, "key") == "obj"
        assert table.resolve(handle, "file") is None

    def test_close(self):
        table = HandleTable()
        handle = table.open("obj", "key")
        assert table.close(handle)
        assert table.resolve(handle) is None
        assert not table.close(handle)

    def test_handles_are_multiples_of_four(self):
        table = HandleTable()
        for _ in range(5):
            assert table.open("o", "k").value % 4 == 0

    def test_invalid_handle_is_falsy(self):
        assert not Handle(INVALID_HANDLE_VALUE, "file")
        table = HandleTable()
        assert table.open("o", "k")

    def test_live_count(self):
        table = HandleTable()
        handles = [table.open(i, "k") for i in range(3)]
        table.close(handles[0])
        assert table.live_count() == 2

    def test_resolve_garbage(self):
        table = HandleTable()
        assert table.resolve("not-a-handle") is None
        assert not table.close(42)

    @given(count=st.integers(1, 50))
    @settings(max_examples=20, deadline=None)
    def test_handles_unique(self, count):
        table = HandleTable()
        values = [table.open(i, "k").value for i in range(count)]
        assert len(set(values)) == count


class TestStructures:
    def test_memory_status_derives_load(self):
        status = MemoryStatusEx(total_phys=8 * GIB, avail_phys=2 * GIB)
        assert status.memory_load == 75
        assert status.total_page_file == 16 * GIB

    def test_memory_status_load_clamped(self):
        status = MemoryStatusEx(total_phys=GIB, avail_phys=0)
        assert 0 <= status.memory_load <= 100

    def test_system_info_defaults(self):
        info = SystemInfo(number_of_processors=1)
        assert info.page_size == 4096

    def test_os_version_windows7(self):
        version = OsVersionInfo()
        assert version.is_windows7
        assert not version.is_windows8_or_later

    def test_os_version_windows8(self):
        version = OsVersionInfo(major=6, minor=2)
        assert version.is_windows8_or_later

    def test_peb_defaults(self):
        peb = Peb()
        assert not peb.being_debugged
        assert peb.heap_force_flags == 0


class TestMac:
    def test_format(self):
        assert format_mac(bytes([8, 0, 0x27, 1, 2, 3])) == \
            "08:00:27:01:02:03"

    def test_parse(self):
        assert parse_mac("08:00:27:01:02:03") == bytes([8, 0, 0x27, 1, 2, 3])

    def test_parse_dashes(self):
        assert parse_mac("08-00-27-01-02-03") == bytes([8, 0, 0x27, 1, 2, 3])

    def test_format_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            format_mac(b"\x00\x01")

    def test_parse_rejects_malformed(self):
        with pytest.raises(ValueError):
            parse_mac("08:00:27")

    @given(raw=st.binary(min_size=6, max_size=6))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip(self, raw):
        assert parse_mac(format_mac(raw)) == raw
