"""Registry hive behaviour: paths, values, search, snapshot, invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.winsim.registry import (Registry, RegType, default_type_for,
                                   split_path)

VBOX_KEY = "HKEY_LOCAL_MACHINE\\SOFTWARE\\Oracle\\VirtualBox Guest Additions"


class TestPathHandling:
    def test_split_path_normalizes_hive_aliases(self):
        assert split_path("HKLM\\SOFTWARE")[0] == "HKEY_LOCAL_MACHINE"
        assert split_path("HKCU\\Software")[0] == "HKEY_CURRENT_USER"

    def test_split_path_handles_forward_slashes(self):
        assert split_path("HKLM/SOFTWARE/Test") == \
            ["HKEY_LOCAL_MACHINE", "SOFTWARE", "Test"]

    def test_split_path_drops_empty_components(self):
        assert split_path("HKLM\\\\SOFTWARE\\") == \
            ["HKEY_LOCAL_MACHINE", "SOFTWARE"]


class TestKeyLifecycle:
    def test_create_and_open_key(self):
        registry = Registry()
        registry.create_key(VBOX_KEY)
        assert registry.key_exists(VBOX_KEY)

    def test_open_is_case_insensitive(self):
        registry = Registry()
        registry.create_key(VBOX_KEY)
        assert registry.key_exists(VBOX_KEY.upper())
        assert registry.key_exists(VBOX_KEY.lower())

    def test_open_missing_key_returns_none(self):
        registry = Registry()
        assert registry.open_key("HKLM\\SOFTWARE\\NoSuchVendor") is None

    def test_create_key_requires_hive(self):
        registry = Registry()
        with pytest.raises(ValueError):
            registry.create_key("SOFTWARE\\NoHive")

    def test_delete_key_removes_subtree(self):
        registry = Registry()
        registry.create_key(VBOX_KEY + "\\Sub\\Deeper")
        assert registry.delete_key(VBOX_KEY)
        assert not registry.key_exists(VBOX_KEY)
        assert not registry.key_exists(VBOX_KEY + "\\Sub\\Deeper")

    def test_delete_missing_key_returns_false(self):
        assert not Registry().delete_key("HKLM\\SOFTWARE\\Ghost")

    def test_intermediate_keys_created(self):
        registry = Registry()
        registry.create_key(VBOX_KEY)
        assert registry.key_exists("HKLM\\SOFTWARE\\Oracle")

    def test_key_path_roundtrip(self):
        registry = Registry()
        key = registry.create_key(VBOX_KEY)
        assert key.path() == VBOX_KEY


class TestValues:
    def test_set_and_get_value(self):
        registry = Registry()
        registry.set_value(VBOX_KEY, "Version", "5.2.8")
        assert registry.get_data(VBOX_KEY, "Version") == "5.2.8"

    def test_value_names_case_insensitive(self):
        registry = Registry()
        registry.set_value(VBOX_KEY, "Version", "5.2.8")
        assert registry.get_data(VBOX_KEY, "VERSION") == "5.2.8"

    def test_get_data_default(self):
        registry = Registry()
        assert registry.get_data("HKLM\\SOFTWARE", "missing", 42) == 42

    def test_type_inference(self):
        assert default_type_for("text") is RegType.REG_SZ
        assert default_type_for(7) is RegType.REG_DWORD
        assert default_type_for(b"\x00") is RegType.REG_BINARY
        assert default_type_for(["a", "b"]) is RegType.REG_MULTI_SZ

    def test_type_inference_rejects_unknown(self):
        with pytest.raises(TypeError):
            default_type_for(3.14)

    def test_delete_value(self):
        registry = Registry()
        registry.set_value(VBOX_KEY, "Version", "5.2.8")
        key = registry.open_key(VBOX_KEY)
        assert key.delete_value("Version")
        assert key.get_value("Version") is None

    def test_overwrite_value(self):
        registry = Registry()
        registry.set_value(VBOX_KEY, "Version", "5.2.8")
        registry.set_value(VBOX_KEY, "Version", "6.0.0")
        assert registry.get_data(VBOX_KEY, "Version") == "6.0.0"


class TestEnumerationAndCounts:
    def test_subkey_names_stable_order(self):
        registry = Registry()
        registry.create_key("HKLM\\SOFTWARE\\A\\First")
        registry.create_key("HKLM\\SOFTWARE\\A\\Second")
        key = registry.open_key("HKLM\\SOFTWARE\\A")
        assert key.subkey_names() == ["First", "Second"]

    def test_counts(self):
        registry = Registry()
        registry.create_key("HKLM\\SOFTWARE\\A\\One")
        registry.set_value("HKLM\\SOFTWARE\\A", "v1", 1)
        registry.set_value("HKLM\\SOFTWARE\\A", "v2", 2)
        key = registry.open_key("HKLM\\SOFTWARE\\A")
        assert key.subkey_count() == 1
        assert key.value_count() == 2

    def test_count_references_matches_names_values_and_data(self):
        registry = Registry()
        registry.create_key("HKLM\\SOFTWARE\\VMware, Inc.")
        registry.set_value("HKLM\\SOFTWARE\\Misc", "VMwarePath",
                           "C:\\Program Files\\App")
        registry.set_value("HKLM\\SOFTWARE\\Misc", "Other",
                           "uses vmware tools")
        registry.set_value("HKLM\\SOFTWARE\\Misc", "Multi",
                           ["a", "VMware entry"])
        assert registry.count_references("vmware") == 4

    def test_total_entries_counts_keys_and_values(self):
        registry = Registry()
        registry.create_key("HKLM\\SOFTWARE")
        base = registry.total_entries()
        registry.create_key("HKLM\\SOFTWARE\\X")
        registry.set_value("HKLM\\SOFTWARE\\X", "v", 1)
        assert registry.total_entries() == base + 2


class TestSizeEstimation:
    def test_size_grows_with_entries(self):
        registry = Registry()
        before = registry.estimated_size_bytes()
        for index in range(50):
            registry.set_value("HKLM\\SOFTWARE\\Bulk", f"v{index}",
                               "x" * 100)
        assert registry.estimated_size_bytes() > before

    def test_bulk_padding_included(self):
        registry = Registry()
        registry.bulk_padding_bytes = 10_000_000
        assert registry.estimated_size_bytes() >= 10_000_000


class TestSnapshot:
    def test_snapshot_restore_roundtrip(self):
        registry = Registry()
        registry.set_value(VBOX_KEY, "Version", "5.2.8")
        registry.bulk_padding_bytes = 123
        state = registry.snapshot()
        registry.set_value(VBOX_KEY, "Version", "tampered")
        registry.create_key("HKLM\\SOFTWARE\\Extra")
        registry.restore(state)
        assert registry.get_data(VBOX_KEY, "Version") == "5.2.8"
        assert not registry.key_exists("HKLM\\SOFTWARE\\Extra")
        assert registry.bulk_padding_bytes == 123

    def test_snapshot_is_deep(self):
        registry = Registry()
        registry.set_value(VBOX_KEY, "Version", "5.2.8")
        state = registry.snapshot()
        registry.delete_key(VBOX_KEY)
        registry.restore(state)
        assert registry.get_data(VBOX_KEY, "Version") == "5.2.8"


# ASCII-only: the simulated registry follows Windows' invariant-culture
# case folding, which simple str.lower() only matches for ASCII names.
_key_names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 ._-",
    min_size=1, max_size=20).filter(lambda s: s.strip())


class TestProperties:
    @given(parts=st.lists(_key_names, min_size=1, max_size=4))
    @settings(max_examples=50, deadline=None)
    def test_created_keys_always_resolvable(self, parts):
        registry = Registry()
        path = "HKEY_LOCAL_MACHINE\\" + "\\".join(parts)
        registry.create_key(path)
        assert registry.key_exists(path)
        assert registry.key_exists(path.upper())

    @given(name=_key_names, data=st.one_of(
        st.text(max_size=40), st.integers(0, 2**31), st.binary(max_size=32)))
    @settings(max_examples=50, deadline=None)
    def test_value_roundtrip(self, name, data):
        registry = Registry()
        registry.set_value("HKLM\\SOFTWARE\\Prop", name, data)
        assert registry.get_data("HKLM\\SOFTWARE\\Prop", name) == data

    @given(parts=st.lists(_key_names, min_size=2, max_size=4))
    @settings(max_examples=50, deadline=None)
    def test_snapshot_restore_identity(self, parts):
        registry = Registry()
        path = "HKEY_CURRENT_USER\\" + "\\".join(parts)
        registry.set_value(path, "marker", 1)
        state = registry.snapshot()
        registry.restore(state)
        assert registry.get_data(path, "marker") == 1
        assert registry.snapshot() == state
