"""Event bus: subscribe/unsubscribe lifecycle, fan-out, state-restore cleanup."""

import pytest

from repro.winsim import Machine
from repro.winsim.bus import EventBus, KernelEvent


@pytest.fixture
def bus():
    return EventBus()


def _event(name="CreateProcess", pid=4):
    return KernelEvent("process", name, pid, 1000, {"path": "C:\\x.exe"})


class TestSubscription:
    def test_subscribers_receive_published_events(self, bus):
        seen = []
        bus.subscribe(seen.append)
        event = _event()
        bus.publish(event)
        assert seen == [event]

    def test_fan_out_to_every_subscriber_in_order(self, bus):
        calls = []
        bus.subscribe(lambda e: calls.append("first"))
        bus.subscribe(lambda e: calls.append("second"))
        bus.publish(_event())
        assert calls == ["first", "second"]

    def test_unsubscribe_stops_delivery(self, bus):
        seen = []
        unsubscribe = bus.subscribe(seen.append)
        unsubscribe()
        bus.publish(_event())
        assert seen == []
        assert bus.subscriber_count == 0

    def test_unsubscribe_is_idempotent(self, bus):
        unsubscribe = bus.subscribe(lambda e: None)
        unsubscribe()
        unsubscribe()  # second call must not raise or miscount
        assert bus.subscriber_count == 0

    def test_unsubscribe_removes_only_its_own_callback(self, bus):
        kept = []
        unsubscribe = bus.subscribe(lambda e: None)
        bus.subscribe(kept.append)
        unsubscribe()
        bus.publish(_event())
        assert len(kept) == 1
        assert bus.subscriber_count == 1

    def test_unsubscribing_during_publish_is_safe(self, bus):
        """publish() iterates a copy, so a callback may detach itself."""
        seen = []

        def self_detaching(event):
            seen.append(event)
            unsubscribe()

        unsubscribe = bus.subscribe(self_detaching)
        bus.publish(_event())
        bus.publish(_event())
        assert len(seen) == 1
        assert bus.subscriber_count == 0


class TestEmit:
    def test_emit_builds_and_publishes(self, bus):
        seen = []
        bus.subscribe(seen.append)
        event = bus.emit("registry", "RegOpenKey", 8, 2000,
                         key="HKLM\\SOFTWARE")
        assert seen == [event]
        assert event.category == "registry"
        assert event.detail("key") == "HKLM\\SOFTWARE"
        assert event.detail("missing", "dflt") == "dflt"


class TestCleanup:
    def test_clear_subscribers_drops_everyone(self, bus):
        bus.subscribe(lambda e: None)
        bus.subscribe(lambda e: None)
        bus.clear_subscribers()
        assert bus.subscriber_count == 0
        bus.publish(_event())  # nobody left to deliver to; must not raise

    def test_restore_state_clears_stale_subscribers(self):
        """The PR-4 path: a restored machine must not keep publishing to
        subscribers that belonged to the snapshotted run."""
        machine = Machine().boot()
        state = machine.snapshot_state()
        stale = []
        machine.bus.subscribe(stale.append)
        machine.restore_state(state)
        assert machine.bus.subscriber_count == 0
        machine.spawn_process("probe.exe", "C:\\probe.exe",
                              parent=machine.explorer)
        assert stale == []
