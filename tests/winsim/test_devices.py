r"""Direct unit tests for the device namespace.

Name normalization is the load-bearing behaviour: malware probes spell
``\\.\VBoxGuest`` with every slash variant imaginable, and a miss that
should have hit (or vice versa) flips a hard VM-evidence signal.
"""

from repro.winsim.devices import (VBOX_DEVICES, VMWARE_DEVICES,
                                  DeviceNamespace, normalize_device_name)


class TestNormalization:
    def test_strips_the_unc_device_prefix(self):
        assert normalize_device_name("\\\\.\\VBoxGuest") == "vboxguest"

    def test_forward_slashes_collapse_to_backslashes(self):
        assert normalize_device_name("//./VBoxGuest") == "vboxguest"

    def test_bare_name_passes_through_lowercased(self):
        assert normalize_device_name("HGFS") == "hgfs"

    def test_pipe_names_keep_their_pipe_segment(self):
        assert normalize_device_name("\\\\.\\pipe\\VBoxTrayIPC") == \
            "pipe\\vboxtrayipc"

    def test_all_spellings_agree(self):
        spellings = ("\\\\.\\vmci", "//./vmci", "\\.\\VMCI", "vmci")
        assert {normalize_device_name(s) for s in spellings} == {"vmci"}


class TestNamespace:
    def test_register_then_exists_across_spellings(self):
        ns = DeviceNamespace()
        ns.register("\\\\.\\VBoxGuest")
        assert ns.exists("//./vboxguest")
        assert ns.exists("VBOXGUEST")
        assert not ns.exists("\\\\.\\VBoxMouse")

    def test_names_preserve_the_registered_display_form(self):
        ns = DeviceNamespace()
        ns.register("\\\\.\\HGFS")
        assert ns.names() == ["\\\\.\\HGFS"]

    def test_reregistering_updates_the_display_name(self):
        ns = DeviceNamespace()
        ns.register("\\\\.\\hgfs")
        ns.register("\\\\.\\HGFS")
        assert ns.names() == ["\\\\.\\HGFS"]

    def test_unregister_reports_whether_the_device_existed(self):
        ns = DeviceNamespace()
        ns.register("\\\\.\\vmci")
        assert ns.unregister("//./VMCI") is True
        assert ns.unregister("//./VMCI") is False
        assert not ns.exists("vmci")


class TestSnapshotRestore:
    def test_roundtrip_restores_the_exact_device_set(self):
        ns = DeviceNamespace()
        for name in VBOX_DEVICES:
            ns.register(name)
        state = ns.snapshot()
        ns.unregister(VBOX_DEVICES[0])
        ns.register("\\\\.\\HGFS")
        ns.restore(state)
        assert ns.exists(VBOX_DEVICES[0])
        assert not ns.exists("HGFS")
        assert sorted(ns.names()) == sorted(VBOX_DEVICES)

    def test_snapshot_is_isolated_from_later_registration(self):
        ns = DeviceNamespace()
        state = ns.snapshot()
        ns.register("\\\\.\\vmci")
        assert state == {}


class TestVendorConstants:
    def test_vbox_and_vmware_sets_do_not_overlap(self):
        vbox = {normalize_device_name(n) for n in VBOX_DEVICES}
        vmware = {normalize_device_name(n) for n in VMWARE_DEVICES}
        assert not vbox & vmware

    def test_known_paper_probes_are_present(self):
        assert "\\\\.\\VBoxGuest" in VBOX_DEVICES
        assert "\\\\.\\HGFS" in VMWARE_DEVICES
        assert "\\\\.\\vmci" in VMWARE_DEVICES
