"""``Machine.snapshot_state`` / ``restore_state`` — the templating contract.

Unlike the Deep Freeze substitute (:meth:`Machine.snapshot` /
:meth:`Machine.restore`, where the process tree is recreated by a reboot),
``snapshot_state`` captures *everything* — process table, handle table,
counter positions, explorer alias — so that
:class:`repro.parallel.template.MachineTemplate` can rewind one machine in
place between jobs and still hand malware a byte-identical world.
"""

from repro.analysis.environments import build_bare_metal_sandbox
from repro.winsim.machine import Machine


def _fresh_machine():
    return Machine().boot()


class TestRestoreUndoesMutations:
    def test_registry_writes_are_undone(self):
        machine = _fresh_machine()
        state = machine.snapshot_state()
        key = "HKEY_CURRENT_USER\\Software\\Malware"
        machine.registry.set_value(key, "Installed", 1)
        machine.registry.set_value(
            "HKEY_CURRENT_USER\\Software\\Microsoft\\Windows"
            "\\CurrentVersion\\Run", "Updater", "C:\\mal.exe")
        assert machine.registry.key_exists(key)
        machine.restore_state(state)
        assert not machine.registry.key_exists(key)
        run_key = machine.registry.open_key(
            "HKEY_CURRENT_USER\\Software\\Microsoft\\Windows"
            "\\CurrentVersion\\Run")
        assert run_key is not None and run_key.get_value("Updater") is None

    def test_file_drops_are_undone(self):
        machine = _fresh_machine()
        state = machine.snapshot_state()
        dropped = "C:\\Windows\\Temp\\payload.bin"
        machine.filesystem.write_file(dropped, b"\x90" * 64)
        machine.filesystem.delete("C:\\Windows\\Temp")
        assert not machine.filesystem.exists("C:\\Windows\\Temp")
        machine.restore_state(state)
        assert machine.filesystem.is_dir("C:\\Windows\\Temp")
        assert not machine.filesystem.exists(dropped)

    def test_spawned_processes_are_undone(self):
        machine = _fresh_machine()
        state = machine.snapshot_state()
        baseline_pids = sorted(p.pid for p in machine.processes.all())
        machine.spawn_process("dropper.exe", "C:\\mal\\dropper.exe")
        machine.processes.terminate(machine.explorer.pid)
        machine.restore_state(state)
        assert sorted(p.pid for p in machine.processes.all()) == baseline_pids
        assert not machine.processes.name_exists("dropper.exe")
        assert machine.explorer is not None and machine.explorer.alive
        # The restored explorer alias points into the restored table, not
        # at a stale pre-restore object.
        assert machine.explorer is machine.processes.get(machine.explorer.pid)

    def test_clock_advances_are_undone(self):
        machine = _fresh_machine()
        state = machine.snapshot_state()
        before = machine.clock.now_ns
        machine.clock.advance_ms(5_000)
        assert machine.clock.now_ns > before
        machine.restore_state(state)
        assert machine.clock.now_ns == before


class TestCountersRewind:
    """Restored counters hand out the exact values a fresh run would see.

    ``itertools.count`` pickles its position, so PIDs and handle values —
    both observable by evasive samples — replay identically after a
    rewind. This is what makes templated runs byte-identical.
    """

    def test_pid_counter_replays(self):
        machine = _fresh_machine()
        state = machine.snapshot_state()
        first = machine.spawn_process("a.exe").pid
        machine.spawn_process("b.exe")
        machine.restore_state(state)
        assert machine.spawn_process("a.exe").pid == first

    def test_handle_counter_replays(self):
        machine = _fresh_machine()
        state = machine.snapshot_state()
        first = machine.handles.open(object(), "mutex").value
        machine.handles.open(object(), "file")
        machine.restore_state(state)
        assert machine.handles.live_count() == 0
        assert machine.handles.open(object(), "mutex").value == first


class TestBusSubscribers:
    def test_restore_drops_leaked_subscribers(self):
        """A crashed run can leak its tracer subscription; rewind drops it."""
        machine = _fresh_machine()
        state = machine.snapshot_state()
        machine.bus.subscribe(lambda event: None)
        machine.bus.subscribe(lambda event: None)
        assert machine.bus.subscriber_count == 2
        machine.restore_state(state)
        assert machine.bus.subscriber_count == 0


class TestIdempotence:
    def test_double_restore_is_stable(self):
        machine = build_bare_metal_sandbox()
        state = machine.snapshot_state()
        machine.spawn_process("x.exe")
        machine.restore_state(state)
        again = machine.snapshot_state()
        machine.restore_state(state)
        assert machine.snapshot_state().keys() == again.keys()
        assert machine.processes.snapshot() == again["processes"]
        assert machine.handles.snapshot() == again["handles"]
