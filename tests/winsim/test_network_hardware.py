"""Network stack (DNS/sinkhole/reachability) and hardware (CPUID) models."""

import pytest

from repro.winsim.hardware import (Cpu, HV_VENDOR_VBOX, HV_VENDOR_VMWARE,
                                   Hardware, KNOWN_HV_VENDORS)
from repro.winsim.network import NetworkStack, VBOX_OUI


@pytest.fixture
def net():
    return NetworkStack()


class TestDns:
    def test_registered_domain_resolves(self, net):
        ip = net.register_domain("update.example.com")
        assert net.resolve("update.example.com") == ip

    def test_resolution_case_insensitive(self, net):
        net.register_domain("Example.COM", "1.2.3.4")
        assert net.resolve("example.com") == "1.2.3.4"

    def test_nx_domain_returns_none(self, net):
        assert net.resolve("no-such-domain.invalid") is None

    def test_sinkhole_answers_nx(self, net):
        net.nx_sinkhole_ip = "10.0.0.1"
        assert net.resolve("no-such-domain.invalid") == "10.0.0.1"

    def test_sinkhole_does_not_mask_real_answers(self, net):
        net.register_domain("real.com", "9.9.9.9")
        net.nx_sinkhole_ip = "10.0.0.1"
        assert net.resolve("real.com") == "9.9.9.9"

    def test_query_log_records_lookups(self, net):
        net.resolve("a.com")
        net.resolve("B.com")
        assert net.query_log == ["a.com", "b.com"]

    def test_stable_fake_ip_deterministic(self, net):
        first = net.register_domain("x.com")
        other = NetworkStack().register_domain("x.com")
        assert first == other


class TestReachability:
    def test_http_get_requires_reachable(self, net):
        net.register_domain("site.com", "5.5.5.5")
        assert not net.http_get_domain("site.com")
        net.mark_reachable("5.5.5.5")
        assert net.http_get_domain("site.com")

    def test_http_get_none_ip(self, net):
        assert not net.http_get(None)

    def test_killswitch_scenario(self, net):
        """NX domain + sinkhole + reachable sinkhole = HTTP response."""
        domain = "www.iuqerfsodp9ifjaposdfjhgosurijfaewrwergwea.com"
        assert not net.http_get_domain(domain)       # end-user: NX
        net.nx_sinkhole_ip = "10.10.10.10"
        net.mark_reachable("10.10.10.10")
        assert net.http_get_domain(domain)           # sandbox: sinkholed


class TestAdapters:
    def test_vm_mac_detection(self, net):
        net.add_adapter("eth0", "08:00:27:11:22:33")
        assert net.has_vm_mac()

    def test_physical_mac_not_flagged(self, net):
        net.add_adapter("eth0", "3C:97:0E:52:AA:10")
        assert not net.has_vm_mac()

    def test_oui_extraction(self, net):
        adapter = net.add_adapter("eth0", "08:00:27:aa:bb:cc")
        assert adapter.oui == VBOX_OUI

    def test_snapshot_roundtrip(self, net):
        net.add_adapter("eth0", "08:00:27:11:22:33")
        net.register_domain("a.com")
        net.nx_sinkhole_ip = "1.1.1.1"
        state = net.snapshot()
        net.nx_sinkhole_ip = None
        net.add_adapter("eth1", "00:11:22:33:44:55")
        net.restore(state)
        assert net.nx_sinkhole_ip == "1.1.1.1"
        assert len(net.adapters()) == 1


class TestCpu:
    def test_physical_cpu_no_hv_bit(self):
        cpu = Cpu()
        assert not cpu.cpuid(1)["ecx"] & (1 << 31)

    def test_hypervisor_bit_set(self):
        cpu = Cpu(hypervisor_present=True, hypervisor_vendor=HV_VENDOR_VBOX)
        assert cpu.cpuid(1)["ecx"] & (1 << 31)

    def test_hypervisor_bit_maskable(self):
        cpu = Cpu(hypervisor_present=True, hypervisor_vendor=HV_VENDOR_VBOX,
                  mask_hypervisor_bit=True)
        assert not cpu.cpuid(1)["ecx"] & (1 << 31)

    def test_vendor_leaf_roundtrip(self):
        for vendor in (HV_VENDOR_VBOX, HV_VENDOR_VMWARE):
            cpu = Cpu(hypervisor_present=True, hypervisor_vendor=vendor)
            assert cpu.hypervisor_vendor_string() == vendor
            assert cpu.hypervisor_vendor_string() in KNOWN_HV_VENDORS

    def test_vendor_leaf_masked(self):
        cpu = Cpu(hypervisor_present=True, hypervisor_vendor=HV_VENDOR_VBOX,
                  mask_hypervisor_bit=True)
        assert cpu.hypervisor_vendor_string() == ""

    def test_leaf0_vendor_genuine_intel(self):
        cpu = Cpu()
        regs = cpu.cpuid(0)
        raw = b"".join(regs[r].to_bytes(4, "little")
                       for r in ("ebx", "edx", "ecx"))
        assert raw == b"GenuineIntel"

    def test_unknown_leaf_zeroes(self):
        assert Cpu().cpuid(0x77) == {"eax": 0, "ebx": 0, "ecx": 0, "edx": 0}


class TestHardwareSnapshot:
    def test_roundtrip(self):
        hardware = Hardware()
        hardware.cpu.cores = 8
        state = hardware.snapshot()
        hardware.cpu.cores = 1
        hardware.total_ram = 1
        hardware.restore(state)
        assert hardware.cpu.cores == 8
        assert hardware.total_ram > 1
