"""Filesystem tree: paths, drives, CRUD, globbing, snapshot, invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.winsim.filesystem import (FILE_ATTRIBUTE_DIRECTORY,
                                     FILE_ATTRIBUTE_HIDDEN, FileSystem,
                                     split_path)
from repro.winsim.types import GIB


@pytest.fixture
def fs():
    filesystem = FileSystem()
    filesystem.add_drive("C:", 100 * GIB, used_bytes_base=10 * GIB)
    return filesystem


class TestPathParsing:
    def test_split_path(self):
        assert split_path("C:\\Windows\\System32") == \
            ("C:", ["Windows", "System32"])

    def test_split_path_forward_slashes(self):
        assert split_path("C:/Windows") == ("C:", ["Windows"])

    def test_split_path_requires_drive(self):
        with pytest.raises(ValueError):
            split_path("\\Windows\\System32")

    def test_drive_letter_case_normalized(self):
        assert split_path("c:\\x")[0] == "C:"


class TestFileCrud:
    def test_write_and_read(self, fs):
        fs.write_file("C:\\data\\file.bin", b"payload")
        assert fs.read_file("C:\\data\\file.bin") == b"payload"

    def test_write_creates_parents(self, fs):
        fs.write_file("C:\\a\\b\\c\\d.txt", b"x")
        assert fs.is_dir("C:\\a\\b\\c")

    def test_case_insensitive_resolution(self, fs):
        fs.write_file("C:\\Windows\\System32\\drivers\\VMMOUSE.SYS", b"d")
        assert fs.exists("c:\\windows\\system32\\drivers\\vmmouse.sys")

    def test_read_missing_returns_none(self, fs):
        assert fs.read_file("C:\\nope.txt") is None

    def test_read_directory_returns_none(self, fs):
        fs.makedirs("C:\\dir")
        assert fs.read_file("C:\\dir") is None

    def test_overwrite_preserves_creation_time(self, fs):
        fs.write_file("C:\\f.txt", b"1", when_ms=100)
        fs.write_file("C:\\f.txt", b"2", when_ms=200)
        node = fs.stat("C:\\f.txt")
        assert node.creation_time_ms == 100
        assert node.last_write_time_ms == 200

    def test_delete(self, fs):
        fs.write_file("C:\\f.txt", b"x")
        assert fs.delete("C:\\f.txt")
        assert not fs.exists("C:\\f.txt")

    def test_delete_missing_returns_false(self, fs):
        assert not fs.delete("C:\\ghost.txt")

    def test_rename(self, fs):
        fs.write_file("C:\\doc.txt", b"secret")
        assert fs.rename("C:\\doc.txt", "C:\\doc.txt.WCRY")
        assert not fs.exists("C:\\doc.txt")
        assert fs.read_file("C:\\doc.txt.WCRY") == b"secret"

    def test_rename_missing_returns_false(self, fs):
        assert not fs.rename("C:\\ghost", "C:\\other")

    def test_write_over_directory_raises(self, fs):
        fs.makedirs("C:\\dir")
        with pytest.raises(IsADirectoryError):
            fs.write_file("C:\\dir", b"x")

    def test_attributes_preserved(self, fs):
        fs.write_file("C:\\h.txt", b"x", attributes=FILE_ATTRIBUTE_HIDDEN)
        assert fs.stat("C:\\h.txt").attributes == FILE_ATTRIBUTE_HIDDEN

    def test_directory_attribute(self, fs):
        fs.makedirs("C:\\dir")
        assert fs.stat("C:\\dir").attributes & FILE_ATTRIBUTE_DIRECTORY


class TestEnumeration:
    def test_listdir(self, fs):
        fs.write_file("C:\\d\\a.txt", b"")
        fs.write_file("C:\\d\\b.txt", b"")
        assert sorted(fs.listdir("C:\\d")) == ["a.txt", "b.txt"]

    def test_listdir_missing_dir_empty(self, fs):
        assert fs.listdir("C:\\ghost") == []

    def test_glob(self, fs):
        fs.write_file("C:\\t\\FB_473.tmp.exe", b"")
        fs.write_file("C:\\t\\readme.txt", b"")
        assert fs.glob("C:\\t", "*.tmp.exe") == ["FB_473.tmp.exe"]

    def test_glob_case_insensitive(self, fs):
        fs.write_file("C:\\t\\VMMOUSE.SYS", b"")
        assert fs.glob("C:\\t", "vm*.sys") == ["VMMOUSE.SYS"]

    def test_walk_yields_all_descendants(self, fs):
        fs.write_file("C:\\w\\sub\\deep.txt", b"")
        fs.write_file("C:\\w\\top.txt", b"")
        paths = {path for path, _ in fs.walk("C:\\w")}
        assert "C:\\w\\sub\\deep.txt" in paths
        assert "C:\\w\\top.txt" in paths
        assert "C:\\w\\sub" in paths

    def test_file_count(self, fs):
        before = fs.file_count()
        fs.write_file("C:\\x\\1.txt", b"")
        fs.write_file("C:\\x\\2.txt", b"")
        assert fs.file_count() == before + 2


class TestDrives:
    def test_free_space_accounts_for_content(self, fs):
        drive = fs.drive("C:")
        free_before = drive.free_bytes
        fs.write_file("C:\\big.bin", b"\x00" * 4096)
        assert drive.free_bytes == free_before - 4096

    def test_total_bytes(self, fs):
        assert fs.drive("C:").total_bytes == 100 * GIB

    def test_unknown_drive_is_none(self, fs):
        assert fs.drive("Z:") is None

    def test_drive_letter_normalization(self, fs):
        assert fs.drive("c") is fs.drive("C:")


class TestSnapshot:
    def test_roundtrip(self, fs):
        fs.write_file("C:\\docs\\a.txt", b"original")
        state = fs.snapshot()
        fs.write_file("C:\\docs\\a.txt", b"ENCRYPTED")
        fs.write_file("C:\\docs\\ransom_note.txt", b"pay up")
        fs.restore(state)
        assert fs.read_file("C:\\docs\\a.txt") == b"original"
        assert not fs.exists("C:\\docs\\ransom_note.txt")

    def test_restore_preserves_drive_geometry(self, fs):
        state = fs.snapshot()
        fs.restore(state)
        assert fs.drive("C:").total_bytes == 100 * GIB


# ASCII-only: case-insensitivity is modelled with str.lower(), which only
# matches Windows' invariant-culture folding for ASCII names.
_names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-",
    min_size=1, max_size=12).filter(
        lambda s: s.strip(". ") and s not in (".", ".."))


class TestProperties:
    @given(parts=st.lists(_names, min_size=1, max_size=4),
           content=st.binary(max_size=64))
    @settings(max_examples=60, deadline=None)
    def test_write_read_roundtrip(self, parts, content):
        fs = FileSystem()
        fs.add_drive("C:", GIB)
        path = "C:\\" + "\\".join(parts)
        fs.write_file(path, content)
        assert fs.read_file(path) == content
        assert fs.exists(path.upper())

    @given(parts=st.lists(_names, min_size=1, max_size=3))
    @settings(max_examples=40, deadline=None)
    def test_delete_inverts_write(self, parts):
        fs = FileSystem()
        fs.add_drive("C:", GIB)
        path = "C:\\" + "\\".join(parts)
        fs.write_file(path, b"x")
        assert fs.delete(path)
        assert not fs.exists(path)

    @given(content=st.binary(max_size=256))
    @settings(max_examples=40, deadline=None)
    def test_free_space_never_negative(self, content):
        fs = FileSystem()
        fs.add_drive("C:", 1024, used_bytes_base=900)
        fs.write_file("C:\\f.bin", content)
        assert fs.drive("C:").free_bytes >= 0
