"""Resource-hygiene audits: handle leaks, event-bus detachment, determinism."""

import pytest

from repro import winapi
from repro.analysis.environments import build_end_user_machine
from repro.core import ScarecrowController
from repro.fingerprint.pafish import run_pafish
from repro.fingerprint.weartear import measure_artifacts


class TestHandleHygiene:
    def test_pafish_closes_what_it_opens(self, machine, api):
        before = machine.handles.live_count()
        run_pafish(api)
        leaked = machine.handles.live_count() - before
        assert leaked == 0, f"pafish leaked {leaked} handles"

    def test_weartear_tool_bounded_leakage(self, machine, api):
        before = machine.handles.live_count()
        measure_artifacts(api)
        leaked = machine.handles.live_count() - before
        assert leaked == 0, f"wear-and-tear tool leaked {leaked} handles"

    def test_protected_pafish_closes_fake_handles_too(self, machine,
                                                      controller,
                                                      protected_api):
        before = machine.handles.live_count()
        run_pafish(protected_api)
        leaked = machine.handles.live_count() - before
        assert leaked == 0, f"leaked {leaked} (materialized key?) handles"

    def test_evasion_checks_close_handles(self, machine, protected_api):
        from repro.malware.techniques import all_check_names, get_check
        before = machine.handles.live_count()
        for name in all_check_names():
            get_check(name).run(protected_api)
        leaked = machine.handles.live_count() - before
        assert leaked == 0, f"techniques leaked {leaked} handles"


class TestBusHygiene:
    def test_controller_shutdown_detaches(self, machine):
        before = machine.bus.subscriber_count
        controller = ScarecrowController(machine)
        assert machine.bus.subscriber_count == before + 1
        controller.shutdown()
        assert machine.bus.subscriber_count == before

    def test_tracer_stop_detaches(self, machine):
        from repro.analysis import Tracer
        before = machine.bus.subscriber_count
        tracer = Tracer(machine).start()
        tracer.stop()
        assert machine.bus.subscriber_count == before


class TestDeterminism:
    def test_environment_builders_deterministic(self):
        first = build_end_user_machine()
        second = build_end_user_machine()
        assert first.snapshot() == second.snapshot()

    def test_pafish_run_deterministic(self):
        results = []
        for _ in range(2):
            machine = build_end_user_machine()
            process = machine.spawn_process("p.exe", "C:\\p.exe",
                                            parent=machine.explorer)
            results.append(run_pafish(winapi.bind(machine, process)).results)
        assert results[0] == results[1]

    def test_table1_run_deterministic(self):
        from repro.experiments import run_table1
        first = [(r.md5_prefix, r.effective, r.trigger) for r in run_table1()]
        second = [(r.md5_prefix, r.effective, r.trigger)
                  for r in run_table1()]
        assert first == second


class TestClockDiscipline:
    """The winsim layer must never read host time or host randomness."""

    REPO_ROOT = __import__("pathlib").Path(__file__).resolve().parents[1]
    TOOL = REPO_ROOT / "tools" / "check_clock_discipline.py"

    def _run(self, *args):
        import subprocess
        import sys
        return subprocess.run(
            [sys.executable, str(self.TOOL), *args],
            capture_output=True, text=True, cwd=str(self.REPO_ROOT))

    def test_winsim_is_clock_disciplined(self):
        result = self._run()
        assert result.returncode == 0, \
            f"clock-discipline violations in winsim:\n{result.stdout}"

    def test_lint_flags_host_clock_usage(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import time\n"
                       "from random import random\n"
                       "when = __import__('datetime')\n")
        result = self._run(str(bad))
        assert result.returncode == 1
        assert "import time" in result.stdout
        assert "random" in result.stdout

    def test_lint_flags_method_calls(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("x = datetime.now()\ny = date.today()\n")
        result = self._run(str(bad))
        assert result.returncode == 1
        assert "datetime.now()" in result.stdout
        assert "date.today()" in result.stdout

    def test_check_paths_api(self, tmp_path):
        from tools.check_clock_discipline import check_paths
        good = tmp_path / "good.py"
        good.write_text("value = 1\n")
        assert check_paths([str(good)]) == []


@pytest.mark.staticcheck
class TestStaticCheck:
    """`repro lint src/` must report zero unbaselined findings.

    The scarelint gate (docs/STATIC_ANALYSIS.md): SC001/SC002 keep host
    time and entropy out of the deterministic zones, SC003 enforces the
    layer order, SC004 proves the 29-API hook contract against the live
    export table, SC005 rejects swallowed exceptions. Anything
    deliberately host-clock lives in .scarelint-baseline.json.
    """

    REPO_ROOT = __import__("pathlib").Path(__file__).resolve().parents[1]

    def test_src_tree_is_lint_clean(self):
        import subprocess
        import sys
        result = subprocess.run(
            [sys.executable, "-m", "repro", "lint", "src"],
            capture_output=True, text=True, cwd=str(self.REPO_ROOT))
        assert result.returncode == 0, \
            f"unbaselined scarelint findings:\n{result.stdout}"

    def test_no_stale_baseline_entries(self):
        from repro.staticcheck import load_or_empty, run_lint
        import os
        cwd = os.getcwd()
        os.chdir(self.REPO_ROOT)
        try:
            baseline = load_or_empty(".scarelint-baseline.json")
            report = run_lint(["src"], baseline=baseline)
        finally:
            os.chdir(cwd)
        assert report.findings == []
        stale = [entry.key for entry in report.stale_suppressions]
        assert stale == [], \
            f"baseline entries for fixed violations: {stale}"

    def test_sc004_proves_the_29_api_contract(self):
        """All 29 contract APIs resolve to prologue-bearing exports with
        registered handlers — the machine-checked Section III-A claim."""
        from repro.staticcheck.contract import (default_prologue_ok,
                                                live_contract_inputs)
        core, aliases, decoys, handler_names, exports = \
            live_contract_inputs()
        assert len(core) == 29
        export_index = {name.lower() for name in exports}
        handler_set = set(handler_names)
        for name in (*core, *aliases, *aliases.values(), *decoys):
            assert name.lower() in export_index, name
            assert default_prologue_ok(name), name
        for name in core:
            assert name in handler_set, f"{name} lacks a handler"


class TestMarkerHygiene:
    """Every pytest marker in use is declared in pyproject, and the
    marker-named suites actually carry their marker (so `-m fleet` etc.
    select what the docs promise)."""

    REPO_ROOT = __import__("pathlib").Path(__file__).resolve().parents[1]

    #: Suite directories whose files must all carry the matching marker.
    MARKED_SUITES = ("telemetry", "staticcheck", "fleet", "serve", "dbops")

    #: Files outside a marker-named directory that still owe a marker.
    DELTA_SUITE = ("parallel/test_delta_properties.py",
                   "parallel/test_envelope.py")

    def _declared_markers(self):
        import re
        text = (self.REPO_ROOT / "pyproject.toml").read_text(
            encoding="utf-8")
        block = text.split("markers = [", 1)[1].split("]", 1)[0]
        return set(re.findall(r'"(\w+):', block))

    def _used_markers(self):
        import re
        used = set()
        for path in (self.REPO_ROOT / "tests").rglob("test_*.py"):
            used.update(re.findall(r"pytest\.mark\.(\w+)",
                                   path.read_text(encoding="utf-8")))
        return used - {"parametrize", "skipif", "xfail", "usefixtures"}

    def test_every_used_marker_is_declared(self):
        undeclared = self._used_markers() - self._declared_markers()
        assert undeclared == set(), \
            f"markers used but not declared in pyproject: {undeclared}"

    def test_every_declared_marker_is_used(self):
        """A declared marker nobody applies is documentation rot —
        `-m <marker>` would silently select nothing."""
        stale = self._declared_markers() - self._used_markers()
        assert stale == set(), \
            f"markers declared in pyproject but never applied: {stale}"

    def test_unregistered_markers_fail_collection(self):
        """--strict-markers turns a typo'd marker into a hard error
        instead of a silently-never-selected test."""
        text = (self.REPO_ROOT / "pyproject.toml").read_text(
            encoding="utf-8")
        addopts = text.split("addopts = ", 1)[1].splitlines()[0]
        assert "--strict-markers" in addopts, \
            "pyproject addopts must enforce --strict-markers"

    def test_delta_suites_carry_the_delta_marker(self):
        assert "delta" in self._declared_markers()
        for rel in self.DELTA_SUITE:
            text = (self.REPO_ROOT / "tests" / rel).read_text(
                encoding="utf-8")
            assert "pytestmark = pytest.mark.delta" in text, \
                f"{rel} lacks the delta marker"

    def test_subsystem_suites_carry_their_marker(self):
        for suite in self.MARKED_SUITES:
            assert suite in self._declared_markers(), suite
            for path in (self.REPO_ROOT / "tests" / suite).glob(
                    "test_*.py"):
                text = path.read_text(encoding="utf-8")
                assert f"pytestmark = pytest.mark.{suite}" in text, \
                    f"{path.name} lacks the {suite} marker"

    def test_fleet_marker_selects_the_fleet_suite(self, pytestconfig):
        assert "fleet" in self._declared_markers()
        marker_lines = [line for line in
                        pytestconfig.getini("markers")
                        if line.startswith("fleet:")]
        assert marker_lines, "fleet marker not registered with pytest"
