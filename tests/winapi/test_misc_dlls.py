"""user32, shell32, dnsapi, ws2_32/wininet, wevtapi, iphlpapi/mpr."""

import pytest


class TestUser32:
    def test_find_window_miss(self, api):
        assert api.FindWindowA("OLLYDBG") is None

    def test_find_window_hit(self, machine, api):
        machine.gui.create_window("OLLYDBG", "OllyDbg")
        assert api.FindWindowA("OLLYDBG") is not None
        assert api.FindWindowW(None, "OllyDbg") is not None

    def test_cursor_pos(self, machine, api):
        machine.gui.move_cursor(100, 200)
        assert api.GetCursorPos() == (100, 200)

    def test_cursor_humanized_changes_over_sleep(self, machine, api):
        machine.gui.humanized = True
        first = api.GetCursorPos()
        api.Sleep(2000)
        assert api.GetCursorPos() != first

    def test_enum_windows(self, machine, api):
        machine.gui.create_window("A", "t1")
        machine.gui.create_window("B", "t2")
        listing = api.EnumWindows()
        assert len(listing) >= 2

    def test_foreground_window(self, machine, api):
        assert api.GetForegroundWindow() is None
        window = machine.gui.create_window("Top", None)
        assert api.GetForegroundWindow() == window.hwnd

    def test_system_metrics(self, api):
        assert api.GetSystemMetrics(0) == 1920
        assert api.GetSystemMetrics(1) == 1080
        assert api.GetSystemMetrics(99) == 0


class TestShell32:
    def test_shell_execute_spawns_child(self, api, target):
        child = api.ShellExecuteExW("C:\\apps\\tool.exe", "-v")
        assert child.parent is target
        assert "-v" in child.command_line

    def test_shell_execute_untrusted_propagation(self, api):
        child = api.ShellExecuteExW("C:\\apps\\tool.exe")
        assert child.tags.get("untrusted") is True


class TestDns:
    def test_query_registered(self, machine, api):
        machine.network.register_domain("c2.example.com", "7.7.7.7")
        assert api.DnsQuery_A("c2.example.com") == "7.7.7.7"

    def test_query_nx_returns_none(self, api):
        assert api.DnsQuery_A("nxdomain.invalid") is None

    def test_query_populates_cache(self, machine, api):
        machine.network.register_domain("cached.example.com")
        api.DnsQuery_A("cached.example.com")
        assert len(api.DnsGetCacheDataTable()) == 1

    def test_flush_cache(self, machine, api):
        machine.dnscache.add("x.com")
        assert api.DnsFlushResolverCache()
        assert api.DnsGetCacheDataTable() == []

    def test_gethostbyname_matches_dnsquery(self, machine, api):
        machine.network.register_domain("same.example.com", "8.8.8.8")
        assert api.gethostbyname("same.example.com") == "8.8.8.8"
        assert api.gethostbyname("missing.invalid") is None

    def test_net_events_published(self, machine, api):
        events = []
        machine.bus.subscribe(events.append)
        api.DnsQuery_A("probe.invalid")
        assert any(e.category == "net" and e.detail("domain") ==
                   "probe.invalid" for e in events)


class TestWininet:
    def test_open_url_reachable(self, machine, api):
        ip = machine.network.register_domain("site.com")
        machine.network.mark_reachable(ip)
        assert api.InternetOpenUrlA("http://site.com/index.html")

    def test_open_url_nx_unreachable(self, api):
        assert not api.InternetOpenUrlA("http://nxdomain.invalid/")

    def test_open_url_sinkholed(self, machine, api):
        machine.network.nx_sinkhole_ip = "10.0.0.1"
        machine.network.mark_reachable("10.0.0.1")
        assert api.InternetOpenUrlA("http://nxdomain.invalid/")

    def test_check_connection_alias(self, machine, api):
        ip = machine.network.register_domain("alive.com")
        machine.network.mark_reachable(ip)
        assert api.InternetCheckConnectionA("http://alive.com")


class TestWevtApi:
    def test_query_and_next(self, machine, api):
        machine.eventlog.extend_synthetic(10, ["Src"])
        query = api.EvtQuery("System")
        batch = api.EvtNext(query, 4)
        assert len(batch) == 4
        batch = api.EvtNext(query, 100)
        assert len(batch) == 6
        assert api.EvtNext(query) is None

    def test_query_unknown_channel(self, api):
        assert not api.EvtQuery("Security")

    def test_next_bad_handle(self, api):
        query = api.EvtQuery("System")
        api.CloseHandle(query)
        assert api.EvtNext(query) is None


class TestAdaptersAndProviders:
    def test_adapters_info(self, machine, api):
        machine.network.add_adapter("eth0", "08:00:27:01:02:03", "Intel")
        listing = api.GetAdaptersInfo()
        assert listing == [("eth0", "08:00:27:01:02:03", "Intel")]

    def test_wnet_provider_requires_vboxsf(self, machine, api):
        assert api.WNetGetProviderNameA(0x250000) is None
        machine.services.install("VBoxSF")
        assert "VirtualBox" in api.WNetGetProviderNameA(0x250000)
