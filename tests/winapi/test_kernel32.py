"""kernel32 surface: debugger, timing, modules, sysinfo, files, processes."""

import pytest

from repro.winapi.kernel32 import (CREATE_SUSPENDED, INVALID_FILE_ATTRIBUTES,
                                   IOCTL_DISK_GET_DRIVE_GEOMETRY)
from repro.winsim.process import ProcessState


class TestDebugger:
    def test_is_debugger_present_reads_peb(self, api, target):
        assert api.IsDebuggerPresent() is False
        target.peb.being_debugged = True
        assert api.IsDebuggerPresent() is True

    def test_check_remote_debugger_other_pid(self, machine, api):
        other = machine.spawn_process("o.exe")
        other.peb.being_debugged = True
        assert api.CheckRemoteDebuggerPresent(other.pid) is True

    def test_check_remote_debugger_bad_pid(self, api):
        assert api.CheckRemoteDebuggerPresent(123456) is False


class TestTiming:
    def test_tick_count_matches_clock(self, machine, api):
        assert abs(api.GetTickCount() - machine.clock.tick_count_ms()) <= 16

    def test_sleep_advances_ticks(self, api):
        before = api.GetTickCount()
        api.Sleep(500)
        assert api.GetTickCount() - before >= 480

    def test_qpc_monotonic(self, api):
        assert api.QueryPerformanceCounter() <= api.QueryPerformanceCounter()


class TestModules:
    def test_get_module_handle_loaded(self, api):
        assert api.GetModuleHandleA("kernel32.dll") is not None

    def test_get_module_handle_missing(self, api):
        assert api.GetModuleHandleA("SbieDll.dll") is None

    def test_get_module_handle_null_returns_exe_base(self, api, target):
        assert api.GetModuleHandleA(None) == \
            target.modules.executable.base_address

    def test_load_library_system_dll(self, machine, api):
        machine.filesystem.write_file(
            "C:\\Windows\\System32\\extra.dll", b"MZ")
        base = api.LoadLibraryA("extra.dll")
        assert base is not None
        assert api.GetModuleHandleA("extra.dll") == base

    def test_load_library_missing_file(self, api):
        assert api.LoadLibraryA("ghost.dll") is None

    def test_get_module_file_name_default(self, api, target):
        assert api.GetModuleFileNameA(None) == target.image_path

    def test_get_proc_address_existing(self, api):
        base = api.GetModuleHandleA("kernel32.dll")
        assert api.GetProcAddress(base, "IsDebuggerPresent") is not None

    def test_get_proc_address_wine_absent(self, api):
        base = api.GetModuleHandleA("kernel32.dll")
        assert api.GetProcAddress(base, "wine_get_unix_file_name") is None

    def test_get_proc_address_vhd_gated_by_version(self, machine, api):
        base = api.GetModuleHandleA("kernel32.dll")
        assert api.GetProcAddress(base, "IsNativeVhdBoot") is None
        machine.os_version.minor = 2  # Windows 8
        assert api.GetProcAddress(base, "IsNativeVhdBoot") is not None

    def test_get_proc_address_wrong_module(self, api):
        base = api.GetModuleHandleA("user32.dll")
        assert api.GetProcAddress(base, "IsDebuggerPresent") is None


class TestSystemInfo:
    def test_memory_status(self, machine, api):
        machine.hardware.total_ram = 4 * 1024 ** 3
        assert api.GlobalMemoryStatusEx().total_phys == 4 * 1024 ** 3

    def test_system_info_cores(self, machine, api):
        machine.hardware.cpu.cores = 4
        machine._sync_peb_all()
        assert api.GetSystemInfo().number_of_processors == 4

    def test_version(self, api):
        assert api.GetVersionExA().is_windows7

    def test_computer_name(self, machine, api):
        assert api.GetComputerNameA() == machine.identity.hostname

    def test_vhd_boot_unsupported_on_win7(self, api):
        assert api.IsNativeVhdBoot() == (False, False)

    def test_firmware_table_contains_bios(self, machine, api):
        machine.hardware.firmware.bios_version = "VBOX   - 1"
        assert b"VBOX" in api.GetSystemFirmwareTable()

    def test_disk_free_space(self, api):
        ok, free, total = api.GetDiskFreeSpaceExA("C:\\")
        assert ok and 0 < free <= total

    def test_disk_free_space_missing_drive(self, api):
        assert api.GetDiskFreeSpaceExA("Z:\\")[0] is False

    def test_drive_geometry(self, machine, api):
        geometry = api.DeviceIoControl("\\\\.\\PhysicalDrive0",
                                       IOCTL_DISK_GET_DRIVE_GEOMETRY)
        total = (geometry["cylinders"] * geometry["tracks_per_cylinder"] *
                 geometry["sectors_per_track"] * geometry["bytes_per_sector"])
        drive_total = machine.filesystem.drive("C:").total_bytes
        assert abs(total - drive_total) / drive_total < 0.01

    def test_device_io_control_unknown_ioctl(self, api):
        assert api.DeviceIoControl("\\\\.\\X", 0xDEAD) is None


class TestFiles:
    def test_get_file_attributes_missing(self, api):
        assert api.GetFileAttributesA("C:\\ghost.sys") == \
            INVALID_FILE_ATTRIBUTES

    def test_get_file_attributes_present(self, machine, api):
        machine.filesystem.write_file("C:\\real.txt", b"x")
        assert api.GetFileAttributesA("C:\\real.txt") != \
            INVALID_FILE_ATTRIBUTES

    def test_create_write_read_roundtrip(self, api):
        handle = api.CreateFileA("C:\\out.bin", write=True)
        assert api.WriteFile(handle, b"abc")
        assert api.WriteFile(handle, b"def")
        assert api.ReadFile(handle) == b"abcdef"
        assert api.CloseHandle(handle)

    def test_create_file_missing_read(self, api):
        assert not api.CreateFileA("C:\\missing.bin")

    def test_create_file_device(self, machine, api):
        machine.devices.register("\\\\.\\VBoxGuest")
        handle = api.CreateFileA("\\\\.\\VBoxGuest")
        assert handle
        assert not api.CreateFileA("\\\\.\\NotThere")

    def test_write_to_closed_handle_fails(self, api):
        handle = api.CreateFileA("C:\\x.bin", write=True)
        api.CloseHandle(handle)
        assert not api.WriteFile(handle, b"z")

    def test_delete_move(self, machine, api):
        machine.filesystem.write_file("C:\\a.txt", b"1")
        assert api.MoveFileA("C:\\a.txt", "C:\\b.txt")
        assert api.DeleteFileA("C:\\b.txt")
        assert not api.DeleteFileA("C:\\b.txt")

    def test_find_first_file(self, machine, api):
        machine.filesystem.write_file("C:\\t\\FB_1.tmp.exe", b"")
        assert api.FindFirstFileA("C:\\t\\*.tmp.exe") == "FB_1.tmp.exe"
        assert api.FindFirstFileA("C:\\t\\*.doc") is None

    def test_create_directory_emits_event(self, machine, api):
        events = []
        machine.bus.subscribe(events.append)
        api.CreateDirectoryA("C:\\newdir")
        assert any(e.name == "CreateDirectory" for e in events)


class TestProcesses:
    def test_create_process_parents_caller(self, api, target):
        child = api.CreateProcessA("C:\\x\\child.exe")
        assert child.parent is target

    def test_create_process_suspended(self, api):
        child = api.CreateProcessA("C:\\x\\c.exe",
                                   creation_flags=CREATE_SUSPENDED)
        assert child.state is ProcessState.SUSPENDED

    def test_untrusted_lineage_propagates(self, api, target):
        child = api.CreateProcessA("C:\\x\\c.exe")
        assert child.tags.get("untrusted") is True

    def test_terminate_process(self, machine, api):
        victim = machine.spawn_process("victim.exe")
        assert api.TerminateProcess(victim.pid)
        assert not victim.alive

    def test_untrusted_cannot_kill_protected(self, machine, api):
        guard = machine.spawn_process("procmon.exe", protected=True)
        assert not api.TerminateProcess(guard.pid)
        assert guard.alive

    def test_exit_process(self, machine, api, target):
        api.ExitProcess(9)
        assert not target.alive
        assert target.exit_code == 9

    def test_toolhelp_iteration(self, machine, api):
        machine.spawn_process("VBoxService.exe")
        snapshot = api.CreateToolhelp32Snapshot()
        names = []
        entry = api.Process32First(snapshot)
        while entry is not None:
            names.append(entry[1])
            entry = api.Process32Next(snapshot)
        assert "VBoxService.exe" in names
        assert "explorer.exe" in names

    def test_toolhelp_first_rewinds(self, api):
        snapshot = api.CreateToolhelp32Snapshot()
        first = api.Process32First(snapshot)
        api.Process32Next(snapshot)
        assert api.Process32First(snapshot) == first

    def test_toolhelp_bad_handle(self, api):
        handle = api.CreateToolhelp32Snapshot()
        api.CloseHandle(handle)
        assert api.Process32First(handle) is None
