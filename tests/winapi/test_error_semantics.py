"""Last-error and status-code semantics across the API surface.

Evasive logic branches on *exact* codes; these tests pin them.
"""

import pytest

from repro.winsim.errors import (NtStatus, Win32Error, nt_error,
                                 nt_information, nt_success)


class TestStatusPredicates:
    def test_success_band(self):
        assert nt_success(NtStatus.STATUS_SUCCESS)
        assert not nt_success(NtStatus.STATUS_OBJECT_NAME_NOT_FOUND)
        assert not nt_success(NtStatus.STATUS_NO_MORE_ENTRIES)

    def test_information_band(self):
        assert nt_information(NtStatus.STATUS_NO_MORE_ENTRIES)
        assert nt_information(NtStatus.STATUS_BUFFER_OVERFLOW)
        assert not nt_information(NtStatus.STATUS_SUCCESS)

    def test_error_band(self):
        assert nt_error(NtStatus.STATUS_ACCESS_DENIED)
        assert nt_error(NtStatus.STATUS_INVALID_HANDLE)
        assert not nt_error(NtStatus.STATUS_SUCCESS)

    def test_exact_numeric_values(self):
        """Codes malware hard-codes."""
        assert NtStatus.STATUS_OBJECT_NAME_NOT_FOUND == 0xC0000034
        assert NtStatus.STATUS_ACCESS_VIOLATION == 0xC0000005
        assert Win32Error.ERROR_FILE_NOT_FOUND == 2
        assert Win32Error.ERROR_NO_MORE_ITEMS == 259


class TestLastErrorPaths:
    def test_file_miss_sets_file_not_found(self, api):
        api.set_last_error(0)
        api.GetFileAttributesA("C:\\nope.bin")
        assert api.get_last_error() == Win32Error.ERROR_FILE_NOT_FOUND

    def test_module_miss_sets_not_found(self, api):
        api.set_last_error(0)
        api.GetModuleHandleA("ghost.dll")
        assert api.get_last_error() == Win32Error.ERROR_NOT_FOUND

    def test_window_miss_sets_not_found(self, api):
        api.set_last_error(0)
        api.FindWindowA("NoSuchClass")
        assert api.get_last_error() == Win32Error.ERROR_NOT_FOUND

    def test_create_mutex_existing_sets_already_exists(self, machine, api):
        machine.mutexes.create("M")
        api.CreateMutexA("M")
        assert api.get_last_error() == 183

    def test_create_mutex_fresh_clears(self, api):
        api.set_last_error(99)
        api.CreateMutexA("Fresh")
        assert api.get_last_error() == Win32Error.ERROR_SUCCESS

    def test_bad_drive_sets_path_not_found(self, api):
        api.set_last_error(0)
        api.GetDiskFreeSpaceExA("Q:\\")
        assert api.get_last_error() == Win32Error.ERROR_PATH_NOT_FOUND

    def test_output_debug_string_clobbers_when_undebugged(self, api):
        api.set_last_error(0x5C5C)
        api.OutputDebugStringA("probe")
        assert api.get_last_error() != 0x5C5C

    def test_output_debug_string_preserves_when_debugged(self, api, target):
        target.peb.being_debugged = True
        api.set_last_error(0x5C5C)
        api.OutputDebugStringA("probe")
        assert api.get_last_error() == 0x5C5C

    def test_last_error_is_per_context(self, machine, api):
        from repro import winapi
        other = machine.spawn_process("other.exe")
        other_api = winapi.bind(machine, other)
        api.set_last_error(7)
        other_api.set_last_error(9)
        assert api.get_last_error() == 7
        assert other_api.get_last_error() == 9


class TestNtStatusReturnPaths:
    def test_registry_chain_statuses(self, machine, api):
        status, handle = api.NtOpenKeyEx("HKEY_LOCAL_MACHINE\\SOFTWARE")
        assert status == NtStatus.STATUS_SUCCESS
        status, _ = api.NtQueryValueKey(handle, "ghost")
        assert status == NtStatus.STATUS_OBJECT_NAME_NOT_FOUND
        status, _ = api.NtEnumerateKey(handle, 999)
        assert status == NtStatus.STATUS_NO_MORE_ENTRIES
        assert api.NtClose(handle) == NtStatus.STATUS_SUCCESS
        assert api.NtClose(handle) == NtStatus.STATUS_INVALID_HANDLE

    def test_nt_file_statuses(self, api):
        status, _ = api.NtQueryAttributesFile("C:\\ghost.sys")
        assert status == NtStatus.STATUS_OBJECT_NAME_NOT_FOUND
        status, _ = api.NtCreateFile("C:\\ghost.bin")
        assert status == NtStatus.STATUS_NO_SUCH_FILE
