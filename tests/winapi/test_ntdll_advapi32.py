"""Native + Win32 registry APIs, system/process information classes."""

import pytest

from repro.winapi.ntdll import (ProcessInformationClass,
                                SystemInformationClass)
from repro.winsim.errors import NtStatus, Win32Error, nt_success

VBOX_KEY = "SOFTWARE\\Oracle\\VirtualBox Guest Additions"


class TestNtRegistry:
    def test_open_missing_key(self, api):
        status, handle = api.NtOpenKeyEx("HKEY_LOCAL_MACHINE\\" + VBOX_KEY)
        assert status == NtStatus.STATUS_OBJECT_NAME_NOT_FOUND
        assert not handle

    def test_open_query_roundtrip(self, machine, api):
        machine.registry.set_value("HKLM\\" + VBOX_KEY, "Version", "5.2.8")
        status, handle = api.NtOpenKeyEx("HKEY_LOCAL_MACHINE\\" + VBOX_KEY)
        assert nt_success(status)
        status, data = api.NtQueryValueKey(handle, "Version")
        assert nt_success(status) and data == "5.2.8"
        assert api.NtClose(handle) == NtStatus.STATUS_SUCCESS

    def test_query_missing_value(self, machine, api):
        machine.registry.create_key("HKLM\\" + VBOX_KEY)
        _, handle = api.NtOpenKeyEx("HKEY_LOCAL_MACHINE\\" + VBOX_KEY)
        status, _ = api.NtQueryValueKey(handle, "Ghost")
        assert status == NtStatus.STATUS_OBJECT_NAME_NOT_FOUND

    def test_query_key_counts(self, machine, api):
        machine.registry.create_key("HKLM\\SOFTWARE\\A\\Child")
        machine.registry.set_value("HKLM\\SOFTWARE\\A", "v", 1)
        _, handle = api.NtOpenKeyEx("HKEY_LOCAL_MACHINE\\SOFTWARE\\A")
        status, info = api.NtQueryKey(handle)
        assert nt_success(status)
        assert info == {"subkeys": 1, "values": 1, "name": "A"}

    def test_enumerate_key(self, machine, api):
        machine.registry.create_key(
            "HKLM\\SYSTEM\\CurrentControlSet\\Enum\\IDE\\DiskVBOX_HARDDISK")
        _, handle = api.NtOpenKeyEx(
            "HKEY_LOCAL_MACHINE\\SYSTEM\\CurrentControlSet\\Enum\\IDE")
        status, name = api.NtEnumerateKey(handle, 0)
        assert nt_success(status) and "VBOX" in name
        status, _ = api.NtEnumerateKey(handle, 1)
        assert status == NtStatus.STATUS_NO_MORE_ENTRIES

    def test_enumerate_values(self, machine, api):
        machine.registry.set_value("HKLM\\SOFTWARE\\E", "first", 1)
        _, handle = api.NtOpenKeyEx("HKEY_LOCAL_MACHINE\\SOFTWARE\\E")
        status, entry = api.NtEnumerateValueKey(handle, 0)
        assert nt_success(status) and entry == ("first", 1)

    def test_stale_handle(self, api):
        from repro.winsim.types import Handle
        status, _ = api.NtQueryKey(Handle(0xBAD, "key"))
        assert status == NtStatus.STATUS_INVALID_HANDLE


class TestNtFiles:
    def test_query_attributes_missing(self, api):
        status, _ = api.NtQueryAttributesFile(
            "C:\\Windows\\System32\\drivers\\vmmouse.sys")
        assert status == NtStatus.STATUS_OBJECT_NAME_NOT_FOUND

    def test_query_attributes_present(self, machine, api):
        machine.filesystem.write_file("C:\\present.sys", b"x")
        status, attrs = api.NtQueryAttributesFile("C:\\present.sys")
        assert nt_success(status) and attrs is not None

    def test_nt_create_file_read_missing(self, api):
        status, handle = api.NtCreateFile("C:\\ghost.bin")
        assert status == NtStatus.STATUS_NO_SUCH_FILE and not handle

    def test_nt_create_file_write(self, machine, api):
        status, handle = api.NtCreateFile("C:\\new.bin", write=True)
        assert nt_success(status) and handle
        assert machine.filesystem.exists("C:\\new.bin")

    def test_nt_create_device(self, machine, api):
        machine.devices.register("\\\\.\\vmci")
        status, handle = api.NtCreateFile("\\\\.\\vmci")
        assert nt_success(status) and handle


class TestNtSystemInformation:
    def test_basic_information(self, machine, api):
        machine.hardware.cpu.cores = 4
        status, info = api.NtQuerySystemInformation(
            SystemInformationClass.SystemBasicInformation)
        assert nt_success(status)
        assert info["number_of_processors"] == 4

    def test_process_information_lists_processes(self, api):
        status, listing = api.NtQuerySystemInformation(
            SystemInformationClass.SystemProcessInformation)
        assert nt_success(status)
        assert any(p["name"] == "explorer.exe" for p in listing)

    def test_kernel_debugger_information(self, api):
        status, info = api.NtQuerySystemInformation(
            SystemInformationClass.SystemKernelDebuggerInformation)
        assert nt_success(status)
        assert info["debugger_enabled"] is False

    def test_registry_quota(self, machine, api):
        machine.registry.bulk_padding_bytes = 99_000_000
        status, info = api.NtQuerySystemInformation(
            SystemInformationClass.SystemRegistryQuotaInformation)
        assert nt_success(status)
        assert info["registry_quota_used"] >= 99_000_000

    def test_unknown_class(self, api):
        status, info = api.NtQuerySystemInformation(0x7777)
        assert status == NtStatus.STATUS_INVALID_PARAMETER and info is None


class TestNtProcessInformation:
    def test_basic_information_parent(self, machine, api, target):
        status, info = api.NtQueryInformationProcess(
            ProcessInformationClass.ProcessBasicInformation)
        assert nt_success(status)
        assert info["parent_pid"] == machine.explorer.pid

    def test_debug_port_clean(self, api):
        status, port = api.NtQueryInformationProcess(
            ProcessInformationClass.ProcessDebugPort)
        assert nt_success(status) and port == 0

    def test_debug_port_debugged(self, api, target):
        target.peb.being_debugged = True
        _, port = api.NtQueryInformationProcess(
            ProcessInformationClass.ProcessDebugPort)
        assert port == 0xFFFFFFFF

    def test_debug_flags_inverted_semantics(self, api, target):
        _, flags = api.NtQueryInformationProcess(
            ProcessInformationClass.ProcessDebugFlags)
        assert flags == 1  # NoDebugInherit set = NOT debugged
        target.peb.being_debugged = True
        _, flags = api.NtQueryInformationProcess(
            ProcessInformationClass.ProcessDebugFlags)
        assert flags == 0

    def test_debug_object_handle(self, api, target):
        status, _ = api.NtQueryInformationProcess(
            ProcessInformationClass.ProcessDebugObjectHandle)
        assert status == NtStatus.STATUS_OBJECT_NAME_NOT_FOUND

    def test_delay_execution(self, machine, api):
        before = machine.clock.now_ns
        api.NtDelayExecution(100)
        assert machine.clock.now_ns > before

    def test_set_information_thread_recorded(self, api, target):
        api.NtSetInformationThread(0x11)  # ThreadHideFromDebugger
        assert 0x11 in target.tags["thread_info_set"]


class TestWin32Registry:
    def test_open_query_close(self, machine, api):
        machine.registry.set_value("HKLM\\" + VBOX_KEY, "Version", "5.2.8")
        err, handle = api.RegOpenKeyExA("HKEY_LOCAL_MACHINE", VBOX_KEY)
        assert err == Win32Error.ERROR_SUCCESS
        err, data = api.RegQueryValueExA(handle, "Version")
        assert (err, data) == (Win32Error.ERROR_SUCCESS, "5.2.8")
        assert api.RegCloseKey(handle) == Win32Error.ERROR_SUCCESS

    def test_open_missing(self, api):
        err, handle = api.RegOpenKeyExA("HKEY_LOCAL_MACHINE", VBOX_KEY)
        assert err == Win32Error.ERROR_FILE_NOT_FOUND and not handle

    def test_enum_keys_and_values(self, machine, api):
        machine.registry.create_key("HKLM\\SOFTWARE\\R\\Alpha")
        machine.registry.set_value("HKLM\\SOFTWARE\\R", "v0", "d0")
        err, handle = api.RegOpenKeyExA("HKEY_LOCAL_MACHINE", "SOFTWARE\\R")
        assert api.RegEnumKeyExA(handle, 0) == \
            (Win32Error.ERROR_SUCCESS, "Alpha")
        assert api.RegEnumKeyExA(handle, 9)[0] == \
            Win32Error.ERROR_NO_MORE_ITEMS
        assert api.RegEnumValueA(handle, 0) == \
            (Win32Error.ERROR_SUCCESS, ("v0", "d0"))

    def test_query_info_key(self, machine, api):
        machine.registry.create_key("HKLM\\SOFTWARE\\Q\\S1")
        err, handle = api.RegOpenKeyExA("HKEY_LOCAL_MACHINE", "SOFTWARE\\Q")
        err, info = api.RegQueryInfoKeyA(handle)
        assert info == {"subkeys": 1, "values": 0}

    def test_create_set_delete(self, machine, api):
        err, handle = api.RegCreateKeyExA("HKEY_CURRENT_USER",
                                          "Software\\TestApp")
        assert err == Win32Error.ERROR_SUCCESS
        assert api.RegSetValueExA(handle, "cfg", "on") == \
            Win32Error.ERROR_SUCCESS
        assert machine.registry.get_data(
            "HKCU\\Software\\TestApp", "cfg") == "on"
        assert api.RegDeleteKeyA("HKEY_CURRENT_USER",
                                 "Software\\TestApp") == \
            Win32Error.ERROR_SUCCESS

    def test_registry_events_published(self, machine, api):
        events = []
        machine.bus.subscribe(events.append)
        api.RegOpenKeyExA("HKEY_LOCAL_MACHINE", "SOFTWARE\\Ghost")
        assert any(e.category == "registry" and e.name == "RegOpenKey"
                   and e.detail("found") is False for e in events)

    def test_username(self, machine, api):
        assert api.GetUserNameA() == machine.identity.username

    def test_services_enum(self, machine, api):
        machine.services.install("VBoxService", "VirtualBox Guest Service")
        assert ("VBoxService", "VirtualBox Guest Service") in \
            api.EnumServicesStatusA()
        err, name = api.OpenServiceA("VBoxService")
        assert err == Win32Error.ERROR_SUCCESS and name == "VBoxService"
        err, _ = api.OpenServiceA("Ghost")
        assert err == Win32Error.ERROR_SERVICE_DOES_NOT_EXIST
