"""API dispatch: export resolution, clock charging, events, hook routing."""

import pytest

from repro import winapi
from repro.hooking import hook_manager_of
from repro.winapi.calling import API_CALL_COST_NS, EXPORTS


class TestDispatch:
    def test_unknown_export_raises(self, api):
        with pytest.raises(KeyError):
            api.call("kernel32.dll!NoSuchFunction")

    def test_case_insensitive_export_lookup(self, api):
        assert api.call("KERNEL32.DLL!IsDebuggerPresent") is False

    def test_attribute_sugar(self, api):
        assert api.IsDebuggerPresent() is False

    def test_unknown_attribute_raises(self, api):
        with pytest.raises(AttributeError):
            api.NoSuchApi()

    def test_private_attribute_raises(self, api):
        with pytest.raises(AttributeError):
            api._hidden

    def test_calls_charge_virtual_clock(self, machine, api):
        before = machine.clock.now_ns
        api.IsDebuggerPresent()
        assert machine.clock.now_ns >= before + API_CALL_COST_NS

    def test_call_log_records(self, api):
        api.GetTickCount()
        assert api.call_log[-1].export == "kernel32.dll!GetTickCount"

    def test_api_events_published(self, machine, api):
        events = []
        machine.bus.subscribe(events.append)
        api.GetTickCount()
        assert any(e.category == "api" and "GetTickCount" in e.name
                   for e in events)

    def test_quiet_suppresses_api_events(self, machine, api):
        events = []
        machine.bus.subscribe(events.append)
        api.quiet = True
        api.GetTickCount()
        assert not any(e.category == "api" for e in events)

    def test_dead_process_cannot_call(self, machine, api, target):
        machine.processes.terminate(target.pid)
        with pytest.raises(RuntimeError):
            api.GetTickCount()

    def test_exports_registered(self):
        assert "kernel32.dll!IsDebuggerPresent" in EXPORTS
        assert "ntdll.dll!NtOpenKeyEx" in EXPORTS
        assert "advapi32.dll!RegOpenKeyExA" in EXPORTS
        assert len(EXPORTS) > 50


class TestHookRouting:
    def test_hook_intercepts(self, machine, api, target):
        manager = hook_manager_of(target, create=True)
        manager.install("kernel32.dll!IsDebuggerPresent",
                        lambda call: True)
        assert api.IsDebuggerPresent() is True

    def test_hook_original_passthrough(self, machine, api, target):
        manager = hook_manager_of(target, create=True)
        manager.install("kernel32.dll!GetTickCount",
                        lambda call: call.original() + 1)
        unhooked = machine.clock.tick_count_ms()
        assert api.GetTickCount() >= unhooked + 1

    def test_disabled_hook_bypassed(self, machine, api, target):
        manager = hook_manager_of(target, create=True)
        hook = manager.install("kernel32.dll!IsDebuggerPresent",
                               lambda call: True)
        hook.enabled = False
        assert api.IsDebuggerPresent() is False

    def test_hooks_scoped_per_process(self, machine, api, target):
        manager = hook_manager_of(target, create=True)
        manager.install("kernel32.dll!IsDebuggerPresent", lambda call: True)
        other = machine.spawn_process("other.exe")
        other_api = winapi.bind(machine, other)
        assert other_api.IsDebuggerPresent() is False


class TestMemoryReads:
    def test_read_peb_is_direct(self, api, target):
        target.peb.number_of_processors = 7
        assert api.read_peb().number_of_processors == 7

    def test_peb_read_ignores_hooks(self, machine, api, target):
        manager = hook_manager_of(target, create=True)
        manager.install("kernel32.dll!IsDebuggerPresent", lambda call: True)
        assert api.read_peb().being_debugged is False

    def test_prologue_clean_without_hooks(self, api):
        assert api.read_function_prologue(
            "kernel32.dll!IsDebuggerPresent", 2) == b"\x8b\xff"

    def test_cpuid_charges_clock(self, machine, api):
        before = machine.clock.now_ns
        api.cpuid(1)
        assert machine.clock.now_ns > before

    def test_cpuid_trap_cost(self, machine, api):
        machine.hardware.cpu.cpuid_traps = True
        before = machine.clock.now_ns
        api.cpuid(1)
        assert machine.clock.now_ns - before > 10_000

    def test_rdtsc_increases(self, api):
        assert api.rdtsc() < api.rdtsc()


class TestErrors:
    def test_last_error_roundtrip(self, api):
        api.set_last_error(1168)
        assert api.get_last_error() == 1168
