"""Wire protocol: parse/validate/encode of the serve JSON-RPC lines."""

import json

import pytest

from repro.fleet import EVENT_MALWARE, FleetEvent, generate_events
from repro.serve import (ERROR_INVALID_PARAMS, ERROR_INVALID_REQUEST,
                         ERROR_METHOD_NOT_FOUND, ERROR_PARSE,
                         ProtocolError, encode_error, encode_response,
                         event_from_dict, event_to_dict, parse_events,
                         parse_request)

pytestmark = pytest.mark.serve


class TestParseRequest:
    def test_valid_submit_request(self):
        request = parse_request(
            '{"id": 7, "method": "submit", "params": {"events": []}}')
        assert request.id == 7
        assert request.method == "submit"
        assert request.params == {"events": []}

    def test_params_default_to_empty(self):
        assert parse_request('{"id": 1, "method": "ping"}').params == {}

    @pytest.mark.parametrize("line,code", [
        ("not json{", ERROR_PARSE),
        ("[1, 2]", ERROR_INVALID_REQUEST),
        ('{"id": 1}', ERROR_INVALID_REQUEST),
        ('{"id": 1, "method": "explode"}', ERROR_METHOD_NOT_FOUND),
        ('{"id": 1, "method": "submit", "params": []}',
         ERROR_INVALID_PARAMS),
    ])
    def test_malformed_requests_carry_their_code(self, line, code):
        with pytest.raises(ProtocolError) as excinfo:
            parse_request(line)
        assert excinfo.value.code == code

    def test_error_keeps_the_request_id_when_parseable(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_request('{"id": 42, "method": "explode"}')
        assert excinfo.value.request_id == 42


class TestEventCodec:
    def test_round_trip(self):
        for event in generate_events(3, 4, 16):
            assert event_from_dict(event_to_dict(event)) == event

    def test_unknown_kind_rejected(self):
        payload = event_to_dict(FleetEvent(0, 0, 0, EVENT_MALWARE, 0))
        payload["kind"] = "meteor"
        with pytest.raises(ProtocolError) as excinfo:
            event_from_dict(payload)
        assert excinfo.value.code == ERROR_INVALID_PARAMS

    def test_missing_field_rejected(self):
        with pytest.raises(ProtocolError):
            event_from_dict({"seq": 1})

    def test_negative_endpoint_rejected(self):
        payload = event_to_dict(FleetEvent(0, 0, 0, EVENT_MALWARE, 0))
        payload["endpoint_id"] = -1
        with pytest.raises(ProtocolError):
            event_from_dict(payload)

    def test_parse_events_requires_a_list(self):
        with pytest.raises(ProtocolError):
            parse_events({"events": {"seq": 1}})


class TestEncoding:
    def test_responses_are_canonical_single_lines(self):
        line = encode_response(5, {"b": 1, "a": 2})
        assert "\n" not in line
        assert line == '{"id":5,"result":{"a":2,"b":1}}'

    def test_error_lines_carry_code_and_message(self):
        payload = json.loads(encode_error(None, -32700, "boom"))
        assert payload == {"id": None,
                           "error": {"code": -32700, "message": "boom"}}
