"""The serving loop: round-trip smoke, online/offline parity, overload.

The acceptance-criteria round-trip test lives here: a real asyncio TCP
server on an ephemeral port, a client submitting an event batch, and the
verdict batch streamed back — byte-compared against what the offline
:class:`~repro.fleet.FleetService` produces for the same stream.
"""

import asyncio
import json

import pytest

from repro.fleet import FleetService, generate_events
from repro.serve import (ERROR_OVERLOADED, FleetServer, ServeConfig,
                         event_to_dict)

pytestmark = pytest.mark.serve

FACTORY = "bare-metal-light"


def _server(**kwargs):
    kwargs.setdefault("machine_factory", FACTORY)
    return FleetServer(ServeConfig(**kwargs))


def _submit_line(events, request_id=1, tenant="default"):
    return json.dumps({"id": request_id, "method": "submit",
                       "params": {"tenant": tenant,
                                  "events": [event_to_dict(event)
                                             for event in events]}})


def _handle(server, line):
    return json.loads(asyncio.run(server.handle_line(line)))


class TestTcpRoundTrip:
    def test_submit_batch_receives_verdicts_over_tcp(self):
        events = generate_events(7, 4, 20)
        server = _server(shards=2, tenant_limit=64)

        async def round_trip():
            tcp = await server.start_tcp("127.0.0.1", 0)
            port = tcp.sockets[0].getsockname()[1]
            reader, writer = await asyncio.open_connection("127.0.0.1",
                                                           port)
            writer.write((_submit_line(events) + "\n").encode())
            writer.write(b'{"id": 2, "method": "ping"}\n')
            await writer.drain()
            submit = json.loads(await reader.readline())
            ping = json.loads(await reader.readline())
            writer.close()
            await writer.wait_closed()
            tcp.close()
            await tcp.wait_closed()
            return submit, ping

        submit, ping = asyncio.run(round_trip())
        verdicts = submit["result"]["verdicts"]
        assert len(verdicts) == len(events)
        assert [verdict["seq"] for verdict in verdicts] == \
            sorted(event.seq for event in events)
        expected_batches = {}
        for endpoint_id in {event.endpoint_id for event in events}:
            key = str(endpoint_id % 2)
            expected_batches[key] = expected_batches.get(key, 0) + 1
        assert submit["result"]["shard_batches"] == expected_batches
        assert ping["result"] == {"ok": True, "v": 1, "shards": 2}

    def test_served_verdicts_match_the_offline_fleet(self):
        """The serving path and the batch path agree byte-for-byte."""
        events = generate_events(7, 4, 20)
        server = _server(shards=2, tenant_limit=64)
        response = _handle(server, _submit_line(events))
        offline = FleetService(endpoints=4, events=20, seed=7,
                               queue_limit=64,
                               machine_factory=FACTORY).run()
        assert response["result"]["verdicts"] == \
            [record.to_dict() for record in offline.records]

    def test_resubmission_is_deterministic(self):
        events = generate_events(3, 2, 10)
        server = _server(tenant_limit=64)
        first = _handle(server, _submit_line(events, request_id=1))
        second = _handle(server, _submit_line(events, request_id=1))
        assert first == second


class TestBackpressure:
    def test_oversized_tenant_batch_is_rejected_not_queued(self):
        events = generate_events(3, 2, 12)
        server = _server(tenant_limit=8)
        response = _handle(server, _submit_line(events))
        assert response["error"]["code"] == ERROR_OVERLOADED
        assert server.counters["rejections"] == 1
        assert server.counters["verdicts"] == 0
        assert server.admission.tenants["default"].rejected_batches == 1

    def test_rejection_frees_no_budget_and_drain_reopens_it(self):
        events = generate_events(3, 2, 8)
        server = _server(tenant_limit=8)
        accepted = _handle(server, _submit_line(events))
        assert "result" in accepted
        # verdicts drained synchronously, so the budget is open again
        again = _handle(server, _submit_line(events))
        assert "result" in again
        assert server.counters["rejections"] == 0

    def test_max_batch_caps_a_single_submission(self):
        events = generate_events(3, 2, 12)
        server = _server(tenant_limit=256, max_batch=8)
        response = _handle(server, _submit_line(events))
        assert response["error"]["code"] == ERROR_OVERLOADED

    def test_tenants_reject_independently(self):
        events = generate_events(3, 2, 8)
        server = _server(tenant_limit=8)
        assert "result" in _handle(server,
                                   _submit_line(events, tenant="a"))
        assert "result" in _handle(server,
                                   _submit_line(events, tenant="b"))


class TestStatsAndErrors:
    def test_stats_method_reports_counters_and_routing(self):
        events = generate_events(7, 4, 12)
        server = _server(shards=2, tenant_limit=64)
        _handle(server, _submit_line(events, tenant="acme"))
        stats = _handle(server, '{"id": 9, "method": "stats"}')
        result = stats["result"]
        assert result["serve"]["submits"] == 1
        assert result["serve"]["events"] == 12
        assert result["admission"]["tenants"]["acme"]["admitted_events"] \
            == 12
        assert result["shards"]["count"] == 2
        assert sum(int(count) for count
                   in result["shards"]["batches"].values()) > 0

    def test_malformed_lines_become_error_responses(self):
        server = _server()
        parse = _handle(server, "not json{")
        assert parse["error"]["code"] == -32700
        method = _handle(server, '{"id": 3, "method": "explode"}')
        assert method["error"]["code"] == -32601
        assert method["id"] == 3
        assert server.counters["errors"] == 2

    def test_process_lines_is_the_stdio_transport(self):
        events = generate_events(3, 2, 6)
        server = _server(tenant_limit=64)
        lines = ['{"id": 1, "method": "ping"}', "",
                 _submit_line(events, request_id=2)]
        responses = asyncio.run(server.process_lines(lines))
        assert len(responses) == 2  # blank line skipped
        assert json.loads(responses[0])["result"]["ok"] is True
        assert len(json.loads(responses[1])["result"]["verdicts"]) == 6

    def test_concurrent_submissions_serialize_deterministically(self):
        events = generate_events(11, 4, 16)
        server = _server(shards=2, tenant_limit=256)

        async def fan_in():
            return await asyncio.gather(
                server.handle_line(_submit_line(events[:8], request_id=1,
                                                tenant="a")),
                server.handle_line(_submit_line(events[8:], request_id=2,
                                                tenant="b")))

        first, second = (json.loads(response)
                         for response in asyncio.run(fan_in()))
        assert len(first["result"]["verdicts"]) == 8
        assert len(second["result"]["verdicts"]) == 8
