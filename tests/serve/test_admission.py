"""Per-tenant bounded admission: backpressure as counted rejection."""

import pytest

from repro.serve import AdmissionController

pytestmark = pytest.mark.serve


class TestAdmission:
    def test_admits_within_the_bound(self):
        controller = AdmissionController(tenant_limit=10)
        assert controller.try_admit("a", 6)
        assert controller.try_admit("a", 4)
        assert controller.tenants["a"].pending == 10

    def test_rejects_batches_over_the_bound_all_or_nothing(self):
        controller = AdmissionController(tenant_limit=10)
        assert controller.try_admit("a", 8)
        assert not controller.try_admit("a", 3)
        # the rejected batch admitted nothing
        assert controller.tenants["a"].pending == 8
        assert controller.tenants["a"].rejected_batches == 1

    def test_release_frees_budget(self):
        controller = AdmissionController(tenant_limit=5)
        assert controller.try_admit("a", 5)
        assert not controller.try_admit("a", 1)
        controller.release("a", 5)
        assert controller.try_admit("a", 5)

    def test_tenants_are_isolated(self):
        controller = AdmissionController(tenant_limit=4)
        assert controller.try_admit("a", 4)
        assert controller.try_admit("b", 4)
        assert not controller.try_admit("a", 1)
        assert controller.tenants["b"].rejected_batches == 0

    def test_high_water_mark_tracks_peak_pending(self):
        controller = AdmissionController(tenant_limit=10)
        controller.try_admit("a", 7)
        controller.release("a", 7)
        controller.try_admit("a", 2)
        assert controller.tenants["a"].pending_hwm == 7

    def test_stats_are_canonical_and_totalled(self):
        controller = AdmissionController(tenant_limit=4)
        controller.try_admit("b", 2)
        controller.try_admit("a", 4)
        controller.try_admit("a", 4)
        stats = controller.stats()
        assert list(stats["tenants"]) == ["a", "b"]
        assert stats["admitted_events"] == 6
        assert stats["rejected_batches"] == 1

    def test_release_never_goes_negative(self):
        controller = AdmissionController(tenant_limit=4)
        controller.release("ghost", 3)
        assert controller.tenants["ghost"].pending == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(tenant_limit=0)
        with pytest.raises(ValueError):
            AdmissionController().try_admit("a", -1)
