"""The example scripts run end-to-end (their asserts are the checks)."""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def _run(name):
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")


def test_quickstart(capsys):
    _run("quickstart.py")
    out = capsys.readouterr().out
    assert "without Scarecrow" in out and "with Scarecrow" in out


def test_protect_endpoint(capsys):
    _run("protect_endpoint.py")
    out = capsys.readouterr().out
    assert "DEACTIVATED" in out and "ALARM" in out
    assert "benign check" in out


def test_fingerprint_arms_race(capsys):
    _run("fingerprint_arms_race.py")
    out = capsys.readouterr().out
    assert "Table II" in out and "Table III" in out


def test_malgene_learning_loop(capsys):
    # The example registers a module-level evasion check; guard against
    # double registration when the module is re-run in one session.
    from repro.malware.techniques import _REGISTRY
    _REGISTRY.pop("novel_vendor_key", None)
    _run("malgene_learning_loop.py")
    out = capsys.readouterr().out
    assert "after learning:  payload ran = False" in out


def test_scarecrow_aware_malware(capsys):
    _run("scarecrow_aware_malware.py")
    out = capsys.readouterr().out
    assert "SCARECROW SUSPECTED" in out
    assert "committed identity" in out


def test_protect_fleet(capsys):
    _run("protect_fleet.py")
    out = capsys.readouterr().out
    assert "Fleet protection report" in out
    assert "service killed after round 1/" in out
    assert "byte-identical to the uninterrupted run: OK" in out
    assert "fleet verdicts:" in out
