"""Deep Freeze resets, sandbox runner daemons, the Fig. 3 agent/proxy rig."""

import pytest

from repro import winapi
from repro.analysis.agent import (Agent, ExperimentCluster, Proxy,
                                  run_sample)
from repro.analysis.deepfreeze import DeepFreeze
from repro.analysis.environments import build_bare_metal_sandbox
from repro.analysis.sandbox import (SANDBOX_SINKHOLE_IP, SandboxRunner)
from repro.hooking import hook_manager_of, is_injected
from repro.malware.payloads import DropperPayload
from repro.malware.sample import EvadeAction, EvasiveSample
from repro.winsim.errors import SnapshotError


def _sample(checks=("is_debugger_present",),
            action=EvadeAction.TERMINATE):
    return EvasiveSample(md5="cd" * 16, exe_name="spec.exe", family="T",
                         check_names=checks, evade_action=action,
                         payload=DropperPayload(("dropped.exe",)))


class TestDeepFreeze:
    def test_reset_requires_freeze(self, machine):
        with pytest.raises(SnapshotError):
            DeepFreeze(machine).reset()

    def test_reset_rolls_back_state(self, machine):
        freeze = DeepFreeze(machine)
        freeze.freeze()
        machine.filesystem.write_file("C:\\infected.bin", b"x")
        machine.registry.set_value("HKLM\\SOFTWARE\\Malware", "run", 1)
        machine.spawn_process("malware.exe")
        freeze.reset()
        assert not machine.filesystem.exists("C:\\infected.bin")
        assert not machine.registry.key_exists("HKLM\\SOFTWARE\\Malware")
        assert not machine.processes.name_exists("malware.exe")
        assert machine.processes.name_exists("explorer.exe")

    def test_reset_count(self, machine):
        freeze = DeepFreeze(machine)
        freeze.freeze()
        freeze.reset()
        freeze.reset()
        assert freeze.reset_count == 2

    def test_machine_usable_after_reset(self, machine):
        freeze = DeepFreeze(machine)
        freeze.freeze()
        freeze.reset()
        process = machine.spawn_process("post.exe", parent=machine.explorer)
        api = winapi.bind(machine, process)
        assert api.GetTickCount() >= 0


class TestSandboxRunner:
    def test_daemon_is_parent(self, machine):
        runner = SandboxRunner(machine, daemon_name="analyzer.exe")
        target = runner.launch("C:\\submit\\sample.exe")
        assert target.parent.name == "analyzer.exe"
        assert target.tags["untrusted"]

    def test_monitor_injection(self, machine):
        runner = SandboxRunner(machine, inject_monitor=True)
        target = runner.launch("C:\\submit\\sample.exe")
        assert is_injected(target, "monitor-x64.dll")
        manager = hook_manager_of(target)
        assert manager.is_hooked("shell32.dll!ShellExecuteExW")

    def test_monitor_follows_children(self, machine):
        runner = SandboxRunner(machine, inject_monitor=True)
        target = runner.launch("C:\\submit\\sample.exe")
        api = winapi.bind(machine, target)
        child = api.CreateProcessA("C:\\submit\\child.exe")
        assert is_injected(child, "monitor-x64.dll")

    def test_sinkhole_configuration(self, machine):
        SandboxRunner(machine, sinkhole_nx_domains=True)
        assert machine.network.resolve("nx.invalid") == SANDBOX_SINKHOLE_IP
        assert machine.network.http_get_domain("nx.invalid")

    def test_shutdown_stops_following(self, machine):
        runner = SandboxRunner(machine, inject_monitor=True)
        target = runner.launch("C:\\submit\\sample.exe")
        runner.shutdown()
        child = machine.spawn_process("late.exe", parent=target)
        assert not is_injected(child, "monitor-x64.dll")


class TestRunSample:
    def test_without_scarecrow_detonates(self):
        record = run_sample(build_bare_metal_sandbox(aged=False), _sample(),
                            with_scarecrow=False)
        assert record.result.executed_payload
        assert not record.with_scarecrow
        assert record.controller is None

    def test_with_scarecrow_deactivates(self):
        record = run_sample(build_bare_metal_sandbox(aged=False), _sample(),
                            with_scarecrow=True)
        assert record.result.evaded
        assert record.first_trigger == "IsDebuggerPresent()"
        assert record.controller is not None

    def test_sample_image_seeded(self):
        machine = build_bare_metal_sandbox(aged=False)
        run_sample(machine, _sample(), with_scarecrow=False)
        assert machine.filesystem.exists(
            "C:\\Users\\user\\Downloads\\spec.exe")

    def test_trace_attached(self):
        record = run_sample(build_bare_metal_sandbox(aged=False), _sample(),
                            with_scarecrow=False)
        assert any(e.name == "CreateProcess" for e in record.trace.events)


class TestProxyAndAgents:
    def test_proxy_fifo(self):
        proxy = Proxy()
        proxy.submit(_sample(), with_scarecrow=False)
        proxy.submit(_sample(), with_scarecrow=True)
        assert proxy.pending == 2
        assert proxy.fetch().with_scarecrow is False
        assert proxy.fetch().with_scarecrow is True
        assert proxy.fetch() is None

    def test_agent_drains_queue(self):
        proxy = Proxy()
        proxy.submit_pair(_sample())
        agent = Agent(proxy, lambda: build_bare_metal_sandbox(aged=False))
        assert agent.run_until_idle() == 2
        assert agent.jobs_completed == 2
        assert len(proxy.uploads) == 2

    def test_agent_idle_returns_false(self):
        agent = Agent(Proxy(), lambda: build_bare_metal_sandbox(aged=False))
        assert not agent.run_one()

    def test_cluster_run_pair_ordering(self):
        cluster = ExperimentCluster(
            lambda: build_bare_metal_sandbox(aged=False))
        without, with_sc = cluster.run_pair(_sample())
        assert not without.with_scarecrow and with_sc.with_scarecrow
        assert without.result.executed_payload
        assert with_sc.result.evaded

    def test_cluster_run_corpus(self):
        cluster = ExperimentCluster(
            lambda: build_bare_metal_sandbox(aged=False))
        results = cluster.run_corpus([_sample()])
        assert set(results) == {"cd" * 16}
