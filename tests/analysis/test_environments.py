"""Environment builders: the three Table II machines + public sandboxes."""

import pytest

from repro.analysis.environments import (PUBLIC_SANDBOX_VOLUMES,
                                         build_bare_metal_sandbox,
                                         build_clean_baseline,
                                         build_cuckoo_vm_sandbox,
                                         build_end_user_machine,
                                         build_public_sandboxes)


class TestBareMetalSandbox:
    @pytest.fixture(scope="class")
    def bm(self):
        return build_bare_metal_sandbox()

    def test_no_vm_artifacts(self, bm):
        assert not bm.hardware.cpu.hypervisor_present
        assert not bm.registry.key_exists(
            "HKLM\\SOFTWARE\\Oracle\\VirtualBox Guest Additions")
        assert not bm.network.has_vm_mac()

    def test_decent_hardware(self, bm):
        assert bm.hardware.cpu.cores == 4
        assert bm.filesystem.drive("C:").total_bytes > 100 * 1024 ** 3

    def test_uptime_above_pafish_threshold(self, bm):
        assert bm.clock.tick_count_ms() > 12 * 60 * 1000

    def test_pristine_wear(self, bm):
        assert bm.dnscache.count() < 10
        assert bm.eventlog.count() < 5000

    def test_idle_console(self, bm):
        assert not bm.gui.humanized

    def test_light_build_skips_aging(self):
        light = build_bare_metal_sandbox(aged=False)
        assert light.eventlog.count() == 0
        assert light.clock.tick_count_ms() > 12 * 60 * 1000


class TestCuckooVmSandbox:
    @pytest.fixture(scope="class")
    def vm(self):
        return build_cuckoo_vm_sandbox()

    def test_vbox_guest_artifacts(self, vm):
        assert vm.registry.key_exists(
            "HKLM\\SOFTWARE\\Oracle\\VirtualBox Guest Additions")
        assert vm.filesystem.exists(
            "C:\\Windows\\System32\\drivers\\VBoxMouse.sys")
        assert vm.devices.exists("\\\\.\\VBoxGuest")
        assert vm.processes.name_exists("VBoxService.exe")
        assert vm.gui.find_window("VBoxTrayToolWndClass") is not None

    def test_hypervisor_visible(self, vm):
        assert vm.hardware.cpu.cpuid(1)["ecx"] & (1 << 31)
        assert vm.hardware.cpu.cpuid_traps

    def test_vm_mac(self, vm):
        assert vm.network.has_vm_mac()

    def test_small_guest(self, vm):
        assert vm.hardware.cpu.cores == 1
        assert vm.hardware.total_ram < 1024 ** 3

    def test_fresh_boot(self, vm):
        assert vm.clock.tick_count_ms() < 12 * 60 * 1000

    def test_human_module(self, vm):
        assert vm.gui.humanized

    def test_no_shared_folders(self, vm):
        assert not vm.services.exists("VBoxSF")

    def test_transparent_variant_hardened(self):
        vm = build_cuckoo_vm_sandbox(transparent=True)
        assert not vm.hardware.cpu.cpuid(1)["ecx"] & (1 << 31)
        assert not vm.hardware.cpu.cpuid_traps
        assert not vm.network.has_vm_mac()
        assert "VBOX" not in vm.hardware.firmware.bios_version
        # Registry artifacts remain: hardening only touched CPUID/MAC/DMI.
        assert vm.registry.key_exists(
            "HKLM\\SOFTWARE\\Oracle\\VirtualBox Guest Additions")


class TestEndUserMachine:
    @pytest.fixture(scope="class")
    def eu(self):
        return build_end_user_machine()

    def test_long_uptime(self, eu):
        assert eu.clock.tick_count_ms() > 24 * 60 * 60 * 1000

    def test_vmware_workstation_host_artifacts(self, eu):
        assert eu.devices.exists("\\\\.\\vmci")
        assert eu.registry.key_exists(
            "HKLM\\SOFTWARE\\VMware, Inc.\\VMware Workstation")
        # But no guest-tools key (that only exists inside guests).
        assert not eu.registry.key_exists(
            "HKLM\\SOFTWARE\\VMware, Inc.\\VMware Tools")

    def test_over_300_vmware_references(self, eu):
        """'there are over 300 references in a registry to VMware'."""
        assert eu.registry.count_references("vmware") > 300

    def test_noisy_timing(self, eu):
        assert eu.clock.profile.cpuid_overhead_ns > 1000

    def test_heavily_worn(self, eu):
        assert eu.dnscache.count() > 100
        assert eu.eventlog.count() >= 30_000
        assert eu.filesystem.exists(
            "C:\\Users\\john\\AppData\\Local\\Google\\Chrome\\User Data\\"
            "Default\\History")

    def test_physical_cpu(self, eu):
        assert not eu.hardware.cpu.hypervisor_present


class TestPublicSandboxes:
    def test_volumes_sum_to_paper_counts(self):
        files = sum(v["files"] for v in PUBLIC_SANDBOX_VOLUMES.values())
        processes = sum(v["processes"]
                        for v in PUBLIC_SANDBOX_VOLUMES.values())
        assert files == 17540
        assert processes == 24

    def test_builders_yield_both(self):
        sandboxes = build_public_sandboxes()
        assert [name for name, _ in sandboxes] == ["virustotal", "malwr"]

    def test_baseline_is_clean(self):
        baseline = build_clean_baseline()
        assert baseline.filesystem.file_count() == 0
        assert not baseline.hardware.cpu.hypervisor_present
