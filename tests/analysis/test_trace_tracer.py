"""Trace collection, scoping, significant-activity extraction."""

import pytest

from repro import winapi
from repro.analysis.trace import Trace, alignment_key
from repro.analysis.tracer import Tracer
from repro.winsim.bus import KernelEvent


def _event(category, event_name, pid=4, **details):
    return KernelEvent(category, event_name, pid, 0, details)


class TestTracer:
    def test_records_process_events(self, machine):
        with Tracer(machine) as tracer:
            machine.spawn_process("x.exe")
        assert any(e.name == "CreateProcess" for e in tracer.trace.events)

    def test_stop_detaches(self, machine):
        tracer = Tracer(machine).start()
        tracer.stop()
        machine.spawn_process("late.exe")
        assert not any(e.detail("name") == "late.exe"
                       for e in tracer.trace.events)
        assert not tracer.running

    def test_api_events_excluded_by_default(self, machine, api):
        with Tracer(machine) as tracer:
            api.GetTickCount()
        assert not tracer.trace.by_category("api")

    def test_api_events_opt_in(self, machine, api):
        with Tracer(machine, include_api_calls=True) as tracer:
            api.GetTickCount()
        assert tracer.trace.by_category("api")

    def test_file_registry_net_captured(self, machine, api):
        machine.network.register_domain("c2.test")
        with Tracer(machine) as tracer:
            handle = api.CreateFileA("C:\\drop.bin", write=True)
            api.WriteFile(handle, b"x")
            err, key = api.RegCreateKeyExA("HKEY_CURRENT_USER",
                                           "Software\\M")
            api.RegSetValueExA(key, "v", 1)
            api.DnsQuery_A("c2.test")
        trace = tracer.trace
        assert trace.by_category("file")
        assert trace.by_category("registry")
        assert trace.by_category("net")


class TestTraceQueries:
    def test_process_tree_pids(self):
        trace = Trace("t", [
            _event("process", "CreateProcess", pid=8, ppid=4, name="a"),
            _event("process", "CreateProcess", pid=12, ppid=8, name="b"),
            _event("process", "CreateProcess", pid=90, ppid=77, name="c"),
        ])
        assert trace.process_tree_pids(4) == {4, 8, 12}

    def test_scoped_to_pids(self):
        trace = Trace("t", [_event("file", "WriteFile", pid=8, path="a"),
                            _event("file", "WriteFile", pid=9, path="b")])
        scoped = trace.scoped_to_pids({8})
        assert len(scoped) == 1

    def test_processes_created_excludes(self):
        trace = Trace("t", [
            _event("process", "CreateProcess", name="evil.exe"),
            _event("process", "CreateProcess", name="scarecrow.exe"),
            _event("process", "CreateProcess", name="drop.exe")])
        assert trace.processes_created(
            exclude_names=("evil.exe", "scarecrow.exe")) == ["drop.exe"]

    def test_files_touched_excludes_own_image(self):
        trace = Trace("t", [
            _event("file", "WriteFile", path="C:\\dl\\self.exe"),
            _event("file", "WriteFile", path="C:\\other.bin"),
            _event("file", "QueryAttributes", path="C:\\probe.sys")])
        touched = trace.files_touched(exclude_paths=("C:\\dl\\self.exe",))
        assert touched == ["C:\\other.bin"]

    def test_registry_modified_only_mutations(self):
        trace = Trace("t", [
            _event("registry", "RegOpenKey", key="HKLM\\X"),
            _event("registry", "RegSetValue", key="HKLM\\Y")])
        assert trace.registry_modified() == ["HKLM\\Y"]

    def test_domains_reached_filters_nx(self):
        trace = Trace("t", [
            _event("net", "DnsQuery", domain="nx.invalid", answer=None),
            _event("net", "DnsQuery", domain="real.com", answer="1.2.3.4")])
        assert trace.domains_reached() == ["real.com"]
        assert len(trace.domains_contacted()) == 2

    def test_self_spawn_count(self):
        trace = Trace("t", [
            _event("process", "CreateProcess", name="evil.exe")
            for _ in range(5)])
        assert trace.self_spawn_count("EVIL.EXE") == 5

    def test_significant_activity_empty_flag(self):
        trace = Trace("t", [])
        activity = trace.significant_activity("x.exe", "C:\\x.exe")
        assert activity.empty
        assert not activity.creates_processes
        assert not activity.modifies_files_or_registry


class TestAlignmentKey:
    def test_uses_resource_detail(self):
        event = _event("registry", "RegOpenKey", key="HKLM\\SOFTWARE\\VM")
        assert alignment_key(event) == \
            ("registry", "RegOpenKey", "hklm\\software\\vm", "")

    def test_pid_and_time_invariant(self):
        a = KernelEvent("file", "WriteFile", 4, 100, {"path": "C:\\x"})
        b = KernelEvent("file", "WriteFile", 88, 999, {"path": "c:\\X"})
        assert alignment_key(a) == alignment_key(b)

    def test_query_outcome_distinguishes(self):
        hit = _event("registry", "RegOpenKey", key="HKLM\\VM", found=True)
        miss = _event("registry", "RegOpenKey", key="HKLM\\VM", found=False)
        assert alignment_key(hit) != alignment_key(miss)

    def test_fallback_without_details(self):
        assert alignment_key(_event("system", "ForcedRestart")) == \
            ("system", "ForcedRestart", "", "")
