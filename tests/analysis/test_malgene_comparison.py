"""MalGene trace alignment + the deactivation-verdict machinery."""

import pytest

from repro.analysis.agent import run_sample
from repro.analysis.comparison import (Verdict, aggregate_by_family,
                                       compare_runs, summarize)
from repro.analysis.environments import build_bare_metal_sandbox
from repro.analysis.malgene import (align_traces, extract_evasion_signature,
                                    first_divergence_index, learn_signature)
from repro.core.database import DeceptionDatabase
from repro.malware.payloads import (DropperPayload, SelfDeletePayload)
from repro.malware.sample import EvadeAction, EvasiveSample


def _factory():
    return build_bare_metal_sandbox(aged=False)


def _run_pair(sample):
    without = run_sample(_factory(), sample, with_scarecrow=False)
    with_sc = run_sample(_factory(), sample, with_scarecrow=True)
    return without, with_sc


def _sample(checks, action, payload=None, md5="ee" * 16):
    return EvasiveSample(md5=md5, exe_name="cmp.exe", family="Fam",
                         check_names=checks, evade_action=action,
                         payload=payload or DropperPayload(("d.exe",)))


class TestCompareRuns:
    def _compare(self, sample):
        without, with_sc = _run_pair(sample)
        return compare_runs(sample, without.trace, without.result,
                            with_sc.trace, with_sc.result,
                            without.root_pid, with_sc.root_pid)

    def test_suppressed_activity_verdict(self):
        result = self._compare(_sample(("vbox_registry_key",),
                                       EvadeAction.TERMINATE))
        assert result.verdict is Verdict.DEACTIVATED_SUPPRESSED
        assert result.deactivated
        assert result.activity_without.files
        assert result.activity_with.empty

    def test_self_spawn_verdict(self):
        result = self._compare(_sample(("is_debugger_present",),
                                       EvadeAction.SELF_SPAWN))
        assert result.verdict is Verdict.DEACTIVATED_SELF_SPAWN
        assert result.self_spawning and result.self_spawn_count >= 10
        assert result.used_is_debugger_present

    def test_not_deactivated_verdict(self):
        result = self._compare(_sample(("cpu_count_peb",),
                                       EvadeAction.TERMINATE))
        assert result.verdict is Verdict.NOT_DEACTIVATED
        assert not result.deactivated

    def test_inconclusive_verdict_selfdel(self):
        result = self._compare(_sample(("is_debugger_present",),
                                       EvadeAction.TERMINATE,
                                       payload=SelfDeletePayload()))
        assert result.verdict is Verdict.INCONCLUSIVE

    def test_trigger_recorded(self):
        result = self._compare(_sample(("vbox_registry_key",),
                                       EvadeAction.TERMINATE))
        assert result.trigger == "RegOpenKeyEx()"


class TestAggregation:
    def _results(self):
        samples = [
            _sample(("is_debugger_present",), EvadeAction.SELF_SPAWN,
                    md5="01" * 16),
            _sample(("vbox_registry_key",), EvadeAction.TERMINATE,
                    md5="02" * 16),
            _sample(("cpu_count_peb",), EvadeAction.TERMINATE,
                    md5="03" * 16),
        ]
        results = []
        for sample in samples:
            without, with_sc = _run_pair(sample)
            results.append(compare_runs(
                sample, without.trace, without.result, with_sc.trace,
                with_sc.result, without.root_pid, with_sc.root_pid))
        return results

    def test_summary(self):
        summary = summarize(self._results())
        assert summary.total == 3
        assert summary.deactivated == 2
        assert summary.self_spawning == 1
        assert summary.self_spawning_using_idp == 1
        assert summary.not_deactivated == 1
        assert summary.deactivation_rate == pytest.approx(2 / 3)

    def test_family_breakdown(self):
        families = aggregate_by_family(self._results())
        family = families["Fam"]
        assert family.total == 3 and family.deactivated == 2
        assert family.self_spawning == 1
        # Sub-counts cover deactivated samples' without-Scarecrow payloads.
        assert family.created_processes_without >= 1
        assert family.modified_files_registry_without >= 1
        assert 0 < family.deactivation_rate < 1


class TestMalGene:
    def _traces(self):
        """MalGene's real setting: the same sample in two *analysis*
        environments — evading in the VBox guest, detonating on bare
        metal — with no Scarecrow anywhere."""
        from repro.analysis.environments import build_cuckoo_vm_sandbox
        sample = _sample(("vbox_registry_key", "vm_driver_files"),
                         EvadeAction.TERMINATE)
        detonated = run_sample(_factory(), sample, with_scarecrow=False)
        evaded = run_sample(build_cuckoo_vm_sandbox(), sample,
                            with_scarecrow=False)
        return evaded.trace, detonated.trace

    def test_traces_diverge(self):
        evaded, detonated = self._traces()
        index = first_divergence_index(evaded, detonated)
        assert index is not None

    def test_identical_traces_no_divergence(self):
        evaded, _ = self._traces()
        assert first_divergence_index(evaded, evaded) is None
        assert extract_evasion_signature(evaded, evaded) is None

    def test_signature_points_at_fingerprint_resource(self):
        evaded, detonated = self._traces()
        signature = extract_evasion_signature(evaded, detonated)
        assert signature is not None
        assert signature.category == "registry"
        assert "virtualbox" in signature.resource.lower()
        assert "RegOpenKey" in signature.describe()

    def test_align_traces_opcode_stream(self):
        evaded, detonated = self._traces()
        opcodes = align_traces(evaded, detonated)
        assert opcodes and any(tag != "equal" for tag, *_ in opcodes)

    def test_learning_loop_extends_database(self):
        evaded, detonated = self._traces()
        signature = extract_evasion_signature(evaded, detonated)
        db = DeceptionDatabase()
        # Already curated -> nothing new.
        assert not learn_signature(db, signature)
        # A novel resource gets learned.
        from repro.analysis.malgene import EvasionSignature
        novel = EvasionSignature("registry", "RegOpenKey",
                                 "HKLM\\SOFTWARE\\BrandNewSandboxVendor")
        assert learn_signature(db, novel)
        assert db.lookup_registry_key(novel.resource) is not None
        assert not learn_signature(db, novel)  # idempotent

    def test_learning_file_signature(self):
        from repro.analysis.malgene import EvasionSignature
        db = DeceptionDatabase()
        novel = EvasionSignature("file", "QueryAttributes",
                                 "C:\\brand\\new\\agent_v2.sys")
        assert learn_signature(db, novel)
        assert db.lookup_file(novel.resource) is not None

    def test_learning_ignores_non_resource_categories(self):
        from repro.analysis.malgene import EvasionSignature
        db = DeceptionDatabase()
        assert not learn_signature(
            db, EvasionSignature("net", "DnsQuery", "x.com"))
