"""Multi-agent cluster runs, subset verdict consistency, determinism."""

import pytest

from repro.analysis.agent import ExperimentCluster
from repro.analysis.comparison import compare_runs, summarize
from repro.analysis.environments import build_bare_metal_sandbox
from repro.malware.corpus import build_malgene_corpus
from repro.malware.families import FamilySpec


def _factory():
    return build_bare_metal_sandbox(aged=False)


@pytest.fixture(scope="module")
def mixed_spec():
    return FamilySpec("Mixed", (("spawn_idp", 4), ("term_vm", 3),
                                ("sleep_sbx", 2), ("fail_peb", 2),
                                ("selfdel", 1)))


class TestClusterRuns:
    def test_multi_agent_cluster_drains_queue(self, mixed_spec):
        corpus = build_malgene_corpus([mixed_spec])
        cluster = ExperimentCluster(_factory, agents=4)
        results = cluster.run_corpus(corpus)
        assert len(results) == mixed_spec.total

    def test_verdicts_match_spec_prediction(self, mixed_spec):
        corpus = build_malgene_corpus([mixed_spec])
        cluster = ExperimentCluster(_factory, agents=2)
        comparisons = []
        for sample in corpus:
            without, with_sc = cluster.run_pair(sample)
            comparisons.append(compare_runs(
                sample, without.trace, without.result, with_sc.trace,
                with_sc.result, without.root_pid, with_sc.root_pid))
        summary = summarize(comparisons)
        assert summary.total == mixed_spec.total
        assert summary.deactivated == mixed_spec.expected_deactivated()
        assert summary.self_spawning == mixed_spec.expected_self_spawning()
        assert summary.inconclusive == 1       # the selfdel sample
        assert summary.not_deactivated == 2    # the PEB-gated pair

    def test_shared_database_across_agents(self, mixed_spec):
        cluster = ExperimentCluster(_factory, agents=3)
        sample = build_malgene_corpus([mixed_spec])[0]
        _, with_sc = cluster.run_pair(sample)
        assert with_sc.controller is not None
        assert with_sc.controller.engine.db is cluster.database

    def test_cluster_determinism(self, mixed_spec):
        corpus = build_malgene_corpus([mixed_spec])

        def verdicts():
            cluster = ExperimentCluster(_factory, agents=2)
            out = []
            for sample in corpus:
                without, with_sc = cluster.run_pair(sample)
                result = compare_runs(
                    sample, without.trace, without.result, with_sc.trace,
                    with_sc.result, without.root_pid, with_sc.root_pid)
                out.append((sample.md5, result.verdict,
                            result.self_spawn_count, result.trigger))
            return out

        assert verdicts() == verdicts()
