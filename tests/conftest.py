"""Shared fixtures: booted machines, target processes, API bindings."""

import pytest

from repro import winapi
from repro.core import ScarecrowController
from repro.winsim import Machine


@pytest.fixture
def machine():
    """A plain booted Windows 7 machine (no analysis artifacts)."""
    return Machine().boot()


@pytest.fixture
def target(machine):
    """An untrusted process launched from Downloads under explorer."""
    process = machine.spawn_process(
        "target.exe", "C:\\Users\\user\\Downloads\\target.exe",
        parent=machine.explorer)
    process.tags["untrusted"] = True
    return process


@pytest.fixture
def api(machine, target):
    """The target process's API view."""
    return winapi.bind(machine, target)


@pytest.fixture
def controller(machine):
    """A Scarecrow controller on the plain machine."""
    return ScarecrowController(machine)


@pytest.fixture
def protected(machine, controller):
    """A target launched under Scarecrow protection."""
    return controller.launch("C:\\Users\\user\\Downloads\\suspicious.exe")


@pytest.fixture
def protected_api(machine, protected):
    return winapi.bind(machine, protected)
