"""SandPrint pipeline: collection, clustering, matching, Scarecrow twist."""

import pytest

from repro import winapi
from repro.analysis.environments import (build_bare_metal_sandbox,
                                         build_cuckoo_vm_sandbox,
                                         build_end_user_machine)
from repro.analysis.sandbox import SandboxRunner
from repro.core import ScarecrowConfig, ScarecrowController
from repro.fingerprint.sandprint import (Fingerprint, SandboxMatcher,
                                         cluster_fingerprints,
                                         collect_fingerprint, similarity)


def _sandbox_submission(builder, label, runs=1):
    """Model one probe submission to an analysis service."""
    prints = []
    for _ in range(runs):
        machine = builder()
        runner = SandboxRunner(machine, daemon_name="analyzer.exe")
        process = runner.launch("C:\\submit\\sandprint_probe.exe")
        prints.append(collect_fingerprint(winapi.bind(machine, process),
                                          label=label))
    return prints


def _end_user_print(with_scarecrow):
    machine = build_end_user_machine()
    if with_scarecrow:
        controller = ScarecrowController(
            machine, config=ScarecrowConfig(enable_username=False))
        process = controller.launch("C:\\dl\\sandprint_probe.exe")
    else:
        process = machine.spawn_process("sandprint_probe.exe",
                                        "C:\\dl\\sandprint_probe.exe",
                                        parent=machine.explorer)
    return collect_fingerprint(winapi.bind(machine, process),
                               label="end-user")


@pytest.fixture(scope="module")
def sandbox_prints():
    return (_sandbox_submission(build_bare_metal_sandbox, "bare", runs=3) +
            _sandbox_submission(build_cuckoo_vm_sandbox, "cuckoo", runs=3))


class TestCollection:
    def test_fields_populated(self, sandbox_prints):
        fingerprint = sandbox_prints[0]
        assert fingerprint.hostname and fingerprint.username
        assert fingerprint.parent_process == "analyzer.exe"
        assert fingerprint.cpu_cores >= 1

    def test_repeat_submissions_identical(self, sandbox_prints):
        bare = [f for f in sandbox_prints if f.label == "bare"]
        assert similarity(bare[0], bare[1]) == 1.0

    def test_vm_fingerprint_carries_vbox_processes(self, sandbox_prints):
        cuckoo = [f for f in sandbox_prints if f.label == "cuckoo"][0]
        assert any("vbox" in name for name in cuckoo.analysis_processes)
        assert cuckoo.mac_oui == "08:00:27"


class TestClustering:
    def test_two_sandboxes_two_clusters(self, sandbox_prints):
        clusters = cluster_fingerprints(sandbox_prints)
        assert len(clusters) == 2
        assert sorted(len(c) for c in clusters) == [3, 3]

    def test_clusters_are_label_pure(self, sandbox_prints):
        for cluster in cluster_fingerprints(sandbox_prints):
            assert len({f.label for f in cluster}) == 1

    def test_end_user_forms_own_cluster(self, sandbox_prints):
        clusters = cluster_fingerprints(
            sandbox_prints + [_end_user_print(with_scarecrow=False)])
        assert len(clusters) == 3


class TestMatching:
    def test_sandbox_rerun_detected(self, sandbox_prints):
        matcher = SandboxMatcher(sandbox_prints)
        fresh = _sandbox_submission(build_bare_metal_sandbox, "probe")[0]
        is_sandbox, score, label = matcher.match(fresh)
        assert is_sandbox and label == "bare" and score > 0.9

    def test_bare_metal_sandbox_detected_unlike_pafish(self, sandbox_prints):
        """SandPrint's selling point: it catches bare-metal sandboxes."""
        matcher = SandboxMatcher(sandbox_prints)
        bare = [f for f in sandbox_prints if f.label == "bare"][0]
        assert not bare.debugger_present  # nothing Pafish-visible...
        assert matcher.match(bare)[0]     # ...yet SandPrint matches it.

    def test_plain_end_user_not_matched(self, sandbox_prints):
        matcher = SandboxMatcher(sandbox_prints)
        assert not matcher.match(_end_user_print(with_scarecrow=False))[0]


class TestScarecrowTwist:
    """SandPrint's cluster matching keys on *specific installations*, which
    Scarecrow does not clone — so a protected host does not join, say,
    VirusTotal's cluster. What it does do is emit the full generic
    analysis-node indicator profile, which is the paper's deception goal
    viewed through SandPrint's feature lens."""

    def test_protected_end_user_emits_analysis_indicators(self):
        from repro.fingerprint.sandprint import sandbox_indicators
        protected = sandbox_indicators(_end_user_print(with_scarecrow=True))
        assert {"single-core", "tiny-ram", "small-disk", "fresh-boot",
                "daemon-parent", "debugger",
                "analysis-processes"} <= protected

    def test_plain_end_user_emits_almost_none(self):
        from repro.fingerprint.sandprint import sandbox_indicators
        plain = sandbox_indicators(_end_user_print(with_scarecrow=False))
        assert len(plain) <= 1

    def test_real_sandboxes_emit_several(self, sandbox_prints):
        from repro.fingerprint.sandprint import sandbox_indicators
        for fingerprint in sandbox_prints:
            assert len(sandbox_indicators(fingerprint)) >= 2, \
                fingerprint.label

    def test_protected_host_out_indicates_real_sandboxes(self,
                                                         sandbox_prints):
        """Scarecrow over-approximates: it shows *more* analysis indicators
        than any single genuine sandbox (it imitates all of them at once)."""
        from repro.fingerprint.sandprint import sandbox_indicators
        protected = sandbox_indicators(_end_user_print(with_scarecrow=True))
        for fingerprint in sandbox_prints:
            assert len(protected) >= len(sandbox_indicators(fingerprint))
