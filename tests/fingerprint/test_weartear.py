"""Wear-and-tear fingerprinting: artifact inventory, measurement, tree."""

import pytest

from repro import winapi
from repro.analysis.environments import (build_bare_metal_sandbox,
                                         build_cuckoo_vm_sandbox,
                                         build_end_user_machine)
from repro.fingerprint.weartear import (TOP5_RULES, all_artifacts,
                                        category_sizes, classify,
                                        fingerprint, measure_artifacts)


def _measure(machine):
    process = machine.spawn_process("weartool.exe",
                                    "C:\\dl\\weartool.exe",
                                    parent=machine.explorer)
    return measure_artifacts(winapi.bind(machine, process))


@pytest.fixture(scope="module")
def eu_values():
    return _measure(build_end_user_machine())


@pytest.fixture(scope="module")
def sandbox_values():
    return _measure(build_bare_metal_sandbox())


class TestInventory:
    def test_44_artifacts_5_categories(self):
        assert len(all_artifacts()) == 44
        sizes = category_sizes()
        assert len(sizes) == 5
        assert sizes["registry"] == 13  # the 11 Table III rows + 2 top-5

    def test_names_unique(self):
        names = [a.name for a in all_artifacts()]
        assert len(set(names)) == 44

    def test_top5_are_the_papers_top5(self):
        names = [name for name, _ in TOP5_RULES]
        assert names == ["dnscacheEntries", "sysevt", "syssrc",
                         "deviceClsCount", "autoRunCount"]


class TestMeasurement:
    def test_measures_every_artifact(self, eu_values):
        assert set(eu_values) == {a.name for a in all_artifacts()}

    def test_eu_machine_well_worn(self, eu_values):
        assert eu_values["dnscacheEntries"] == 187
        assert eu_values["sysevt"] == 30_000
        assert eu_values["syssrc"] == 40
        assert eu_values["deviceClsCount"] == 180
        assert eu_values["autoRunCount"] == 9
        assert eu_values["browserHistorySize"] > 0
        assert eu_values["USBStorCount"] == 6

    def test_sandbox_pristine(self, sandbox_values):
        assert sandbox_values["dnscacheEntries"] == 3
        assert sandbox_values["sysevt"] < 5000
        assert sandbox_values["browserHistorySize"] == 0

    def test_uptime_artifact(self, eu_values, sandbox_values):
        assert eu_values["uptimeMinutes"] > 24 * 60
        assert sandbox_values["uptimeMinutes"] < 60

    def test_missing_dlls_counts_dangling_entries(self, machine):
        machine.registry.set_value(
            "HKLM\\SOFTWARE\\Microsoft\\Windows\\CurrentVersion\\SharedDlls",
            "C:\\Windows\\System32\\ghost.dll", 1)
        machine.filesystem.write_file("C:\\Windows\\System32\\real.dll",
                                      b"MZ")
        machine.registry.set_value(
            "HKLM\\SOFTWARE\\Microsoft\\Windows\\CurrentVersion\\SharedDlls",
            "C:\\Windows\\System32\\real.dll", 1)
        values = _measure(machine)
        assert values["totalMissingDlls"] == 1


class TestClassifier:
    def test_eu_classified_real(self, eu_values):
        verdict = classify(eu_values)
        assert verdict.label == "real"
        assert len(verdict.decision_path) == len(TOP5_RULES)

    def test_sandboxes_classified_sandbox(self, sandbox_values):
        assert classify(sandbox_values).is_sandbox

    def test_cuckoo_classified_sandbox(self):
        values = _measure(build_cuckoo_vm_sandbox())
        assert classify(values).is_sandbox

    def test_decisive_artifact_named(self, sandbox_values):
        verdict = classify(sandbox_values)
        assert verdict.decisive_artifact == "dnscacheEntries"

    def test_missing_values_default_to_sandbox(self):
        assert classify({}).is_sandbox

    def test_single_low_artifact_sufficient(self, eu_values):
        tweaked = dict(eu_values)
        tweaked["deviceClsCount"] = 5
        verdict = classify(tweaked)
        assert verdict.is_sandbox
        assert verdict.decisive_artifact == "deviceClsCount"

    def test_fingerprint_end_to_end(self):
        machine = build_end_user_machine()
        process = machine.spawn_process("t.exe", "C:\\t.exe",
                                        parent=machine.explorer)
        assert fingerprint(winapi.bind(machine, process)).label == "real"


class TestScarecrowFlip:
    def test_weartear_extension_flips_eu_to_sandbox(self):
        from repro.core import ScarecrowConfig, ScarecrowController
        machine = build_end_user_machine()
        controller = ScarecrowController(
            machine, config=ScarecrowConfig(enable_weartear=True))
        target = controller.launch("C:\\dl\\weartool.exe")
        verdict = fingerprint(winapi.bind(machine, target))
        assert verdict.is_sandbox

    def test_without_extension_eu_stays_real(self):
        from repro.core import ScarecrowConfig, ScarecrowController
        machine = build_end_user_machine()
        controller = ScarecrowController(
            machine, config=ScarecrowConfig(enable_weartear=False,
                                            enable_username=False))
        target = controller.launch("C:\\dl\\weartool.exe")
        values = measure_artifacts(winapi.bind(machine, target))
        assert classify(values).label == "real"

    def test_faked_values_match_table3(self):
        from repro.core import ScarecrowConfig, ScarecrowController
        machine = build_end_user_machine()
        controller = ScarecrowController(
            machine, config=ScarecrowConfig(enable_weartear=True))
        target = controller.launch("C:\\dl\\weartool.exe")
        values = measure_artifacts(winapi.bind(machine, target))
        assert values["dnscacheEntries"] == 4
        assert values["sysevt"] == 8000
        assert values["syssrc"] == 6
        assert values["deviceClsCount"] == 29
        assert values["autoRunCount"] == 3
        assert values["regSize"] == 53 * 1024 * 1024
