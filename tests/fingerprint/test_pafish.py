"""Pafish reimplementation: inventory, individual checks, reports."""

import pytest

from repro.fingerprint.pafish import (CATEGORY_ORDER, all_checks,
                                      category_sizes, run_pafish)


class TestInventory:
    def test_eleven_categories(self):
        assert len(CATEGORY_ORDER) == 11

    def test_table2_category_sizes(self):
        sizes = category_sizes()
        assert sizes == {
            "Debuggers": 1, "CPU information": 4, "Generic sandbox": 12,
            "Hook": 2, "Sandboxie": 1, "Wine": 2, "VirtualBox": 17,
            "VMware": 8, "Qemu detection": 3, "Bochs": 3, "Cuckoo": 3}

    def test_check_names_unique(self):
        names = [check.name for check in all_checks()]
        assert len(names) == len(set(names)) == 56


class TestOnPlainMachine:
    def test_only_mouse_triggers(self, api):
        report = run_pafish(api)
        assert report.triggered() == ["gen_mouse_activity"]
        assert report.total_triggered() == 1

    def test_category_counts_shape(self, api):
        counts = run_pafish(api).category_counts()
        assert set(counts) == set(CATEGORY_ORDER)
        assert counts["Generic sandbox"] == 1


class TestIndividualChecks:
    def _results(self, machine, process):
        from repro import winapi
        return run_pafish(winapi.bind(machine, process)).results

    def test_mouse_not_triggered_when_humanized(self, machine, target):
        machine.gui.humanized = True
        assert not self._results(machine, target)["gen_mouse_activity"]

    def test_username(self, machine, target):
        machine.identity.username = "sandbox"
        assert self._results(machine, target)["gen_username"]

    def test_filepath(self, machine):
        process = machine.spawn_process("pafish.exe",
                                        "C:\\sample\\pafish.exe")
        assert self._results(machine, process)["gen_filepath"]

    def test_samplename(self, machine):
        process = machine.spawn_process("sample.exe", "C:\\dl\\sample.exe")
        assert self._results(machine, process)["gen_samplename"]

    def test_small_disk_and_geometry(self, machine, target):
        machine.filesystem.add_drive("C:", 40 * 1024 ** 3)
        results = self._results(machine, target)
        assert results["gen_disk_small"] and results["gen_disk_geometry"]

    def test_low_ram(self, machine, target):
        machine.hardware.total_ram = 900 * 1024 ** 2
        machine.hardware.available_ram = 500 * 1024 ** 2
        assert self._results(machine, target)["gen_ram_low"]

    def test_uptime(self, machine, target):
        fresh = type(machine)(boot_tick_ms=60_000).boot()
        process = fresh.spawn_process("pafish.exe")
        assert self._results(fresh, process)["gen_uptime"]

    def test_one_cpu(self, machine, target):
        machine.hardware.cpu.cores = 1
        assert self._results(machine, target)["gen_one_cpu"]

    def test_dns_sinkhole(self, machine, target):
        machine.network.nx_sinkhole_ip = "10.0.0.1"
        assert self._results(machine, target)["gen_dns_sinkhole"]

    def test_hv_bit_and_vendor(self, machine, target):
        from repro.winsim.hardware import HV_VENDOR_VBOX
        machine.hardware.cpu.hypervisor_present = True
        machine.hardware.cpu.hypervisor_vendor = HV_VENDOR_VBOX
        results = self._results(machine, target)
        assert results["cpu_hv_bit"] and results["cpu_known_vm_vendors"]

    def test_rdtsc_vmexit_on_trapping_cpu(self, machine, target):
        machine.hardware.cpu.cpuid_traps = True
        assert self._results(machine, target)["cpu_rdtsc_force_vmexit"]

    def test_vbox_mac(self, machine, target):
        machine.network.add_adapter("eth0", "08:00:27:00:11:22")
        assert self._results(machine, target)["vbox_mac"]

    def test_vbox_firmware(self, machine, target):
        machine.hardware.firmware.bios_version = "VBOX   - 1"
        assert self._results(machine, target)["vbox_firmware"]

    def test_vbox_net_share(self, machine, target):
        machine.services.install("VBoxSF")
        assert self._results(machine, target)["vbox_net_share"]

    def test_vmware_device(self, machine, target):
        machine.devices.register("\\\\.\\vmci")
        assert self._results(machine, target)["vmware_device_vmci"]

    def test_vmware_adapter_name(self, machine, target):
        machine.network.add_adapter("VMnet8", "00:50:56:C0:00:08",
                                    "VMware Virtual Ethernet Adapter")
        results = self._results(machine, target)
        assert results["vmware_adapter_name"] and results["vmware_mac"]

    def test_cuckoo_agent_file(self, machine, target):
        machine.filesystem.write_file("C:\\agent.py", b"#")
        assert self._results(machine, target)["cuckoo_agent_file"]

    def test_hook_check_fires_on_cuckoo_monitor(self, machine, target):
        from repro.analysis.sandbox import CuckooMonitorDll
        from repro.hooking import inject_dll
        inject_dll(machine, target, CuckooMonitorDll())
        results = self._results(machine, target)
        assert results["hook_shellexecuteexw"]
        assert not results["hook_deletefile"]
