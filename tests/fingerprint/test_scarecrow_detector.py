"""Section VI-B: detecting Scarecrow by impossible vendor mixes — and the
exclusive-profiles countermeasure defeating the detector."""

import pytest

from repro import winapi
from repro.analysis.environments import (build_cuckoo_vm_sandbox,
                                         build_end_user_machine)
from repro.core import ScarecrowConfig, ScarecrowController
from repro.fingerprint.scarecrow_detector import detect_scarecrow


class TestHonestEnvironments:
    def test_plain_end_user_consistent(self, machine, api):
        assert detect_scarecrow(api) == []

    def test_real_vbox_guest_consistent(self):
        machine = build_cuckoo_vm_sandbox()
        process = machine.spawn_process("d.exe", "C:\\d.exe",
                                        parent=machine.explorer)
        assert detect_scarecrow(winapi.bind(machine, process)) == []

    def test_vmware_workstation_host_consistent(self):
        machine = build_end_user_machine()
        process = machine.spawn_process("d.exe", "C:\\d.exe",
                                        parent=machine.explorer)
        assert detect_scarecrow(winapi.bind(machine, process)) == []


class TestDefaultScarecrowIsDetectable:
    """The paper's admitted weakness, reproduced."""

    def test_default_profiles_flagged(self, machine, controller, protected):
        api = winapi.bind(machine, protected)
        findings = detect_scarecrow(api)
        assert findings
        multi_hv = findings[0]
        assert "vbox" in multi_hv.vendors and "vmware" in multi_hv.vendors

    def test_combined_bios_string_flagged(self, machine, controller,
                                          protected):
        api = winapi.bind(machine, protected)
        findings = detect_scarecrow(api)
        assert any("BIOS string" in f.description for f in findings)

    def test_wine_plus_hypervisor_flagged(self, machine, controller,
                                          protected):
        api = winapi.bind(machine, protected)
        findings = detect_scarecrow(api)
        assert any("Wine" in f.description for f in findings)


class TestExclusiveProfilesCountermeasure:
    def _protected_api(self, machine):
        controller = ScarecrowController(
            machine, config=ScarecrowConfig(exclusive_profiles=True))
        target = controller.launch("C:\\dl\\detector.exe")
        return winapi.bind(machine, target), controller

    def test_consistency_audit_comes_back_clean(self, machine):
        """After the first probe commits a VM identity, the remaining
        audit sees one coherent vendor (the combined-BIOS value is a vbox
        resource, so committing vbox keeps it self-consistent for the
        cross-vendor check the paper describes)."""
        api, controller = self._protected_api(machine)
        findings = detect_scarecrow(api)
        assert not any(
            "multiple hypervisors" in f.description for f in findings)
        assert controller.engine.profiles.committed_vm is not None

    def test_still_deceptive_after_commitment(self, machine):
        api, _ = self._protected_api(machine)
        detect_scarecrow(api)  # commits a profile
        # The committed vendor's resources still answer.
        from repro.winsim.errors import Win32Error
        err, _ = api.RegOpenKeyExA(
            "HKEY_LOCAL_MACHINE",
            "SOFTWARE\\Oracle\\VirtualBox Guest Additions")
        assert err == Win32Error.ERROR_SUCCESS
        # Non-VM deception groups are untouched.
        assert api.IsDebuggerPresent() is True

    def test_masking_logged(self, machine):
        api, controller = self._protected_api(machine)
        detect_scarecrow(api)
        assert controller.engine.profiles.mask_log
