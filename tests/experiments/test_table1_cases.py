"""E1 (Table I) and E5/E6 (case studies) end-to-end reproduction checks."""

import pytest

from repro.experiments import (effectiveness_count, render_case1,
                               render_case2, render_table1, run_case1,
                               run_case2, run_table1)


@pytest.fixture(scope="module")
def table1_rows():
    return run_table1()


class TestTable1:
    def test_twelve_of_thirteen_deactivated(self, table1_rows):
        assert len(table1_rows) == 13
        assert effectiveness_count(table1_rows) == 12

    def test_every_row_matches_paper(self, table1_rows):
        for row in table1_rows:
            assert row.matches_paper, row.md5_prefix

    def test_triggers_match_paper(self, table1_rows):
        for row in table1_rows:
            assert row.trigger == row.expectation.trigger, row.md5_prefix

    def test_single_failure_is_cbdda64(self, table1_rows):
        failures = [row for row in table1_rows if not row.effective]
        assert [row.md5_prefix for row in failures] == ["cbdda64"]

    def test_cbdda64_behaves_identically_either_way(self, table1_rows):
        row = next(r for r in table1_rows if r.md5_prefix == "cbdda64")
        assert row.behaviour_without == row.behaviour_with == \
            "create a copy of itself"

    def test_f504ef6_opens_benign_form(self, table1_rows):
        row = next(r for r in table1_rows if r.md5_prefix == "f504ef6")
        assert "benign_form" in row.behaviour_with

    def test_render_contains_summary(self, table1_rows):
        text = render_table1(table1_rows)
        assert "12/13" in text and "Table I" in text


class TestCase1Kasidet:
    @pytest.fixture(scope="class")
    def case1(self):
        return run_case1()

    def test_deactivated(self, case1):
        assert case1.case.deactivated

    def test_disjunction_over_ten_predicates(self, case1):
        assert case1.disjunction_size == 11
        assert case1.predicates_evaluated_without == 11

    def test_single_predicate_sufficed(self, case1):
        """¬𝔻 = ¬p₁ ∧ ... : one satisfied pᵢ stops the worm."""
        assert case1.single_predicate_sufficed
        assert case1.predicates_evaluated_with == 1

    def test_detonates_without_scarecrow(self, case1):
        assert case1.case.outcome.without.result.executed_payload

    def test_render(self, case1):
        assert "Kasidet" in render_case1(case1)


class TestCase2Ransomware:
    @pytest.fixture(scope="class")
    def case2(self):
        return {result.sample_name: result for result in run_case2()}

    def test_wannacry_variant_deactivated_before_encryption(self, case2):
        result = case2["WannaCry variant"]
        assert result.deactivated
        assert result.files_encrypted_without > 0
        assert result.files_encrypted_with == 0
        assert result.trigger == "InternetOpenUrlA()"

    def test_wannacry_original_out_of_scope(self, case2):
        """Non-evasive malware is explicitly outside Scarecrow's reach."""
        result = case2["WannaCry original"]
        assert not result.deactivated
        assert result.files_encrypted_with == \
            result.files_encrypted_without > 0

    def test_locky_deactivated(self, case2):
        assert case2["Locky"].deactivated
        assert case2["Locky"].files_encrypted_with == 0

    def test_cerber_variant_deactivated_by_old_vm_check(self, case2):
        """New Cerber evades ML with new tricks but reuses the anti-VM
        gate — which is exactly what Scarecrow leans on."""
        result = case2["Cerber variant"]
        assert result.deactivated
        assert result.trigger == "NtOpenKeyEx()"

    def test_render(self, case2):
        text = render_case2(list(case2.values()))
        assert "WannaCry" in text and "Verdict" in text
