"""E2 (Figure 4): headline numbers on family subsets and the full corpus."""

import pytest

from repro.experiments.figure4 import (PAPER_SYMMI, run_figure4)
from repro.malware.corpus import build_malgene_corpus
from repro.malware.families import TOP10_FAMILY_SPECS


@pytest.fixture(scope="module")
def symmi_result():
    symmi_spec = TOP10_FAMILY_SPECS[0]
    return run_figure4(build_malgene_corpus([symmi_spec]))


class TestSymmiFamily:
    def test_totals(self, symmi_result):
        family = symmi_result.families["Symmi"]
        assert family.total == PAPER_SYMMI["total"] == 484
        assert family.deactivated == PAPER_SYMMI["deactivated"] == 478

    def test_self_spawning(self, symmi_result):
        family = symmi_result.families["Symmi"]
        assert family.self_spawning == PAPER_SYMMI["self_spawning"] == 473

    def test_payload_subcounts(self, symmi_result):
        family = symmi_result.families["Symmi"]
        assert family.created_processes_without == \
            PAPER_SYMMI["created_processes"] == 26
        assert family.modified_files_registry_without == \
            PAPER_SYMMI["modified_files_registry"] == 449

    def test_deactivation_rate_987(self, symmi_result):
        family = symmi_result.families["Symmi"]
        assert family.deactivation_rate == pytest.approx(0.987, abs=0.002)


class TestSelfdelFamily:
    def test_inconclusive(self):
        selfdel_spec = next(spec for spec in TOP10_FAMILY_SPECS
                            if spec.name == "Selfdel")
        result = run_figure4(build_malgene_corpus([selfdel_spec]))
        family = result.families["Selfdel"]
        assert family.total == 30
        assert family.deactivated == 0
        assert result.summary.inconclusive == 30
        assert result.summary.not_deactivated == 0


class TestSmallMixedSubset:
    def test_failure_families_fail_for_the_right_reason(self):
        """Samples gated solely on PEB/CPUID/MAC probes detonate in both
        configurations — Scarecrow cannot reach those surfaces."""
        from repro.malware.families import FamilySpec
        spec = FamilySpec("FailOnly", (("fail_peb", 2), ("fail_cpu", 2),
                                       ("fail_timing", 1)))
        result = run_figure4(build_malgene_corpus([spec]))
        assert result.summary.deactivated == 0
        assert result.summary.not_deactivated == 5

    def test_showcase_respawner_spawns_474(self):
        from repro.malware.corpus import (SHOWCASE_RESPAWNER_MD5,
                                          SHOWCASE_RESPAWNER_SPAWNS)
        corpus = build_malgene_corpus([TOP10_FAMILY_SPECS[0]])
        showcase = next(s for s in corpus
                        if s.md5 == SHOWCASE_RESPAWNER_MD5)
        from repro.experiments.runner import run_pair
        from repro.analysis.environments import build_bare_metal_sandbox
        outcome = run_pair(showcase,
                           machine_factory=lambda:
                           build_bare_metal_sandbox(aged=False))
        assert outcome.with_scarecrow.result.self_spawn_count == \
            SHOWCASE_RESPAWNER_SPAWNS == 474
        assert outcome.comparison.deactivated
