"""E3 (Table II) and E4 (Table III) reproduction checks."""

import pytest

from repro.experiments import (ENVIRONMENTS, PAPER_TABLE2, matches_paper,
                               render_table2, render_table3, run_table2,
                               run_table3, table2_matrix)
from repro.fingerprint.pafish import CATEGORY_ORDER


@pytest.fixture(scope="module")
def table2_cells():
    return run_table2()


class TestTable2:
    def test_six_cells(self, table2_cells):
        assert len(table2_cells) == 6

    def test_every_cell_matches_paper(self, table2_cells):
        matrix = table2_matrix(table2_cells)
        for category in CATEGORY_ORDER:
            assert matrix[category] == PAPER_TABLE2[category], category
        assert matches_paper(table2_cells)

    def test_environments_indistinguishable_with_scarecrow(self,
                                                           table2_cells):
        """The paper's indistinguishability claim: with Scarecrow the three
        environments' Pafish profiles agree on every non-timing category."""
        matrix = table2_matrix(table2_cells)
        timing_sensitive = {"CPU information", "Generic sandbox"}
        for category in set(CATEGORY_ORDER) - timing_sensitive:
            values = {matrix[category][(env, True)] for env in ENVIRONMENTS}
            assert len(values) == 1, category

    def test_scarecrow_dominates_bare_columns(self, table2_cells):
        """On physical machines, w/ Scarecrow triggers at least as many
        features as w/o in every category except the CPU timing group.
        (The VM column is excluded: its with-Scarecrow run uses the
        *hardened* VM, which legitimately drops MAC/DMI VirtualBox hits.)"""
        matrix = table2_matrix(table2_cells)
        for category in CATEGORY_ORDER:
            if category == "CPU information":
                continue
            for env in (ENVIRONMENTS[0], ENVIRONMENTS[2]):
                assert matrix[category][(env, True)] >= \
                    matrix[category][(env, False)], (category, env)

    def test_per_check_indistinguishability(self, table2_cells):
        """53 of 56 checks agree across all three protected environments;
        the residue is exactly the timing/presence checks Scarecrow cannot
        steer plus the username deployment choice."""
        from repro.experiments import indistinguishability_report
        report = indistinguishability_report(table2_cells)
        assert len(report["agree"]) == 53
        assert report["differ"] == ["cpu_rdtsc_force_vmexit",
                                    "gen_mouse_activity", "gen_username"]

    def test_render_mentions_match(self, table2_cells):
        text = render_table2(table2_cells)
        assert "Table II" in text
        assert "All cells match the paper." in text


@pytest.fixture(scope="module")
def table3():
    return run_table3()


class TestTable3:
    def test_verdict_flip(self, table3):
        assert table3.verdict_without.label == "real"
        assert table3.verdict_with.label == "sandbox"
        assert table3.scarecrow_flips_verdict

    def test_reference_sandbox_is_sandbox(self, table3):
        assert table3.verdict_sandbox.label == "sandbox"

    def test_top5_faked_values(self, table3):
        assert table3.faked_value("dnscacheEntries") == 4
        assert table3.faked_value("sysevt") == 8000
        assert table3.faked_value("deviceClsCount") == 29
        assert table3.faked_value("autoRunCount") == 3

    def test_regsize_53mb(self, table3):
        assert table3.faked_value("regSize") == 53 * 1024 * 1024

    def test_faked_values_sandbox_like_not_eu_like(self, table3):
        """Each faked artifact moved away from the real EU value toward
        the pristine-sandbox regime."""
        for label in ("dnscacheEntries", "sysevt", "deviceClsCount",
                      "uninstallCount", "usrassistCount", "shimCacheCount"):
            real = table3.real_value(label)
            faked = table3.faked_value(label)
            assert faked < real, label

    def test_every_table3_row_has_measured_values(self, table3):
        for row in table3.rows:
            assert table3.faked_value(row.artifact) is not None, row.artifact

    def test_render(self, table3):
        text = render_table3(table3)
        assert "Table III" in text
        assert "end-user w/ SCARECROW = sandbox" in text
