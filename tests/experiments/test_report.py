"""Text-table rendering."""

from repro.experiments.report import check_mark, render_kv, render_table


class TestRenderTable:
    def test_alignment(self):
        text = render_table(("A", "Longer"), [("x", 1), ("yyyy", 22)])
        lines = text.splitlines()
        assert lines[0].startswith("A   ")
        assert all("|" in line for line in (lines[0], lines[2], lines[3]))

    def test_title_underlined(self):
        text = render_table(("H",), [("v",)], title="My Table")
        assert text.splitlines()[0] == "My Table"
        assert text.splitlines()[1] == "========"

    def test_handles_non_string_cells(self):
        text = render_table(("n",), [(42,), (None,)])
        assert "42" in text and "None" in text

    def test_empty_rows(self):
        text = render_table(("only", "headers"), [])
        assert "only" in text


class TestRenderKv:
    def test_aligned_keys(self):
        text = render_kv("T", [("short", 1), ("much-longer-key", 2)])
        lines = text.splitlines()
        assert lines[2].index(":") == lines[3].index(":")

    def test_no_title(self):
        assert render_kv("", [("k", "v")]).startswith("k")


class TestCheckMark:
    def test_values(self):
        assert check_mark(True) == "yes"
        assert check_mark(False) == "NO"
