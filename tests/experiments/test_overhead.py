"""E8 overhead experiment module."""

import pytest

from repro.experiments import render_overhead, run_overhead


@pytest.fixture(scope="module")
def overhead():
    return run_overhead(iterations=300)


class TestOverhead:
    def test_measures_all_operations(self, overhead):
        assert len(overhead.rows) == 5
        assert all(row.unhooked_us > 0 and row.hooked_us > 0
                   for row in overhead.rows)

    def test_hook_chain_overhead_is_modest(self, overhead):
        """The §III claim, at the scale that matters: routing through the
        hook chain costs single-digit multipliers, not orders of magnitude."""
        assert overhead.max_ratio() < 10

    def test_launch_cost_sub_10ms(self, overhead):
        assert overhead.launch_cost_us < 10_000

    def test_render(self, overhead):
        text = render_overhead(overhead)
        assert "Ratio" in text and "protect-a-process" in text
