"""Documentation accuracy: the README/tutorial code blocks actually run."""

import pathlib
import re

import pytest

ROOT = pathlib.Path(__file__).resolve().parent.parent


def _python_blocks(path):
    text = (ROOT / path).read_text(encoding="utf-8")
    return re.findall(r"```python\n(.*?)```", text, flags=re.S)


class TestReadme:
    def test_quickstart_block_runs(self):
        blocks = _python_blocks("README.md")
        assert blocks, "README lost its quickstart block"
        exec(compile(blocks[0], "README.md", "exec"), {})

    def test_reproduced_results_table_lists_every_bench(self):
        text = (ROOT / "README.md").read_text(encoding="utf-8")
        for bench in sorted(p.name for p in
                            (ROOT / "benchmarks").glob("bench_*.py")):
            assert bench in text, f"README does not mention {bench}"

    def test_example_table_lists_every_example(self):
        text = (ROOT / "README.md").read_text(encoding="utf-8")
        for example in sorted(p.name for p in
                              (ROOT / "examples").glob("*.py")):
            assert f"examples/{example}" in text, example


class TestTutorial:
    def test_tutorial_blocks_run_in_sequence(self, tmp_path, monkeypatch):
        """The tutorial builds one namespace step by step; every block must
        execute against the state the previous blocks left behind. Runs in
        a scratch directory: one block writes scarecrow_db.json."""
        monkeypatch.chdir(tmp_path)
        blocks = _python_blocks("docs/TUTORIAL.md")
        assert len(blocks) >= 6
        namespace = {}
        for index, block in enumerate(blocks):
            exec(compile(block, f"TUTORIAL.md[block {index}]", "exec"),
                 namespace)


class TestDesignInventory:
    def test_every_src_module_listed_in_design(self):
        text = (ROOT / "DESIGN.md").read_text(encoding="utf-8")
        for path in (ROOT / "src" / "repro").rglob("*.py"):
            name = path.name
            if name in ("__init__.py", "__main__.py", "cli.py",
                        "calling.py"):
                continue
            assert name in text, f"DESIGN.md does not mention {name}"

    def test_experiments_doc_covers_every_bench(self):
        text = (ROOT / "EXPERIMENTS.md").read_text(encoding="utf-8")
        for bench in (ROOT / "benchmarks").glob("bench_*.py"):
            assert bench.name in text, bench.name
