"""CLI smoke + behaviour tests (``python -m repro``)."""

import io
import json

import pytest

from repro.cli import DEMO_SAMPLES, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_demo_sample_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["demo", "not-a-sample"])
        args = build_parser().parse_args(["demo", "wannacry"])
        assert args.sample == "wannacry"

    def test_pafish_defaults(self):
        args = build_parser().parse_args(["pafish"])
        assert args.env == "end-user" and not args.scarecrow


class TestCommands:
    def test_inventory(self, capsys):
        assert main(["inventory"]) == 0
        out = capsys.readouterr().out
        assert "processes: 24" in out
        assert "hooked resource APIs: 29" in out
        assert "192.0.2.66" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "12/13" in out

    def test_table3(self, capsys):
        assert main(["table3"]) == 0
        assert "sandbox" in capsys.readouterr().out

    def test_cases(self, capsys):
        assert main(["cases"]) == 0
        out = capsys.readouterr().out
        assert "Kasidet" in out and "WannaCry" in out

    @pytest.mark.parametrize("sample", sorted(DEMO_SAMPLES))
    def test_demo_each_sample(self, sample, capsys):
        code = main(["demo", sample])
        out = capsys.readouterr().out
        assert "verdict:" in out
        assert code == 0

    def test_pafish_end_user_bare(self, capsys):
        assert main(["pafish", "--env", "end-user"]) == 0
        out = capsys.readouterr().out
        assert "triggered 3/56" in out

    def test_pafish_vm_with_scarecrow(self, capsys):
        assert main(["pafish", "--env", "vm", "--scarecrow"]) == 0
        out = capsys.readouterr().out
        # Table II's VM w/-Scarecrow column: 1+0+9+2+1+2+14+4+1+1+0 = 35.
        assert "triggered 35/56" in out


class TestSweepCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.workers == 1
        assert args.limit == 0
        assert args.factory == "bare-metal-light"
        assert args.families is None

    def test_sweep_prints_summary(self, capsys):
        assert main(["sweep", "--families", "Bifrose", "--limit", "8"]) == 0
        out = capsys.readouterr().out
        assert "sweep: 8 samples, 1 worker(s) (in-process)" in out
        assert "factory=bare-metal-light" in out
        assert "deactivated:" in out
        assert "worker pids: 1 distinct" in out

    def test_sweep_family_filter_is_case_insensitive(self, capsys):
        assert main(["sweep", "--families", "selfdel",
                     "--limit", "2"]) == 0
        assert "sweep: 2 samples" in capsys.readouterr().out

    def test_sweep_unknown_family_fails(self, capsys):
        assert main(["sweep", "--families", "NoSuchFamily"]) == 2
        assert "unknown families: nosuchfamily" in capsys.readouterr().err

    def test_sweep_unknown_factory_fails_cleanly(self, capsys):
        assert main(["sweep", "--families", "Selfdel", "--limit", "1",
                     "--factory", "no-such-env"]) == 2
        err = capsys.readouterr().err
        assert "unknown machine factory 'no-such-env'" in err
        assert "bare-metal" in err  # lists the alternatives

    @pytest.mark.parametrize("argv", [["--workers", "0"],
                                      ["--limit", "-3"]])
    def test_sweep_rejects_bad_numbers(self, argv, capsys):
        assert main(["sweep", "--families", "Selfdel"] + argv) == 2
        assert "must be >=" in capsys.readouterr().err


class TestSweepErrorExit:
    def _result_with_error(self):
        from repro.parallel.envelope import SweepError
        from repro.parallel.sweep import SweepResult
        error = SweepError(index=0, sample_md5="deadbeef",
                           error_type="RuntimeError", message="boom",
                           traceback="", worker_pid=123, retry_count=1)
        return SweepResult(entries=[error], max_workers=1,
                           used_process_pool=False, wall_time_s=0.01)

    def test_sweep_exits_nonzero_on_sweep_errors(self, monkeypatch, capsys):
        from repro.parallel.sweep import ParallelSweep
        result = self._result_with_error()
        monkeypatch.setattr(ParallelSweep, "run",
                            lambda self, samples: result)
        code = main(["sweep", "--families", "Selfdel", "--limit", "1"])
        assert code == 1
        err = capsys.readouterr().err
        assert "ERROR deadbeef: RuntimeError: boom" in err

    def test_sweep_exits_zero_without_errors(self, capsys):
        assert main(["sweep", "--families", "Selfdel", "--limit", "1"]) == 0
        assert "ERROR" not in capsys.readouterr().err


class TestTelemetryOption:
    def test_sweep_telemetry_writes_jsonl_stats_reads_it(self, tmp_path,
                                                         capsys):
        from repro.telemetry import export
        path = str(tmp_path / "telemetry.jsonl")
        assert main(["sweep", "--families", "Selfdel", "--limit", "2",
                     "--telemetry", path]) == 0
        assert f"telemetry: wrote" in capsys.readouterr().err
        records = export.read_records(path)
        kinds = [record["type"] for record in records]
        assert kinds.count("meta") == 1
        assert kinds.count("metrics") == 1  # merged sweep scope, no dupes
        assert kinds.count("sample") == 2
        metrics = next(r for r in records if r["type"] == "metrics")
        assert metrics["scope"] == "sweep"
        assert metrics["snapshot"]["counters"]["worker.jobs"] == 2

        assert main(["stats", path]) == 0
        out = capsys.readouterr().out
        assert "records: meta=1 metrics=1 sample=2" in out
        assert "worker.jobs: 2" in out
        assert "api latency (virtual ns):" in out
        assert "p50_ns" in out and "p99_ns" in out

    def test_experiment_telemetry_records_process_delta(self, tmp_path,
                                                        capsys):
        from repro.telemetry import export
        path = str(tmp_path / "telemetry.jsonl")
        assert main(["table1", "--telemetry", path]) == 0
        capsys.readouterr()
        records = export.read_records(path)
        metrics = next(r for r in records if r["type"] == "metrics")
        assert metrics["scope"] == "process"
        assert metrics["snapshot"]["counters"]["api.calls"] > 0

    def test_telemetry_flag_restored_after_run(self, tmp_path):
        from repro.telemetry.metrics import TELEMETRY
        path = str(tmp_path / "telemetry.jsonl")
        assert not TELEMETRY.enabled
        main(["sweep", "--families", "Selfdel", "--limit", "1",
              "--telemetry", path])
        assert not TELEMETRY.enabled


class TestStatsCommand:
    def test_stats_missing_file_exits_2(self, tmp_path, capsys):
        code = main(["stats", str(tmp_path / "nope.jsonl")])
        assert code == 2
        assert "cannot read" in capsys.readouterr().err

    def test_stats_invalid_json_exits_2(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text("this is not json\n")
        assert main(["stats", str(path)]) == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_stats_schema_violation_exits_2(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type":"metrics","scope":"run"}\n')
        assert main(["stats", str(path)]) == 2
        assert "missing field" in capsys.readouterr().err

    def test_stats_empty_file_summarises(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main(["stats", str(path)]) == 0
        out = capsys.readouterr().out
        assert "records: (empty)" in out
        assert "samples: 0  errors: 0" in out

    def test_telemetry_parser_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.telemetry is None
        args = build_parser().parse_args(["overhead"])
        assert args.telemetry is None
        with pytest.raises(SystemExit):
            build_parser().parse_args(["inventory", "--telemetry", "x"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["stats"])  # PATH is required


class TestFleetCommand:
    ARGS = ["fleet", "--endpoints", "2", "--events", "12", "--seed", "7",
            "--factory", "bare-metal-light", "--queue-limit", "6"]

    def test_parser_defaults(self):
        args = build_parser().parse_args(["fleet"])
        assert args.endpoints == 8
        assert args.events == 64
        assert args.seed == 42
        assert args.jobs == 1
        assert args.shards == 1
        assert args.factory == "end-user"
        assert args.queue_limit == 32
        assert args.checkpoint is None
        assert not args.resume

    def test_fleet_sharded_report_matches_unsharded(self, capsys):
        assert main(self.ARGS) == 0
        reference = capsys.readouterr().out
        assert main(self.ARGS + ["--shards", "2"]) == 0
        sharded = capsys.readouterr().out
        assert "2 shards" in sharded
        # Same verdict lines; only the execution-shape line may differ.
        report = lambda text: text.split("execution:")[0]  # noqa: E731
        assert report(sharded) == report(reference)

    def test_fleet_rejects_bad_shard_count(self, capsys):
        assert main(["fleet", "--shards", "0"]) == 2
        assert "must be >=" in capsys.readouterr().err

    def test_fleet_prints_report(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "Fleet protection report" in out
        assert "endpoints: 2   seed: 7   events: 12/12" in out
        assert "admission: queue hwm" in out
        assert "events/sec:" in out

    def test_fleet_is_deterministic_across_invocations(self, capsys):
        assert main(self.ARGS) == 0
        first = capsys.readouterr().out
        assert main(self.ARGS) == 0
        second = capsys.readouterr().out
        # Everything above the host-wall-time footer must be identical.
        report = lambda text: text.split("wall time:")[0]  # noqa: E731
        assert report(first) == report(second)

    def test_fleet_resume_requires_checkpoint(self, capsys):
        assert main(["fleet", "--resume"]) == 2
        assert "--resume requires --checkpoint" in capsys.readouterr().err

    def test_fleet_unknown_factory_fails_cleanly(self, capsys):
        assert main(["fleet", "--factory", "no-such-env"]) == 2
        assert "unknown machine factory" in capsys.readouterr().err

    def test_fleet_rejects_bad_numbers(self, capsys):
        assert main(["fleet", "--endpoints", "0"]) == 2
        assert "must be >=" in capsys.readouterr().err

    def test_fleet_interrupt_then_resume(self, tmp_path, capsys):
        checkpoint = str(tmp_path / "fleet.ckpt")
        argv = self.ARGS + ["--events", "24", "--checkpoint", checkpoint]
        assert main(argv + ["--stop-after", "1"]) == 1
        out = capsys.readouterr().out
        assert "(PARTIAL)" in out
        assert "stopped after 1/" in out
        assert main(argv + ["--resume"]) == 0
        out = capsys.readouterr().out
        assert "(PARTIAL)" not in out
        assert "resumed 1/" in out

    def test_fleet_mismatched_checkpoint_exits_2(self, tmp_path, capsys):
        checkpoint = str(tmp_path / "fleet.ckpt")
        argv = self.ARGS + ["--checkpoint", checkpoint]
        assert main(argv + ["--stop-after", "1"]) == 1
        capsys.readouterr()
        assert main(argv + ["--seed", "8", "--resume"]) == 2
        assert "refusing to resume" in capsys.readouterr().err

    def test_fleet_telemetry_feeds_stats_fleet_health(self, tmp_path,
                                                      capsys):
        path = str(tmp_path / "fleet.jsonl")
        assert main(self.ARGS + ["--telemetry", path]) == 0
        capsys.readouterr()
        assert main(["stats", path]) == 0
        out = capsys.readouterr().out
        assert "fleet health:" in out
        assert "events: 12" in out
        assert "throughput:" in out
        assert "queue depth hwm:" in out
        assert "event latency (virtual): p50" in out
        assert "family " in out


class TestServeCommand:
    """`repro serve` on the stdio transport (stdin monkeypatched)."""

    ARGS = ["serve", "--factory", "bare-metal-light", "--shards", "2"]

    @staticmethod
    def _feed(monkeypatch, lines):
        monkeypatch.setattr("sys.stdin", io.StringIO("\n".join(lines)))

    def test_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.factory == "end-user"
        assert args.shards == 1
        assert args.tenant_limit == 256
        assert args.max_batch == 128
        assert args.port is None
        assert args.host == "127.0.0.1"

    def test_stdio_round_trip(self, monkeypatch, capsys):
        from repro.fleet import generate_events
        from repro.serve import event_to_dict
        events = generate_events(7, 2, 6)
        submit = json.dumps({
            "id": 2, "method": "submit",
            "params": {"events": [event_to_dict(e) for e in events]}})
        self._feed(monkeypatch, ['{"id": 1, "method": "ping"}', submit])
        assert main(self.ARGS) == 0
        captured = capsys.readouterr()
        ping, verdicts = (json.loads(line)
                          for line in captured.out.splitlines())
        assert ping["result"] == {"ok": True, "v": 1, "shards": 2}
        assert len(verdicts["result"]["verdicts"]) == len(events)
        assert "2 request(s), 6 verdict(s), 0 rejection(s)" \
            in captured.err

    def test_malformed_line_reports_an_error_response(self, monkeypatch,
                                                      capsys):
        self._feed(monkeypatch, ["not json{"])
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert json.loads(out)["error"]["code"] == -32700

    def test_unknown_factory_fails_cleanly(self, capsys):
        assert main(["serve", "--factory", "no-such-env"]) == 2
        assert "unknown machine factory" in capsys.readouterr().err

    def test_bad_config_exits_2(self, capsys):
        assert main(["serve", "--shards", "0"]) == 2
        assert "serve:" in capsys.readouterr().err
