"""CLI smoke + behaviour tests (``python -m repro``)."""

import pytest

from repro.cli import DEMO_SAMPLES, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_demo_sample_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["demo", "not-a-sample"])
        args = build_parser().parse_args(["demo", "wannacry"])
        assert args.sample == "wannacry"

    def test_pafish_defaults(self):
        args = build_parser().parse_args(["pafish"])
        assert args.env == "end-user" and not args.scarecrow


class TestCommands:
    def test_inventory(self, capsys):
        assert main(["inventory"]) == 0
        out = capsys.readouterr().out
        assert "processes: 24" in out
        assert "hooked resource APIs: 29" in out
        assert "192.0.2.66" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "12/13" in out

    def test_table3(self, capsys):
        assert main(["table3"]) == 0
        assert "sandbox" in capsys.readouterr().out

    def test_cases(self, capsys):
        assert main(["cases"]) == 0
        out = capsys.readouterr().out
        assert "Kasidet" in out and "WannaCry" in out

    @pytest.mark.parametrize("sample", sorted(DEMO_SAMPLES))
    def test_demo_each_sample(self, sample, capsys):
        code = main(["demo", sample])
        out = capsys.readouterr().out
        assert "verdict:" in out
        assert code == 0

    def test_pafish_end_user_bare(self, capsys):
        assert main(["pafish", "--env", "end-user"]) == 0
        out = capsys.readouterr().out
        assert "triggered 3/56" in out

    def test_pafish_vm_with_scarecrow(self, capsys):
        assert main(["pafish", "--env", "vm", "--scarecrow"]) == 0
        out = capsys.readouterr().out
        # Table II's VM w/-Scarecrow column: 1+0+9+2+1+2+14+4+1+1+0 = 35.
        assert "triggered 35/56" in out


class TestSweepCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.workers == 1
        assert args.limit == 0
        assert args.factory == "bare-metal-light"
        assert args.families is None

    def test_sweep_prints_summary(self, capsys):
        assert main(["sweep", "--families", "Bifrose", "--limit", "8"]) == 0
        out = capsys.readouterr().out
        assert "sweep: 8 samples, 1 worker(s) (in-process)" in out
        assert "factory=bare-metal-light" in out
        assert "deactivated:" in out
        assert "worker pids: 1 distinct" in out

    def test_sweep_family_filter_is_case_insensitive(self, capsys):
        assert main(["sweep", "--families", "selfdel",
                     "--limit", "2"]) == 0
        assert "sweep: 2 samples" in capsys.readouterr().out

    def test_sweep_unknown_family_fails(self, capsys):
        assert main(["sweep", "--families", "NoSuchFamily"]) == 2
        assert "unknown families: nosuchfamily" in capsys.readouterr().err

    def test_sweep_unknown_factory_fails_cleanly(self, capsys):
        assert main(["sweep", "--families", "Selfdel", "--limit", "1",
                     "--factory", "no-such-env"]) == 2
        err = capsys.readouterr().err
        assert "unknown machine factory 'no-such-env'" in err
        assert "bare-metal" in err  # lists the alternatives

    @pytest.mark.parametrize("argv", [["--workers", "0"],
                                      ["--limit", "-3"]])
    def test_sweep_rejects_bad_numbers(self, argv, capsys):
        assert main(["sweep", "--families", "Selfdel"] + argv) == 2
        assert "must be >=" in capsys.readouterr().err
