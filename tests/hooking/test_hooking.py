"""Inline hooks: byte patching, detection, trampolines, removal."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hooking.inline import HookManager
from repro.hooking.prologue import (CodeImage, PATCH_LEN, STANDARD_PROLOGUE,
                                    decode_jmp_target, encode_jmp,
                                    looks_hooked)

EXPORT = "kernel32.dll!IsDebuggerPresent"


class TestPrologueBytes:
    def test_standard_prologue_starts_mov_edi_edi(self):
        assert STANDARD_PROLOGUE[:2] == b"\x8b\xff"

    def test_encode_decode_jmp_roundtrip(self):
        code = encode_jmp(0x601000, 0x10000000)
        assert code[0] == 0xE9 and len(code) == PATCH_LEN
        assert decode_jmp_target(code, 0x601000) == 0x10000000

    def test_decode_non_jmp_returns_none(self):
        assert decode_jmp_target(STANDARD_PROLOGUE, 0x601000) is None

    def test_looks_hooked_on_clean_bytes(self):
        assert not looks_hooked(STANDARD_PROLOGUE)

    def test_looks_hooked_on_patch(self):
        assert looks_hooked(encode_jmp(0x601000, 0x10000000))

    def test_looks_hooked_short_buffer(self):
        assert looks_hooked(b"\xe9")

    @given(src=st.integers(0, 2**31), dst=st.integers(0, 2**31))
    @settings(max_examples=60, deadline=None)
    def test_jmp_roundtrip_property(self, src, dst):
        assert decode_jmp_target(encode_jmp(src, dst), src) == dst


class TestCodeImage:
    def test_fresh_export_has_standard_prologue(self):
        image = CodeImage()
        assert image.read(EXPORT) == STANDARD_PROLOGUE

    def test_addresses_stable_and_distinct(self):
        image = CodeImage()
        first = image.address_of(EXPORT)
        second = image.address_of("ntdll.dll!NtOpenKeyEx")
        assert first != second
        assert image.address_of(EXPORT) == first

    def test_patch_and_unpatch(self):
        image = CodeImage()
        original = image.patch_jmp(EXPORT, 0x10000000)
        assert image.is_patched(EXPORT)
        image.unpatch(EXPORT, original)
        assert not image.is_patched(EXPORT)
        assert image.read(EXPORT) == STANDARD_PROLOGUE

    def test_patched_exports_listing(self):
        image = CodeImage()
        image.patch_jmp(EXPORT, 0x10000000)
        assert EXPORT.lower() in image.patched_exports()

    def test_oversized_patch_rejected(self):
        image = CodeImage()
        with pytest.raises(ValueError):
            image.write(EXPORT, b"\x00" * 64)

    def test_case_insensitive_export_names(self):
        image = CodeImage()
        image.patch_jmp(EXPORT.upper(), 0x10000000)
        assert image.is_patched(EXPORT.lower())


class TestHookManager:
    def test_install_patches_prologue(self):
        manager = HookManager()
        manager.install(EXPORT, lambda call: True)
        assert looks_hooked(manager.read_prologue(EXPORT, 2))

    def test_double_install_rejected(self):
        manager = HookManager()
        manager.install(EXPORT, lambda call: True)
        with pytest.raises(ValueError):
            manager.install(EXPORT, lambda call: False)

    def test_remove_restores_bytes(self):
        manager = HookManager()
        manager.install(EXPORT, lambda call: True)
        assert manager.remove(EXPORT)
        assert not looks_hooked(manager.read_prologue(EXPORT, 2))
        assert not manager.remove(EXPORT)

    def test_remove_all_by_owner(self):
        manager = HookManager()
        manager.install(EXPORT, lambda call: True, owner="scarecrow")
        manager.install("kernel32.dll!GetTickCount", lambda call: 0,
                        owner="cuckoo")
        assert manager.remove_all(owner="scarecrow") == 1
        assert manager.is_hooked("kernel32.dll!GetTickCount")

    def test_remove_all(self):
        manager = HookManager()
        manager.install(EXPORT, lambda call: True)
        manager.install("kernel32.dll!GetTickCount", lambda call: 0)
        assert manager.remove_all() == 2
        assert len(manager) == 0

    def test_dispatch_routes_to_handler(self):
        manager = HookManager()
        manager.install(EXPORT, lambda call, *a: "hooked")
        result = manager.dispatch(EXPORT, None, lambda ctx: "real", (), {})
        assert result == "hooked"

    def test_dispatch_unhooked_calls_implementation(self):
        manager = HookManager()
        result = manager.dispatch(EXPORT, "ctx",
                                  lambda ctx, x: (ctx, x), (5,), {})
        assert result == ("ctx", 5)

    def test_dispatch_original_trampoline(self):
        manager = HookManager()
        manager.install(EXPORT, lambda call, x: call.original(x) + 1)
        result = manager.dispatch(EXPORT, "ctx",
                                  lambda ctx, x: x * 10, (4,), {})
        assert result == 41

    def test_hook_owner_recorded(self):
        manager = HookManager()
        hook = manager.install(EXPORT, lambda call: True, owner="scarecrow")
        assert hook.owner == "scarecrow"
        assert manager.hooks()[0].owner == "scarecrow"

    def test_hooked_exports(self):
        manager = HookManager()
        manager.install(EXPORT, lambda call: True)
        assert manager.hooked_exports() == [EXPORT]
