"""DLL injection (incl. suspended-child flow) and IPC channels."""

import pytest

from repro.hooking.injection import (HOOK_MANAGER_TAG, hook_manager_of,
                                     inject_dll, inject_into_suspended_child,
                                     is_injected)
from repro.hooking.ipc import IpcChannel, IpcEndpoint
from repro.winsim.process import ProcessState


class RecordingDll:
    name = "probe.dll"

    def __init__(self):
        self.injections = []

    def on_inject(self, machine, process):
        self.injections.append((process.pid, process.state))


class TestInjection:
    def test_inject_loads_module(self, machine, target):
        dll = RecordingDll()
        assert inject_dll(machine, target, dll)
        assert target.modules.is_loaded("probe.dll")
        assert is_injected(target, "probe.dll")

    def test_inject_creates_hook_manager(self, machine, target):
        inject_dll(machine, target, RecordingDll())
        assert hook_manager_of(target) is not None

    def test_inject_idempotent(self, machine, target):
        dll = RecordingDll()
        assert inject_dll(machine, target, dll)
        assert not inject_dll(machine, target, dll)
        assert len(dll.injections) == 1

    def test_inject_runs_entry_point(self, machine, target):
        dll = RecordingDll()
        inject_dll(machine, target, dll)
        assert dll.injections[0][0] == target.pid

    def test_inject_dead_process_rejected(self, machine, target):
        machine.processes.terminate(target.pid)
        with pytest.raises(ValueError):
            inject_dll(machine, target, RecordingDll())

    def test_inject_emits_image_event(self, machine, target):
        events = []
        machine.bus.subscribe(events.append)
        inject_dll(machine, target, RecordingDll())
        assert any(e.category == "image" and e.detail("injected")
                   for e in events)

    def test_suspended_child_flow(self, machine, target):
        child = machine.spawn_process("child.exe", parent=target)
        dll = RecordingDll()
        assert inject_into_suspended_child(machine, child, dll)
        # Entry point ran while suspended; child resumed afterwards.
        assert dll.injections[0][1] is ProcessState.SUSPENDED
        assert child.state is ProcessState.RUNNING

    def test_hook_manager_tag(self, machine, target):
        manager = hook_manager_of(target, create=True)
        assert target.tags[HOOK_MANAGER_TAG] is manager
        assert hook_manager_of(target) is manager

    def test_hook_manager_absent_by_default(self, target):
        assert hook_manager_of(target) is None


class TestIpc:
    def test_channel_duplex(self):
        channel = IpcChannel()
        channel.dll.send("fingerprint_report", api="IsDebuggerPresent")
        message = channel.controller.receive()
        assert message.kind == "fingerprint_report"
        assert message.payload["api"] == "IsDebuggerPresent"

    def test_sequence_numbers_increase(self):
        channel = IpcChannel()
        first = channel.dll.send("a")
        second = channel.dll.send("b")
        assert second.seq > first.seq

    def test_drain(self):
        channel = IpcChannel()
        for index in range(3):
            channel.controller.send("config_update", index=index)
        messages = channel.dll.drain()
        assert [m.payload["index"] for m in messages] == [0, 1, 2]
        assert channel.dll.pending == 0

    def test_receive_empty_returns_none(self):
        channel = IpcChannel()
        assert channel.controller.receive() is None

    def test_disconnected_endpoint_raises(self):
        endpoint = IpcEndpoint("orphan")
        with pytest.raises(RuntimeError):
            endpoint.send("x")

    def test_endpoint_names(self):
        channel = IpcChannel()
        assert channel.controller.name == "scarecrow.exe"
        assert channel.dll.name == "scarecrow.dll"
