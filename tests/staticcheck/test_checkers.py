"""Fixture-snippet unit tests for the SC001–SC005 checkers."""

import pytest

from repro.staticcheck import build_context
from repro.staticcheck.checkers import (check_clock_discipline,
                                        check_exception_discipline,
                                        check_host_entropy)
from repro.staticcheck.contract import (contract_findings,
                                        default_prologue_ok,
                                        live_contract_inputs)
from repro.staticcheck.layering import (extract_edges, find_cycles,
                                        layer_of, layering_findings)

pytestmark = pytest.mark.staticcheck


def ctx_for(source, module="repro.winsim.fixture", path="fixture.py"):
    return build_context(path, source, module=module)


class TestSC001ClockDiscipline:
    def test_flags_forbidden_imports(self):
        findings = check_clock_discipline(ctx_for(
            "import time\n"
            "from random import random\n"
            "from datetime import datetime\n"))
        assert [f.line for f in findings] == [1, 2, 3]
        assert all(f.rule == "SC001" for f in findings)
        assert "import time" in findings[0].message

    def test_flags_host_clock_method_calls(self):
        findings = check_clock_discipline(ctx_for(
            "x = datetime.now()\n"
            "y = date.today()\n"
            "z = time.perf_counter_ns()\n"))
        assert len(findings) == 3
        assert "datetime.now()" in findings[0].message

    def test_clean_virtual_clock_code_passes(self):
        findings = check_clock_discipline(ctx_for(
            "def tick(machine):\n"
            "    return machine.clock.now_ns\n"))
        assert findings == []

    def test_relative_import_of_time_like_module_allowed(self):
        # ``from .time import x`` is a package-local module, not host time.
        findings = check_clock_discipline(ctx_for(
            "from .time import helper\n"))
        assert findings == []


class TestSC002HostEntropy:
    def test_flags_entropy_imports(self):
        findings = check_host_entropy(ctx_for(
            "import uuid\n"
            "from secrets import token_bytes\n"))
        assert [f.line for f in findings] == [1, 2]
        assert all(f.rule == "SC002" for f in findings)

    def test_flags_urandom_and_builtin_hash(self):
        findings = check_host_entropy(ctx_for(
            "key = os.urandom(16)\n"
            "slot = hash(name) & 0xFFFF\n"))
        assert len(findings) == 2
        assert "os.urandom" in findings[0].message
        assert "PYTHONHASHSEED" in findings[1].message

    def test_flags_set_iteration(self):
        findings = check_host_entropy(ctx_for(
            "for item in {1, 2, 3}:\n"
            "    emit(item)\n"
            "for item in set(values):\n"
            "    emit(item)\n"))
        assert [f.line for f in findings] == [1, 3]

    def test_sorted_set_and_membership_pass(self):
        findings = check_host_entropy(ctx_for(
            "for item in sorted({1, 2, 3}):\n"
            "    emit(item)\n"
            "present = {x.lower() for x in names}\n"
            "ok = 'a' in present\n"))
        assert findings == []


class TestSC005ExceptionDiscipline:
    def test_flags_bare_except(self):
        findings = check_exception_discipline(ctx_for(
            "try:\n    risky()\nexcept:\n    handle()\n"))
        assert len(findings) == 1
        assert "bare 'except:'" in findings[0].message

    def test_flags_swallowed_broad_except(self):
        findings = check_exception_discipline(ctx_for(
            "try:\n    risky()\nexcept Exception:\n    pass\n"))
        assert len(findings) == 1
        assert "swallow" in findings[0].message

    def test_flags_swallowed_tuple_with_broad_member(self):
        findings = check_exception_discipline(ctx_for(
            "try:\n    risky()\n"
            "except (ValueError, BaseException):\n    ...\n"))
        assert len(findings) == 1

    def test_handled_broad_and_specific_excepts_pass(self):
        findings = check_exception_discipline(ctx_for(
            "try:\n    risky()\n"
            "except Exception as exc:\n    log(exc)\n"
            "try:\n    risky()\n"
            "except KeyError:\n    pass\n"))
        assert findings == []


def _tree(tmp_path, files):
    """Write ``{relpath: source}`` under tmp_path; return parsed contexts."""
    contexts = []
    for relpath, source in sorted(files.items()):
        target = tmp_path / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
        contexts.append(build_context(str(target), source))
    return contexts


class TestSC003Layering:
    def test_layer_of(self):
        assert layer_of("repro.winsim.clock") == "winsim"
        assert layer_of("repro") is None

    def test_forbidden_edge_winsim_to_core(self, tmp_path):
        contexts = _tree(tmp_path, {
            "repro/winsim/clock.py": "from ..core.engine import X\n",
            "repro/core/engine.py": "x = 1\n",
        })
        findings = layering_findings(contexts)
        assert len(findings) == 1
        assert "winsim must not import core" in findings[0].message

    def test_deferred_forbidden_edge_still_flagged(self, tmp_path):
        contexts = _tree(tmp_path, {
            "repro/winapi/k.py": "def f():\n"
                                 "    from ..core import engine\n",
            "repro/core/engine.py": "x = 1\n",
        })
        findings = layering_findings(contexts)
        assert len(findings) == 1
        assert "winapi must not import core" in findings[0].message

    def test_cycle_detected(self, tmp_path):
        contexts = _tree(tmp_path, {
            "repro/core/a.py": "from .b import f\n",
            "repro/core/b.py": "from .a import g\n",
        })
        findings = layering_findings(contexts)
        assert len(findings) == 1
        assert "import cycle" in findings[0].message
        assert "repro.core.a <-> repro.core.b" in findings[0].message

    def test_deferred_import_breaks_cycle(self, tmp_path):
        contexts = _tree(tmp_path, {
            "repro/core/a.py": "from .b import f\n",
            "repro/core/b.py": "def g():\n    from .a import h\n",
        })
        assert layering_findings(contexts) == []

    def test_allowed_direction_passes(self, tmp_path):
        contexts = _tree(tmp_path, {
            "repro/core/engine.py": "from ..winsim.clock import Clock\n",
            "repro/winsim/clock.py": "class Clock: pass\n",
        })
        assert layering_findings(contexts) == []

    def test_real_tree_is_clean(self):
        import pathlib
        from repro.staticcheck import PARSE_CACHE, collect_files
        src = pathlib.Path(__file__).resolve().parents[2] / "src" / "repro"
        contexts = [PARSE_CACHE.get(path)
                    for path in collect_files([str(src)])]
        assert layering_findings(contexts) == []

    def test_edge_extraction_resolves_relative_levels(self, tmp_path):
        contexts = _tree(tmp_path, {
            "repro/winapi/calling.py":
                "from ..hooking.injection import hook_manager_of\n",
            "repro/hooking/injection.py": "x = 1\n",
        })
        known = {c.module for c in contexts}
        edges = extract_edges(contexts[1], known)  # sorted: winapi second
        assert [(e.src, e.dst) for e in edges] == \
            [("repro.winapi.calling", "repro.hooking.injection")]

    def test_find_cycles_self_loop(self):
        from repro.staticcheck.layering import ImportEdge
        edges = [ImportEdge("repro.a.m", "repro.a.m2", 1, False),
                 ImportEdge("repro.a.m2", "repro.a.m", 1, False)]
        assert find_cycles(edges) == [["repro.a.m", "repro.a.m2"]]


class TestSC004ApiContract:
    def _anchor(self):
        return build_context(
            "handlers.py",
            'CORE = (\n    "kernel32.dll!IsDebuggerPresent",\n)\n',
            module="repro.core.handlers")

    def test_broken_fixture_missing_export(self):
        findings = contract_findings(
            self._anchor(),
            core_apis=["kernel32.dll!NoSuchApi"] + [f"d.dll!F{i}"
                                                   for i in range(28)],
            aliases={}, decoys=[],
            handler_names=[f"d.dll!F{i}" for i in range(28)],
            exports=[f"d.dll!F{i}" for i in range(28)],
            prologue_ok=lambda name: True)
        messages = "\n".join(f.message for f in findings)
        assert "kernel32.dll!NoSuchApi does not resolve" in messages
        assert "has no handler" in messages

    def test_broken_fixture_bad_prologue(self):
        findings = contract_findings(
            self._anchor(),
            core_apis=[f"d.dll!F{i}" for i in range(29)],
            aliases={}, decoys=[],
            handler_names=[f"d.dll!F{i}" for i in range(29)],
            exports=[f"d.dll!F{i}" for i in range(29)],
            prologue_ok=lambda name: name != "d.dll!F3")
        assert len(findings) == 1
        assert "prologue" in findings[0].message

    def test_wrong_core_count_flagged(self):
        findings = contract_findings(
            self._anchor(), core_apis=["d.dll!F0"], aliases={}, decoys=[],
            handler_names=["d.dll!F0"], exports=["d.dll!F0"],
            prologue_ok=lambda name: True)
        assert any("exactly 29" in f.message for f in findings)

    def test_alias_to_handlerless_base_flagged(self):
        findings = contract_findings(
            self._anchor(),
            core_apis=[f"d.dll!F{i}" for i in range(29)],
            aliases={"d.dll!FW": "d.dll!F0X"}, decoys=[],
            handler_names=[f"d.dll!F{i}" for i in range(29)] +
                          ["d.dll!FW", "d.dll!F0X"],
            exports=[f"d.dll!F{i}" for i in range(29)] +
                    ["d.dll!FW", "d.dll!F0X"],
            prologue_ok=lambda name: True)
        assert findings == []  # base has a handler: clean

        findings = contract_findings(
            self._anchor(),
            core_apis=[f"d.dll!F{i}" for i in range(29)],
            aliases={"d.dll!FW": "d.dll!Missing"}, decoys=[],
            handler_names=[f"d.dll!F{i}" for i in range(29)] +
                          ["d.dll!FW"],
            exports=[f"d.dll!F{i}" for i in range(29)] +
                    ["d.dll!FW", "d.dll!Missing"],
            prologue_ok=lambda name: True)
        assert any("no registered handler" in f.message for f in findings)

    def test_live_tree_is_conformant(self):
        core, aliases, decoys, handler_names, exports = \
            live_contract_inputs()
        findings = contract_findings(
            self._anchor(), core, aliases, decoys, handler_names, exports,
            default_prologue_ok)
        assert findings == []
        assert len(core) == 29
