"""Runner/CLI v2 surfaces: rule filtering, ``--changed``, dead-baseline
reporting/pruning, and serial-vs-pooled byte identity (including the
whole-program rules, whose output must not depend on shard assignment).
"""

import json
import os
import shutil
import subprocess
import sys
import tempfile

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.staticcheck import (render_human, render_json, run_lint,
                               write_baseline)
from repro.staticcheck.runner import changed_files

pytestmark = pytest.mark.staticcheck

DIRTY_ZONE_FILE = ("src/repro/winsim/dirty.py",
                   "import time\nvalue = hash('x')\n")
CLEAN_ZONE_FILE = ("src/repro/winsim/clean.py",
                   "def now(machine):\n    return machine.clock.now_ns\n")
SC008_FILE = ("src/repro/winsim/widget.py", """\
class Widget:
    def __init__(self):
        self._data = {}
        self._cache = {}

    def snapshot(self):
        return {"data": dict(self._data)}

    def restore(self, state):
        self._data = dict(state["data"])
""")
MACHINE_ANCHOR = ("src/repro/winsim/machine.py", """\
from .registry import Registry

TRACKED_SUBSYSTEMS = ("registry",)


class Machine:
    def __init__(self):
        self.registry = Registry()
""")
SC006_FILE = ("src/repro/winsim/registry.py", """\
class Registry:
    def __init__(self):
        self._values = {}
        self.mutations = 0

    def delete_value(self, name):
        self._values.pop(name, None)
""")
SC007_FILE = ("src/repro/parallel/widgets.py", "CACHE = {}\n")


def make_tree(root, *files):
    for relpath, source in files:
        target = root / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)


class TestSelectIgnore:
    def test_select_restricts_file_and_project_rules(self, tmp_path,
                                                     monkeypatch):
        make_tree(tmp_path, DIRTY_ZONE_FILE, SC008_FILE)
        monkeypatch.chdir(tmp_path)
        everything = run_lint(["src"])
        assert {"SC001", "SC002", "SC008"} <= \
            {f.rule for f in everything.findings}
        only_sc008 = run_lint(["src"], select=("SC008",))
        assert {f.rule for f in only_sc008.findings} == {"SC008"}
        only_sc001 = run_lint(["src"], select=("SC001",))
        assert {f.rule for f in only_sc001.findings} == {"SC001"}

    def test_ignore_drops_rules(self, tmp_path, monkeypatch):
        make_tree(tmp_path, DIRTY_ZONE_FILE, SC008_FILE)
        monkeypatch.chdir(tmp_path)
        report = run_lint(["src"], ignore=("SC001", "SC002"))
        assert {f.rule for f in report.findings} == {"SC008"}

    def test_select_gates_parse_errors_too(self, tmp_path, monkeypatch):
        make_tree(tmp_path, ("src/broken.py", "def f(:\n"))
        monkeypatch.chdir(tmp_path)
        assert run_lint(["src"], select=("SC001",)).findings == []
        assert [f.rule for f in
                run_lint(["src"], select=("SC000",)).findings] == ["SC000"]

    def test_filtered_run_reports_no_dead_entries(self, tmp_path,
                                                  monkeypatch):
        make_tree(tmp_path, DIRTY_ZONE_FILE)
        monkeypatch.chdir(tmp_path)
        baseline_path = str(tmp_path / "baseline.json")
        write_baseline(run_lint(["src"]).findings, baseline_path,
                       reason="test")
        # An SC008-only run recomputes no SC001 findings; it must not
        # declare the SC001 suppressions dead.
        report = run_lint(["src"], baseline_path=baseline_path,
                          select=("SC008",))
        assert report.stale_suppressions == []


class GitTree:
    """A committed scratch tree for --changed tests."""

    def __init__(self, root):
        self.root = root

    def git(self, *args):
        return subprocess.run(
            ["git", "-c", "user.email=t@example.com",
             "-c", "user.name=t", *args],
            cwd=str(self.root), check=True, capture_output=True,
            text=True)


class TestChanged:
    def test_changed_lints_only_differing_files(self, tmp_path,
                                                monkeypatch):
        make_tree(tmp_path, CLEAN_ZONE_FILE, DIRTY_ZONE_FILE)
        tree = GitTree(tmp_path)
        tree.git("init", "-q")
        tree.git("add", "-A")
        tree.git("commit", "-qm", "seed")
        monkeypatch.chdir(tmp_path)

        # Nothing changed since HEAD: nothing to lint, nothing found.
        unchanged = run_lint(["src"], changed_base="HEAD")
        assert unchanged.files_scanned == 0
        assert unchanged.findings == []

        # Touch only the clean file (making it dirty) — the committed
        # dirty file's findings must NOT appear.
        (tmp_path / CLEAN_ZONE_FILE[0]).write_text("import time\n")
        changed = run_lint(["src"], changed_base="HEAD")
        assert changed.files_scanned == 1
        assert {f.path for f in changed.findings} == {CLEAN_ZONE_FILE[0]}

    def test_untracked_files_count_as_changed(self, tmp_path, monkeypatch):
        make_tree(tmp_path, CLEAN_ZONE_FILE)
        tree = GitTree(tmp_path)
        tree.git("init", "-q")
        tree.git("add", "-A")
        tree.git("commit", "-qm", "seed")
        make_tree(tmp_path, DIRTY_ZONE_FILE)      # untracked
        monkeypatch.chdir(tmp_path)
        report = run_lint(["src"], changed_base="HEAD")
        assert {f.path for f in report.findings} == {DIRTY_ZONE_FILE[0]}

    def test_changed_fails_open_outside_git(self, tmp_path, monkeypatch):
        make_tree(tmp_path, DIRTY_ZONE_FILE)
        monkeypatch.chdir(tmp_path)
        monkeypatch.setenv("GIT_DIR", str(tmp_path / "nonexistent"))
        assert changed_files("HEAD") is None
        report = run_lint(["src"], changed_base="HEAD")
        assert report.files_scanned == 1          # full lint fallback
        assert report.findings


class TestDeadBaseline:
    def run_cli(self, cwd, *args):
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.abspath(src)] +
            env.get("PYTHONPATH", "").split(os.pathsep))
        return subprocess.run(
            [sys.executable, "-m", "repro", "lint", *args],
            capture_output=True, text=True, cwd=str(cwd), env=env)

    def test_dead_entries_reported_and_pruned(self, tmp_path):
        make_tree(tmp_path, DIRTY_ZONE_FILE)
        minted = self.run_cli(tmp_path, "src", "--write-baseline",
                              "--reason", "fixture")
        assert minted.returncode == 0, minted.stderr
        # Fix one violation: its suppressions go dead.
        (tmp_path / DIRTY_ZONE_FILE[0]).write_text("value = 1\n")
        relint = self.run_cli(tmp_path, "src")
        assert relint.returncode == 0               # dead entries warn only
        assert "dead baseline entry" in relint.stdout
        assert "--write-baseline" in relint.stdout
        pruned = self.run_cli(tmp_path, "src", "--write-baseline")
        assert "pruned" in pruned.stderr, pruned.stderr
        after = self.run_cli(tmp_path, "src")
        assert "dead baseline entry" not in after.stdout

    def test_write_baseline_refuses_partial_scans(self, tmp_path):
        make_tree(tmp_path, DIRTY_ZONE_FILE)
        for flags in (("--select", "SC001"), ("--ignore", "SC001"),
                      ("--changed",)):
            result = self.run_cli(tmp_path, "src", "--write-baseline",
                                  *flags)
            assert result.returncode == 2, flags
            assert "full scan" in result.stderr

    def test_select_ignore_changed_cli_flags(self, tmp_path):
        make_tree(tmp_path, DIRTY_ZONE_FILE, SC008_FILE)
        only = self.run_cli(tmp_path, "src", "--no-baseline",
                            "--select", "sc008")
        assert "SC008" in only.stdout and "SC001" not in only.stdout
        dropped = self.run_cli(tmp_path, "src", "--no-baseline",
                               "--ignore", "SC008,SC002")
        assert "SC008" not in dropped.stdout
        assert "SC001" in dropped.stdout


ALL_FIXTURES = (DIRTY_ZONE_FILE, CLEAN_ZONE_FILE, SC008_FILE,
                MACHINE_ANCHOR, SC006_FILE, SC007_FILE)


def _comparable(report):
    payload = report.to_dict()
    payload.pop("wall_time_s")               # the one run-dependent field
    return json.dumps(payload, indent=2, sort_keys=True)


class TestByteIdentity:
    def test_serial_and_pooled_output_byte_identical(self, tmp_path,
                                                     monkeypatch):
        make_tree(tmp_path, *ALL_FIXTURES)
        monkeypatch.chdir(tmp_path)
        serial = run_lint(["src"], jobs=1)
        pooled = run_lint(["src"], jobs=3)
        assert {"SC001", "SC006", "SC007", "SC008"} <= \
            {f.rule for f in serial.findings}
        assert render_human(serial) == render_human(pooled)
        assert _comparable(serial) == _comparable(pooled)
        assert render_json(serial) is not None    # render smoke

    @settings(max_examples=4, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(picks=st.lists(st.sampled_from(range(len(ALL_FIXTURES))),
                          min_size=1, max_size=len(ALL_FIXTURES),
                          unique=True))
    def test_any_file_subset_is_shard_independent(self, picks):
        """Serial and pooled findings agree for every scanned subset —
        whole-program results must not depend on which worker saw which
        file (project checkers always run in the parent over the full
        context)."""
        tmpdir = tempfile.mkdtemp(prefix="scarelint-prop-")
        cwd = os.getcwd()
        try:
            os.chdir(tmpdir)
            for index in picks:
                relpath, source = ALL_FIXTURES[index]
                target = os.path.join(tmpdir, relpath)
                os.makedirs(os.path.dirname(target), exist_ok=True)
                with open(target, "w") as handle:
                    handle.write(source)
            serial = run_lint(["src"], jobs=1)
            pooled = run_lint(["src"], jobs=2)
            assert render_human(serial) == render_human(pooled)
            assert _comparable(serial) == _comparable(pooled)
        finally:
            os.chdir(cwd)
            shutil.rmtree(tmpdir, ignore_errors=True)
