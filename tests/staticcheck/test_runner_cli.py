"""End-to-end runner + ``repro lint`` CLI tests over scratch trees."""

import json
import subprocess
import sys

import pytest

from repro.staticcheck import (Baseline, DEFAULT_BASELINE_PATH,
                               collect_files, render_human, render_json,
                               run_lint, write_baseline)
from repro.telemetry.metrics import TELEMETRY

pytestmark = pytest.mark.staticcheck

DIRTY_ZONE_FILE = ("src/repro/winsim/dirty.py",
                   "import time\nvalue = hash('x')\n")
CLEAN_ZONE_FILE = ("src/repro/winsim/clean.py",
                   "def now(machine):\n    return machine.clock.now_ns\n")
OUT_OF_ZONE_FILE = ("src/repro/analysis/report.py",
                    "import time\n")     # analysis is not a zone


def make_tree(root, *files):
    for relpath, source in files:
        target = root / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)


class TestRunLint:
    def test_zone_gating(self, tmp_path, monkeypatch):
        make_tree(tmp_path, DIRTY_ZONE_FILE, CLEAN_ZONE_FILE,
                  OUT_OF_ZONE_FILE)
        monkeypatch.chdir(tmp_path)
        report = run_lint(["src"])
        rules = sorted({f.rule for f in report.findings})
        assert rules == ["SC001", "SC002"]
        paths = {f.path for f in report.findings}
        assert paths == {"src/repro/winsim/dirty.py"}
        assert report.exit_code == 1
        assert report.files_scanned == 3

    def test_clean_tree_exits_zero(self, tmp_path, monkeypatch):
        make_tree(tmp_path, CLEAN_ZONE_FILE)
        monkeypatch.chdir(tmp_path)
        report = run_lint(["src"])
        assert report.findings == []
        assert report.exit_code == 0

    def test_syntax_error_becomes_sc000(self, tmp_path, monkeypatch):
        make_tree(tmp_path, ("src/broken.py", "def f(:\n"))
        monkeypatch.chdir(tmp_path)
        report = run_lint(["src"])
        assert [f.rule for f in report.findings] == ["SC000"]

    def test_baseline_suppresses_and_stale_reported(self, tmp_path,
                                                    monkeypatch):
        make_tree(tmp_path, DIRTY_ZONE_FILE)
        monkeypatch.chdir(tmp_path)
        first = run_lint(["src"])
        baseline_path = str(tmp_path / "baseline.json")
        write_baseline(first.findings, baseline_path, reason="test")

        second = run_lint(["src"], baseline_path=baseline_path)
        assert second.findings == []
        assert len(second.suppressed) == len(first.findings)
        assert second.stale_suppressions == []

        # Fix one violation: its baseline entry goes stale.
        (tmp_path / DIRTY_ZONE_FILE[0]).write_text("value = hash('x')\n")
        third = run_lint(["src"], baseline_path=baseline_path)
        assert third.findings == []
        assert len(third.stale_suppressions) == 1

    def test_pooled_run_matches_serial(self, tmp_path, monkeypatch):
        make_tree(tmp_path, DIRTY_ZONE_FILE, CLEAN_ZONE_FILE,
                  OUT_OF_ZONE_FILE)
        monkeypatch.chdir(tmp_path)
        serial = run_lint(["src"], jobs=1)
        pooled = run_lint(["src"], jobs=2)
        assert pooled.findings == serial.findings

    def test_telemetry_records_lint_metrics(self, tmp_path, monkeypatch):
        make_tree(tmp_path, DIRTY_ZONE_FILE)
        monkeypatch.chdir(tmp_path)
        TELEMETRY.reset()
        TELEMETRY.enable()
        try:
            run_lint(["src"])
            snapshot = TELEMETRY.snapshot()
        finally:
            TELEMETRY.disable()
            TELEMETRY.reset()
        assert snapshot.counters["staticcheck.files"] == 1
        assert snapshot.counters["staticcheck.findings"] >= 1
        assert any(name.startswith("wallclock.staticcheck.SC")
                   for name in snapshot.histograms)

    def test_collect_files_deduplicates_and_sorts(self, tmp_path):
        make_tree(tmp_path, ("a.py", ""), ("sub/b.py", ""))
        files = collect_files([str(tmp_path), str(tmp_path / "a.py")])
        assert files == sorted(files)
        assert len(files) == 2

    def test_renderers(self, tmp_path, monkeypatch):
        make_tree(tmp_path, DIRTY_ZONE_FILE)
        monkeypatch.chdir(tmp_path)
        report = run_lint(["src"])
        human = render_human(report)
        assert "SC001" in human and "1 file(s) scanned" in human
        payload = json.loads(render_json(report))
        assert payload["version"] == 1
        assert payload["files_scanned"] == 1
        assert {f["rule"] for f in payload["findings"]} == \
            {"SC001", "SC002"}
        assert "SC003" in payload["rules"]


class TestLintCli:
    def run_cli(self, cwd, *args):
        # Absolute PYTHONPATH: the subprocess runs from a tmp cwd, where
        # the inherited relative ``src`` entry would not resolve.
        import os
        import pathlib
        src = pathlib.Path(__file__).resolve().parents[2] / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(src)] + env.get("PYTHONPATH", "").split(os.pathsep))
        return subprocess.run(
            [sys.executable, "-m", "repro", "lint", *args],
            capture_output=True, text=True, cwd=str(cwd), env=env)

    def test_dirty_tree_exits_one(self, tmp_path):
        make_tree(tmp_path, DIRTY_ZONE_FILE)
        result = self.run_cli(tmp_path, "src")
        assert result.returncode == 1
        assert "SC001" in result.stdout

    def test_clean_tree_exits_zero(self, tmp_path):
        make_tree(tmp_path, CLEAN_ZONE_FILE)
        result = self.run_cli(tmp_path, "src")
        assert result.returncode == 0
        assert "0 finding(s)" in result.stdout

    def test_json_format(self, tmp_path):
        make_tree(tmp_path, DIRTY_ZONE_FILE)
        result = self.run_cli(tmp_path, "src", "--format", "json")
        payload = json.loads(result.stdout)
        assert payload["version"] == 1
        assert result.returncode == 1

    def test_write_baseline_then_clean(self, tmp_path):
        make_tree(tmp_path, DIRTY_ZONE_FILE)
        minted = self.run_cli(tmp_path, "src", "--write-baseline",
                              "--reason", "fixture")
        assert minted.returncode == 0, minted.stderr
        assert (tmp_path / DEFAULT_BASELINE_PATH).exists()
        relint = self.run_cli(tmp_path, "src")
        assert relint.returncode == 0, relint.stdout

    def test_no_baseline_flag_ignores_it(self, tmp_path):
        make_tree(tmp_path, DIRTY_ZONE_FILE)
        self.run_cli(tmp_path, "src", "--write-baseline")
        result = self.run_cli(tmp_path, "src", "--no-baseline")
        assert result.returncode == 1

    def test_invalid_jobs_exits_two(self, tmp_path):
        make_tree(tmp_path, CLEAN_ZONE_FILE)
        result = self.run_cli(tmp_path, "src", "--jobs", "0")
        assert result.returncode == 2

    def test_jobs_flag_parallel_run(self, tmp_path):
        make_tree(tmp_path, DIRTY_ZONE_FILE, CLEAN_ZONE_FILE)
        result = self.run_cli(tmp_path, "src", "--jobs", "2")
        assert result.returncode == 1
        assert "SC001" in result.stdout


class TestWrapperCompat:
    """tools/check_clock_discipline.py keeps its legacy surface."""

    def test_tuple_api(self, tmp_path):
        from tools.check_clock_discipline import check_paths, check_source
        violations = check_source("bad.py", "import time\n")
        assert violations == [("bad.py", 1, violations[0][2])]
        assert "import time" in violations[0][2]
        good = tmp_path / "good.py"
        good.write_text("x = 1\n")
        assert check_paths([str(good)]) == []
