"""Baseline round-trip: suppression, edit-invalidation, persistence."""

import pytest

from repro.staticcheck import (Baseline, BaselineFormatError, Finding,
                               keyed_findings, load_or_empty,
                               suppression_key)

pytestmark = pytest.mark.staticcheck


def finding_for(line_text, line=7, rule="SC001", path="src/mod.py"):
    return Finding(rule=rule, path=path, line=line,
                   message="host clock", line_text=line_text)


class TestSuppressionKeys:
    def test_key_is_line_number_independent(self):
        moved = finding_for("import time", line=99)
        original = finding_for("import time", line=7)
        assert keyed_findings([moved])[0][1] == \
            keyed_findings([original])[0][1]

    def test_editing_the_line_changes_the_key(self):
        before = suppression_key("SC001", "src/mod.py", "import time", 0)
        after = suppression_key("SC001", "src/mod.py",
                                "import time  # noqa", 0)
        assert before != after

    def test_duplicate_lines_get_distinct_occurrences(self):
        first = finding_for("start = time.perf_counter()", line=10)
        second = finding_for("start = time.perf_counter()", line=20)
        keys = [key for _, key in keyed_findings([first, second])]
        assert len(set(keys)) == 2

    def test_keys_whitespace_insensitive(self):
        assert suppression_key("SC001", "p.py", "  import time  ", 0) == \
            suppression_key("SC001", "p.py", "import time", 0)


class TestBaselineRoundTrip:
    def test_baselined_finding_is_suppressed(self):
        finding = finding_for("import time")
        baseline = Baseline.from_findings([finding], reason="deliberate")
        kept, suppressed, stale = baseline.apply([finding])
        assert kept == []
        assert suppressed == [finding]
        assert stale == []

    def test_edited_line_invalidates_the_suppression(self):
        baseline = Baseline.from_findings([finding_for("import time")])
        edited = finding_for("import time as t")
        kept, suppressed, stale = baseline.apply([edited])
        assert kept == [edited]          # resurfaces as a live finding
        assert suppressed == []
        assert len(stale) == 1           # old key now matches nothing

    def test_unrelated_shift_keeps_the_suppression(self):
        baseline = Baseline.from_findings([finding_for("import time",
                                                       line=7)])
        shifted = finding_for("import time", line=31)
        kept, suppressed, stale = baseline.apply([shifted])
        assert (kept, suppressed, stale) == ([], [shifted], [])

    def test_save_load_round_trip(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        original = Baseline.from_findings(
            [finding_for("import time"), finding_for("import random")],
            reason="wallclock telemetry")
        original.save(path)
        loaded = Baseline.load(path)
        assert loaded.keys() == original.keys()
        assert all(entry.reason == "wallclock telemetry"
                   for entry in loaded.entries)

    def test_load_or_empty_missing_file(self, tmp_path):
        baseline = load_or_empty(str(tmp_path / "absent.json"))
        assert len(baseline) == 0

    def test_load_rejects_wrong_version(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"version": 99, "suppressions": []}')
        with pytest.raises(BaselineFormatError):
            Baseline.load(str(path))

    def test_load_rejects_keyless_entry(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"version": 1, "suppressions": [{"rule": "X"}]}')
        with pytest.raises(BaselineFormatError):
            Baseline.load(str(path))

    def test_load_rejects_non_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("not json")
        with pytest.raises(BaselineFormatError):
            Baseline.load(str(path))
