"""Fixture-driven tests for the whole-program rules (SC006–SC008) and
the interprocedural SC001/SC002 taint upgrade.

Every fixture is a miniature ``src/repro`` tree built in memory via
:func:`build_context` — no filesystem, no cache — with a true-positive
and a true-negative per rule. The SC001 regression fixture proves the
v2 claim directly: a zone function laundering ``time.time()`` through an
out-of-zone helper is invisible to the file-scope checker and caught by
the taint pass.
"""

import pytest

from repro.staticcheck import build_context, get_checker
from repro.staticcheck.dataflow import (check_clock_taint,
                                        check_entropy_taint,
                                        check_mutation_tracking,
                                        check_snapshot_completeness,
                                        check_worker_boundary)
from repro.staticcheck.registry import ProjectContext

pytestmark = pytest.mark.staticcheck


def project(*files):
    return ProjectContext(files=[build_context(path, source)
                                 for path, source in files])


#: Minimal SC006 anchor: the tracked-subsystem contract of the machine.
MACHINE_ANCHOR = ("src/repro/winsim/machine.py", """\
from .registry import Registry

TRACKED_SUBSYSTEMS = ("registry",)


class Machine:
    def __init__(self):
        self.registry = Registry()
""")


class TestSC006MutationTracking:
    def test_helper_laundered_write_without_bump_is_flagged(self):
        ctx = project(MACHINE_ANCHOR, ("src/repro/winsim/registry.py", """\
class Registry:
    def __init__(self):
        self._values = {}
        self.mutations = 0

    def set_value(self, name, value):
        self._store(name, value)
        self._note()

    def delete_value(self, name):
        self._drop(name)

    def _store(self, name, value):
        self._values[name] = value

    def _drop(self, name):
        self._values.pop(name, None)

    def _note(self):
        self.mutations += 1
"""))
        findings = check_mutation_tracking(ctx)
        assert [f.rule for f in findings] == ["SC006"]
        assert "delete_value" in findings[0].message
        assert "_values" in findings[0].message
        # set_value writes through one helper and bumps through another:
        # both legs resolve, so it stays clean.
        assert "set_value" not in findings[0].message

    def test_tagged_container_write_counts_as_bump(self):
        ctx = project(MACHINE_ANCHOR, ("src/repro/winsim/registry.py", """\
class TagDict(dict):
    def __init__(self, owner):
        super().__init__()
        self._owner = owner

    def __setitem__(self, key, value):
        super().__setitem__(key, value)
        self._owner.mutations += 1


class Registry:
    def __init__(self):
        self.tags = TagDict(self)
        self.mutations = 0

    def tag(self, key, value):
        self.tags[key] = value
"""))
        assert check_mutation_tracking(ctx) == []

    def test_read_only_methods_are_clean(self):
        ctx = project(MACHINE_ANCHOR, ("src/repro/winsim/registry.py", """\
class Registry:
    def __init__(self):
        self._values = {}
        self.mutations = 0

    def get_value(self, name):
        return self._values.get(name)

    def count(self):
        return len(self._values)
"""))
        assert check_mutation_tracking(ctx) == []

    def test_disarms_without_machine_anchor(self):
        ctx = project(("src/repro/winsim/registry.py", """\
class Registry:
    def __init__(self):
        self._values = {}

    def set_value(self, name, value):
        self._values[name] = value
"""))
        assert check_mutation_tracking(ctx) == []


class TestSC007WorkerBoundary:
    def test_unregistered_mutable_global_is_flagged(self):
        ctx = project(("src/repro/parallel/widgets.py",
                       "CACHE = {}\nLIMITS = (1, 2)\n"))
        findings = check_worker_boundary(ctx)
        assert [f.rule for f in findings] == ["SC007"]
        assert "CACHE" in findings[0].message
        assert "LIMITS" not in findings[0].message

    def test_lock_in_instance_state_direct_and_laundered(self):
        ctx = project(("src/repro/parallel/jobs.py", """\
import threading


def _make_lock():
    return threading.Lock()


class DirectJob:
    def __init__(self):
        self._lock = threading.Lock()


class LaunderedJob:
    def __init__(self):
        self.guard = _make_lock()
"""))
        findings = check_worker_boundary(ctx)
        assert [f.rule for f in findings] == ["SC007", "SC007"]
        attrs = {f.message.split("'")[1] for f in findings}
        assert attrs == {"_lock", "guard"}
        assert any("_make_lock" in f.message for f in findings)

    def test_generator_and_open_file_flagged(self):
        ctx = project(("src/repro/fleet/stream.py", """\
def _events(items):
    for item in items:
        yield item


class Stream:
    def __init__(self, items, path):
        self.pending = _events(items)
        self.log = open(path)
"""))
        findings = check_worker_boundary(ctx)
        kinds = sorted(f.message.split("'")[1] for f in findings)
        assert kinds == ["log", "pending"]

    def test_picklable_state_and_out_of_zone_are_clean(self):
        ctx = project(
            ("src/repro/parallel/clean.py", """\
class Envelope:
    def __init__(self, payload):
        self.payload = list(payload)
        self.meta = {}
"""),
            # analysis is not a worker zone: a module-level dict is fine.
            ("src/repro/analysis/cachey.py", "CACHE = {}\n"))
        assert check_worker_boundary(ctx) == []


class TestSC008SnapshotCompleteness:
    def test_unsnapshotted_attribute_is_flagged(self):
        ctx = project(("src/repro/winsim/widget.py", """\
class Widget:
    def __init__(self):
        self._data = {}
        self._cache = {}

    def snapshot(self):
        return {"data": dict(self._data)}

    def restore(self, state):
        self._data = dict(state["data"])
"""))
        findings = check_snapshot_completeness(ctx)
        assert [f.rule for f in findings] == ["SC008"]
        assert "'_cache'" in findings[0].message

    def test_helper_closure_and_exempt_marker_cover_attrs(self):
        ctx = project(("src/repro/winsim/widget.py", """\
class Widget:
    _SNAPSHOT_EXEMPT = ("_listeners",)

    def __init__(self):
        self._data = {}
        self._seq = 0
        self._listeners = []

    def bump(self):
        self._seq += 1

    def snapshot(self):
        return self._pack()

    def restore(self, state):
        self._data = dict(state["data"])
        self._seq = state["seq"]

    def _pack(self):
        return {"data": dict(self._data), "seq": self._seq}
"""))
        assert check_snapshot_completeness(ctx) == []

    def test_classes_without_snapshot_pair_are_ignored(self):
        ctx = project(("src/repro/winsim/widget.py", """\
class OnlySnapshot:
    def __init__(self):
        self._data = {}
        self._cache = {}

    def snapshot(self):
        return {"data": dict(self._data)}
"""))
        assert check_snapshot_completeness(ctx) == []


ZONE_CALLER = ("src/repro/winsim/probe.py", """\
from ..analysis.timeutil import stamp


def probe_time():
    return stamp()
""")

OUT_OF_ZONE_HELPER = ("src/repro/analysis/timeutil.py", """\
import time


def stamp():
    return time.time()
""")


class TestInterproceduralTaint:
    def test_helper_laundered_clock_call_caught_by_v2_missed_by_v1(self):
        files = [ZONE_CALLER, OUT_OF_ZONE_HELPER]
        ctx = project(*files)
        findings = check_clock_taint(ctx)
        assert [f.rule for f in findings] == ["SC001"]
        assert findings[0].path == "src/repro/winsim/probe.py"
        assert findings[0].line_text == "return stamp()"
        assert "host clock" in findings[0].message
        assert "timeutil.stamp" in findings[0].message
        # The regression claim: file-scope SC001 sees nothing in the
        # zone file (no forbidden import, no direct primitive).
        v1 = get_checker("SC001", scope="file")
        assert v1.fn(build_context(*ZONE_CALLER)) == []

    def test_taint_propagates_through_helper_chains(self):
        ctx = project(
            ("src/repro/winsim/probe.py", """\
from ..analysis.timeutil import outer


def probe_time():
    return outer()
"""),
            ("src/repro/analysis/timeutil.py", """\
import time


def outer():
    return inner()


def inner():
    return time.time()
"""))
        findings = check_clock_taint(ctx)
        assert len(findings) == 1
        assert "outer" in findings[0].message

    def test_entropy_taint_and_seeded_prng_distinction(self):
        ctx = project(
            ("src/repro/winsim/probe.py", """\
from ..analysis.ids import fresh_id, stable_id


def tainted():
    return fresh_id()


def clean(seed):
    return stable_id(seed)
"""),
            ("src/repro/analysis/ids.py", """\
import random
import uuid


def fresh_id():
    return uuid.uuid4()


def stable_id(seed):
    return random.Random(seed).random()
"""))
        findings = check_entropy_taint(ctx)
        assert [f.line_text for f in findings] == ["return fresh_id()"]

    def test_calls_within_zone_left_to_file_scope(self):
        # Direct primitive use inside the zone is file-scope SC001's
        # finding (and its baseline's); the taint pass must not double up.
        ctx = project(("src/repro/winsim/dirty.py", """\
import time


def now():
    return time.time()


def caller():
    return now()
"""))
        assert check_clock_taint(ctx) == []
