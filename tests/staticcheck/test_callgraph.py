"""Unit tests for the whole-program summary/resolution/fixpoint layer."""

import pytest

from repro.staticcheck import build_context
from repro.staticcheck.callgraph import CallGraph

pytestmark = pytest.mark.staticcheck


def graph(*files):
    return CallGraph([build_context(path, source)
                      for path, source in files])


class TestSummaries:
    def test_self_writes_reads_and_bumps(self):
        g = graph(("src/repro/winsim/m.py", """\
class Box:
    def __init__(self):
        self._items = {}
        self.mutations = 0

    def put(self, key, value):
        self._items[key] = value
        self.mutations += 1

    def stash(self, value):
        self._items.setdefault("k", []).append(value)

    def peek(self):
        return self._items
"""))
        put = g.function("repro.winsim.m", "Box.put")
        assert {w.attr for w in put.self_writes} == {"_items", "mutations"}
        assert put.bumps_mutations
        stash = g.function("repro.winsim.m", "Box.stash")
        assert any(w.attr == "_items" and w.via == "mutcall"
                   for w in stash.self_writes)
        assert not stash.bumps_mutations
        peek = g.function("repro.winsim.m", "Box.peek")
        assert peek.self_reads == {"_items"}
        assert not peek.self_writes

    def test_bump_on_foreign_receiver_counts(self):
        g = graph(("src/repro/winsim/m.py", """\
class Key:
    def touch(self):
        self._owner.mutations += 1
"""))
        assert g.function("repro.winsim.m", "Key.touch").bumps_mutations

    def test_property_pair_merges_into_one_summary(self):
        g = graph(("src/repro/winsim/m.py", """\
class Box:
    @property
    def size(self):
        return self._size

    @size.setter
    def size(self, value):
        self._size = value
        self.mutations += 1
"""))
        merged = g.function("repro.winsim.m", "Box.size")
        assert merged.bumps_mutations
        assert "_size" in merged.self_reads
        assert any(w.attr == "_size" for w in merged.self_writes)

    def test_generator_detection_is_own_scope_only(self):
        g = graph(("src/repro/winsim/m.py", """\
def gen():
    yield 1


def factory():
    def inner():
        yield 2
    return inner
"""))
        assert g.function("repro.winsim.m", "gen").is_generator
        assert not g.function("repro.winsim.m", "factory").is_generator


class TestResolution:
    FILES = (
        ("src/repro/winsim/helpers.py", """\
def shared_helper():
    return 1


class Tool:
    def run(self):
        return shared_helper()
"""),
        ("src/repro/winsim/main.py", """\
from . import helpers
from .helpers import shared_helper, Tool


def via_module():
    return helpers.shared_helper()


def via_symbol():
    return shared_helper()


def via_ctor():
    return Tool()


def via_method(tool):
    return tool.run()
"""))

    def test_cross_module_resolution_via_imports(self):
        g = graph(*self.FILES)
        main = "repro.winsim.main"
        for caller in ("via_module", "via_symbol"):
            fn = g.function(main, caller)
            resolved = [key for key, _ in g.resolved_calls(fn)]
            assert ("repro.winsim.helpers", "shared_helper") in resolved, \
                caller

    def test_dyn_receiver_resolves_same_module_methods(self):
        g = graph(("src/repro/winsim/solo.py", """\
class Tool:
    def run(self):
        return 1


def use(tool):
    return tool.run()
"""))
        fn = g.function("repro.winsim.solo", "use")
        assert [key for key, _ in g.resolved_calls(fn)] == \
            [("repro.winsim.solo", "Tool.run")]

    def test_relative_import_resolution(self):
        g = graph(
            ("src/repro/analysis/util.py", "def helper():\n    return 1\n"),
            ("src/repro/winsim/user.py", """\
from ..analysis.util import helper


def call():
    return helper()
"""))
        fn = g.function("repro.winsim.user", "call")
        assert [key for key, _ in g.resolved_calls(fn)] == \
            [("repro.analysis.util", "helper")]


class TestPropagation:
    def test_propagate_reaches_transitive_callers(self):
        g = graph(("src/repro/winsim/chain.py", """\
import time


def a():
    return b()


def b():
    return c()


def c():
    return time.time()
"""))
        seeds = {fn.key: "clock" for fn in g.functions()
                 if fn.clock_primitives}
        marked = g.propagate(seeds)
        names = {qual for (_, qual) in marked}
        assert names == {"a", "b", "c"}

    def test_same_class_closure_stays_in_class(self):
        g = graph(("src/repro/winsim/two.py", """\
class A:
    def snapshot(self):
        return self._pack()

    def _pack(self):
        return {"x": self._x}


class B:
    def _pack(self):
        return {"y": self._y}
"""))
        fn = g.function("repro.winsim.two", "A.snapshot")
        reached = {f.qualname for f in g.closure(fn, same_class_only=True)}
        assert reached == {"A.snapshot", "A._pack"}


class TestPrimitiveClassification:
    def test_dotted_datetime_now_is_clock(self):
        g = graph(("src/repro/x.py", """\
import datetime


def now():
    return datetime.datetime.now()


def fixed():
    return datetime.datetime(2020, 1, 1)
"""))
        assert g.function("repro.x", "now").clock_primitives
        assert not g.function("repro.x", "fixed").clock_primitives

    def test_seeded_random_is_not_a_primitive(self):
        g = graph(("src/repro/x.py", """\
import random


def seeded(seed):
    return random.Random(seed)


def unseeded():
    return random.Random()


def draw():
    return random.random()
"""))
        assert not g.function("repro.x", "seeded").entropy_primitives
        assert not g.function("repro.x", "seeded").clock_primitives
        assert g.function("repro.x", "unseeded").entropy_primitives
        assert g.function("repro.x", "draw").clock_primitives
