"""Property-based verdict prediction: for arbitrary (small) family specs,
the executed verdict distribution matches the spec's static prediction."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.comparison import Verdict, compare_runs, summarize
from repro.analysis.environments import build_bare_metal_sandbox
from repro.analysis.agent import run_sample
from repro.malware.corpus import build_family_samples
from repro.malware.families import ARCHETYPES, FamilySpec

_DEACTIVATABLE = ("spawn_idp", "spawn_hook", "term_vm", "sleep_sbx",
                  "term_hw")
_FAILING = ("fail_peb", "fail_cpu", "fail_timing")


def _factory():
    return build_bare_metal_sandbox(aged=False)


def _run_spec(spec: FamilySpec):
    results = []
    for sample in build_family_samples(spec):
        without = run_sample(_factory(), sample, with_scarecrow=False)
        with_sc = run_sample(_factory(), sample, with_scarecrow=True)
        results.append(compare_runs(
            sample, without.trace, without.result, with_sc.trace,
            with_sc.result, without.root_pid, with_sc.root_pid))
    return summarize(results)


_spec_strategy = st.builds(
    lambda pairs: FamilySpec(
        "Prop", tuple((name, count) for name, count in pairs.items()
                      if count > 0)),
    st.fixed_dictionaries({
        name: st.integers(0, 2)
        for name in _DEACTIVATABLE + _FAILING + ("selfdel",)
    })).filter(lambda spec: 0 < spec.total <= 6)


class TestVerdictPrediction:
    @given(spec=_spec_strategy)
    @settings(max_examples=12, deadline=None)
    def test_summary_matches_spec_prediction(self, spec):
        summary = _run_spec(spec)
        assert summary.total == spec.total
        assert summary.deactivated == spec.expected_deactivated()
        assert summary.self_spawning == spec.expected_self_spawning()
        expected_inconclusive = sum(
            count for name, count in spec.archetype_counts
            if ARCHETYPES[name].inconclusive)
        expected_failures = sum(
            count for name, count in spec.archetype_counts
            if not ARCHETYPES[name].deactivatable)
        assert summary.inconclusive == expected_inconclusive
        assert summary.not_deactivated == expected_failures

    @given(spec=_spec_strategy)
    @settings(max_examples=6, deadline=None)
    def test_without_scarecrow_everything_detonates_except_selfdel(self,
                                                                   spec):
        for sample in build_family_samples(spec):
            record = run_sample(_factory(), sample, with_scarecrow=False)
            assert record.result.executed_payload, sample.md5
