"""Scarecrow reproduction (DSN 2020) on a simulated Windows substrate.

Quickstart::

    from repro.winsim import Machine
    from repro.core import ScarecrowController
    from repro.malware import build_wannacry_variant

    machine = Machine().boot()
    controller = ScarecrowController(machine)
    sample = build_wannacry_variant()
    machine.filesystem.write_file(sample.image_path, b"MZ")
    target = controller.launch(sample.image_path)
    result = sample.run(machine, target)
    assert not result.executed_payload   # kill switch answered -> deactivated

Layers (bottom-up): :mod:`repro.winsim` (simulated Windows machine),
:mod:`repro.winapi` (hookable Win32/native API), :mod:`repro.hooking`
(inline hooks, DLL injection, IPC), :mod:`repro.core` (Scarecrow),
:mod:`repro.malware` (evasive/benign corpora), :mod:`repro.fingerprint`
(Pafish, wear-and-tear), :mod:`repro.analysis` (environments, tracing,
verdicts), :mod:`repro.experiments` (per-table/figure harness).
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
