"""Byte-level function prologues — the substrate for inline hooking.

Real inline hooking (Fig. 1 of the paper) overwrites the first five bytes
of an API's prologue with ``JMP rel32``; anti-hook checks read those bytes
back and compare against the expected ``mov edi, edi`` (``8B FF``) hotpatch
prologue. We model each process's view of every API's first eight code
bytes, so hooks are installed, detected, and removed with the same byte
arithmetic the paper shows.
"""

from __future__ import annotations

from typing import Dict, List, Optional

#: The Microsoft hotpatch prologue: ``mov edi,edi; push ebp; mov ebp,esp;
#: sub esp, 0x10`` — what an *unhooked* export starts with.
STANDARD_PROLOGUE = bytes([0x8B, 0xFF, 0x55, 0x8B, 0xEC, 0x83, 0xEC, 0x10])

#: ``JMP rel32`` opcode used by inline hooks.
JMP_REL32 = 0xE9

#: How many bytes an inline hook clobbers.
PATCH_LEN = 5


def encode_jmp(from_address: int, to_address: int) -> bytes:
    """Encode ``JMP rel32`` at ``from_address`` targeting ``to_address``."""
    rel = (to_address - (from_address + PATCH_LEN)) & 0xFFFFFFFF
    return bytes([JMP_REL32]) + rel.to_bytes(4, "little")


def decode_jmp_target(code: bytes, at_address: int) -> Optional[int]:
    """Return the JMP target when ``code`` starts with a rel32 jump."""
    if len(code) < PATCH_LEN or code[0] != JMP_REL32:
        return None
    rel = int.from_bytes(code[1:PATCH_LEN], "little")
    return (at_address + PATCH_LEN + rel) & 0xFFFFFFFF


def looks_hooked(code: bytes) -> bool:
    """The paper's ``check_hook``: first two bytes not ``mov edi, edi``.

    ``return (*add == 0x8b) && (*(add+1) == 0xff) ? FALSE : TRUE;``
    """
    return not (len(code) >= 2 and code[0] == 0x8B and code[1] == 0xFF)


class CodeImage:
    """One process's view of API code bytes.

    Each export ("kernel32.dll!IsDebuggerPresent") owns a synthetic virtual
    address and an 8-byte prologue that starts out as
    :data:`STANDARD_PROLOGUE` and gets patched by hook installation.
    """

    _BASE_ADDRESS = 0x76F00000
    _STRIDE = 0x100

    def __init__(self) -> None:
        self._bytes: Dict[str, bytearray] = {}
        self._addresses: Dict[str, int] = {}

    def _ensure(self, export: str) -> bytearray:
        key = export.lower()
        if key not in self._bytes:
            self._bytes[key] = bytearray(STANDARD_PROLOGUE)
            self._addresses[key] = self._BASE_ADDRESS + \
                len(self._addresses) * self._STRIDE
        return self._bytes[key]

    def address_of(self, export: str) -> int:
        self._ensure(export)
        return self._addresses[export.lower()]

    def read(self, export: str, length: int = len(STANDARD_PROLOGUE)) -> bytes:
        """Read the first ``length`` prologue bytes (what anti-hook code sees)."""
        return bytes(self._ensure(export)[:length])

    def write(self, export: str, data: bytes) -> None:
        code = self._ensure(export)
        if len(data) > len(code):
            raise ValueError("patch longer than modelled prologue window")
        code[:len(data)] = data

    def patch_jmp(self, export: str, hook_address: int) -> bytes:
        """Install a JMP patch; returns the original bytes for the trampoline."""
        original = self.read(export, PATCH_LEN)
        self.write(export, encode_jmp(self.address_of(export), hook_address))
        return original

    def unpatch(self, export: str, original: bytes) -> None:
        self.write(export, original)

    def is_patched(self, export: str) -> bool:
        return looks_hooked(self.read(export, 2))

    def patched_exports(self) -> List[str]:
        return [name for name in self._bytes if self.is_patched(name)]
