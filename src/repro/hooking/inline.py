"""Inline hook management for one process.

A :class:`HookManager` lives inside a target process (planted there by DLL
injection). Installing a hook patches the export's prologue bytes — making
the hook *detectable*, which for Scarecrow is a feature — and registers a
handler the API dispatcher routes calls through.

Handlers receive ``(call, *args, **kwargs)`` where ``call`` is a
:class:`HookCall` giving access to the calling context and an
``original(*args, **kwargs)`` trampoline invoking the unhooked
implementation. Returning from the handler returns to the caller.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, List, Optional

from ..telemetry.metrics import TELEMETRY
from .prologue import CodeImage, PATCH_LEN

HookHandler = Callable[..., Any]

#: Where hook thunks live in the synthetic address space (inside the
#: injected DLL's image, far from the patched exports).
_HOOK_CODE_BASE = 0x10000000


@dataclasses.dataclass
class HookCall:
    """Context handed to a hook handler for one intercepted call."""

    export: str
    context: Any                     # the winapi ApiContext of the caller
    original: Callable[..., Any]     # trampoline to the real implementation

    @property
    def machine(self):
        return self.context.machine

    @property
    def process(self):
        return self.context.process


@dataclasses.dataclass
class InlineHook:
    export: str
    handler: HookHandler
    saved_prologue: bytes
    hook_address: int
    enabled: bool = True
    #: Free-form label ("scarecrow", "cuckoo-monitor", "decoy") so traces
    #: and tests can tell whose hook fired.
    owner: str = ""


class HookManager:
    """All inline hooks installed inside one process."""

    def __init__(self) -> None:
        self.code = CodeImage()
        self._hooks: Dict[str, InlineHook] = {}
        self._next_hook_address = _HOOK_CODE_BASE

    # -- install / remove ------------------------------------------------------

    def install(self, export: str, handler: HookHandler,
                owner: str = "") -> InlineHook:
        """Install an inline hook on ``export``.

        Raises ``ValueError`` when the export is already hooked — layered
        hooking of the same export is out of scope for the reproduction
        (the paper never stacks Scarecrow on top of another monitor's hook
        for the same API inside the same process).
        """
        key = export.lower()
        if key in self._hooks:
            raise ValueError(f"{export} is already hooked")
        hook_address = self._next_hook_address
        self._next_hook_address += 0x40
        saved = self.code.patch_jmp(export, hook_address)
        hook = InlineHook(export, handler, saved, hook_address, owner=owner)
        self._hooks[key] = hook
        return hook

    def remove(self, export: str) -> bool:
        hook = self._hooks.pop(export.lower(), None)
        if hook is None:
            return False
        self.code.unpatch(export, hook.saved_prologue)
        return True

    def remove_all(self, owner: Optional[str] = None) -> int:
        removed = 0
        for export in list(self._hooks):
            if owner is None or self._hooks[export].owner == owner:
                self.remove(export)
                removed += 1
        return removed

    # -- dispatch ---------------------------------------------------------------

    def active_hook(self, export: str) -> Optional[InlineHook]:
        hook = self._hooks.get(export.lower())
        return hook if hook is not None and hook.enabled else None

    def dispatch(self, export: str, context: Any,
                 implementation: Callable[..., Any],
                 args: tuple, kwargs: dict) -> Any:
        """Route one API call through its hook (if any)."""
        hook = self.active_hook(export)
        if hook is None:
            if TELEMETRY.enabled:
                TELEMETRY.count("hook.passthrough")
            return implementation(context, *args, **kwargs)

        telemetry_on = TELEMETRY.enabled
        if telemetry_on:
            TELEMETRY.count("hook.calls")
            entered_ns = context.machine.clock.now_ns

        def original(*o_args: Any, **o_kwargs: Any) -> Any:
            if TELEMETRY.enabled:
                TELEMETRY.count("hook.trampoline")
            return implementation(context, *o_args, **o_kwargs)

        call = HookCall(export=export, context=context, original=original)
        result = hook.handler(call, *args, **kwargs)
        if telemetry_on:
            TELEMETRY.observe("hook.handler_ns." + export,
                              context.machine.clock.now_ns - entered_ns)
        return result

    # -- inspection (what anti-hook code does) -------------------------------

    def read_prologue(self, export: str, length: int = PATCH_LEN) -> bytes:
        return self.code.read(export, length)

    def is_hooked(self, export: str) -> bool:
        return export.lower() in self._hooks

    def hooks(self) -> List[InlineHook]:
        return list(self._hooks.values())

    def hooked_exports(self) -> List[str]:
        return [hook.export for hook in self._hooks.values()]

    def __len__(self) -> int:
        return len(self._hooks)
