"""Inline hooking, DLL injection and IPC — the EasyHook substitute."""

from .injection import (HOOK_MANAGER_TAG, INJECTED_DLLS_TAG, hook_manager_of,
                        inject_dll, inject_into_suspended_child, is_injected)
from .inline import HookCall, HookManager, InlineHook
from .ipc import IpcChannel, IpcEndpoint, IpcMessage
from .prologue import (JMP_REL32, PATCH_LEN, STANDARD_PROLOGUE, CodeImage,
                       decode_jmp_target, encode_jmp, looks_hooked)

__all__ = [
    "CodeImage", "HOOK_MANAGER_TAG", "HookCall", "HookManager",
    "INJECTED_DLLS_TAG", "InlineHook", "IpcChannel", "IpcEndpoint",
    "IpcMessage", "JMP_REL32", "PATCH_LEN", "STANDARD_PROLOGUE",
    "decode_jmp_target", "encode_jmp", "hook_manager_of", "inject_dll",
    "inject_into_suspended_child", "is_injected", "looks_hooked",
]
