"""Inter-process communication between scarecrow.exe and scarecrow.dll.

The paper: "scarecrow.dll communicates with scarecrow.exe through
interprocess communication (IPC) channels when a deceptive execution
environment is fingerprinted by evasive malware. SCARECROW controller
dynamically updates the hooks and configurations through IPC."

We model a synchronous duplex channel: the DLL side posts fingerprint
reports; the controller side posts configuration updates. Both ends drain
their inbox explicitly, which keeps the simulation deterministic.
"""

from __future__ import annotations

import dataclasses
import itertools
from collections import deque
from typing import Any, Deque, Dict, List, Optional


@dataclasses.dataclass(frozen=True)
class IpcMessage:
    seq: int
    kind: str            # "fingerprint_report" | "config_update" | ...
    payload: Dict[str, Any]


class IpcEndpoint:
    """One side of a channel; ``peer`` is wired by :class:`IpcChannel`.

    ``max_pending`` optionally bounds this endpoint's inbox for resident
    deployments: once full, the oldest queued message is evicted to make
    room (the newest report is the one a long-lived controller acts on)
    and :attr:`dropped` counts the evictions.
    """

    def __init__(self, name: str,
                 max_pending: Optional[int] = None) -> None:
        self.name = name
        self._inbox: Deque[IpcMessage] = deque()
        self.peer: Optional["IpcEndpoint"] = None
        self._seq = itertools.count(1)
        self.max_pending = max_pending
        self.dropped = 0

    def send(self, kind: str, **payload: Any) -> IpcMessage:
        if self.peer is None:
            raise RuntimeError(f"endpoint {self.name!r} is not connected")
        message = IpcMessage(next(self._seq), kind, payload)
        self.peer._inbox.append(message)
        limit = self.peer.max_pending
        if limit is not None:
            while len(self.peer._inbox) > limit:
                self.peer._inbox.popleft()
                self.peer.dropped += 1
        return message

    def receive(self) -> Optional[IpcMessage]:
        return self._inbox.popleft() if self._inbox else None

    def drain(self, limit: Optional[int] = None) -> List[IpcMessage]:
        """Remove and return queued messages, oldest first.

        ``limit`` caps how many are taken (``None`` = everything), letting
        a resident caller drain in bounded slices.
        """
        if limit is None or limit >= len(self._inbox):
            messages = list(self._inbox)
            self._inbox.clear()
            return messages
        if limit <= 0:
            return []
        return [self._inbox.popleft() for _ in range(limit)]

    @property
    def pending(self) -> int:
        return len(self._inbox)


class IpcChannel:
    """A connected controller/DLL endpoint pair."""

    def __init__(self, controller_name: str = "scarecrow.exe",
                 dll_name: str = "scarecrow.dll") -> None:
        self.controller = IpcEndpoint(controller_name)
        self.dll = IpcEndpoint(dll_name)
        self.controller.peer = self.dll
        self.dll.peer = self.controller
