"""Inter-process communication between scarecrow.exe and scarecrow.dll.

The paper: "scarecrow.dll communicates with scarecrow.exe through
interprocess communication (IPC) channels when a deceptive execution
environment is fingerprinted by evasive malware. SCARECROW controller
dynamically updates the hooks and configurations through IPC."

We model a synchronous duplex channel: the DLL side posts fingerprint
reports; the controller side posts configuration updates. Both ends drain
their inbox explicitly, which keeps the simulation deterministic.
"""

from __future__ import annotations

import dataclasses
import itertools
from collections import deque
from typing import Any, Deque, Dict, List, Optional


@dataclasses.dataclass(frozen=True)
class IpcMessage:
    seq: int
    kind: str            # "fingerprint_report" | "config_update" | ...
    payload: Dict[str, Any]


class IpcEndpoint:
    """One side of a channel; ``peer`` is wired by :class:`IpcChannel`."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._inbox: Deque[IpcMessage] = deque()
        self.peer: Optional["IpcEndpoint"] = None
        self._seq = itertools.count(1)

    def send(self, kind: str, **payload: Any) -> IpcMessage:
        if self.peer is None:
            raise RuntimeError(f"endpoint {self.name!r} is not connected")
        message = IpcMessage(next(self._seq), kind, payload)
        self.peer._inbox.append(message)
        return message

    def receive(self) -> Optional[IpcMessage]:
        return self._inbox.popleft() if self._inbox else None

    def drain(self) -> List[IpcMessage]:
        messages = list(self._inbox)
        self._inbox.clear()
        return messages

    @property
    def pending(self) -> int:
        return len(self._inbox)


class IpcChannel:
    """A connected controller/DLL endpoint pair."""

    def __init__(self, controller_name: str = "scarecrow.exe",
                 dll_name: str = "scarecrow.dll") -> None:
        self.controller = IpcEndpoint(controller_name)
        self.dll = IpcEndpoint(dll_name)
        self.controller.peer = self.dll
        self.dll.peer = self.controller
