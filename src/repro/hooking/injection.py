"""DLL injection into simulated processes.

EasyHook-style injection: map the DLL into the target's module list, create
a :class:`~repro.hooking.inline.HookManager` in the target if it has none,
then run the DLL's entry point (which installs hooks). Child processes are
handled the way the paper describes — spawn suspended, inject, resume.
"""

from __future__ import annotations

from typing import Any, Optional, Protocol

from ..winsim.machine import Machine
from ..winsim.process import Process
from .inline import HookManager

#: Tag key under which a process stores its hook manager.
HOOK_MANAGER_TAG = "hook_manager"
#: Tag key listing names of DLLs injected (not legitimately loaded).
INJECTED_DLLS_TAG = "injected_dlls"


class InjectableDll(Protocol):
    """Anything that can be injected: a name plus an on-load entry point."""

    name: str

    def on_inject(self, machine: Machine, process: Process) -> None:
        """DllMain(PROCESS_ATTACH) equivalent — install hooks etc."""


def hook_manager_of(process: Process,
                    create: bool = False) -> Optional[HookManager]:
    """Fetch (optionally creating) the process's hook manager."""
    manager = process.tags.get(HOOK_MANAGER_TAG)
    if manager is None and create:
        manager = HookManager()
        process.tags[HOOK_MANAGER_TAG] = manager
    return manager


def inject_dll(machine: Machine, process: Process, dll: InjectableDll) -> bool:
    """Inject ``dll`` into ``process``; returns ``False`` if already there.

    The injected module appears in the target's module list (so module
    enumeration sees it — deliberately, in Scarecrow's case) and the DLL
    entry point runs inside the target.
    """
    if not process.alive:
        raise ValueError(f"cannot inject into dead process pid={process.pid}")
    injected = process.tags.setdefault(INJECTED_DLLS_TAG, [])
    if dll.name.lower() in (n.lower() for n in injected):
        return False
    hook_manager_of(process, create=True)
    process.modules.load(dll.name)
    injected.append(dll.name)
    machine.bus.emit("image", "LoadImage", process.pid, machine.clock.now_ns,
                     name=dll.name, injected=True)
    dll.on_inject(machine, process)
    return True


def inject_into_suspended_child(machine: Machine, child: Process,
                                dll: InjectableDll) -> bool:
    """The paper's child-following trick.

    "We suspend the running thread of the new process to inject
    scarecrow.dll into the address space of the new process and then
    resume it."
    """
    child.suspend()
    try:
        return inject_dll(machine, child, dll)
    finally:
        child.resume()


def is_injected(process: Process, dll_name: str) -> bool:
    injected = process.tags.get(INJECTED_DLLS_TAG, [])
    return dll_name.lower() in (n.lower() for n in injected)
