"""Hot rollout of a published deception-database version to a live fleet.

:class:`RolloutEngine` is a *version router* — the duck-typed object
:class:`~repro.fleet.service.FleetService` accepts as
``version_router`` (the fleet layer never imports this package; the
protocol is structural). It stamps a target version onto per-endpoint
batch jobs at round boundaries, which is the whole "hot" story: no
restart, no pool teardown — workers side-load the target snapshot at
init and select per batch.

Determinism is the design constraint everything here bends around:

* **Stamping** is a pure function of ``(endpoint_id, target_version,
  ramp stage, pins)`` — a crc32 percent bucket, no RNG state.
* **Ramp stages** key off the *global admission round index*, which is
  planned before routing and identical at any shard count.
* **The health gate** evaluates each shard's own seq-sorted completed
  records with a prefix walk and latches at the first offending prefix
  — the same records produce the same verdict whether the run is
  serial or pooled, fresh or resumed (checkpointed records carry their
  ``db_version`` stamps).
* **No-op detection**: a target whose content fingerprint equals the
  base database's degrades to no stamping and no side-loaded blobs —
  byte-identical output to a routerless run. The hypothesis property
  test pivots on this.

Consequence worth stating plainly: because rollback is evaluated
*per shard*, the cross-shard-count byte-identity contract the plain
fleet enjoys does **not** extend to runs with an active rollout — the
contract here is fixed shard count, any of {serial, pooled} × {fresh,
resumed}. ``docs/DBOPS.md`` spells this out.
"""

from __future__ import annotations

import dataclasses
import zlib
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..fleet.endpoint import FAILED_LABEL, EventRecord
from ..fleet.events import EVENT_MALWARE
from .versions import BASE_VERSION, VersionStore, content_fingerprint


def ramp_bucket(endpoint_id: int, version_id: int) -> int:
    """Deterministic 0-99 bucket for percent-of-endpoints ramping.

    Salted with the version id so successive rollouts ramp across
    *different* endpoint subsets — endpoint 7 is not permanently "the
    canary" for every version ever shipped.
    """
    return zlib.crc32(f"{endpoint_id}:{version_id}".encode()) % 100


@dataclasses.dataclass(frozen=True)
class RampStage:
    """From global round ``at_round`` on, ``percent``% of endpoints."""

    at_round: int
    percent: int

    def __post_init__(self) -> None:
        if self.at_round < 0:
            raise ValueError("at_round must be >= 0")
        if not 0 <= self.percent <= 100:
            raise ValueError("percent must be in [0, 100]")


#: One-stage ramp: everything from the first round (rollout-as-switch).
FULL_RAMP: Tuple[RampStage, ...] = (RampStage(at_round=0, percent=100),)


@dataclasses.dataclass(frozen=True)
class HealthGate:
    """Auto-rollback policy: regression bound on the deactivation rate.

    Once a shard has seen ``min_samples`` malware arrivals on *both* the
    target version and the base, a target deactivation rate more than
    ``max_regression`` below the base rate at any record prefix rolls
    that shard back (latched — it never re-enrolls this run).
    """

    min_samples: int = 8
    max_regression: float = 0.15

    def __post_init__(self) -> None:
        if self.min_samples < 1:
            raise ValueError("min_samples must be >= 1")
        if not 0.0 <= self.max_regression <= 1.0:
            raise ValueError("max_regression must be in [0, 1]")


class RolloutEngine:
    """Stamps a staged, health-gated version rollout onto fleet rounds.

    Satisfies the fleet's version-router protocol: ``bind_base``,
    ``version_blobs``, ``assign_round``, ``fingerprint``, ``summary``.
    ``pins`` force individual endpoints onto the target (or explicitly
    back to base) regardless of the ramp.
    """

    #: Routers may run an experiment; a rollout does not.
    control_arm = ""

    def __init__(self, target_version: int, target_blob: bytes, *,
                 stages: Sequence[RampStage] = FULL_RAMP,
                 health: Optional[HealthGate] = None,
                 pins: Optional[Mapping[int, int]] = None) -> None:
        if target_version < 1:
            raise ValueError("target_version must be a published id (>= 1)")
        stages = tuple(stages)
        if not stages:
            raise ValueError("stages must not be empty")
        rounds = [stage.at_round for stage in stages]
        if rounds != sorted(set(rounds)):
            raise ValueError("stages must have strictly increasing at_round")
        for endpoint_id, version in (pins or {}).items():
            if version not in (BASE_VERSION, target_version):
                raise ValueError(
                    f"pin for endpoint {endpoint_id} names version "
                    f"{version}; only base ({BASE_VERSION}) or the target "
                    f"({target_version}) may be pinned")
        self.target_version = target_version
        self.target_blob = target_blob
        self.target_fingerprint = content_fingerprint(target_blob)
        self.stages = stages
        self.health = health
        self.pins: Dict[int, int] = dict(pins or {})
        self._base_fingerprint = ""
        self._noop = False
        self._stamped_batches = 0
        self._rolled_back_shards: Dict[int, int] = {}

    @classmethod
    def from_store(cls, store: VersionStore, version_id: int, *,
                   stages: Sequence[RampStage] = FULL_RAMP,
                   health: Optional[HealthGate] = None,
                   pins: Optional[Mapping[int, int]] = None
                   ) -> "RolloutEngine":
        """Build a rollout for a published version (fingerprint-checked)."""
        return cls(version_id, store.load_blob(version_id),
                   stages=stages, health=health, pins=pins)

    # -- version-router protocol ---------------------------------------------

    def bind_base(self, db_blob: bytes) -> None:
        """Reset per-run state against the run's base database."""
        self._base_fingerprint = content_fingerprint(db_blob)
        self._noop = self.target_fingerprint == self._base_fingerprint
        self._stamped_batches = 0
        self._rolled_back_shards = {}

    def version_blobs(self) -> Dict[int, bytes]:
        """Snapshots workers must side-load (empty for a no-op rollout)."""
        if self._noop:
            return {}
        return {self.target_version: self.target_blob}

    def assign_round(self, jobs: Sequence[Any], global_round: int,
                     shard_records: Sequence[EventRecord],
                     shard_index: int) -> Sequence[Any]:
        """Stamp one shard round's jobs with their database version."""
        if self._noop:
            return jobs
        if self._check_rollback(shard_index, shard_records, global_round):
            return jobs
        percent = self.stage_percent(global_round)
        stamped: List[Any] = []
        for job in jobs:
            version = self.pins.get(
                job.endpoint_id,
                self.target_version
                if ramp_bucket(job.endpoint_id, self.target_version)
                < percent else BASE_VERSION)
            if version != BASE_VERSION:
                job = dataclasses.replace(job, db_version=version)
                self._stamped_batches += 1
            stamped.append(job)
        return tuple(stamped)

    def fingerprint(self) -> dict:
        """Checkpoint-fingerprint contribution (JSON-stable)."""
        return {
            "mode": "rollout",
            "target": self.target_version,
            "target_fp": self.target_fingerprint,
            "stages": [[stage.at_round, stage.percent]
                       for stage in self.stages],
            "health": None if self.health is None
            else [self.health.min_samples, self.health.max_regression],
            "pins": sorted([endpoint_id, version] for endpoint_id, version
                           in self.pins.items()),
        }

    def summary(self) -> dict:
        """Observability payload for :class:`FleetRunResult` / telemetry."""
        return {
            "mode": "rollout",
            "target_version": self.target_version,
            "noop": self._noop,
            "stamped_batches": self._stamped_batches,
            "rolled_back": bool(self._rolled_back_shards),
            "rolled_back_shards": sorted(
                [shard, at_round] for shard, at_round
                in self._rolled_back_shards.items()),
        }

    # -- ramp + health -------------------------------------------------------

    def stage_percent(self, global_round: int) -> int:
        """The ramp percentage in force at a global admission round."""
        percent = 0
        for stage in self.stages:
            if stage.at_round <= global_round:
                percent = stage.percent
        return percent

    def _check_rollback(self, shard_index: int,
                        shard_records: Sequence[EventRecord],
                        global_round: int) -> bool:
        if self.health is None:
            return False
        if shard_index in self._rolled_back_shards:
            return True
        if rollback_triggered(shard_records, self.target_version,
                              self.health):
            self._rolled_back_shards[shard_index] = global_round
            return True
        return False


def rollback_triggered(records: Sequence[EventRecord], target_version: int,
                       health: HealthGate) -> bool:
    """Prefix-latched regression check over seq-sorted shard records.

    Pure function of its inputs — the engine calls it with a shard's
    completed records, which are the same whether those records were
    just executed or replayed from a checkpoint. Walking every prefix
    (rather than only the final totals) makes the verdict independent
    of *when* the check runs: a fresh run that triggered at round R and
    a resumed run that replays past R both see the offending prefix.
    """
    target_arrivals = target_deactivated = 0
    base_arrivals = base_deactivated = 0
    for record in records:
        if record.kind != EVENT_MALWARE or record.label == FAILED_LABEL \
                or record.deactivated is None:
            continue
        if record.db_version == target_version:
            target_arrivals += 1
            target_deactivated += int(record.deactivated)
        elif record.db_version == BASE_VERSION:
            base_arrivals += 1
            base_deactivated += int(record.deactivated)
        else:
            continue
        if (target_arrivals >= health.min_samples
                and base_arrivals >= health.min_samples):
            target_rate = target_deactivated / target_arrivals
            base_rate = base_deactivated / base_arrivals
            if target_rate < base_rate - health.max_regression:
                return True
    return False
