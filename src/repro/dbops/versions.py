"""Immutable deception-database versions and the append-only store.

The paper's collection pipeline (Section II-C) is a *process*, not a
one-shot build: sandboxes drift, crawls repeat, and the deception
database grows over time. This module gives that process a durable
shape — every non-trivial crawl publishes an immutable
:class:`DatabaseVersion` (monotonic id, content fingerprint over the
pickled snapshot, parent link, structured changelog) into a
:class:`VersionStore` whose on-disk layout is append-only: blobs are
written first, the manifest last, both via temp-file + ``os.replace``,
so a crashed publish never corrupts earlier versions.

Version id ``0`` is reserved for *the unversioned base* — whatever
database a fleet run was constructed with. Published versions start at
``1``. Fingerprints use the same ``crc32:length`` idiom as
:func:`repro.parallel.shared.database_fingerprint`, so a rollout can
cheaply detect that a "new" version is content-identical to the base
and degrade to a no-op (the byte-identity lever the determinism tests
lean on).

Nothing here reads the host clock or entropy (scarelint SC001/SC002):
``created_at_ms`` is the *collector's virtual clock*, supplied by the
caller.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pickle
import zlib
from typing import Dict, List, Mapping, Optional, Tuple, Union

from ..core.collector import ResourceDiff
from ..core.database import DeceptionDatabase, FrozenDeceptionDatabase

#: The reserved id of the unversioned base database a run starts from.
BASE_VERSION = 0

#: Manifest filename inside a store root.
MANIFEST_NAME = "manifest.json"


class VersionStoreError(RuntimeError):
    """The store root is unreadable or a requested version is missing."""


class VersionIntegrityError(VersionStoreError):
    """A stored blob no longer matches its manifest fingerprint."""


def content_fingerprint(blob: bytes) -> str:
    """``crc32:length`` content fingerprint of a pickled snapshot."""
    return f"{zlib.crc32(blob) & 0xFFFFFFFF:08x}:{len(blob)}"


def changelog_from_diff(diff: ResourceDiff) -> Dict[str, int]:
    """Structured changelog counts for a published crawl diff."""
    return {
        "files": len(diff.files),
        "processes": len(diff.processes),
        "registry_keys": len(diff.registry_keys),
        "registry_values": len(diff.registry_values),
    }


@dataclasses.dataclass(frozen=True)
class DatabaseVersion:
    """One immutable published version (metadata only — blob lives apart).

    ``changelog`` is the structured count-per-resource-kind delta against
    ``parent_id`` (empty for versions published from scratch);
    ``created_at_ms`` is virtual collector time, never host time.
    """

    version_id: int
    parent_id: int
    fingerprint: str
    label: str = ""
    created_at_ms: int = 0
    changelog: Tuple[Tuple[str, int], ...] = ()

    def changelog_dict(self) -> Dict[str, int]:
        return dict(self.changelog)

    def to_dict(self) -> dict:
        return {"version": self.version_id, "parent": self.parent_id,
                "fingerprint": self.fingerprint, "label": self.label,
                "created_at_ms": self.created_at_ms,
                "changelog": dict(self.changelog)}

    @classmethod
    def from_dict(cls, data: Mapping) -> "DatabaseVersion":
        changelog = data.get("changelog") or {}
        return cls(
            version_id=int(data["version"]), parent_id=int(data["parent"]),
            fingerprint=str(data["fingerprint"]),
            label=str(data.get("label", "")),
            created_at_ms=int(data.get("created_at_ms", 0)),
            changelog=tuple(sorted(
                (str(key), int(value)) for key, value in changelog.items())))


def _blob_name(version_id: int) -> str:
    return f"v{version_id:04d}.snapshot"


class VersionStore:
    """Append-only store of published versions (on disk or in memory).

    With a ``root`` directory the store persists: ``manifest.json`` plus
    one blob file per version, each write atomic (temp + ``os.replace``)
    and ordered blob-before-manifest so the manifest never references a
    blob that is not fully on disk. With ``root=None`` everything lives
    in memory — the pipeline tests and the noop-rollout property run
    without touching the filesystem.
    """

    def __init__(self, root: Optional[str] = None) -> None:
        self.root = root
        self._versions: List[DatabaseVersion] = []
        self._blobs: Dict[int, bytes] = {}
        if root is not None:
            os.makedirs(root, exist_ok=True)
            self._load_manifest()

    # -- manifest io ---------------------------------------------------------

    def _manifest_path(self) -> str:
        assert self.root is not None
        return os.path.join(self.root, MANIFEST_NAME)

    def _load_manifest(self) -> None:
        path = self._manifest_path()
        if not os.path.exists(path):
            return
        try:
            with open(path, "r", encoding="utf-8") as stream:
                payload = json.load(stream)
        except (OSError, ValueError) as exc:
            raise VersionStoreError(
                f"unreadable version manifest {path!r}: {exc}") from exc
        self._versions = [DatabaseVersion.from_dict(entry)
                          for entry in payload.get("versions", ())]
        for index, version in enumerate(self._versions, start=1):
            if version.version_id != index:
                raise VersionStoreError(
                    f"manifest {path!r} is not a dense append-only "
                    f"sequence (entry {index} has id {version.version_id})")

    def _write_manifest(self) -> None:
        payload = {"versions": [version.to_dict()
                                for version in self._versions]}
        path = self._manifest_path()
        tmp_path = path + ".tmp"
        with open(tmp_path, "w", encoding="utf-8") as stream:
            json.dump(payload, stream, sort_keys=True,
                      separators=(",", ":"))
        os.replace(tmp_path, path)

    # -- publishing ----------------------------------------------------------

    def publish(self, database: Union[DeceptionDatabase, bytes], *,
                label: str = "", parent_id: Optional[int] = None,
                changelog: Optional[Mapping[str, int]] = None,
                created_at_ms: int = 0) -> DatabaseVersion:
        """Publish a new immutable version; returns its metadata.

        ``parent_id`` defaults to the latest published version (or the
        base, 0, for the first publish). Accepts a live database or an
        already-pickled snapshot blob.
        """
        blob = database if isinstance(database, bytes) \
            else database.snapshot_bytes()
        if parent_id is None:
            parent_id = self._versions[-1].version_id if self._versions \
                else BASE_VERSION
        version = DatabaseVersion(
            version_id=len(self._versions) + 1, parent_id=int(parent_id),
            fingerprint=content_fingerprint(blob), label=label,
            created_at_ms=int(created_at_ms),
            changelog=tuple(sorted((str(key), int(value)) for key, value
                                   in (changelog or {}).items())))
        if self.root is not None:
            blob_path = os.path.join(self.root,
                                     _blob_name(version.version_id))
            tmp_path = blob_path + ".tmp"
            with open(tmp_path, "wb") as stream:
                stream.write(blob)
            os.replace(tmp_path, blob_path)
        self._blobs[version.version_id] = blob
        self._versions.append(version)
        if self.root is not None:
            self._write_manifest()
        return version

    # -- reading -------------------------------------------------------------

    def versions(self) -> Tuple[DatabaseVersion, ...]:
        return tuple(self._versions)

    def latest(self) -> Optional[DatabaseVersion]:
        return self._versions[-1] if self._versions else None

    def get(self, version_id: int) -> DatabaseVersion:
        if not 1 <= version_id <= len(self._versions):
            raise VersionStoreError(
                f"no published version {version_id} "
                f"(store has {len(self._versions)})")
        return self._versions[version_id - 1]

    def load_blob(self, version_id: int) -> bytes:
        """The pickled snapshot for a version, fingerprint-validated."""
        version = self.get(version_id)
        blob = self._blobs.get(version_id)
        if blob is None:
            assert self.root is not None
            blob_path = os.path.join(self.root, _blob_name(version_id))
            try:
                with open(blob_path, "rb") as stream:
                    blob = stream.read()
            except OSError as exc:
                raise VersionStoreError(
                    f"missing blob for version {version_id}: {exc}") from exc
            self._blobs[version_id] = blob
        actual = content_fingerprint(blob)
        if actual != version.fingerprint:
            raise VersionIntegrityError(
                f"version {version_id} blob fingerprint {actual} does not "
                f"match manifest {version.fingerprint}")
        return blob

    def load_database(self, version_id: int) -> FrozenDeceptionDatabase:
        """Rehydrate a version as a read-only database."""
        state = pickle.loads(self.load_blob(version_id))
        return FrozenDeceptionDatabase.from_snapshot(state)
