"""Deception-database operations: versions, collection, rollout, A/B.

The paper treats the deception database as a build artifact; this
package treats it as a *production surface* with an operational
lifecycle:

* :mod:`~repro.dbops.versions` — immutable published versions
  (monotonic id, content fingerprint, parent link, changelog) in an
  append-only :class:`VersionStore` with atomic publishes.
* :mod:`~repro.dbops.pipeline` — the continuous collect → diff →
  extend → publish loop over simulated public sandboxes, on a virtual
  clock with seeded drift.
* :mod:`~repro.dbops.rollout` — hot rollout of a version to a live
  fleet via the duck-typed version-router protocol: staged percent
  ramps, health-gated auto-rollback, pinning — no restart, no
  determinism loss.
* :mod:`~repro.dbops.assignment` — deterministic A/B arms pinning
  endpoint cohorts to versions, with per-arm lift in the fleet report.

Layering: ``repro.dbops`` imports ``repro.fleet`` (types + constants);
the fleet never imports back — routers plug in structurally. The
package is a scarelint deterministic zone (no host clock/entropy).
See ``docs/DBOPS.md``.
"""

from .assignment import ABExperiment, ArmSpec, arm_bucket
from .pipeline import (DEFAULT_CYCLE_MS, DEFAULT_SANDBOX_FACTORY,
                       SKIP_EMPTY_DIFF, CollectorPipeline, CycleResult,
                       SyntheticSandboxFeed)
from .rollout import (FULL_RAMP, HealthGate, RampStage, RolloutEngine,
                      ramp_bucket, rollback_triggered)
from .versions import (BASE_VERSION, MANIFEST_NAME, DatabaseVersion,
                       VersionIntegrityError, VersionStore,
                       VersionStoreError, changelog_from_diff,
                       content_fingerprint)

__all__ = [
    "ABExperiment", "ArmSpec", "BASE_VERSION", "CollectorPipeline",
    "CycleResult", "DEFAULT_CYCLE_MS", "DEFAULT_SANDBOX_FACTORY",
    "DatabaseVersion", "FULL_RAMP", "HealthGate", "MANIFEST_NAME",
    "RampStage", "RolloutEngine", "SKIP_EMPTY_DIFF",
    "SyntheticSandboxFeed", "VersionIntegrityError", "VersionStore",
    "VersionStoreError", "arm_bucket", "changelog_from_diff",
    "content_fingerprint", "ramp_bucket", "rollback_triggered",
]
