"""Deterministic A/B assignment of database versions across a fleet.

Did the last crawl actually *help*? A rollout answers "is it safe";
an :class:`ABExperiment` answers "is it better": endpoints are split
into named arms by a salted crc32 hash — stable, stateless, no RNG —
and each arm runs a pinned database version for the whole run. The
fleet report then carries per-arm deactivation rollups with lift over
the control arm (:class:`~repro.fleet.report.ArmRollup`), so the
comparison falls out of the same records the run produces anyway.

Like :class:`~repro.dbops.rollout.RolloutEngine`, this satisfies the
fleet's structural version-router protocol and never disturbs
byte-identity: assignment is a pure function of ``(endpoint_id, arms,
salt)``, and an arm whose snapshot is content-identical to the base
database is stamped as the base (no side-loaded blob, no divergence).
"""

from __future__ import annotations

import dataclasses
import zlib
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from .versions import BASE_VERSION, VersionStore, content_fingerprint


@dataclasses.dataclass(frozen=True)
class ArmSpec:
    """One experiment arm: a name, a database version, a traffic weight."""

    name: str
    version: int = BASE_VERSION
    weight: int = 1

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("arm name must not be empty")
        if self.version < 0:
            raise ValueError("arm version must be >= 0")
        if self.weight < 1:
            raise ValueError("arm weight must be >= 1")


def arm_bucket(endpoint_id: int, salt: int, total_weight: int) -> int:
    """Deterministic weighted bucket for arm assignment."""
    return zlib.crc32(f"ab:{endpoint_id}:{salt}".encode()) % total_weight


class ABExperiment:
    """Splits endpoints across arms, each pinned to a database version.

    ``blobs`` maps every non-base version named by an arm to its pickled
    snapshot (usually via :meth:`from_store`). The control arm defaults
    to the first arm running the base version, falling back to the first
    arm; per-arm lift in the fleet report is measured against it.
    """

    def __init__(self, arms: Sequence[ArmSpec],
                 blobs: Optional[Mapping[int, bytes]] = None, *,
                 control: Optional[str] = None, salt: int = 0) -> None:
        arms = tuple(arms)
        if len(arms) < 2:
            raise ValueError("an experiment needs at least two arms")
        names = [arm.name for arm in arms]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate arm names: {names}")
        blobs = dict(blobs or {})
        for arm in arms:
            if arm.version != BASE_VERSION and arm.version not in blobs:
                raise ValueError(
                    f"arm {arm.name!r} runs version {arm.version} but no "
                    f"snapshot blob was provided for it")
        if control is None:
            control = next((arm.name for arm in arms
                            if arm.version == BASE_VERSION), arms[0].name)
        elif control not in names:
            raise ValueError(f"control arm {control!r} is not an arm")
        self.arms = arms
        self.blobs: Dict[int, bytes] = blobs
        self.control_arm = control
        self.salt = salt
        self.total_weight = sum(arm.weight for arm in arms)
        self._base_fingerprint = ""
        #: Versions whose content equals the run's base — stamped as base.
        self._noop_versions: Tuple[int, ...] = ()
        self._stamped_batches = 0

    @classmethod
    def from_store(cls, store: VersionStore, arms: Sequence[ArmSpec], *,
                   control: Optional[str] = None, salt: int = 0
                   ) -> "ABExperiment":
        """Load every non-base arm's snapshot from a version store."""
        blobs = {arm.version: store.load_blob(arm.version)
                 for arm in arms if arm.version != BASE_VERSION}
        return cls(arms, blobs, control=control, salt=salt)

    # -- assignment ----------------------------------------------------------

    def arm_of(self, endpoint_id: int) -> ArmSpec:
        """The arm an endpoint belongs to (pure, stateless)."""
        bucket = arm_bucket(endpoint_id, self.salt, self.total_weight)
        for arm in self.arms:
            if bucket < arm.weight:
                return arm
            bucket -= arm.weight
        return self.arms[-1]

    def endpoint_arms(self, count: int) -> Dict[int, str]:
        """Arm names for endpoints ``0..count-1`` (feeds the report)."""
        return {endpoint_id: self.arm_of(endpoint_id).name
                for endpoint_id in range(count)}

    # -- version-router protocol ---------------------------------------------

    def bind_base(self, db_blob: bytes) -> None:
        self._base_fingerprint = content_fingerprint(db_blob)
        self._noop_versions = tuple(sorted(
            version for version, blob in self.blobs.items()
            if content_fingerprint(blob) == self._base_fingerprint))
        self._stamped_batches = 0

    def version_blobs(self) -> Dict[int, bytes]:
        return {version: blob for version, blob in self.blobs.items()
                if version not in self._noop_versions}

    def assign_round(self, jobs: Sequence[Any], global_round: int,
                     shard_records: Sequence[Any],
                     shard_index: int) -> Sequence[Any]:
        stamped: List[Any] = []
        for job in jobs:
            version = self.arm_of(job.endpoint_id).version
            if version != BASE_VERSION \
                    and version not in self._noop_versions:
                job = dataclasses.replace(job, db_version=version)
                self._stamped_batches += 1
            stamped.append(job)
        return tuple(stamped)

    def fingerprint(self) -> dict:
        return {
            "mode": "ab",
            "arms": [[arm.name, arm.version, arm.weight]
                     for arm in self.arms],
            "control": self.control_arm,
            "salt": self.salt,
            "blob_fps": {str(version): content_fingerprint(blob)
                         for version, blob in sorted(self.blobs.items())},
        }

    def summary(self) -> dict:
        return {
            "mode": "ab",
            "arms": [arm.name for arm in self.arms],
            "control": self.control_arm,
            "target_version": max(
                (arm.version for arm in self.arms), default=BASE_VERSION),
            "stamped_batches": self._stamped_batches,
            "rolled_back": False,
        }
