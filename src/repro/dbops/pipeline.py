"""Continuous collection pipeline: crawl, diff, extend, publish.

Section II-C of the paper runs the crawler against public sandboxes
*once*; operationally the sandboxes keep drifting (new analysis tools,
new agent droppings, new registry markers), so the collector has to be
a loop. :class:`CollectorPipeline` is that loop, kept deterministic the
same way the fleet is:

* Sandboxes are simulated machines from the parallel machine-factory
  registry; drift comes from a :class:`SyntheticSandboxFeed` driven by
  the seeded :class:`~repro.fleet.events.FleetRng` — no host entropy.
* Time is a virtual collector clock (``cycle_ms`` per cycle) — no host
  clock. Published versions stamp that clock, not wall time.
* Each cycle crawls every sandbox (:func:`~repro.core.collector.
  run_crawler`), diffs against the clean baseline (:func:`~repro.core.
  collector.diff_reports`), subtracts what the working database already
  deceives, and — only when something *new* survived — extends the
  database and publishes an immutable version into the
  :class:`~repro.dbops.versions.VersionStore`. Empty diffs are skipped
  with a structured reason, never published.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

from ..core.collector import (ResourceDiff, diff_reports, extend_database,
                              run_crawler)
from ..core.database import DeceptionDatabase
from ..fleet.events import FleetRng
from ..parallel.factories import FactorySpec, resolve_machine_factory
from ..telemetry.metrics import TELEMETRY
from ..winsim.machine import Machine
from .versions import DatabaseVersion, VersionStore, changelog_from_diff

#: Cheap machine build for the collector's sandboxes — the pipeline
#: crawls inventories, it does not execute malware, so the light image
#: is plenty.
DEFAULT_SANDBOX_FACTORY = "bare-metal-light"

#: Virtual milliseconds per collection cycle (one crawl sweep).
DEFAULT_CYCLE_MS = 60_000

#: Skip reason recorded when a cycle's crawl found nothing new.
SKIP_EMPTY_DIFF = "empty-diff"


class SyntheticSandboxFeed:
    """Seeded drift generator for a set of simulated public sandboxes.

    ``drift(cycle)`` mutates every sandbox machine with a
    cycle-and-rng-derived batch of new files and registry entries —
    exactly what a live analysis sandbox accumulates between crawls.
    Roughly one cycle in four is *quiet* (no drift), so the pipeline's
    empty-diff skip path is exercised by construction.
    """

    def __init__(self, seed: int, machines: int = 2,
                 factory: FactorySpec = DEFAULT_SANDBOX_FACTORY) -> None:
        if machines < 1:
            raise ValueError("machines must be >= 1")
        build = resolve_machine_factory(factory)
        self.sandboxes: List[Tuple[str, Machine]] = [
            (f"sandbox-{index:02d}", build()) for index in range(machines)]
        self.baseline: Machine = build()
        self._rng = FleetRng(seed)

    def drift(self, cycle: int) -> int:
        """Mutate the sandboxes for one cycle; returns resources added."""
        if self._rng.next_u31() % 4 == 0:
            return 0
        added = 0
        for index, (_, machine) in enumerate(self.sandboxes):
            drops = 1 + self._rng.next_u31() % 3
            for drop in range(drops):
                tag = f"c{cycle:03d}s{index}d{drop}"
                marker = self._rng.next_u31()
                machine.filesystem.write_file(
                    f"C:\\sandbox\\artifacts\\{tag}.bin",
                    marker.to_bytes(4, "little"))
                key = f"HKLM\\SOFTWARE\\SandboxAgent\\{tag}"
                machine.registry.create_key(key)
                machine.registry.set_value(key, "marker", str(marker))
                added += 3
        return added


@dataclasses.dataclass(frozen=True)
class CycleResult:
    """Outcome of one collection cycle."""

    cycle: int
    collected_at_ms: int
    published: Optional[DatabaseVersion] = None
    skipped_reason: str = ""
    counts: Tuple[Tuple[str, int], ...] = ()

    def to_dict(self) -> dict:
        return {"cycle": self.cycle,
                "collected_at_ms": self.collected_at_ms,
                "published": None if self.published is None
                else self.published.to_dict(),
                "skipped_reason": self.skipped_reason,
                "counts": dict(self.counts)}


class CollectorPipeline:
    """The collect → diff → extend → publish loop, on a virtual clock."""

    def __init__(self, store: VersionStore, *,
                 database: Optional[DeceptionDatabase] = None,
                 seed: int = 2026, machines: int = 2,
                 factory: FactorySpec = DEFAULT_SANDBOX_FACTORY,
                 cycle_ms: int = DEFAULT_CYCLE_MS) -> None:
        if cycle_ms < 1:
            raise ValueError("cycle_ms must be >= 1")
        self.store = store
        #: The working database the pipeline grows in place. Publishes
        #: snapshot it; the caller's fleet keeps running on whatever
        #: version it already adopted until a rollout ships a new one.
        self.database = database if database is not None \
            else DeceptionDatabase()
        self.feed = SyntheticSandboxFeed(seed, machines, factory)
        self.cycle_ms = cycle_ms
        self.cycles_run = 0
        self._clock_ms = 0
        self.baseline_report = run_crawler(self.feed.baseline,
                                           "clean-baseline")

    # -- the loop ------------------------------------------------------------

    def run(self, cycles: int) -> List[CycleResult]:
        """Run ``cycles`` collection cycles; returns their results."""
        return [self.run_cycle() for _ in range(max(0, cycles))]

    def run_cycle(self) -> CycleResult:
        """One cycle: drift, crawl, diff, and publish if non-trivial."""
        cycle = self.cycles_run
        self.cycles_run += 1
        self._clock_ms += self.cycle_ms
        self.feed.drift(cycle)
        reports = [run_crawler(machine, label)
                   for label, machine in self.feed.sandboxes]
        diff = diff_reports(reports, self.baseline_report)
        fresh = self._subtract_known(diff)
        self._count("dbops.cycles")
        if not (fresh.files or fresh.processes or fresh.registry_keys
                or fresh.registry_values):
            self._count("dbops.skipped_cycles")
            return CycleResult(cycle=cycle, collected_at_ms=self._clock_ms,
                               skipped_reason=SKIP_EMPTY_DIFF)
        counts = extend_database(self.database, fresh)
        version = self.store.publish(
            self.database, label=f"cycle-{cycle:03d}",
            changelog=changelog_from_diff(fresh),
            created_at_ms=self._clock_ms)
        self._count("dbops.published")
        self._count("dbops.resources_added",
                    fresh.registry_entry_count
                    + len(fresh.files) + len(fresh.processes))
        return CycleResult(
            cycle=cycle, collected_at_ms=self._clock_ms, published=version,
            counts=tuple(sorted((str(key), int(value))
                                for key, value in counts.items())))

    # -- helpers -------------------------------------------------------------

    def _subtract_known(self, diff: ResourceDiff) -> ResourceDiff:
        """Drop resources the working database already deceives.

        The crawl diff is against the *clean baseline*; without this
        subtraction every cycle would re-collect the whole accumulated
        drift and every diff would look non-empty forever.
        """
        state = self.database.snapshot()
        known_files = {path.lower() for path in state.files}
        known_processes = {name.lower() for name in state.processes}
        known_keys = {path.lower() for path in state.registry_keys}
        known_values = {(path.lower(), name.lower())
                        for path, name in state.registry_values}
        return ResourceDiff(
            files=diff.files - known_files,
            processes=diff.processes - known_processes,
            registry_keys=diff.registry_keys - known_keys,
            registry_values=diff.registry_values - known_values)

    @staticmethod
    def _count(name: str, n: int = 1) -> None:
        if TELEMETRY.enabled and n:
            TELEMETRY.count(name, n)
