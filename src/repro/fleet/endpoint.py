"""Protected-endpoint lifecycle for the fleet service.

One :class:`ProtectedEndpoint` is the resident-deployment unit the paper
describes: a machine with a :class:`~repro.core.ScarecrowController`
attached, frozen once via :class:`~repro.analysis.deepfreeze.DeepFreeze`
so reboot/reset events thaw it back to the clean baseline. Everything
untrusted — malware arrivals *and* benign installers, per the corporate
launch-through-scarecrow policy of ``examples/protect_endpoint.py`` — is
launched through the controller.

Event latency is measured on the endpoint's **virtual clock** (the only
clock this package is allowed to read), so latency histograms merge
byte-identically across serial and pooled executions.
"""

from __future__ import annotations

import dataclasses
from typing import List, Mapping, Optional, Sequence

from ..analysis.deepfreeze import DeepFreeze
from ..core.controller import ScarecrowController
from ..core.database import DeceptionDatabase
from ..core.profiles import ScarecrowConfig
from ..malware.benign import BenignProgram
from ..malware.sample import EvasiveSample
from ..telemetry.metrics import TELEMETRY
from ..winsim.machine import Machine
from .events import EVENT_BENIGN, EVENT_MALWARE, EVENT_RESET, FleetEvent

#: Default bound on the controller's IPC report inbox. A resident endpoint
#: drains after every event, so the bound only matters when something
#: floods the channel — it caps memory, not fidelity.
DEFAULT_REPORT_BUFFER = 256

#: ``EventRecord.label`` marking an event that exhausted its retry budget
#: (an infrastructure failure, distinct from a benign install that merely
#: reported an error).
FAILED_LABEL = "(failed)"


@dataclasses.dataclass(frozen=True)
class EventRecord:
    """Outcome of one fleet event — JSON-native for checkpoints.

    ``deactivated`` is ``True``/``False`` for malware events and ``None``
    otherwise; ``ok`` means the event itself completed (a malware sample
    whose payload ran still yields ``ok=True`` — that is a verdict, not a
    failure).
    """

    seq: int
    endpoint_id: int
    kind: str
    ref: int
    label: str
    family: str = ""
    ok: bool = True
    deactivated: Optional[bool] = None
    trigger: Optional[str] = None
    spawns: int = 0
    reports: int = 0
    latency_ns: int = 0
    retries: int = 0
    error: str = ""
    #: Deception-database version this event executed against (0 = the
    #: run's base database; nonzero ids come from a ``repro.dbops``
    #: rollout or A/B assignment and are stamped by the worker).
    db_version: int = 0

    def to_dict(self) -> dict:
        return {"seq": self.seq, "endpoint": self.endpoint_id,
                "kind": self.kind, "ref": self.ref, "label": self.label,
                "family": self.family, "ok": self.ok,
                "deactivated": self.deactivated, "trigger": self.trigger,
                "spawns": self.spawns, "reports": self.reports,
                "latency_ns": self.latency_ns, "retries": self.retries,
                "error": self.error, "db_version": self.db_version}

    @classmethod
    def from_dict(cls, data: Mapping) -> "EventRecord":
        deactivated = data.get("deactivated")
        trigger = data.get("trigger")
        return cls(
            seq=int(data["seq"]), endpoint_id=int(data["endpoint"]),
            kind=str(data["kind"]), ref=int(data["ref"]),
            label=str(data["label"]), family=str(data.get("family", "")),
            ok=bool(data["ok"]),
            deactivated=None if deactivated is None else bool(deactivated),
            trigger=None if trigger is None else str(trigger),
            spawns=int(data.get("spawns", 0)),
            reports=int(data.get("reports", 0)),
            latency_ns=int(data.get("latency_ns", 0)),
            retries=int(data.get("retries", 0)),
            error=str(data.get("error", "")),
            db_version=int(data.get("db_version", 0)))


class ProtectedEndpoint:
    """Machine + controller + Deep Freeze: one fleet-protected host."""

    def __init__(self, endpoint_id: int, machine: Machine,
                 database: Optional[DeceptionDatabase] = None,
                 config: Optional[ScarecrowConfig] = None,
                 report_buffer_limit: Optional[int] = DEFAULT_REPORT_BUFFER
                 ) -> None:
        self.endpoint_id = endpoint_id
        self.machine = machine
        self.database = database
        self.config = config
        self.report_buffer_limit = report_buffer_limit
        # Freeze the pristine machine *before* the controller attaches, so
        # a reset thaws to clean state and re-attaches a fresh controller.
        self.freeze = DeepFreeze(machine)
        self.freeze.freeze()
        self.controller = self._attach()
        self.events_handled = 0
        self.reports_received = 0

    def _attach(self) -> ScarecrowController:
        controller = ScarecrowController(
            self.machine, self.database, self.config,
            report_buffer_limit=self.report_buffer_limit)
        controller.start()
        return controller

    @property
    def reset_count(self) -> int:
        return self.freeze.reset_count

    def reset(self) -> None:
        """Reboot/deep-freeze cycle: thaw the machine, re-attach."""
        self.controller.shutdown()
        self.freeze.reset()
        self.controller = self._attach()

    def close(self) -> None:
        """Detach the controller (end of this endpoint's batch)."""
        self.controller.shutdown()

    # -- event handling ------------------------------------------------------

    def handle_event(self, event: FleetEvent,
                     sample_pool: Sequence[EvasiveSample],
                     benign_pool: Sequence[BenignProgram]) -> EventRecord:
        """Process one event; raises only on unexpected simulation errors
        (the service layer owns retry/degradation policy)."""
        if event.kind == EVENT_RESET:
            record = self._handle_reset(event)
        elif event.kind == EVENT_MALWARE:
            record = self._handle_malware(event, sample_pool)
        elif event.kind == EVENT_BENIGN:
            record = self._handle_benign(event, benign_pool)
        else:
            raise ValueError(f"unknown fleet event kind {event.kind!r}")
        self.events_handled += 1
        self._count_event(record)
        return record

    def _drain(self) -> int:
        reports = self.controller.drain_reports()
        self.reports_received += len(reports)
        return len(reports)

    def _handle_reset(self, event: FleetEvent) -> EventRecord:
        # The thaw rewinds the virtual clock with everything else, so a
        # reset has no meaningful latency; it is counted, not timed.
        self._drain()
        self.reset()
        return EventRecord(seq=event.seq, endpoint_id=self.endpoint_id,
                           kind=event.kind, ref=event.ref, label="reset")

    def _handle_malware(self, event: FleetEvent,
                        sample_pool: Sequence[EvasiveSample]) -> EventRecord:
        sample = sample_pool[event.ref % len(sample_pool)]
        start_ns = self.machine.clock.now_ns
        self.machine.filesystem.write_file(
            sample.image_path, b"MZ\x90\x00" + sample.md5.encode())
        target = self.controller.launch(sample.image_path)
        result = sample.run(self.machine, target)
        latency_ns = self.machine.clock.now_ns - start_ns
        return EventRecord(
            seq=event.seq, endpoint_id=self.endpoint_id, kind=event.kind,
            ref=event.ref, label=sample.md5, family=sample.family,
            deactivated=not result.executed_payload, trigger=result.trigger,
            spawns=result.self_spawn_count, reports=self._drain(),
            latency_ns=latency_ns)

    def _handle_benign(self, event: FleetEvent,
                       benign_pool: Sequence[BenignProgram]) -> EventRecord:
        program = benign_pool[event.ref % len(benign_pool)]
        start_ns = self.machine.clock.now_ns
        target = self.controller.launch(program.image_path)
        report = program.run(self.machine, target)
        latency_ns = self.machine.clock.now_ns - start_ns
        ok = report.installed and report.error is None
        return EventRecord(
            seq=event.seq, endpoint_id=self.endpoint_id, kind=event.kind,
            ref=event.ref, label=report.program, ok=ok,
            reports=self._drain(), latency_ns=latency_ns,
            error=report.error or "")

    def _count_event(self, record: EventRecord) -> None:
        if not TELEMETRY.enabled:
            return
        TELEMETRY.count("fleet.events")
        TELEMETRY.count(f"fleet.events_{record.kind}")
        if record.reports:
            TELEMETRY.count("fleet.reports", record.reports)
        if record.kind == EVENT_RESET:
            TELEMETRY.count("fleet.resets")
            return
        TELEMETRY.observe("fleet.event_latency_ns", record.latency_ns)
        if record.kind == EVENT_MALWARE:
            TELEMETRY.count(f"fleet.family.{record.family}.malware")
            if record.deactivated:
                TELEMETRY.count("fleet.deactivated")
                TELEMETRY.count(f"fleet.family.{record.family}.deactivated")
        elif record.ok:
            TELEMETRY.count("fleet.benign_ok")


def failed_event_record(event: FleetEvent, endpoint_id: int,
                        retries: int, error: str) -> EventRecord:
    """Structured record for an event that exhausted its retry budget."""
    return EventRecord(seq=event.seq, endpoint_id=endpoint_id,
                       kind=event.kind, ref=event.ref, label=FAILED_LABEL,
                       ok=False, retries=retries, error=error)
