"""Long-lived multi-endpoint protection service ("fleet mode").

The paper deploys Scarecrow as a resident protection service on end-user
machines; this package scales that deployment story out to a *fleet*: N
protected endpoints (machine + controller + Deep Freeze), a seeded
virtual-clock event stream of benign launches, evasive-malware arrivals
and reboot resets, a bounded admission queue with backpressure, chunked
dispatch onto the parallel worker pool, and periodic checkpoints a
killed run resumes from — with the rollup byte-identical to the
uninterrupted run. See ``docs/FLEET.md``.
"""

from .endpoint import (DEFAULT_REPORT_BUFFER, FAILED_LABEL, EventRecord,
                       ProtectedEndpoint, failed_event_record)
from .events import (DEFAULT_FLEET_FAMILIES, EVENT_BENIGN, EVENT_KINDS,
                     EVENT_MALWARE, EVENT_RESET, FleetEvent, FleetRng,
                     WorkloadProfile, build_sample_pool, generate_events)
from .report import (ArmRollup, FamilyRollup, FleetReport, LatencyRollup,
                     ShardRollup, VersionRollup, build_arm_rollups,
                     build_fleet_report, finalize_report,
                     merge_shard_rollups, render_fleet_report)
from .service import (CHECKPOINT_VERSION, DEFAULT_FLEET_FACTORY,
                      DEFAULT_QUEUE_LIMIT, AdmissionPlan,
                      FleetRunResult, FleetService, execute_fleet_batch,
                      execute_fleet_chunk, initialize_fleet_worker,
                      plan_rounds)
from .shard import (BatchJob, BatchResult, FleetChunk, FleetCheckpointError,
                    FleetShard, ShardOutcome, build_shards, route_round,
                    shard_checkpoint_path, shard_of)

__all__ = [
    "AdmissionPlan", "ArmRollup", "BatchJob", "BatchResult",
    "CHECKPOINT_VERSION",
    "DEFAULT_FLEET_FACTORY", "DEFAULT_FLEET_FAMILIES",
    "DEFAULT_QUEUE_LIMIT", "DEFAULT_REPORT_BUFFER", "EVENT_BENIGN",
    "EVENT_KINDS", "EVENT_MALWARE", "EVENT_RESET", "EventRecord",
    "FAILED_LABEL", "FamilyRollup", "FleetChunk", "FleetCheckpointError",
    "FleetEvent", "FleetReport", "FleetRng", "FleetRunResult",
    "FleetService", "FleetShard", "LatencyRollup", "ProtectedEndpoint",
    "ShardOutcome", "ShardRollup", "VersionRollup", "WorkloadProfile",
    "build_arm_rollups", "build_fleet_report",
    "build_sample_pool", "build_shards", "execute_fleet_batch",
    "execute_fleet_chunk", "failed_event_record", "finalize_report",
    "generate_events", "initialize_fleet_worker", "merge_shard_rollups",
    "plan_rounds", "render_fleet_report", "route_round",
    "shard_checkpoint_path", "shard_of",
]
