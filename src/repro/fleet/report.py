"""Fleet-wide rollup: verdict counts, per-family rates, SLO latency.

:class:`FleetReport` is the *byte-identity surface* of a fleet run —
:meth:`FleetReport.to_json` must come out identical whether the run was
serial or pooled, fresh or checkpoint-resumed. It therefore contains only
values that are pure functions of the event records and the admission
plan: verdicts, per-family deactivation rates, queue statistics, and the
virtual-clock latency distribution. Execution shape (pool vs serial,
chunk counts, degradations) lives on :class:`~repro.fleet.service.
FleetRunResult` and is rendered alongside, never inside, the canonical
report.

Latency comes from the merged ``fleet.event_latency_ns`` telemetry
histogram when telemetry ran; otherwise the identical histogram is
rebuilt from the records' virtual-clock latencies (same geometric
buckets), so the SLO numbers do not depend on whether telemetry was on.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Dict, List, Optional, Tuple

from ..telemetry.snapshot import HistogramState, bucket_index
from .endpoint import EventRecord, FAILED_LABEL
from .events import EVENT_BENIGN, EVENT_MALWARE, EVENT_RESET
from .service import FleetRunResult

#: Metric name the latency rollup reads from merged telemetry.
LATENCY_METRIC = "fleet.event_latency_ns"


@dataclasses.dataclass(frozen=True)
class FamilyRollup:
    """Arrivals and deactivations for one malware family."""

    family: str
    arrivals: int
    deactivated: int

    @property
    def rate(self) -> float:
        return self.deactivated / self.arrivals if self.arrivals else 0.0

    def to_dict(self) -> dict:
        return {"family": self.family, "arrivals": self.arrivals,
                "deactivated": self.deactivated,
                "rate": round(self.rate, 4)}


@dataclasses.dataclass(frozen=True)
class LatencyRollup:
    """Virtual-clock event-latency distribution (SLO view)."""

    count: int
    total_ns: int
    p50_ns: int
    p99_ns: int

    @property
    def mean_ns(self) -> int:
        return self.total_ns // self.count if self.count else 0

    def to_dict(self) -> dict:
        return {"count": self.count, "total_ns": self.total_ns,
                "mean_ns": self.mean_ns, "p50_ns": self.p50_ns,
                "p99_ns": self.p99_ns}

    @classmethod
    def from_state(cls, state: HistogramState) -> "LatencyRollup":
        return cls(count=state.count, total_ns=state.total,
                   p50_ns=state.percentile(50), p99_ns=state.percentile(99))


@dataclasses.dataclass(frozen=True)
class FleetReport:
    """Canonical rollup of one fleet run (see module docstring)."""

    endpoints: int
    seed: int
    events_planned: int
    events_processed: int
    malware_events: int
    deactivated: int
    benign_events: int
    benign_ok: int
    resets: int
    event_failures: int
    retries: int
    reports_drained: int
    families: Tuple[FamilyRollup, ...]
    latency: LatencyRollup
    queue_depth_hwm: int
    backpressure_stalls: int
    rounds: int
    completed: bool

    @property
    def deactivation_rate(self) -> float:
        return self.deactivated / self.malware_events \
            if self.malware_events else 0.0

    def to_dict(self) -> dict:
        return {
            "endpoints": self.endpoints,
            "seed": self.seed,
            "events": {"planned": self.events_planned,
                       "processed": self.events_processed,
                       "malware": self.malware_events,
                       "benign": self.benign_events,
                       "resets": self.resets,
                       "failures": self.event_failures,
                       "retries": self.retries},
            "verdicts": {"deactivated": self.deactivated,
                         "deactivation_rate":
                             round(self.deactivation_rate, 4),
                         "benign_ok": self.benign_ok,
                         "reports_drained": self.reports_drained},
            "families": [rollup.to_dict() for rollup in self.families],
            "latency": self.latency.to_dict(),
            "admission": {"queue_depth_hwm": self.queue_depth_hwm,
                          "backpressure_stalls": self.backpressure_stalls,
                          "rounds": self.rounds},
            "completed": self.completed,
        }

    def to_json(self) -> str:
        """Canonical sorted-key JSON — the byte-identity comparison form."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))


def _latency_state(result: FleetRunResult) -> HistogramState:
    """The latency histogram: merged telemetry, or the identical rebuild.

    Rebuild uses the same geometric buckets the telemetry histogram
    records into, over exactly the records the endpoint would have
    observed (completed malware/benign events), so count, total and
    percentiles match the telemetry path bit for bit.
    """
    merged = result.merged_metrics()
    state = merged.histograms.get(LATENCY_METRIC)
    if state is not None:
        return state
    count = 0
    total = 0
    buckets: List[int] = []
    for record in result.records:
        if record.kind == EVENT_RESET or record.label == FAILED_LABEL:
            continue
        index = bucket_index(record.latency_ns)
        if index >= len(buckets):
            buckets.extend([0] * (index + 1 - len(buckets)))
        buckets[index] += 1
        count += 1
        total += record.latency_ns
    return HistogramState(count, total, tuple(buckets))


def build_fleet_report(result: FleetRunResult) -> FleetReport:
    """Fold a run result's records into the canonical rollup."""
    records: List[EventRecord] = result.records
    malware = [r for r in records
               if r.kind == EVENT_MALWARE and r.label != FAILED_LABEL]
    benign = [r for r in records
              if r.kind == EVENT_BENIGN and r.label != FAILED_LABEL]
    resets = sum(1 for r in records
                 if r.kind == EVENT_RESET and r.label != FAILED_LABEL)
    failures = sum(1 for r in records if r.label == FAILED_LABEL)
    by_family: Dict[str, List[EventRecord]] = {}
    for record in malware:
        by_family.setdefault(record.family, []).append(record)
    families = tuple(
        FamilyRollup(family=family, arrivals=len(group),
                     deactivated=sum(1 for r in group if r.deactivated))
        for family, group in sorted(by_family.items()))
    return FleetReport(
        endpoints=result.endpoints,
        seed=result.seed,
        events_planned=result.events_planned,
        events_processed=len(records),
        malware_events=len(malware),
        deactivated=sum(1 for r in malware if r.deactivated),
        benign_events=len(benign),
        benign_ok=sum(1 for r in benign if r.ok),
        resets=resets,
        event_failures=failures,
        retries=sum(r.retries for r in records),
        reports_drained=sum(r.reports for r in records),
        families=families,
        latency=LatencyRollup.from_state(_latency_state(result)),
        queue_depth_hwm=result.queue_depth_hwm,
        backpressure_stalls=result.backpressure_stalls,
        rounds=result.rounds_total,
        completed=result.completed)


def render_fleet_report(report: FleetReport,
                        result: Optional[FleetRunResult] = None) -> str:
    """Human-readable report; ``result`` adds the execution-shape lines."""
    lines = [
        "Fleet protection report",
        "=======================",
        f"endpoints: {report.endpoints}   seed: {report.seed}   "
        f"events: {report.events_processed}/{report.events_planned}"
        f"{'' if report.completed else '   (PARTIAL)'}",
        f"malware: {report.malware_events}  deactivated: "
        f"{report.deactivated}  rate: {report.deactivation_rate:.1%}",
        f"benign: {report.benign_events}  ok: {report.benign_ok}   "
        f"resets: {report.resets}   failures: {report.event_failures}"
        f"   retries: {report.retries}",
        f"reports drained: {report.reports_drained}",
        "",
        "family           arrivals  deactivated  rate",
    ]
    for rollup in report.families:
        lines.append(f"{rollup.family:<16} {rollup.arrivals:>8}  "
                     f"{rollup.deactivated:>11}  {rollup.rate:>6.1%}")
    latency = report.latency
    lines += [
        "",
        f"event latency (virtual): mean {latency.mean_ns / 1e6:.2f} ms  "
        f"p50 {latency.p50_ns / 1e6:.2f} ms  "
        f"p99 {latency.p99_ns / 1e6:.2f} ms  (n={latency.count})",
        f"admission: queue hwm {report.queue_depth_hwm}  "
        f"stalls {report.backpressure_stalls}  rounds {report.rounds}",
    ]
    if result is not None:
        mode = "process pool" if result.used_process_pool else "in-process"
        suffix = f", {result.degraded_chunks} degraded" \
            if result.degraded_chunks else ""
        lines.append(
            f"execution: {mode} ({result.chunks} chunks{suffix}); "
            f"resumed {result.resumed_rounds}/{result.rounds_total} rounds"
            if result.resumed_rounds else
            f"execution: {mode} ({result.chunks} chunks{suffix})")
    return "\n".join(lines)
