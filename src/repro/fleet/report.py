"""Fleet-wide rollup: mergeable shard partials, verdict counts, SLO latency.

:class:`FleetReport` is the *byte-identity surface* of a fleet run —
:meth:`FleetReport.to_json` must come out identical whether the run was
serial or pooled, fresh or checkpoint-resumed, and — since the sharded
refactor — however many shards executed it. It therefore contains only
values that are pure functions of the event records and the admission
plan: verdicts, per-family deactivation rates, queue statistics, and the
virtual-clock latency distribution. Execution shape (pool vs serial,
shard count, chunk counts, degradations) lives on :class:`~repro.fleet.
service.FleetRunResult` and is rendered alongside, never inside, the
canonical report.

The global rollup is produced by **merging per-shard partials**:
:class:`ShardRollup` is an associative, commutative monoid
(:meth:`ShardRollup.empty` is the identity) over the same machinery
:class:`~repro.telemetry.snapshot.MetricsSnapshot` uses — counters add,
family tables merge keywise, latency histograms add bucket-wise — so
shard count and shard completion order cannot move a byte of the global
report. The latency histogram is rebuilt from the records' virtual-clock
latencies into the exact geometric buckets the telemetry layer records
into, so the SLO numbers do not depend on whether telemetry was on
(property-tested in ``tests/fleet/test_rollup_merge.py``).
"""

from __future__ import annotations

import dataclasses
import json
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..telemetry.snapshot import HistogramState, bucket_index
from .endpoint import EventRecord, FAILED_LABEL
from .events import EVENT_BENIGN, EVENT_MALWARE, EVENT_RESET

#: Metric name the latency rollup mirrors (`repro.fleet.endpoint` records
#: the same virtual-clock values into this telemetry histogram).
LATENCY_METRIC = "fleet.event_latency_ns"


@dataclasses.dataclass(frozen=True)
class FamilyRollup:
    """Arrivals and deactivations for one malware family."""

    family: str
    arrivals: int
    deactivated: int

    @property
    def rate(self) -> float:
        return self.deactivated / self.arrivals if self.arrivals else 0.0

    def to_dict(self) -> dict:
        return {"family": self.family, "arrivals": self.arrivals,
                "deactivated": self.deactivated,
                "rate": round(self.rate, 4)}


@dataclasses.dataclass(frozen=True)
class VersionRollup:
    """Per-deception-database-version event and verdict counts.

    ``version`` is the :attr:`~repro.fleet.endpoint.EventRecord.
    db_version` stamp (0 = the run's base database); a ``repro.dbops``
    rollout or A/B experiment yields more than one row. Like
    :class:`FamilyRollup` the rows are pure functions of the records, so
    they sit on the byte-identity surface.
    """

    version: int
    events: int
    malware: int
    deactivated: int

    @property
    def rate(self) -> float:
        return self.deactivated / self.malware if self.malware else 0.0

    def to_dict(self) -> dict:
        return {"version": self.version, "events": self.events,
                "malware": self.malware, "deactivated": self.deactivated,
                "rate": round(self.rate, 4)}


@dataclasses.dataclass(frozen=True)
class ArmRollup:
    """One A/B arm's verdict counts plus its deactivation-rate lift.

    ``lift`` is this arm's malware deactivation rate minus the control
    arm's (0.0 for the control itself). Arm membership is the
    deterministic endpoint assignment handed to
    :func:`build_arm_rollups`, so the rows are identical however the run
    executed.
    """

    arm: str
    endpoints: int
    events: int
    malware: int
    deactivated: int
    control: bool
    lift: float

    @property
    def rate(self) -> float:
        return self.deactivated / self.malware if self.malware else 0.0

    def to_dict(self) -> dict:
        return {"arm": self.arm, "endpoints": self.endpoints,
                "events": self.events, "malware": self.malware,
                "deactivated": self.deactivated,
                "rate": round(self.rate, 4), "control": self.control,
                "lift": round(self.lift, 4)}


def build_arm_rollups(records: Sequence[EventRecord],
                      endpoint_arms: Dict[int, str],
                      control_arm: str) -> Tuple[ArmRollup, ...]:
    """Fold records into per-arm rollups with lift against the control.

    ``endpoint_arms`` is the full deterministic assignment (every fleet
    endpoint, not just ones with traffic), so the ``endpoints`` column
    reflects the experiment design rather than workload chance.
    """
    if not endpoint_arms:
        return ()
    sizes: Dict[str, int] = {}
    for arm in endpoint_arms.values():
        sizes[arm] = sizes.get(arm, 0) + 1
    stats: Dict[str, List[int]] = {arm: [0, 0, 0] for arm in sizes}
    for record in records:
        arm = endpoint_arms.get(record.endpoint_id)
        if arm is None or record.label == FAILED_LABEL:
            continue
        entry = stats[arm]
        entry[0] += 1
        if record.kind == EVENT_MALWARE:
            entry[1] += 1
            if record.deactivated:
                entry[2] += 1

    def rate(arm: str) -> float:
        _, malware, deactivated = stats[arm]
        return deactivated / malware if malware else 0.0

    control_rate = rate(control_arm) if control_arm in stats else 0.0
    return tuple(
        ArmRollup(arm=arm, endpoints=sizes[arm], events=stats[arm][0],
                  malware=stats[arm][1], deactivated=stats[arm][2],
                  control=arm == control_arm,
                  lift=0.0 if arm == control_arm
                  else rate(arm) - control_rate)
        for arm in sorted(sizes))


@dataclasses.dataclass(frozen=True)
class LatencyRollup:
    """Virtual-clock event-latency distribution (SLO view)."""

    count: int
    total_ns: int
    p50_ns: int
    p99_ns: int

    @property
    def mean_ns(self) -> int:
        return self.total_ns // self.count if self.count else 0

    def to_dict(self) -> dict:
        return {"count": self.count, "total_ns": self.total_ns,
                "mean_ns": self.mean_ns, "p50_ns": self.p50_ns,
                "p99_ns": self.p99_ns}

    @classmethod
    def from_state(cls, state: HistogramState) -> "LatencyRollup":
        return cls(count=state.count, total_ns=state.total,
                   p50_ns=state.percentile(50), p99_ns=state.percentile(99))


def _latency_state(records: Iterable[EventRecord]) -> HistogramState:
    """The virtual-clock latency histogram of a record set.

    Uses the same geometric buckets the ``fleet.event_latency_ns``
    telemetry histogram records into, over exactly the records the
    endpoint would have observed (completed malware/benign events), so
    count, total and percentiles match the telemetry path bit for bit —
    the rollup never needs to know whether telemetry ran.
    """
    count = 0
    total = 0
    buckets: List[int] = []
    for record in records:
        if record.kind == EVENT_RESET or record.label == FAILED_LABEL:
            continue
        index = bucket_index(record.latency_ns)
        if index >= len(buckets):
            buckets.extend([0] * (index + 1 - len(buckets)))
        buckets[index] += 1
        count += 1
        total += record.latency_ns
    return HistogramState(count, total, tuple(buckets))


# -- the mergeable shard partial ----------------------------------------------

@dataclasses.dataclass(frozen=True)
class ShardRollup:
    """One shard's contribution to the global rollup — a mergeable monoid.

    Every field is a pure function of the shard's event records, so the
    partial is identical however the shard's batches were scheduled.
    :meth:`merge` is associative and commutative with :meth:`empty` as
    the identity: counters add, the family table merges keywise (kept
    sorted by family name so the merged tuple is canonical), and the
    latency :class:`~repro.telemetry.snapshot.HistogramState` adds
    bucket-wise — exactly the operations the telemetry snapshot layer
    already proves order-independent.
    """

    events_processed: int = 0
    malware_events: int = 0
    deactivated: int = 0
    benign_events: int = 0
    benign_ok: int = 0
    resets: int = 0
    event_failures: int = 0
    retries: int = 0
    reports_drained: int = 0
    families: Tuple[FamilyRollup, ...] = ()
    versions: Tuple[VersionRollup, ...] = ()
    latency: HistogramState = HistogramState()

    @classmethod
    def empty(cls) -> "ShardRollup":
        return cls()

    @classmethod
    def from_records(cls, records: Sequence[EventRecord]) -> "ShardRollup":
        """Fold one shard's records into its partial rollup."""
        malware = [r for r in records
                   if r.kind == EVENT_MALWARE and r.label != FAILED_LABEL]
        benign = [r for r in records
                  if r.kind == EVENT_BENIGN and r.label != FAILED_LABEL]
        resets = sum(1 for r in records
                     if r.kind == EVENT_RESET and r.label != FAILED_LABEL)
        failures = sum(1 for r in records if r.label == FAILED_LABEL)
        by_family: Dict[str, List[EventRecord]] = {}
        for record in malware:
            by_family.setdefault(record.family, []).append(record)
        families = tuple(
            FamilyRollup(family=family, arrivals=len(group),
                         deactivated=sum(1 for r in group if r.deactivated))
            for family, group in sorted(by_family.items()))
        by_version: Dict[int, List[int]] = {}
        for record in records:
            if record.label == FAILED_LABEL:
                continue
            entry = by_version.setdefault(record.db_version, [0, 0, 0])
            entry[0] += 1
            if record.kind == EVENT_MALWARE:
                entry[1] += 1
                if record.deactivated:
                    entry[2] += 1
        versions = tuple(
            VersionRollup(version=version, events=events,
                          malware=malware, deactivated=deactivated)
            for version, (events, malware, deactivated)
            in sorted(by_version.items()))
        return cls(
            events_processed=len(records),
            malware_events=len(malware),
            deactivated=sum(1 for r in malware if r.deactivated),
            benign_events=len(benign),
            benign_ok=sum(1 for r in benign if r.ok),
            resets=resets,
            event_failures=failures,
            retries=sum(r.retries for r in records),
            reports_drained=sum(r.reports for r in records),
            families=families,
            versions=versions,
            latency=_latency_state(records))

    def merge(self, other: "ShardRollup") -> "ShardRollup":
        """Combine two partials; associative, commutative, identity-safe."""
        by_family: Dict[str, List[int]] = {}
        for rollup in (*self.families, *other.families):
            entry = by_family.setdefault(rollup.family, [0, 0])
            entry[0] += rollup.arrivals
            entry[1] += rollup.deactivated
        families = tuple(
            FamilyRollup(family=family, arrivals=arrivals,
                         deactivated=deactivated)
            for family, (arrivals, deactivated) in sorted(by_family.items()))
        by_version: Dict[int, List[int]] = {}
        for rollup in (*self.versions, *other.versions):
            entry = by_version.setdefault(rollup.version, [0, 0, 0])
            entry[0] += rollup.events
            entry[1] += rollup.malware
            entry[2] += rollup.deactivated
        versions = tuple(
            VersionRollup(version=version, events=events,
                          malware=malware, deactivated=deactivated)
            for version, (events, malware, deactivated)
            in sorted(by_version.items()))
        return ShardRollup(
            events_processed=self.events_processed + other.events_processed,
            malware_events=self.malware_events + other.malware_events,
            deactivated=self.deactivated + other.deactivated,
            benign_events=self.benign_events + other.benign_events,
            benign_ok=self.benign_ok + other.benign_ok,
            resets=self.resets + other.resets,
            event_failures=self.event_failures + other.event_failures,
            retries=self.retries + other.retries,
            reports_drained=self.reports_drained + other.reports_drained,
            families=families,
            versions=versions,
            latency=self.latency.merge(other.latency))

    def to_dict(self) -> dict:
        return {"events_processed": self.events_processed,
                "malware_events": self.malware_events,
                "deactivated": self.deactivated,
                "benign_events": self.benign_events,
                "benign_ok": self.benign_ok,
                "resets": self.resets,
                "event_failures": self.event_failures,
                "retries": self.retries,
                "reports_drained": self.reports_drained,
                "families": [rollup.to_dict() for rollup in self.families],
                "versions": [rollup.to_dict() for rollup in self.versions],
                "latency": self.latency.to_dict()}

    def to_json(self) -> str:
        """Canonical sorted-key JSON — the merge-identity comparison form."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))


def merge_shard_rollups(rollups: Iterable[ShardRollup]) -> ShardRollup:
    """Left-fold of shard partials (any order gives the same bytes)."""
    merged = ShardRollup.empty()
    for rollup in rollups:
        merged = merged.merge(rollup)
    return merged


@dataclasses.dataclass(frozen=True)
class FleetReport:
    """Canonical rollup of one fleet run (see module docstring)."""

    endpoints: int
    seed: int
    events_planned: int
    events_processed: int
    malware_events: int
    deactivated: int
    benign_events: int
    benign_ok: int
    resets: int
    event_failures: int
    retries: int
    reports_drained: int
    families: Tuple[FamilyRollup, ...]
    versions: Tuple[VersionRollup, ...]
    latency: LatencyRollup
    queue_depth_hwm: int
    backpressure_stalls: int
    rounds: int
    completed: bool
    #: A/B arm rollups; empty unless the run carried an experiment
    #: assignment (``repro.dbops.assignment``).
    arms: Tuple[ArmRollup, ...] = ()

    @property
    def deactivation_rate(self) -> float:
        return self.deactivated / self.malware_events \
            if self.malware_events else 0.0

    def to_dict(self) -> dict:
        payload = {
            "endpoints": self.endpoints,
            "seed": self.seed,
            "events": {"planned": self.events_planned,
                       "processed": self.events_processed,
                       "malware": self.malware_events,
                       "benign": self.benign_events,
                       "resets": self.resets,
                       "failures": self.event_failures,
                       "retries": self.retries},
            "verdicts": {"deactivated": self.deactivated,
                         "deactivation_rate":
                             round(self.deactivation_rate, 4),
                         "benign_ok": self.benign_ok,
                         "reports_drained": self.reports_drained},
            "families": [rollup.to_dict() for rollup in self.families],
            "versions": [rollup.to_dict() for rollup in self.versions],
            "latency": self.latency.to_dict(),
            "admission": {"queue_depth_hwm": self.queue_depth_hwm,
                          "backpressure_stalls": self.backpressure_stalls,
                          "rounds": self.rounds},
            "completed": self.completed,
        }
        if self.arms:
            payload["arms"] = [rollup.to_dict() for rollup in self.arms]
        return payload

    def to_json(self) -> str:
        """Canonical sorted-key JSON — the byte-identity comparison form."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))


def finalize_report(merged: ShardRollup, *, endpoints: int, seed: int,
                    events_planned: int, queue_depth_hwm: int,
                    backpressure_stalls: int, rounds: int,
                    completed: bool,
                    arms: Tuple[ArmRollup, ...] = ()) -> FleetReport:
    """Promote a merged shard partial to the canonical global report.

    The keyword fields are the *coordinator's* contribution: identity and
    the global admission statistics, which come from the shard-independent
    admission plan (``plan_rounds`` runs once, before routing) and are
    therefore the same bytes at any shard count.
    """
    return FleetReport(
        endpoints=endpoints,
        seed=seed,
        events_planned=events_planned,
        events_processed=merged.events_processed,
        malware_events=merged.malware_events,
        deactivated=merged.deactivated,
        benign_events=merged.benign_events,
        benign_ok=merged.benign_ok,
        resets=merged.resets,
        event_failures=merged.event_failures,
        retries=merged.retries,
        reports_drained=merged.reports_drained,
        families=merged.families,
        versions=merged.versions,
        latency=LatencyRollup.from_state(merged.latency),
        queue_depth_hwm=queue_depth_hwm,
        backpressure_stalls=backpressure_stalls,
        rounds=rounds,
        completed=completed,
        arms=arms)


def build_fleet_report(result) -> FleetReport:
    """Merge a run result's per-shard partials into the canonical rollup.

    ``result`` is a :class:`~repro.fleet.service.FleetRunResult`; its
    :meth:`~repro.fleet.service.FleetRunResult.shard_rollups` partials are
    merged through :func:`merge_shard_rollups` — the path the cross-shard
    byte-identity contract is proven over.
    """
    merged = merge_shard_rollups(result.shard_rollups())
    endpoint_arms = getattr(result, "endpoint_arms", None) or {}
    arms = build_arm_rollups(result.records, endpoint_arms,
                             getattr(result, "control_arm", ""))
    return finalize_report(
        merged, endpoints=result.endpoints, seed=result.seed,
        events_planned=result.events_planned,
        queue_depth_hwm=result.queue_depth_hwm,
        backpressure_stalls=result.backpressure_stalls,
        rounds=result.rounds_total, completed=result.completed,
        arms=arms)


def render_fleet_report(report: FleetReport,
                        result: Optional[object] = None) -> str:
    """Human-readable report; ``result`` adds the execution-shape lines."""
    lines = [
        "Fleet protection report",
        "=======================",
        f"endpoints: {report.endpoints}   seed: {report.seed}   "
        f"events: {report.events_processed}/{report.events_planned}"
        f"{'' if report.completed else '   (PARTIAL)'}",
        f"malware: {report.malware_events}  deactivated: "
        f"{report.deactivated}  rate: {report.deactivation_rate:.1%}",
        f"benign: {report.benign_events}  ok: {report.benign_ok}   "
        f"resets: {report.resets}   failures: {report.event_failures}"
        f"   retries: {report.retries}",
        f"reports drained: {report.reports_drained}",
        "",
        "family           arrivals  deactivated  rate",
    ]
    for rollup in report.families:
        lines.append(f"{rollup.family:<16} {rollup.arrivals:>8}  "
                     f"{rollup.deactivated:>11}  {rollup.rate:>6.1%}")
    if len(report.versions) > 1 or any(v.version for v in report.versions):
        lines += ["", f"{'db version':<16} {'events':>8}  {'malware':>8}  "
                      f"{'deactivated':>11}  rate"]
        for rollup in report.versions:
            label = f"v{rollup.version}" if rollup.version else "base"
            lines.append(f"{label:<16} {rollup.events:>8}  {rollup.malware:>8}"
                         f"  {rollup.deactivated:>11}  {rollup.rate:>6.1%}")
    if report.arms:
        lines += ["", f"{'arm':<14} {'endpoints':>9}  {'malware':>8}  "
                      f"{'deactivated':>11}    rate    lift"]
        for rollup in report.arms:
            marker = "*" if rollup.control else " "
            lines.append(
                f"{rollup.arm:<13}{marker} {rollup.endpoints:>9}  "
                f"{rollup.malware:>8}  {rollup.deactivated:>11}  "
                f"{rollup.rate:>6.1%}  {rollup.lift:>+6.1%}")
    latency = report.latency
    lines += [
        "",
        f"event latency (virtual): mean {latency.mean_ns / 1e6:.2f} ms  "
        f"p50 {latency.p50_ns / 1e6:.2f} ms  "
        f"p99 {latency.p99_ns / 1e6:.2f} ms  (n={latency.count})",
        f"admission: queue hwm {report.queue_depth_hwm}  "
        f"stalls {report.backpressure_stalls}  rounds {report.rounds}",
    ]
    if result is not None:
        mode = "process pool" if result.used_process_pool else "in-process"
        suffix = f", {result.degraded_chunks} degraded" \
            if result.degraded_chunks else ""
        shard_note = f", {result.shards} shards" if result.shards > 1 else ""
        lines.append(
            f"execution: {mode} ({result.chunks} chunks{suffix}"
            f"{shard_note}); "
            f"resumed {result.resumed_rounds}/{result.shard_rounds_total} "
            f"rounds"
            if result.resumed_rounds else
            f"execution: {mode} ({result.chunks} chunks{suffix}"
            f"{shard_note})")
    return "\n".join(lines)
