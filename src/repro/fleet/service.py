"""Fleet coordinator: global admission, sharded dispatch, checkpoint/resume.

:class:`FleetService` turns a generated event stream into rounds of
per-endpoint batches and pushes them through the same process-pool
machinery the corpus sweep uses (:func:`~repro.parallel.sweep.
make_executor` with a fleet-specific initializer). The moving parts:

* **Backpressure** — events admit into a bounded queue
  (:func:`plan_rounds`); when the queue is full the producer stalls and
  the queue drains as one *round* of per-endpoint batches. Queue
  high-water mark and stall counts surface in the run result. Admission
  is planned **globally, before routing** — a pure function of the
  stream — so the admission statistics are identical at any shard count.
* **Sharding** — each global round's batches route to N independent
  shards (:func:`~repro.fleet.shard.shard_of`:
  ``endpoint_id % shards``); shards pipeline concurrently over one
  shared executor (at most one in-flight round each, no global per-round
  barrier), each with its own checkpoint file and partial rollup. The
  global report merges per-shard :class:`~repro.fleet.report.
  ShardRollup` partials — byte-identical for any ``shards`` value.
* **Dispatch** — each shard round's batches ship in auto-sized chunks
  (:func:`~repro.parallel.sweep.auto_chunksize`); each worker stamps its
  endpoint machine from a :class:`~repro.parallel.template.
  MachineTemplate` instead of rebuilding it per batch.
* **Degradation** — a per-event retry budget inside the worker turns
  exhausted failures into structured :func:`~repro.fleet.endpoint.
  failed_event_record` entries; a chunk whose *submission* fails (poisoned
  pool, unpicklable payload) reruns in-process and the run reports
  ``used_process_pool=False`` honestly.
* **Checkpointing** — after every shard round the shard's completed
  batches are written to its JSON checkpoint (atomic ``os.replace``); a
  resumed run validates the configuration fingerprint (which includes
  the shard count), replays the stored batches, and continues —
  producing a rollup byte-identical to the uninterrupted run.

Determinism contract: same ``(seed, endpoints, events, profile)`` means
the same stream, the same rounds, and the same sorted record list —
serial or pooled, fresh or resumed, for ``shards ∈ {1, 2, 4, ...}``.
Nothing here reads the host clock or host entropy (scarelint
SC001/SC002); latency lives on the endpoints' virtual clocks and
wall-time belongs to callers (the CLI).
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import json
import os
import pickle
import zlib
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..core.database import DeceptionDatabase, FrozenDeceptionDatabase
from ..core.profiles import ScarecrowConfig
from ..malware.benign import build_cnet_corpus
from ..parallel import shared
from ..parallel.envelope import ChunkHeader, decode_chunk, encode_chunk
from ..parallel.factories import FactorySpec, resolve_machine_factory
from ..parallel.sweep import auto_chunksize, make_executor
from ..parallel.template import DeltaMode, MachineTemplate
from ..telemetry.metrics import TELEMETRY
from ..telemetry.snapshot import MetricsSnapshot
from .endpoint import EventRecord, ProtectedEndpoint, failed_event_record
from .events import FleetEvent, WorkloadProfile, build_sample_pool, \
    generate_events
from .report import ShardRollup
from .shard import (BatchJob, BatchResult, FleetChunk, FleetCheckpointError,
                    FleetShard, ShardOutcome, build_shards, shard_of)

#: Factory fleet endpoints are stamped from by default: the end-user
#: machine is the expensive, realistic build where templating pays most.
DEFAULT_FLEET_FACTORY = "end-user"

#: Default admission-queue bound (events buffered before a drain round).
DEFAULT_QUEUE_LIMIT = 32

#: Checkpoint schema version (part of the fingerprint). v2: sharded
#: layout — the fingerprint carries the shard count and each shard file
#: carries its index.
CHECKPOINT_VERSION = 2


# -- admission planning -------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class AdmissionPlan:
    """Deterministic round structure plus the admission statistics.

    ``rounds`` is a tuple of rounds; each round is a tuple of
    ``(endpoint_id, events)`` batches in first-arrival order.
    """

    rounds: Tuple[Tuple[Tuple[int, Tuple[FleetEvent, ...]], ...], ...]
    queue_depth_hwm: int
    backpressure_stalls: int

    @property
    def total_batches(self) -> int:
        return sum(len(round_batches) for round_batches in self.rounds)


def _group_round(queue: Sequence[FleetEvent]
                 ) -> Tuple[Tuple[int, Tuple[FleetEvent, ...]], ...]:
    """Group one drained queue by endpoint, first-arrival order."""
    order: List[int] = []
    grouped: Dict[int, List[FleetEvent]] = {}
    for event in queue:
        if event.endpoint_id not in grouped:
            grouped[event.endpoint_id] = []
            order.append(event.endpoint_id)
        grouped[event.endpoint_id].append(event)
    return tuple((endpoint_id, tuple(grouped[endpoint_id]))
                 for endpoint_id in order)


def plan_rounds(events: Sequence[FleetEvent],
                queue_limit: int) -> AdmissionPlan:
    """Pure admission model: bounded queue, drain-on-full.

    The producer admits events until the queue holds ``queue_limit``; the
    next arrival *stalls* (counted) and forces a drain — the queued
    events become one round, grouped per endpoint so each endpoint's
    events stay in arrival order on one machine. Being a pure function of
    the stream, the plan is identical however the rounds later execute —
    and in particular identical at any shard count, which is why the
    admission statistics sit on the byte-identity surface.
    """
    if queue_limit < 1:
        raise ValueError("queue_limit must be >= 1")
    rounds: List[Tuple[Tuple[int, Tuple[FleetEvent, ...]], ...]] = []
    queue: List[FleetEvent] = []
    hwm = 0
    stalls = 0
    for event in events:
        if len(queue) >= queue_limit:
            stalls += 1
            rounds.append(_group_round(queue))
            queue = []
        queue.append(event)
        hwm = max(hwm, len(queue))
    if queue:
        rounds.append(_group_round(queue))
    return AdmissionPlan(tuple(rounds), hwm, stalls)


#: Per-process worker fixtures, filled by :func:`initialize_fleet_worker`.
_FLEET_STATE: Dict[str, Any] = {}


def initialize_fleet_worker(factory_spec: FactorySpec,
                            db_snapshot: Any,
                            config: Optional[ScarecrowConfig],
                            telemetry: bool = False,
                            template: bool = True,
                            profile: Optional[WorkloadProfile] = None,
                            delta: DeltaMode = True,
                            shared_keys: Optional[shared.SharedKeys] = None,
                            version_blobs: Optional[Dict[int, bytes]] = None
                            ) -> None:
    """Pool/serial initializer: build this worker's private fixtures.

    Mirrors :func:`~repro.parallel.worker.initialize_worker` — database
    snapshot arrives pre-pickled so serial and pooled workers deserialize
    the exact same blob — plus the fleet extras: the sample pool and the
    benign corpus the event stream's ``ref`` fields index into, and a
    :class:`~repro.parallel.template.MachineTemplate` endpoints are
    stamped from between batches (``template=False`` rebuilds from the
    factory every batch; the benchmark's serial reference). ``delta`` is
    handed to the template; ``shared_keys`` names fork-inherited payloads
    (validated on lookup, pickled-path fallback on any miss).
    ``version_blobs`` side-loads alternate deception-database snapshots
    (pre-pickled, keyed by version id) a ``repro.dbops`` rollout may
    stamp into :attr:`~repro.fleet.shard.BatchJob.db_version`; they are
    rehydrated lazily, per worker, on first use.
    """
    TELEMETRY.enabled = bool(telemetry)
    keys = shared_keys or shared.SharedKeys()
    blob = (db_snapshot if isinstance(db_snapshot, bytes)
            else pickle.dumps(db_snapshot))
    database = shared.lookup_database(keys.database, blob)
    _FLEET_STATE["shared_database"] = database is not None
    if database is None:
        database = FrozenDeceptionDatabase.from_snapshot(pickle.loads(blob))
    factory = resolve_machine_factory(factory_spec)
    machine_template: Optional[MachineTemplate] = None
    _FLEET_STATE["shared_template"] = False
    if template:
        machine_template = shared.lookup_template(keys.template, delta)
        if machine_template is not None:
            _FLEET_STATE["shared_template"] = True
        else:
            machine_template = MachineTemplate(factory, delta=delta)
            machine_template.build()
        machine_source: Callable = machine_template.checkout
    else:
        machine_source = factory
    _FLEET_STATE["machine_source"] = machine_source
    _FLEET_STATE["template"] = machine_template
    _FLEET_STATE["database"] = database
    _FLEET_STATE["config"] = config
    _FLEET_STATE["samples"] = build_sample_pool(profile)
    _FLEET_STATE["benign"] = build_cnet_corpus()
    _FLEET_STATE["version_blobs"] = dict(version_blobs or {})
    _FLEET_STATE["version_dbs"] = {}


def _version_database(version_id: int) -> FrozenDeceptionDatabase:
    """The frozen database for a stamped version id (lazily rehydrated).

    Ids without a side-loaded blob resolve to the base database — the
    serving backend re-initializes workers with the rolled-out version
    *as* the base, so its stamps carry no separate blob.
    """
    cache: Dict[int, FrozenDeceptionDatabase] = _FLEET_STATE["version_dbs"]
    database = cache.get(version_id)
    if database is None:
        blob = _FLEET_STATE["version_blobs"].get(version_id)
        database = _FLEET_STATE["database"] if blob is None else \
            FrozenDeceptionDatabase.from_snapshot(pickle.loads(blob))
        cache[version_id] = database
    return database


def _run_event(endpoint: ProtectedEndpoint, event: FleetEvent,
               max_retries: int) -> Tuple[EventRecord, int]:
    """One event with its retry budget; failures become structured records."""
    retries = 0
    while True:
        try:
            record = endpoint.handle_event(
                event, _FLEET_STATE["samples"], _FLEET_STATE["benign"])
        except Exception as exc:
            if retries < max_retries:
                retries += 1
                if TELEMETRY.enabled:
                    TELEMETRY.count("fleet.retries")
                continue
            if TELEMETRY.enabled:
                TELEMETRY.count("fleet.event_errors")
            return failed_event_record(
                event, endpoint.endpoint_id, retries,
                f"{type(exc).__name__}: {exc}"), retries
        if retries:
            record = dataclasses.replace(record, retries=retries)
        return record, retries


def execute_fleet_batch(job: BatchJob) -> BatchResult:
    """Run one endpoint batch against this worker's fixtures."""
    if "machine_source" not in _FLEET_STATE:
        raise RuntimeError(
            "fleet worker not initialized (initialize_fleet_worker)")
    baseline = TELEMETRY.snapshot() if TELEMETRY.enabled else None
    machine = _FLEET_STATE["machine_source"]()
    database = _version_database(job.db_version) if job.db_version \
        else _FLEET_STATE["database"]
    endpoint = ProtectedEndpoint(
        job.endpoint_id, machine, database, _FLEET_STATE["config"])
    records: List[EventRecord] = []
    retries_total = 0
    try:
        for event in job.events:
            record, retries = _run_event(endpoint, event, job.max_retries)
            retries_total += retries
            records.append(record)
    finally:
        endpoint.close()
    if job.db_version:
        records = [dataclasses.replace(record, db_version=job.db_version)
                   for record in records]
    metrics = TELEMETRY.snapshot().diff_from(baseline) \
        if baseline is not None else None
    return BatchResult(index=job.index, endpoint_id=job.endpoint_id,
                       records=tuple(records), retries=retries_total,
                       resets=endpoint.reset_count, metrics=metrics)


def execute_fleet_chunk(chunk: FleetChunk) -> bytes:
    """Pool entry point: one framed binary chunk envelope.

    Each batch result is pickled in its own frame (the sweep's per-entry
    pickling discipline — byte parity with the serial path); the
    :class:`~repro.parallel.envelope.ChunkHeader` reports this worker's
    shared-state provenance and the restore work the chunk cost.
    """
    template: Optional[MachineTemplate] = _FLEET_STATE.get("template")
    def counters() -> Tuple[int, int, int]:
        if template is None:
            return (0, 0, 0)
        return (template.delta_restore_count, template.full_restore_count,
                template.dirty_subsystem_total)
    before = counters()
    results = [execute_fleet_batch(job) for job in chunk.jobs]
    after = counters()
    header = ChunkHeader(
        worker_pid=os.getpid(),
        shared_database=bool(_FLEET_STATE.get("shared_database")),
        shared_template=bool(_FLEET_STATE.get("shared_template")),
        delta_restores=after[0] - before[0],
        full_restores=after[1] - before[1],
        dirty_subsystems=after[2] - before[2])
    return encode_chunk(results, header)


# -- run result ---------------------------------------------------------------

@dataclasses.dataclass
class FleetRunResult:
    """Everything one :meth:`FleetService.run` produced.

    ``records`` is seq-sorted and identical across serial/pooled,
    fresh/resumed and any-shard-count executions; the execution-shape
    fields (``chunks``, ``degraded_chunks``, ``used_process_pool``,
    ``resumed_rounds``, ``shards``...) are honest observability and
    deliberately excluded from the byte-identity surface
    (:meth:`~repro.fleet.report.FleetReport.to_json`).
    """

    endpoints: int
    seed: int
    events_planned: int
    records: List[EventRecord]
    batches: List[BatchResult]
    queue_depth_hwm: int
    backpressure_stalls: int
    rounds_total: int
    rounds_done: int
    resumed_rounds: int
    #: Events replayed from the checkpoint rather than executed here
    #: (throughput accounting must not credit this run with them).
    events_resumed: int
    chunks: int
    degraded_chunks: int
    used_process_pool: bool
    completed: bool
    #: True only when every chunk's worker reported running on the
    #: fork-inherited database (and template) — observed provenance from
    #: :class:`~repro.parallel.envelope.ChunkHeader`, never an assumption.
    shared_state_used: bool = False
    #: Per-chunk worker provenance (execution shape, like ``chunks``).
    chunk_headers: List[ChunkHeader] = dataclasses.field(default_factory=list)
    #: Shard layout this run executed under (execution shape).
    shards: int = 1
    #: Shard-round units in the plan / done so far. For ``shards == 1``
    #: these equal ``rounds_total`` / ``rounds_done``; for more shards a
    #: global round splits into up to ``shards`` shard-rounds.
    shard_rounds_total: int = 0
    shard_rounds_done: int = 0
    #: Per-shard execution summaries (observability).
    shard_outcomes: List[ShardOutcome] = dataclasses.field(
        default_factory=list)
    #: Version-router summary (``repro.dbops`` rollout/experiment);
    #: ``None`` when the run had no router. Observability, not identity.
    dbops: Optional[Dict[str, Any]] = None
    #: Full deterministic A/B assignment (endpoint id → arm name) when
    #: the router carried an experiment; feeds the report's arm rollups.
    endpoint_arms: Dict[int, str] = dataclasses.field(default_factory=dict)
    #: Name of the experiment's control arm ("" without an experiment).
    control_arm: str = ""

    def delta_restores(self) -> int:
        """Dirty-set template restores performed across all chunks."""
        return sum(h.delta_restores for h in self.chunk_headers)

    def shard_rollups(self) -> List[ShardRollup]:
        """Per-shard partial rollups — the inputs to the global merge.

        Partitioned by the routing rule (``endpoint_id % shards``) over
        the seq-sorted records, so the partials are pure functions of the
        record set and the shard count — scheduling cannot move a byte.
        """
        groups: List[List[EventRecord]] = [[] for _ in range(self.shards)]
        for record in self.records:
            groups[shard_of(record.endpoint_id, self.shards)].append(record)
        return [ShardRollup.from_records(group) for group in groups]

    def merged_metrics(self) -> MetricsSnapshot:
        """Batch telemetry deltas folded together, plus service counters.

        Associative/commutative merge — pool and shard scheduling cannot
        change the totals. Batch deltas are empty when telemetry was
        disabled; the service-level admission and shard counters are
        always present.
        """
        merged = MetricsSnapshot.empty()
        for batch in self.batches:
            if batch.metrics is not None:
                merged = merged.merge(batch.metrics)
        service = MetricsSnapshot(
            counters={"fleet.rounds": self.rounds_done,
                      "fleet.chunks": self.chunks,
                      "fleet.degraded_chunks": self.degraded_chunks,
                      "fleet.backpressure_stalls": self.backpressure_stalls,
                      "shard.rounds": self.shard_rounds_done,
                      "shard.rounds_resumed": self.resumed_rounds},
            gauges={"fleet.queue_depth_hwm": float(self.queue_depth_hwm),
                    "fleet.endpoints": float(self.endpoints),
                    "shard.count": float(self.shards)})
        merged = merged.merge(service)
        if self.dbops is not None:
            merged = merged.merge(MetricsSnapshot(
                counters={"dbops.stamped_batches":
                          int(self.dbops.get("stamped_batches", 0)),
                          "dbops.rollbacks":
                          int(self.dbops.get("rolled_back", False))},
                gauges={"dbops.target_version":
                        float(self.dbops.get("target_version", 0))}))
        return merged


# -- the service --------------------------------------------------------------

class FleetService:
    """Long-lived multi-endpoint protection service (one run = one call).

    Construction is cheap and validation-only; :meth:`run` does the work.
    ``telemetry=None`` inherits the process-wide setting; ``shards``
    splits the fleet into independently-dispatched slices (see module
    docstring); ``stop_after_rounds`` (on :meth:`run`) is the kill
    switch the checkpoint/resume tests use to simulate an interrupted
    service.
    """

    def __init__(self, endpoints: int = 8, events: int = 64,
                 seed: int = 42, *,
                 profile: Optional[WorkloadProfile] = None,
                 machine_factory: FactorySpec = DEFAULT_FLEET_FACTORY,
                 database: Optional[DeceptionDatabase] = None,
                 config: Optional[ScarecrowConfig] = None,
                 max_workers: int = 1,
                 shards: int = 1,
                 queue_limit: int = DEFAULT_QUEUE_LIMIT,
                 chunksize: Optional[int] = None,
                 max_retries: int = 1,
                 telemetry: Optional[bool] = None,
                 template: bool = True,
                 delta: DeltaMode = True,
                 shared_state: bool = True,
                 checkpoint_path: Optional[str] = None,
                 resume: bool = False,
                 version_router: Optional[Any] = None) -> None:
        if endpoints < 1:
            raise ValueError("endpoints must be >= 1")
        if events < 0:
            raise ValueError("events must be >= 0")
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        if chunksize is not None and chunksize < 1:
            raise ValueError("chunksize must be >= 1")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if resume and not checkpoint_path:
            raise ValueError("resume=True requires a checkpoint_path")
        if delta not in (True, False, "verify"):
            raise ValueError(
                f"delta must be True, False or 'verify', got {delta!r}")
        self.endpoints = endpoints
        self.events = events
        self.seed = seed
        self.profile = profile
        self.machine_factory = machine_factory
        self.database = database
        self.config = config
        self.max_workers = max_workers
        #: Shard count is part of the checkpoint fingerprint (a shard's
        #: file only makes sense under the layout that wrote it) but NOT
        #: part of the byte-identity surface — any value yields the same
        #: global rollup.
        self.shards = shards
        self.queue_limit = queue_limit
        self.chunksize = chunksize
        self.max_retries = max_retries
        self.telemetry = telemetry
        self.template = template
        #: Template rewind strategy (execution shape — deliberately *not*
        #: part of the checkpoint fingerprint: a run interrupted under
        #: full restores may resume under delta restores, results are
        #: identical by construction).
        self.delta = delta
        #: Publish database/template to the fork-shared registry pre-pool.
        self.shared_state = shared_state
        self.checkpoint_path = checkpoint_path
        self.resume = resume
        #: Deception-DB version router (duck-typed — ``repro.dbops``
        #: supplies :class:`~repro.dbops.rollout.RolloutEngine` and
        #: :class:`~repro.dbops.assignment.ABExperiment`; the fleet layer
        #: never imports dbops). Must provide ``bind_base(blob)``,
        #: ``version_blobs()``, ``assign_round(jobs, global_round,
        #: shard_records, shard_index)``, ``fingerprint()`` and
        #: ``summary()``.
        self.version_router = version_router
        self._local_ready = False

    # -- configuration identity ----------------------------------------------

    def _fingerprint(self, db_blob: bytes) -> dict:
        """JSON-normalized identity a checkpoint must match to resume.

        Everything that changes the event stream, its outcomes or the
        checkpoint layout is in here; execution shape (workers,
        chunksize, templating) is not — those are free to differ between
        the interrupted run and the resume because the results are
        identical by construction. ``shards`` IS included: it determines
        which endpoints a shard's checkpoint file covers.
        """
        spec = self.machine_factory
        factory_name = spec if isinstance(spec, str) else \
            getattr(spec, "__qualname__", repr(spec))
        profile = self.profile or WorkloadProfile()
        raw = {
            "version": CHECKPOINT_VERSION,
            "seed": self.seed,
            "endpoints": self.endpoints,
            "events": self.events,
            "queue_limit": self.queue_limit,
            "shards": self.shards,
            "factory": factory_name,
            "db_crc": zlib.crc32(db_blob),
            "config": None if self.config is None
            else dataclasses.asdict(self.config),
            "profile": profile.fingerprint(),
        }
        if self.version_router is not None:
            # Version stamps land in checkpointed records, so a resume
            # must replay under the same rollout/experiment configuration
            # — routerless checkpoints keep their pre-dbops fingerprint.
            raw["dbops"] = self.version_router.fingerprint()
        return json.loads(json.dumps(raw, sort_keys=True))

    # -- execution -------------------------------------------------------------

    def run(self, stop_after_rounds: Optional[int] = None) -> FleetRunResult:
        """Execute (or resume) the fleet run.

        ``stop_after_rounds`` bounds how many *new* shard-rounds this
        call starts before returning a partial (``completed=False``)
        result — combined with ``checkpoint_path`` it simulates a
        service killed mid-run; a later ``resume=True`` run picks up
        where it stopped. (For ``shards == 1`` a shard-round is exactly
        a global admission round — the pre-shard semantics.)
        """
        stream = generate_events(self.seed, self.endpoints, self.events,
                                 self.profile)
        plan = plan_rounds(stream, self.queue_limit)
        jobs_per_round = self._build_jobs(plan)

        database = self.database if self.database is not None \
            else DeceptionDatabase()
        db_blob = database.snapshot_bytes()
        router = self.version_router
        if router is not None:
            # Binding resets per-run router statistics and lets it detect
            # a no-op rollout (target content == base content) so the run
            # stays byte-identical to a routerless one.
            router.bind_base(db_blob)
        fingerprint = self._fingerprint(db_blob)

        shards = build_shards(jobs_per_round, self.shards,
                              self.checkpoint_path, fingerprint)
        for shard in shards:
            shard.load(self.resume)

        telemetry_on = TELEMETRY.enabled if self.telemetry is None \
            else bool(self.telemetry)
        shared_keys = (self._publish_shared(db_blob) if self.shared_state
                       else shared.SharedKeys())
        version_blobs = dict(router.version_blobs()) \
            if router is not None else None
        initargs = (self.machine_factory, db_blob, self.config,
                    telemetry_on, self.template, self.profile,
                    self.delta, shared_keys, version_blobs)

        degraded = 0
        chunks_run = 0
        headers: List[ChunkHeader] = []
        used_pool = False
        self._local_ready = False
        prior_enabled = TELEMETRY.enabled
        try:
            if any(shard.has_pending() for shard in shards):
                executor, used_pool = make_executor(
                    initargs, self.max_workers, initialize_fleet_worker)
                with executor:
                    chunks_run, degraded, headers = self._dispatch(
                        executor, shards, initargs, stop_after_rounds)
        finally:
            TELEMETRY.enabled = prior_enabled

        batches = sorted((batch for shard in shards
                          for batch in shard.completed),
                         key=lambda batch: batch.index)
        records = sorted(
            (record for batch in batches for record in batch.records),
            key=lambda record: record.seq)
        outcomes = [shard.outcome() for shard in shards]
        rounds_done = self._global_rounds_done(jobs_per_round, shards)
        resumed = sum(shard.resumed_rounds for shard in shards)
        new_rounds = sum(shard.rounds_done - shard.resumed_rounds
                         for shard in shards)
        return FleetRunResult(
            endpoints=self.endpoints, seed=self.seed,
            events_planned=len(stream), records=records,
            batches=batches,
            queue_depth_hwm=plan.queue_depth_hwm,
            backpressure_stalls=plan.backpressure_stalls,
            rounds_total=len(jobs_per_round), rounds_done=rounds_done,
            resumed_rounds=resumed,
            events_resumed=sum(shard.events_resumed for shard in shards),
            chunks=chunks_run,
            degraded_chunks=degraded,
            used_process_pool=used_pool and degraded == 0 and new_rounds > 0,
            completed=all(not shard.has_pending() for shard in shards),
            shared_state_used=bool(headers) and all(
                h.shared_database and (h.shared_template or not self.template)
                for h in headers),
            chunk_headers=headers,
            shards=self.shards,
            shard_rounds_total=sum(len(shard.rounds) for shard in shards),
            shard_rounds_done=sum(shard.rounds_done for shard in shards),
            shard_outcomes=outcomes,
            dbops=None if router is None else dict(router.summary()),
            endpoint_arms=self._endpoint_arms(router),
            control_arm=getattr(router, "control_arm", "") or "")

    def _endpoint_arms(self, router: Optional[Any]) -> Dict[int, str]:
        """The router's full A/B assignment (empty without an experiment)."""
        arm_map = getattr(router, "endpoint_arms", None)
        if arm_map is None:
            return {}
        return dict(arm_map(self.endpoints))

    def _build_jobs(self, plan: AdmissionPlan) -> List[List[BatchJob]]:
        """Rounds of batch jobs with globally-unique submission indices."""
        jobs_per_round: List[List[BatchJob]] = []
        index = 0
        for round_batches in plan.rounds:
            round_jobs: List[BatchJob] = []
            for endpoint_id, batch_events in round_batches:
                round_jobs.append(BatchJob(index, endpoint_id, batch_events,
                                           self.max_retries))
                index += 1
            jobs_per_round.append(round_jobs)
        return jobs_per_round

    @staticmethod
    def _global_rounds_done(jobs_per_round: Sequence[Sequence[BatchJob]],
                            shards: Sequence[FleetShard]) -> int:
        """Global admission rounds fully covered by every owning shard."""
        done_sets = [set(shard.done_global_rounds()) for shard in shards]
        owners: Dict[int, List[int]] = {}
        for shard in shards:
            for global_index, _ in shard.rounds:
                owners.setdefault(global_index, []).append(shard.index)
        count = 0
        for global_index in range(len(jobs_per_round)):
            owning = owners.get(global_index, [])
            if all(global_index in done_sets[index] for index in owning):
                count += 1
        return count

    def _publish_shared(self, db_blob: bytes) -> shared.SharedKeys:
        """Pre-fork: rehydrate the database and build the template once,
        so pool workers inherit both copy-on-write instead of rebuilding.
        Advisory only — workers validate and fall back on any miss."""
        db_key = shared.publish_database(
            db_blob,
            FrozenDeceptionDatabase.from_snapshot(pickle.loads(db_blob)))
        template_key: Optional[str] = None
        if self.template:
            factory = resolve_machine_factory(self.machine_factory)
            factory_name = (self.machine_factory
                            if isinstance(self.machine_factory, str)
                            else getattr(factory, "__qualname__", "factory"))
            template_key = shared.template_key(factory_name, id(factory),
                                               self.delta)
            template = MachineTemplate(factory, delta=self.delta)
            template.build()
            shared.publish_template(template_key, template)
        return shared.SharedKeys(database=db_key, template=template_key)

    # -- sharded dispatch ------------------------------------------------------

    def _dispatch(self, executor: Any, shards: Sequence[FleetShard],
                  initargs: tuple, stop_after_rounds: Optional[int]
                  ) -> Tuple[int, int, List[ChunkHeader]]:
        """Pipelined shard dispatch over one shared executor.

        Each shard keeps at most one round in flight; a shard's next
        round submits the moment its previous round lands, independent
        of the other shards' progress — the global per-round barrier the
        monolithic service had is gone. ``stop_after_rounds`` caps how
        many shard-rounds *start*; in-flight rounds always finish (and
        checkpoint) before returning.
        """
        started = 0
        chunks_run = 0
        degraded = 0
        headers: List[ChunkHeader] = []
        inflight: Dict[int, Tuple[List[FleetChunk], List[Any]]] = {}
        while True:
            for shard in shards:
                if shard.index in inflight or not shard.has_pending():
                    continue
                if stop_after_rounds is not None and \
                        started >= stop_after_rounds:
                    continue
                round_jobs: Sequence[BatchJob] = shard.peek_round()
                if self.version_router is not None:
                    # Stamped at dispatch time, from state that is a pure
                    # function of the shard's *completed* records: each
                    # shard keeps one round in flight and its rounds land
                    # in order, so serial/pooled and fresh/resumed runs
                    # see identical histories here.
                    round_jobs = self.version_router.assign_round(
                        round_jobs, shard.peek_global_index(),
                        shard.records(), shard.index)
                chunks = self._make_chunks(round_jobs)
                futures = [executor.submit(execute_fleet_chunk, chunk)
                           for chunk in chunks]
                inflight[shard.index] = (chunks, futures)
                started += 1
            if not inflight:
                break
            _wait_any([future for _, futures in inflight.values()
                       for future in futures])
            for index in sorted(inflight):
                chunks, futures = inflight[index]
                if not all(_future_done(future) for future in futures):
                    continue
                del inflight[index]
                results, round_degraded, round_headers = \
                    self._collect_round(chunks, futures, initargs)
                chunks_run += len(chunks)
                degraded += round_degraded
                headers.extend(round_headers)
                shards[index].finish_round(results, len(chunks),
                                           round_degraded)
        return chunks_run, degraded, headers

    def _make_chunks(self, round_jobs: Sequence[BatchJob]
                     ) -> List[FleetChunk]:
        size = self.chunksize or auto_chunksize(len(round_jobs),
                                                self.max_workers)
        return [FleetChunk(tuple(round_jobs[i:i + size]))
                for i in range(0, len(round_jobs), size)]

    def _collect_round(self, chunks: Sequence[FleetChunk],
                       futures: Sequence[Any], initargs: tuple
                       ) -> Tuple[List[BatchResult], int, List[ChunkHeader]]:
        """Decode one shard round's finished chunks, degrading on failure."""
        results: List[BatchResult] = []
        degraded = 0
        headers: List[ChunkHeader] = []
        for chunk, future in zip(chunks, futures):
            try:
                blob = future.result()
                batches, header = decode_chunk(blob)
            except Exception:
                # Graceful degradation: a poisoned worker, an unpicklable
                # surprise *or a corrupt chunk envelope* costs us the pool
                # for this chunk, not the run.
                batches, header = decode_chunk(
                    self._run_chunk_in_process(chunk, initargs))
                degraded += 1
            results.extend(batches)
            headers.append(header)
        return results, degraded, headers

    def _run_chunk_in_process(self, chunk: FleetChunk,
                              initargs: tuple) -> bytes:
        """Rerun a failed chunk in the parent, via the same code path.

        The chunk round-trips through pickle first — exactly what the
        pool submission would have done — so degraded results stay
        byte-identical to what a healthy worker would have returned.
        """
        if not self._local_ready:
            initialize_fleet_worker(*initargs)
            self._local_ready = True
        return execute_fleet_chunk(pickle.loads(pickle.dumps(chunk)))


def _future_done(future: Any) -> bool:
    """``future.done()``, treating futures without ``done`` as done.

    Fault-injected or degenerate executors may hand back bare objects
    whose only contract is ``result()``; counting them done routes them
    straight to collection, where ``result()`` raising triggers the
    in-process degradation path.
    """
    probe = getattr(future, "done", None)
    return True if probe is None else bool(probe())


def _wait_any(futures: Sequence[Any]) -> None:
    """Block until at least one future is done (serial futures already are).

    Serial execution returns :class:`~repro.parallel.executor.
    ImmediateFuture` objects (``done()`` is always True), so this only
    actually blocks on real pool futures — and only when *none* are done
    yet, so a mixed set can never deadlock or spin.
    """
    remaining = [future for future in futures if not _future_done(future)]
    if not remaining or len(remaining) < len(futures):
        return
    concurrent.futures.wait(remaining,
                            return_when=concurrent.futures.FIRST_COMPLETED)
