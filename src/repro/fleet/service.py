"""Fleet scheduler: admission queue, chunked dispatch, checkpoint/resume.

:class:`FleetService` turns a generated event stream into rounds of
per-endpoint batches and pushes them through the same process-pool
machinery the corpus sweep uses (:func:`~repro.parallel.sweep.
make_executor` with a fleet-specific initializer). The moving parts:

* **Backpressure** — events admit into a bounded queue
  (:func:`plan_rounds`); when the queue is full the producer stalls and
  the queue drains as one *round* of per-endpoint batches. Queue
  high-water mark and stall counts surface in the run result.
* **Dispatch** — each round's batches ship in auto-sized chunks
  (:func:`~repro.parallel.sweep.auto_chunksize`); each worker stamps its
  endpoint machine from a :class:`~repro.parallel.template.
  MachineTemplate` instead of rebuilding it per batch.
* **Degradation** — a per-event retry budget inside the worker turns
  exhausted failures into structured :func:`~repro.fleet.endpoint.
  failed_event_record` entries; a chunk whose *submission* fails (poisoned
  pool, unpicklable payload) reruns in-process and the run reports
  ``used_process_pool=False`` honestly.
* **Checkpointing** — after every round the completed batches are written
  to a JSON checkpoint (atomic ``os.replace``); a resumed run validates
  the configuration fingerprint, replays the stored batches, and
  continues — producing a rollup byte-identical to the uninterrupted run.

Determinism contract: same ``(seed, endpoints, events, profile)`` means
the same stream, the same rounds, and the same sorted record list —
serial or pooled, fresh or resumed. Nothing here reads the host clock or
host entropy (scarelint SC001/SC002); latency lives on the endpoints'
virtual clocks and wall-time belongs to callers (the CLI).
"""

from __future__ import annotations

import dataclasses
import json
import os
import pickle
import zlib
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, \
    Tuple

from ..core.database import DeceptionDatabase, FrozenDeceptionDatabase
from ..core.profiles import ScarecrowConfig
from ..malware.benign import build_cnet_corpus
from ..parallel import shared
from ..parallel.envelope import ChunkHeader, decode_chunk, encode_chunk
from ..parallel.factories import FactorySpec, resolve_machine_factory
from ..parallel.sweep import auto_chunksize, make_executor
from ..parallel.template import DeltaMode, MachineTemplate
from ..telemetry.metrics import TELEMETRY
from ..telemetry.snapshot import MetricsSnapshot
from .endpoint import EventRecord, ProtectedEndpoint, failed_event_record
from .events import FleetEvent, WorkloadProfile, build_sample_pool, \
    generate_events

#: Factory fleet endpoints are stamped from by default: the end-user
#: machine is the expensive, realistic build where templating pays most.
DEFAULT_FLEET_FACTORY = "end-user"

#: Default admission-queue bound (events buffered before a drain round).
DEFAULT_QUEUE_LIMIT = 32

#: Checkpoint schema version (part of the fingerprint).
CHECKPOINT_VERSION = 1


class FleetCheckpointError(RuntimeError):
    """A checkpoint file is unreadable or belongs to a different run."""


# -- admission planning -------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class AdmissionPlan:
    """Deterministic round structure plus the admission statistics.

    ``rounds`` is a tuple of rounds; each round is a tuple of
    ``(endpoint_id, events)`` batches in first-arrival order.
    """

    rounds: Tuple[Tuple[Tuple[int, Tuple[FleetEvent, ...]], ...], ...]
    queue_depth_hwm: int
    backpressure_stalls: int

    @property
    def total_batches(self) -> int:
        return sum(len(round_batches) for round_batches in self.rounds)


def _group_round(queue: Sequence[FleetEvent]
                 ) -> Tuple[Tuple[int, Tuple[FleetEvent, ...]], ...]:
    """Group one drained queue by endpoint, first-arrival order."""
    order: List[int] = []
    grouped: Dict[int, List[FleetEvent]] = {}
    for event in queue:
        if event.endpoint_id not in grouped:
            grouped[event.endpoint_id] = []
            order.append(event.endpoint_id)
        grouped[event.endpoint_id].append(event)
    return tuple((endpoint_id, tuple(grouped[endpoint_id]))
                 for endpoint_id in order)


def plan_rounds(events: Sequence[FleetEvent],
                queue_limit: int) -> AdmissionPlan:
    """Pure admission model: bounded queue, drain-on-full.

    The producer admits events until the queue holds ``queue_limit``; the
    next arrival *stalls* (counted) and forces a drain — the queued
    events become one round, grouped per endpoint so each endpoint's
    events stay in arrival order on one machine. Being a pure function of
    the stream, the plan is identical however the rounds later execute.
    """
    if queue_limit < 1:
        raise ValueError("queue_limit must be >= 1")
    rounds: List[Tuple[Tuple[int, Tuple[FleetEvent, ...]], ...]] = []
    queue: List[FleetEvent] = []
    hwm = 0
    stalls = 0
    for event in events:
        if len(queue) >= queue_limit:
            stalls += 1
            rounds.append(_group_round(queue))
            queue = []
        queue.append(event)
        hwm = max(hwm, len(queue))
    if queue:
        rounds.append(_group_round(queue))
    return AdmissionPlan(tuple(rounds), hwm, stalls)


# -- worker protocol ----------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class BatchJob:
    """One endpoint's slice of one round (the unit of retry accounting)."""

    index: int
    endpoint_id: int
    events: Tuple[FleetEvent, ...]
    max_retries: int = 1


@dataclasses.dataclass(frozen=True)
class FleetChunk:
    """A pickled-once group of batch jobs (the unit of pool submission)."""

    jobs: Tuple[BatchJob, ...]


@dataclasses.dataclass(frozen=True)
class BatchResult:
    """Worker output for one batch — JSON-native for checkpoints."""

    index: int
    endpoint_id: int
    records: Tuple[EventRecord, ...]
    retries: int = 0
    resets: int = 0
    metrics: Optional[MetricsSnapshot] = None

    def to_dict(self) -> dict:
        return {"index": self.index, "endpoint": self.endpoint_id,
                "records": [record.to_dict() for record in self.records],
                "retries": self.retries, "resets": self.resets,
                "metrics": None if self.metrics is None
                else self.metrics.to_dict()}

    @classmethod
    def from_dict(cls, data: Mapping) -> "BatchResult":
        metrics = data.get("metrics")
        return cls(
            index=int(data["index"]), endpoint_id=int(data["endpoint"]),
            records=tuple(EventRecord.from_dict(r)
                          for r in data.get("records", ())),
            retries=int(data.get("retries", 0)),
            resets=int(data.get("resets", 0)),
            metrics=None if metrics is None
            else MetricsSnapshot.from_dict(metrics))


#: Per-process worker fixtures, filled by :func:`initialize_fleet_worker`.
_FLEET_STATE: Dict[str, Any] = {}


def initialize_fleet_worker(factory_spec: FactorySpec,
                            db_snapshot: Any,
                            config: Optional[ScarecrowConfig],
                            telemetry: bool = False,
                            template: bool = True,
                            profile: Optional[WorkloadProfile] = None,
                            delta: DeltaMode = True,
                            shared_keys: Optional[shared.SharedKeys] = None
                            ) -> None:
    """Pool/serial initializer: build this worker's private fixtures.

    Mirrors :func:`~repro.parallel.worker.initialize_worker` — database
    snapshot arrives pre-pickled so serial and pooled workers deserialize
    the exact same blob — plus the fleet extras: the sample pool and the
    benign corpus the event stream's ``ref`` fields index into, and a
    :class:`~repro.parallel.template.MachineTemplate` endpoints are
    stamped from between batches (``template=False`` rebuilds from the
    factory every batch; the benchmark's serial reference). ``delta`` is
    handed to the template; ``shared_keys`` names fork-inherited payloads
    (validated on lookup, pickled-path fallback on any miss).
    """
    TELEMETRY.enabled = bool(telemetry)
    keys = shared_keys or shared.SharedKeys()
    blob = (db_snapshot if isinstance(db_snapshot, bytes)
            else pickle.dumps(db_snapshot))
    database = shared.lookup_database(keys.database, blob)
    _FLEET_STATE["shared_database"] = database is not None
    if database is None:
        database = FrozenDeceptionDatabase.from_snapshot(pickle.loads(blob))
    factory = resolve_machine_factory(factory_spec)
    machine_template: Optional[MachineTemplate] = None
    _FLEET_STATE["shared_template"] = False
    if template:
        machine_template = shared.lookup_template(keys.template, delta)
        if machine_template is not None:
            _FLEET_STATE["shared_template"] = True
        else:
            machine_template = MachineTemplate(factory, delta=delta)
            machine_template.build()
        machine_source: Callable = machine_template.checkout
    else:
        machine_source = factory
    _FLEET_STATE["machine_source"] = machine_source
    _FLEET_STATE["template"] = machine_template
    _FLEET_STATE["database"] = database
    _FLEET_STATE["config"] = config
    _FLEET_STATE["samples"] = build_sample_pool(profile)
    _FLEET_STATE["benign"] = build_cnet_corpus()


def _run_event(endpoint: ProtectedEndpoint, event: FleetEvent,
               max_retries: int) -> Tuple[EventRecord, int]:
    """One event with its retry budget; failures become structured records."""
    retries = 0
    while True:
        try:
            record = endpoint.handle_event(
                event, _FLEET_STATE["samples"], _FLEET_STATE["benign"])
        except Exception as exc:
            if retries < max_retries:
                retries += 1
                if TELEMETRY.enabled:
                    TELEMETRY.count("fleet.retries")
                continue
            if TELEMETRY.enabled:
                TELEMETRY.count("fleet.event_errors")
            return failed_event_record(
                event, endpoint.endpoint_id, retries,
                f"{type(exc).__name__}: {exc}"), retries
        if retries:
            record = dataclasses.replace(record, retries=retries)
        return record, retries


def execute_fleet_batch(job: BatchJob) -> BatchResult:
    """Run one endpoint batch against this worker's fixtures."""
    if "machine_source" not in _FLEET_STATE:
        raise RuntimeError(
            "fleet worker not initialized (initialize_fleet_worker)")
    baseline = TELEMETRY.snapshot() if TELEMETRY.enabled else None
    machine = _FLEET_STATE["machine_source"]()
    endpoint = ProtectedEndpoint(
        job.endpoint_id, machine, _FLEET_STATE["database"],
        _FLEET_STATE["config"])
    records: List[EventRecord] = []
    retries_total = 0
    try:
        for event in job.events:
            record, retries = _run_event(endpoint, event, job.max_retries)
            retries_total += retries
            records.append(record)
    finally:
        endpoint.close()
    metrics = TELEMETRY.snapshot().diff_from(baseline) \
        if baseline is not None else None
    return BatchResult(index=job.index, endpoint_id=job.endpoint_id,
                       records=tuple(records), retries=retries_total,
                       resets=endpoint.reset_count, metrics=metrics)


def execute_fleet_chunk(chunk: FleetChunk) -> bytes:
    """Pool entry point: one framed binary chunk envelope.

    Each batch result is pickled in its own frame (the sweep's per-entry
    pickling discipline — byte parity with the serial path); the
    :class:`~repro.parallel.envelope.ChunkHeader` reports this worker's
    shared-state provenance and the restore work the chunk cost.
    """
    template: Optional[MachineTemplate] = _FLEET_STATE.get("template")
    def counters() -> Tuple[int, int, int]:
        if template is None:
            return (0, 0, 0)
        return (template.delta_restore_count, template.full_restore_count,
                template.dirty_subsystem_total)
    before = counters()
    results = [execute_fleet_batch(job) for job in chunk.jobs]
    after = counters()
    header = ChunkHeader(
        worker_pid=os.getpid(),
        shared_database=bool(_FLEET_STATE.get("shared_database")),
        shared_template=bool(_FLEET_STATE.get("shared_template")),
        delta_restores=after[0] - before[0],
        full_restores=after[1] - before[1],
        dirty_subsystems=after[2] - before[2])
    return encode_chunk(results, header)


# -- checkpointing ------------------------------------------------------------

def _write_checkpoint(path: str, fingerprint: dict, rounds_done: int,
                      completed: Sequence[BatchResult]) -> None:
    """Atomic checkpoint write: temp file + ``os.replace``."""
    payload = {"fingerprint": fingerprint, "rounds_done": rounds_done,
               "batches": [batch.to_dict() for batch in completed]}
    tmp_path = path + ".tmp"
    with open(tmp_path, "w", encoding="utf-8") as stream:
        json.dump(payload, stream, sort_keys=True, separators=(",", ":"))
    os.replace(tmp_path, path)


def _load_checkpoint(path: str, fingerprint: dict, rounds_total: int
                     ) -> Tuple[int, List[BatchResult]]:
    """Read and validate a checkpoint against this run's fingerprint."""
    try:
        with open(path, "r", encoding="utf-8") as stream:
            payload = json.load(stream)
    except (OSError, ValueError) as exc:
        raise FleetCheckpointError(
            f"unreadable checkpoint {path!r}: {exc}") from exc
    stored = payload.get("fingerprint")
    if stored != fingerprint:
        raise FleetCheckpointError(
            "checkpoint does not match this run's configuration; "
            "refusing to resume (delete the file to start fresh)")
    rounds_done = int(payload.get("rounds_done", 0))
    if not 0 <= rounds_done <= rounds_total:
        raise FleetCheckpointError(
            f"checkpoint claims {rounds_done} completed rounds; "
            f"this plan has {rounds_total}")
    completed = [BatchResult.from_dict(entry)
                 for entry in payload.get("batches", ())]
    return rounds_done, completed


# -- run result ---------------------------------------------------------------

@dataclasses.dataclass
class FleetRunResult:
    """Everything one :meth:`FleetService.run` produced.

    ``records`` is seq-sorted and identical across serial/pooled and
    fresh/resumed executions; the execution-shape fields (``chunks``,
    ``degraded_chunks``, ``used_process_pool``, ``resumed_rounds``) are
    honest observability and deliberately excluded from the
    byte-identity surface (:meth:`~repro.fleet.report.FleetReport.
    to_json`).
    """

    endpoints: int
    seed: int
    events_planned: int
    records: List[EventRecord]
    batches: List[BatchResult]
    queue_depth_hwm: int
    backpressure_stalls: int
    rounds_total: int
    rounds_done: int
    resumed_rounds: int
    #: Events replayed from the checkpoint rather than executed here
    #: (throughput accounting must not credit this run with them).
    events_resumed: int
    chunks: int
    degraded_chunks: int
    used_process_pool: bool
    completed: bool
    #: True only when every chunk's worker reported running on the
    #: fork-inherited database (and template) — observed provenance from
    #: :class:`~repro.parallel.envelope.ChunkHeader`, never an assumption.
    shared_state_used: bool = False
    #: Per-chunk worker provenance (execution shape, like ``chunks``).
    chunk_headers: List[ChunkHeader] = dataclasses.field(default_factory=list)

    def delta_restores(self) -> int:
        """Dirty-set template restores performed across all chunks."""
        return sum(h.delta_restores for h in self.chunk_headers)

    def merged_metrics(self) -> MetricsSnapshot:
        """Batch telemetry deltas folded together, plus service counters.

        Associative/commutative merge — pool scheduling cannot change the
        totals. Batch deltas are empty when telemetry was disabled; the
        service-level admission counters are always present.
        """
        merged = MetricsSnapshot.empty()
        for batch in self.batches:
            if batch.metrics is not None:
                merged = merged.merge(batch.metrics)
        service = MetricsSnapshot(
            counters={"fleet.rounds": self.rounds_done,
                      "fleet.chunks": self.chunks,
                      "fleet.degraded_chunks": self.degraded_chunks,
                      "fleet.backpressure_stalls": self.backpressure_stalls},
            gauges={"fleet.queue_depth_hwm": float(self.queue_depth_hwm),
                    "fleet.endpoints": float(self.endpoints)})
        return merged.merge(service)


# -- the service --------------------------------------------------------------

class FleetService:
    """Long-lived multi-endpoint protection service (one run = one call).

    Construction is cheap and validation-only; :meth:`run` does the work.
    ``telemetry=None`` inherits the process-wide setting;
    ``stop_after_rounds`` (on :meth:`run`) is the kill switch the
    checkpoint/resume tests use to simulate an interrupted service.
    """

    def __init__(self, endpoints: int = 8, events: int = 64,
                 seed: int = 42, *,
                 profile: Optional[WorkloadProfile] = None,
                 machine_factory: FactorySpec = DEFAULT_FLEET_FACTORY,
                 database: Optional[DeceptionDatabase] = None,
                 config: Optional[ScarecrowConfig] = None,
                 max_workers: int = 1,
                 queue_limit: int = DEFAULT_QUEUE_LIMIT,
                 chunksize: Optional[int] = None,
                 max_retries: int = 1,
                 telemetry: Optional[bool] = None,
                 template: bool = True,
                 delta: DeltaMode = True,
                 shared_state: bool = True,
                 checkpoint_path: Optional[str] = None,
                 resume: bool = False) -> None:
        if endpoints < 1:
            raise ValueError("endpoints must be >= 1")
        if events < 0:
            raise ValueError("events must be >= 0")
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        if chunksize is not None and chunksize < 1:
            raise ValueError("chunksize must be >= 1")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if resume and not checkpoint_path:
            raise ValueError("resume=True requires a checkpoint_path")
        if delta not in (True, False, "verify"):
            raise ValueError(
                f"delta must be True, False or 'verify', got {delta!r}")
        self.endpoints = endpoints
        self.events = events
        self.seed = seed
        self.profile = profile
        self.machine_factory = machine_factory
        self.database = database
        self.config = config
        self.max_workers = max_workers
        self.queue_limit = queue_limit
        self.chunksize = chunksize
        self.max_retries = max_retries
        self.telemetry = telemetry
        self.template = template
        #: Template rewind strategy (execution shape — deliberately *not*
        #: part of the checkpoint fingerprint: a run interrupted under
        #: full restores may resume under delta restores, results are
        #: identical by construction).
        self.delta = delta
        #: Publish database/template to the fork-shared registry pre-pool.
        self.shared_state = shared_state
        self.checkpoint_path = checkpoint_path
        self.resume = resume
        self._local_ready = False

    # -- configuration identity ----------------------------------------------

    def _fingerprint(self, db_blob: bytes) -> dict:
        """JSON-normalized identity a checkpoint must match to resume.

        Everything that changes the event stream or its outcomes is in
        here; execution shape (workers, chunksize, templating) is not —
        those are free to differ between the interrupted run and the
        resume because the results are identical by construction.
        """
        spec = self.machine_factory
        factory_name = spec if isinstance(spec, str) else \
            getattr(spec, "__qualname__", repr(spec))
        profile = self.profile or WorkloadProfile()
        raw = {
            "version": CHECKPOINT_VERSION,
            "seed": self.seed,
            "endpoints": self.endpoints,
            "events": self.events,
            "queue_limit": self.queue_limit,
            "factory": factory_name,
            "db_crc": zlib.crc32(db_blob),
            "config": None if self.config is None
            else dataclasses.asdict(self.config),
            "profile": profile.fingerprint(),
        }
        return json.loads(json.dumps(raw, sort_keys=True))

    # -- execution -------------------------------------------------------------

    def run(self, stop_after_rounds: Optional[int] = None) -> FleetRunResult:
        """Execute (or resume) the fleet run.

        ``stop_after_rounds`` bounds how many *new* rounds this call
        executes before returning a partial (``completed=False``) result
        — combined with ``checkpoint_path`` it simulates a service killed
        mid-run; a later ``resume=True`` run picks up where it stopped.
        """
        stream = generate_events(self.seed, self.endpoints, self.events,
                                 self.profile)
        plan = plan_rounds(stream, self.queue_limit)
        jobs_per_round = self._build_jobs(plan)

        database = self.database if self.database is not None \
            else DeceptionDatabase()
        db_blob = database.snapshot_bytes()
        fingerprint = self._fingerprint(db_blob)

        completed: List[BatchResult] = []
        rounds_done = 0
        resumed = 0
        events_resumed = 0
        if self.resume and self.checkpoint_path and \
                os.path.exists(self.checkpoint_path):
            rounds_done, completed = _load_checkpoint(
                self.checkpoint_path, fingerprint, len(jobs_per_round))
            resumed = rounds_done
            events_resumed = sum(len(batch.records) for batch in completed)

        telemetry_on = TELEMETRY.enabled if self.telemetry is None \
            else bool(self.telemetry)
        shared_keys = (self._publish_shared(db_blob) if self.shared_state
                       else shared.SharedKeys())
        initargs = (self.machine_factory, db_blob, self.config,
                    telemetry_on, self.template, self.profile,
                    self.delta, shared_keys)

        chunks_run = 0
        degraded = 0
        headers: List[ChunkHeader] = []
        interrupted = False
        used_pool = False
        self._local_ready = False
        prior_enabled = TELEMETRY.enabled
        try:
            if rounds_done < len(jobs_per_round):
                executor, used_pool = make_executor(
                    initargs, self.max_workers, initialize_fleet_worker)
                with executor:
                    for round_jobs in jobs_per_round[rounds_done:]:
                        if stop_after_rounds is not None and \
                                rounds_done - resumed >= stop_after_rounds:
                            interrupted = True
                            break
                        results, n_chunks, n_degraded, round_headers = \
                            self._run_round(executor, round_jobs, initargs)
                        chunks_run += n_chunks
                        degraded += n_degraded
                        headers.extend(round_headers)
                        completed.extend(results)
                        rounds_done += 1
                        if self.checkpoint_path:
                            _write_checkpoint(self.checkpoint_path,
                                              fingerprint, rounds_done,
                                              completed)
        finally:
            TELEMETRY.enabled = prior_enabled

        records = sorted(
            (record for batch in completed for record in batch.records),
            key=lambda record: record.seq)
        return FleetRunResult(
            endpoints=self.endpoints, seed=self.seed,
            events_planned=len(stream), records=records,
            batches=list(completed),
            queue_depth_hwm=plan.queue_depth_hwm,
            backpressure_stalls=plan.backpressure_stalls,
            rounds_total=len(jobs_per_round), rounds_done=rounds_done,
            resumed_rounds=resumed, events_resumed=events_resumed,
            chunks=chunks_run,
            degraded_chunks=degraded,
            used_process_pool=used_pool and degraded == 0 and
            rounds_done > resumed,
            completed=not interrupted and
            rounds_done == len(jobs_per_round),
            shared_state_used=bool(headers) and all(
                h.shared_database and (h.shared_template or not self.template)
                for h in headers),
            chunk_headers=headers)

    def _build_jobs(self, plan: AdmissionPlan) -> List[List[BatchJob]]:
        """Rounds of batch jobs with globally-unique submission indices."""
        jobs_per_round: List[List[BatchJob]] = []
        index = 0
        for round_batches in plan.rounds:
            round_jobs: List[BatchJob] = []
            for endpoint_id, batch_events in round_batches:
                round_jobs.append(BatchJob(index, endpoint_id, batch_events,
                                           self.max_retries))
                index += 1
            jobs_per_round.append(round_jobs)
        return jobs_per_round

    def _publish_shared(self, db_blob: bytes) -> shared.SharedKeys:
        """Pre-fork: rehydrate the database and build the template once,
        so pool workers inherit both copy-on-write instead of rebuilding.
        Advisory only — workers validate and fall back on any miss."""
        db_key = shared.publish_database(
            db_blob,
            FrozenDeceptionDatabase.from_snapshot(pickle.loads(db_blob)))
        template_key: Optional[str] = None
        if self.template:
            factory = resolve_machine_factory(self.machine_factory)
            factory_name = (self.machine_factory
                            if isinstance(self.machine_factory, str)
                            else getattr(factory, "__qualname__", "factory"))
            template_key = shared.template_key(factory_name, id(factory),
                                               self.delta)
            template = MachineTemplate(factory, delta=self.delta)
            template.build()
            shared.publish_template(template_key, template)
        return shared.SharedKeys(database=db_key, template=template_key)

    def _run_round(self, executor: Any, round_jobs: Sequence[BatchJob],
                   initargs: tuple
                   ) -> Tuple[List[BatchResult], int, int, List[ChunkHeader]]:
        """Dispatch one round in chunks; collect in submission order."""
        size = self.chunksize or auto_chunksize(len(round_jobs),
                                                self.max_workers)
        chunks = [FleetChunk(tuple(round_jobs[i:i + size]))
                  for i in range(0, len(round_jobs), size)]
        futures = [executor.submit(execute_fleet_chunk, chunk)
                   for chunk in chunks]
        results: List[BatchResult] = []
        degraded = 0
        headers: List[ChunkHeader] = []
        for chunk, future in zip(chunks, futures):
            try:
                blob = future.result()
                batches, header = decode_chunk(blob)
            except Exception:
                # Graceful degradation: a poisoned worker, an unpicklable
                # surprise *or a corrupt chunk envelope* costs us the pool
                # for this chunk, not the run.
                batches, header = decode_chunk(
                    self._run_chunk_in_process(chunk, initargs))
                degraded += 1
            results.extend(batches)
            headers.append(header)
        return results, len(chunks), degraded, headers

    def _run_chunk_in_process(self, chunk: FleetChunk,
                              initargs: tuple) -> bytes:
        """Rerun a failed chunk in the parent, via the same code path.

        The chunk round-trips through pickle first — exactly what the
        pool submission would have done — so degraded results stay
        byte-identical to what a healthy worker would have returned.
        """
        if not self._local_ready:
            initialize_fleet_worker(*initargs)
            self._local_ready = True
        return execute_fleet_chunk(pickle.loads(pickle.dumps(chunk)))
