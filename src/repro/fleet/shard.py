"""Shard layer: deterministic routing, per-shard checkpoints, shard state.

A *shard* is an independent slice of the fleet: a disjoint endpoint
subset (routed by :func:`shard_of` — ``endpoint_id % shard_count``), its
own sequence of admission rounds, its own checkpoint file
(:func:`shard_checkpoint_path`), and its own partial rollup
(:meth:`FleetShard.rollup`). The coordinator
(:class:`~repro.fleet.service.FleetService`) plans admission *globally*
— :func:`~repro.fleet.service.plan_rounds` runs once over the full
stream, so queue statistics are shard-independent — and then routes each
global round's batches to shards with :func:`route_round`. Shards
dispatch concurrently (one in-flight round each, pipelined over a shared
executor), which is the horizontal-scaling lever: no global per-round
barrier serializes the fleet through one queue.

Determinism: batch outcomes are pure functions of ``(endpoint_id,
events)`` — every batch stamps a fresh endpoint from the machine
template — so routing and completion order cannot change a record.
The cross-shard contract (same seed ⇒ byte-identical global rollup for
any shard count, serial or pooled, fresh or resumed) is proven in
``tests/fleet/test_shards.py``.

This module also owns the worker protocol dataclasses
(:class:`BatchJob`, :class:`FleetChunk`, :class:`BatchResult`) and the
checkpoint read/write helpers — shard-local structures the service layer
builds on. Nothing here reads the host clock or entropy (scarelint
SC001/SC002) and nothing holds fork-unsafe state (SC007).
"""

from __future__ import annotations

import dataclasses
import json
import os
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..telemetry.snapshot import MetricsSnapshot
from .endpoint import EventRecord
from .events import FleetEvent
from .report import ShardRollup


class FleetCheckpointError(RuntimeError):
    """A checkpoint file is unreadable or belongs to a different run."""


# -- worker protocol ----------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class BatchJob:
    """One endpoint's slice of one round (the unit of retry accounting)."""

    index: int
    endpoint_id: int
    events: Tuple[FleetEvent, ...]
    max_retries: int = 1
    #: Deception-database version the worker must execute against
    #: (0 = the base database it was initialized with). Stamped at
    #: dispatch time by a ``repro.dbops`` version router; the worker
    #: copies it onto every record it produces.
    db_version: int = 0


@dataclasses.dataclass(frozen=True)
class FleetChunk:
    """A pickled-once group of batch jobs (the unit of pool submission)."""

    jobs: Tuple[BatchJob, ...]


@dataclasses.dataclass(frozen=True)
class BatchResult:
    """Worker output for one batch — JSON-native for checkpoints."""

    index: int
    endpoint_id: int
    records: Tuple[EventRecord, ...]
    retries: int = 0
    resets: int = 0
    metrics: Optional[MetricsSnapshot] = None

    def to_dict(self) -> dict:
        return {"index": self.index, "endpoint": self.endpoint_id,
                "records": [record.to_dict() for record in self.records],
                "retries": self.retries, "resets": self.resets,
                "metrics": None if self.metrics is None
                else self.metrics.to_dict()}

    @classmethod
    def from_dict(cls, data: Mapping) -> "BatchResult":
        metrics = data.get("metrics")
        return cls(
            index=int(data["index"]), endpoint_id=int(data["endpoint"]),
            records=tuple(EventRecord.from_dict(r)
                          for r in data.get("records", ())),
            retries=int(data.get("retries", 0)),
            resets=int(data.get("resets", 0)),
            metrics=None if metrics is None
            else MetricsSnapshot.from_dict(metrics))


# -- routing ------------------------------------------------------------------

def shard_of(endpoint_id: int, shard_count: int) -> int:
    """The shard an endpoint lives on: ``endpoint_id % shard_count``.

    Stable, stateless and cheap — the admission front-end
    (:mod:`repro.serve`) applies the same rule, so a tenant's endpoint
    always lands on the same shard without a routing table.
    """
    if shard_count < 1:
        raise ValueError("shard_count must be >= 1")
    return endpoint_id % shard_count


def route_round(round_jobs: Sequence[BatchJob], shard_count: int
                ) -> Tuple[Tuple[BatchJob, ...], ...]:
    """Partition one global round's batches across shards.

    Per-shard order is the global round's submission order restricted to
    that shard — deterministic, and endpoint-disjoint by construction.
    """
    routed: List[List[BatchJob]] = [[] for _ in range(shard_count)]
    for job in round_jobs:
        routed[shard_of(job.endpoint_id, shard_count)].append(job)
    return tuple(tuple(jobs) for jobs in routed)


def shard_checkpoint_path(base: Optional[str], index: int,
                          shard_count: int) -> Optional[str]:
    """Where shard ``index`` checkpoints.

    A single-shard fleet uses the base path unchanged (the pre-shard
    checkpoint layout); multi-shard fleets write one file per shard so
    shards can checkpoint and resume independently.
    """
    if base is None or shard_count == 1:
        return base
    return f"{base}.shard-{index:02d}-of-{shard_count:02d}"


# -- checkpoint io ------------------------------------------------------------

def write_checkpoint(path: str, fingerprint: dict, rounds_done: int,
                     completed: Sequence[BatchResult]) -> None:
    """Atomic checkpoint write: temp file + ``os.replace``."""
    payload = {"fingerprint": fingerprint, "rounds_done": rounds_done,
               "batches": [batch.to_dict() for batch in completed]}
    tmp_path = path + ".tmp"
    with open(tmp_path, "w", encoding="utf-8") as stream:
        json.dump(payload, stream, sort_keys=True, separators=(",", ":"))
    os.replace(tmp_path, path)


def load_checkpoint(path: str, fingerprint: dict, rounds_total: int
                    ) -> Tuple[int, List[BatchResult]]:
    """Read and validate a checkpoint against this run's fingerprint."""
    try:
        with open(path, "r", encoding="utf-8") as stream:
            payload = json.load(stream)
    except (OSError, ValueError) as exc:
        raise FleetCheckpointError(
            f"unreadable checkpoint {path!r}: {exc}") from exc
    stored = payload.get("fingerprint")
    if stored != fingerprint:
        raise FleetCheckpointError(
            "checkpoint does not match this run's configuration; "
            "refusing to resume (delete the file to start fresh)")
    rounds_done = int(payload.get("rounds_done", 0))
    if not 0 <= rounds_done <= rounds_total:
        raise FleetCheckpointError(
            f"checkpoint claims {rounds_done} completed rounds; "
            f"this plan has {rounds_total}")
    completed = [BatchResult.from_dict(entry)
                 for entry in payload.get("batches", ())]
    return rounds_done, completed


# -- shard execution state ----------------------------------------------------

@dataclasses.dataclass(frozen=True)
class ShardOutcome:
    """One shard's execution-shape summary (observability, not identity)."""

    index: int
    rounds_total: int
    rounds_done: int
    resumed_rounds: int
    events_resumed: int
    chunks: int
    degraded_chunks: int

    def to_dict(self) -> dict:
        return {"index": self.index, "rounds_total": self.rounds_total,
                "rounds_done": self.rounds_done,
                "resumed_rounds": self.resumed_rounds,
                "events_resumed": self.events_resumed,
                "chunks": self.chunks,
                "degraded_chunks": self.degraded_chunks}


class FleetShard:
    """Bookkeeping for one shard: its rounds, checkpoint, and progress.

    ``rounds`` is this shard's (non-empty) slice of the global admission
    plan, each entry tagged with the global round index it came from.
    The coordinator drives the lifecycle — :meth:`load` (resume),
    :meth:`peek_round`/:meth:`finish_round` (dispatch), — while the shard
    owns its completed batches and checkpoint file, so shards progress
    and recover independently of one another.
    """

    def __init__(self, index: int,
                 rounds: Sequence[Tuple[int, Tuple[BatchJob, ...]]],
                 checkpoint_path: Optional[str],
                 fingerprint: dict) -> None:
        self.index = index
        self.rounds = list(rounds)
        self.checkpoint_path = checkpoint_path
        self.fingerprint = fingerprint
        self.completed: List[BatchResult] = []
        self.rounds_done = 0
        self.resumed_rounds = 0
        self.events_resumed = 0
        self.chunks = 0
        self.degraded_chunks = 0

    def load(self, resume: bool) -> None:
        """Resume from this shard's checkpoint when present."""
        if not (resume and self.checkpoint_path and
                os.path.exists(self.checkpoint_path)):
            return
        rounds_done, completed = load_checkpoint(
            self.checkpoint_path, self.fingerprint, len(self.rounds))
        self.rounds_done = rounds_done
        self.completed = completed
        self.resumed_rounds = rounds_done
        self.events_resumed = sum(len(batch.records) for batch in completed)

    def has_pending(self) -> bool:
        return self.rounds_done < len(self.rounds)

    def peek_round(self) -> Tuple[BatchJob, ...]:
        """The next round's jobs (stays pending until :meth:`finish_round`)."""
        return self.rounds[self.rounds_done][1]

    def peek_global_index(self) -> int:
        """The global admission-round index of the next pending round."""
        return self.rounds[self.rounds_done][0]

    def finish_round(self, results: Sequence[BatchResult], chunks: int,
                     degraded: int) -> None:
        """Commit one finished round: fold results, checkpoint atomically."""
        self.completed.extend(results)
        self.rounds_done += 1
        self.chunks += chunks
        self.degraded_chunks += degraded
        if self.checkpoint_path:
            write_checkpoint(self.checkpoint_path, self.fingerprint,
                             self.rounds_done, self.completed)

    def done_global_rounds(self) -> Tuple[int, ...]:
        """Global round indices this shard has completed."""
        return tuple(global_index for global_index, _ in
                     self.rounds[:self.rounds_done])

    def records(self) -> List[EventRecord]:
        """This shard's seq-sorted records."""
        return sorted(
            (record for batch in self.completed for record in batch.records),
            key=lambda record: record.seq)

    def rollup(self) -> ShardRollup:
        """This shard's mergeable partial rollup."""
        return ShardRollup.from_records(self.records())

    def outcome(self) -> ShardOutcome:
        return ShardOutcome(
            index=self.index, rounds_total=len(self.rounds),
            rounds_done=self.rounds_done,
            resumed_rounds=self.resumed_rounds,
            events_resumed=self.events_resumed,
            chunks=self.chunks, degraded_chunks=self.degraded_chunks)


def build_shards(jobs_per_round: Sequence[Sequence[BatchJob]],
                 shard_count: int, checkpoint_base: Optional[str],
                 fingerprint: dict) -> List[FleetShard]:
    """Route a global plan into per-shard round sequences.

    Empty per-shard rounds are dropped (a shard only rounds over batches
    it owns), so each shard's checkpoint counts its *own* rounds. Each
    shard's fingerprint carries its index — shard files cannot be
    cross-wired on resume.
    """
    per_shard: List[List[Tuple[int, Tuple[BatchJob, ...]]]] = \
        [[] for _ in range(shard_count)]
    for global_index, round_jobs in enumerate(jobs_per_round):
        for index, jobs in enumerate(route_round(round_jobs, shard_count)):
            if jobs:
                per_shard[index].append((global_index, jobs))
    shards: List[FleetShard] = []
    for index in range(shard_count):
        shard_fingerprint: Dict = dict(fingerprint, shard=index)
        shards.append(FleetShard(
            index, per_shard[index],
            shard_checkpoint_path(checkpoint_base, index, shard_count),
            shard_fingerprint))
    return shards
