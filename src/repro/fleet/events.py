"""Seeded fleet workload generator.

A fleet run is driven by a synthetic event stream: benign installer
launches, evasive-malware arrivals drawn from a family mix, and periodic
reboot/deep-freeze resets. The stream is a pure function of
``(seed, endpoints, count, profile)`` — the same LCG that gives the
virtual clock its RDTSC jitter (:mod:`repro.winsim.clock`) drives every
draw here, so two generations of the same triple are identical down to
the arrival timestamps. That determinism is what the service layer's
serial-vs-pool and fresh-vs-resume byte-identity guarantees stand on.

Timestamps are **virtual milliseconds** since stream start; nothing in
this module (or anywhere in ``repro.fleet``) reads the host clock.
"""

from __future__ import annotations

import dataclasses
from typing import List, Mapping, Optional, Sequence, Tuple

from ..malware.benign import CNET_TOP20
from ..malware.corpus import build_malgene_corpus
from ..malware.families import FamilySpec
from ..malware.sample import EvasiveSample

#: Event kinds a fleet endpoint can receive.
EVENT_MALWARE = "malware"
EVENT_BENIGN = "benign"
EVENT_RESET = "reset"

EVENT_KINDS = (EVENT_MALWARE, EVENT_BENIGN, EVENT_RESET)


class FleetRng:
    """Deterministic LCG (the clock-jitter generator, widened to draws).

    Host entropy is banned in ``repro.fleet`` (scarelint SC002), so the
    workload generator carries its own multiplicative congruential state —
    the same constants :class:`~repro.winsim.clock.VirtualClock` uses for
    RDTSC jitter, which are Park-Miller-era and plenty for workload
    shaping. Not cryptographic, deliberately.
    """

    __slots__ = ("_state",)

    MULTIPLIER = 1103515245
    INCREMENT = 12345
    MASK = 0x7FFFFFFF

    def __init__(self, seed: int) -> None:
        self._state = (int(seed) ^ 0x9E3779B9) & self.MASK

    def next_u31(self) -> int:
        self._state = (self._state * self.MULTIPLIER + self.INCREMENT) \
            & self.MASK
        return self._state

    def randint(self, bound: int) -> int:
        """Uniform-ish draw in ``[0, bound)``; ``bound`` must be >= 1."""
        if bound < 1:
            raise ValueError("bound must be >= 1")
        return self.next_u31() % bound

    def weighted(self, weights: Sequence[int]) -> int:
        """Index drawn proportionally to the non-negative ``weights``."""
        total = sum(weights)
        if total <= 0:
            raise ValueError("weights must sum to a positive value")
        draw = self.randint(total)
        cumulative = 0
        for index, weight in enumerate(weights):
            cumulative += weight
            if draw < cumulative:
                return index
        return len(weights) - 1


@dataclasses.dataclass(frozen=True)
class FleetEvent:
    """One unit of fleet work, fully determined at generation time.

    ``ref`` indexes into the profile's sample pool (malware events) or the
    CNET top-20 (benign events); reset events carry ``ref == 0``.
    """

    seq: int
    at_ms: int
    endpoint_id: int
    kind: str
    ref: int

    def to_dict(self) -> dict:
        return {"seq": self.seq, "at_ms": self.at_ms,
                "endpoint": self.endpoint_id, "kind": self.kind,
                "ref": self.ref}

    @classmethod
    def from_dict(cls, data: Mapping) -> "FleetEvent":
        return cls(int(data["seq"]), int(data["at_ms"]),
                   int(data["endpoint"]), str(data["kind"]),
                   int(data["ref"]))


#: Family mix malware arrivals are drawn from: two headline families plus
#: a deliberately mixed bag — deactivatable archetypes, the
#: non-deactivatable PEB reader, and the inconclusive self-deleter — so
#: per-family deactivation rates in the fleet report actually differ.
DEFAULT_FLEET_FAMILIES: Tuple[FamilySpec, ...] = (
    FamilySpec("Symmi", (("spawn_idp", 6), ("term_vm", 2),
                         ("fail_peb", 2))),
    FamilySpec("Zbot", (("sleep_sbx", 4), ("term_vm", 2))),
    FamilySpec("Selfdel", (("selfdel", 2),)),
)


@dataclasses.dataclass(frozen=True)
class WorkloadProfile:
    """Shape of the generated stream (weights, pacing, family mix)."""

    malware_weight: int = 6
    benign_weight: int = 3
    reset_weight: int = 1
    #: Upper bound of the uniform inter-arrival gap, virtual milliseconds.
    max_gap_ms: int = 500
    family_specs: Tuple[FamilySpec, ...] = DEFAULT_FLEET_FAMILIES

    @property
    def pool_size(self) -> int:
        return sum(spec.total for spec in self.family_specs)

    def fingerprint(self) -> dict:
        """Determinism-relevant identity (stored in checkpoints)."""
        return {
            "weights": [self.malware_weight, self.benign_weight,
                        self.reset_weight],
            "max_gap_ms": self.max_gap_ms,
            "families": [[spec.name, list(map(list, spec.archetype_counts))]
                         for spec in self.family_specs],
        }


def build_sample_pool(profile: Optional[WorkloadProfile] = None
                      ) -> List[EvasiveSample]:
    """The malware pool ``FleetEvent.ref`` indexes into (order is stable)."""
    profile = profile or WorkloadProfile()
    return build_malgene_corpus(list(profile.family_specs))


def generate_events(seed: int, endpoints: int, count: int,
                    profile: Optional[WorkloadProfile] = None
                    ) -> List[FleetEvent]:
    """The full event stream for one fleet run.

    Pure: no host clock, no host entropy, no I/O. Events come back in
    arrival order with ``seq`` equal to their list index.
    """
    if endpoints < 1:
        raise ValueError("endpoints must be >= 1")
    if count < 0:
        raise ValueError("count must be >= 0")
    profile = profile or WorkloadProfile()
    rng = FleetRng(seed)
    weights = (profile.malware_weight, profile.benign_weight,
               profile.reset_weight)
    pool_size = profile.pool_size
    events: List[FleetEvent] = []
    at_ms = 0
    for seq in range(count):
        at_ms += 1 + rng.randint(max(1, profile.max_gap_ms))
        endpoint_id = rng.randint(endpoints)
        kind = EVENT_KINDS[rng.weighted(weights)]
        if kind == EVENT_MALWARE:
            ref = rng.randint(max(1, pool_size))
        elif kind == EVENT_BENIGN:
            ref = rng.randint(len(CNET_TOP20))
        else:
            ref = 0
        events.append(FleetEvent(seq, at_ms, endpoint_id, kind, ref))
    return events
