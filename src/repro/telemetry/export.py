"""JSONL structured-trace export and summarisation.

One telemetry file is a sequence of newline-delimited JSON objects, each
with a ``type`` field. The schema (version 1, documented in
``docs/OBSERVABILITY.md``):

``meta``
    First record of a file: ``{"type": "meta", "v": 1, "kind": ...}`` plus
    free-form fields (command, arguments, worker counts).
``metrics``
    ``{"type": "metrics", "scope": ..., "snapshot": {...}}`` where
    ``snapshot`` is :meth:`MetricsSnapshot.to_dict` output.
``event``
    One kernel event from a :class:`~repro.analysis.trace.Trace`:
    ``{"type": "event", "trace": label, "category", "name", "pid",
    "ts_ns", "details"}``.
``sample``
    Per-sample sweep statistics (md5, index, verdict, worker pid,
    retries, wall seconds, event counts).
``error``
    A structured :class:`~repro.parallel.envelope.SweepError`.

``repro stats FILE`` renders the summary produced by
:func:`summarize_records`.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict, Iterable, List, Optional, Tuple

from .snapshot import MetricsSnapshot

#: Schema version stamped into every ``meta`` record.
SCHEMA_VERSION = 1

#: Every record type a version-1 file may contain.
RECORD_TYPES = ("meta", "metrics", "event", "sample", "error")

#: Histogram-name prefix of the per-export API latency instrumentation.
API_LATENCY_PREFIX = "api.latency_ns."

#: Histogram-name prefix of the per-export hook-handler instrumentation.
HOOK_LATENCY_PREFIX = "hook.handler_ns."

#: Histogram-name prefix of host wall-clock phase timings (job execution
#: vs machine setup vs template build — the setup/execute split).
WALLCLOCK_PREFIX = "wallclock."

#: Counter/histogram prefix of the fleet protection service
#: (``repro fleet``; docs/FLEET.md).
FLEET_PREFIX = "fleet."

#: Counter/gauge prefix of the sharded dispatch layer (``--shards``).
SHARD_PREFIX = "shard."

#: Counter prefix of the admission front-end (``repro serve``).
SERVE_PREFIX = "serve."

#: Counter/gauge prefix of deception-DB operations (``repro dbops``
#: collection cycles, fleet rollouts; docs/DBOPS.md).
DBOPS_PREFIX = "dbops."

#: Host wall-clock histogram the fleet CLI records one run duration into;
#: with the ``fleet.events`` counter it yields events/sec.
FLEET_RUN_WALLCLOCK = "wallclock.fleet.run_ns"


class TelemetryFormatError(ValueError):
    """A telemetry file (or record) does not follow the JSONL schema."""


# -- record constructors -------------------------------------------------------

def meta_record(kind: str = "run", **fields: Any) -> dict:
    record = {"type": "meta", "v": SCHEMA_VERSION, "kind": kind}
    record.update(fields)
    return record


def metrics_record(snapshot: MetricsSnapshot, scope: str = "run") -> dict:
    return {"type": "metrics", "scope": scope,
            "snapshot": snapshot.to_dict()}


def event_record(trace_label: str, event: Any) -> dict:
    return {"type": "event", "trace": trace_label,
            "category": event.category, "name": event.name,
            "pid": event.pid, "ts_ns": event.timestamp_ns,
            "details": dict(event.details)}


def trace_records(trace: Any) -> Iterable[dict]:
    """Every event of a :class:`~repro.analysis.trace.Trace`, in order."""
    for event in trace.events:
        yield event_record(trace.label, event)


def sample_record(stats: Any, verdict: str = "") -> dict:
    return {"type": "sample", "md5": stats.sample_md5, "index": stats.index,
            "verdict": verdict, "worker_pid": stats.worker_pid,
            "retries": stats.retry_count,
            "wall_time_s": round(stats.wall_time_s, 6),
            "fingerprint_events": stats.fingerprint_events,
            "checks_evaluated": stats.checks_evaluated,
            "trace_events": stats.trace_events}


def error_record(error: Any) -> dict:
    return {"type": "error", "md5": error.sample_md5, "index": error.index,
            "error_type": error.error_type, "message": error.message,
            "worker_pid": error.worker_pid, "retries": error.retry_count}


# -- validation ---------------------------------------------------------------

_REQUIRED_FIELDS = {
    "meta": ("v", "kind"),
    "metrics": ("scope", "snapshot"),
    "event": ("trace", "category", "name", "pid", "ts_ns"),
    "sample": ("md5", "index"),
    "error": ("md5", "index", "error_type"),
}


def validate_record(record: Any) -> dict:
    if not isinstance(record, dict):
        raise TelemetryFormatError(
            f"record is not an object: {type(record).__name__}")
    record_type = record.get("type")
    if record_type not in RECORD_TYPES:
        raise TelemetryFormatError(f"unknown record type: {record_type!r}")
    for field in _REQUIRED_FIELDS[record_type]:
        if field not in record:
            raise TelemetryFormatError(
                f"{record_type} record missing field {field!r}")
    if record_type == "metrics" and \
            not isinstance(record["snapshot"], dict):
        raise TelemetryFormatError("metrics record snapshot is not an object")
    return record


# -- file I/O -----------------------------------------------------------------

def write_records(path: str, records: Iterable[dict]) -> int:
    """Write validated records to ``path`` as JSONL; returns the count."""
    written = 0
    with open(path, "w", encoding="utf-8") as stream:
        for record in records:
            validate_record(record)
            stream.write(json.dumps(record, sort_keys=True,
                                    separators=(",", ":")) + "\n")
            written += 1
    return written


def read_records(path: str) -> List[dict]:
    """Read and validate a JSONL telemetry file."""
    records = []
    with open(path, "r", encoding="utf-8") as stream:
        for line_number, line in enumerate(stream, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TelemetryFormatError(
                    f"{path}:{line_number}: not valid JSON: {exc}") from exc
            try:
                records.append(validate_record(payload))
            except TelemetryFormatError as exc:
                raise TelemetryFormatError(
                    f"{path}:{line_number}: {exc}") from exc
    return records


# -- summarisation -------------------------------------------------------------

#: ``(name, calls, p50_ns, p99_ns, mean_ns)`` rows for latency tables.
LatencyRow = Tuple[str, int, int, int, float]


#: ``(family, arrivals, deactivated, rate)`` rows of the fleet section.
FamilyRow = Tuple[str, int, int, float]


@dataclasses.dataclass
class FleetHealth:
    """The fleet-service section of ``repro stats`` (docs/FLEET.md).

    Present only when the trace carries ``fleet.*`` metrics.
    ``events_per_sec`` needs the CLI's host wall-clock record
    (:data:`FLEET_RUN_WALLCLOCK`) and is ``None`` without it —
    everything else is virtual-clock or counter data.
    """

    events: int
    deactivated: int
    benign_ok: int
    resets: int
    event_errors: int
    retries: int
    queue_depth_hwm: int
    backpressure_stalls: int
    degraded_chunks: int
    events_per_sec: Optional[float]
    latency_count: int
    latency_p50_ns: int
    latency_p99_ns: int
    family_rows: List[FamilyRow]
    #: Shard layout of the run (``shard.*`` metrics; 0 when absent).
    shards: int = 0
    shard_rounds: int = 0
    shard_rounds_resumed: int = 0


@dataclasses.dataclass
class ServeHealth:
    """The admission front-end section of ``repro stats``.

    Present only when the trace carries ``serve.*`` counters (a
    ``repro serve --telemetry`` session). ``rejections`` are explicit
    per-tenant overload refusals — the backpressure signal of
    docs/FLEET.md's serving section.
    """

    requests: int
    submits: int
    events: int
    verdicts: int
    rejections: int
    errors: int


@dataclasses.dataclass
class DbopsHealth:
    """The deception-DB operations section of ``repro stats``.

    Present only when the trace carries non-zero ``dbops.*`` metrics —
    a collection run (``repro dbops collect --telemetry``) or a fleet
    run with an active version rollout/experiment. ``rollbacks`` counts
    runs whose health gate latched at least one shard back to base.
    """

    cycles: int
    skipped_cycles: int
    published: int
    resources_added: int
    stamped_batches: int
    rollbacks: int
    target_version: int


@dataclasses.dataclass
class StatsSummary:
    """Everything ``repro stats`` prints, precomputed."""

    record_counts: Dict[str, int]
    snapshot: MetricsSnapshot
    event_categories: Dict[str, int]
    api_rows: List[LatencyRow]
    hook_rows: List[LatencyRow]
    samples: int
    errors: int
    #: Host wall-clock phase rows (``wallclock.*`` histograms): job
    #: execution vs machine setup, making template savings visible.
    wallclock_rows: List[LatencyRow] = dataclasses.field(
        default_factory=list)
    #: Fleet-service health, when the trace has ``fleet.*`` metrics.
    fleet: Optional[FleetHealth] = None
    #: Admission front-end health, when the trace has ``serve.*`` metrics.
    serve: Optional[ServeHealth] = None
    #: Deception-DB operations health, when the trace has ``dbops.*``
    #: metrics.
    dbops: Optional[DbopsHealth] = None


def _latency_rows(snapshot: MetricsSnapshot, prefix: str) -> List[LatencyRow]:
    rows = []
    for name, state in snapshot.histograms.items():
        if not name.startswith(prefix):
            continue
        rows.append((name[len(prefix):], state.count,
                     state.percentile(50), state.percentile(99),
                     state.mean))
    rows.sort(key=lambda row: (-row[1], row[0]))
    return rows


def _section_live(snapshot: MetricsSnapshot, prefixes: Tuple[str, ...]
                  ) -> bool:
    """True when any metric under the prefixes carries a non-zero value.

    A merged trace can contain a section's counters at zero (a run that
    enabled telemetry but never touched that subsystem); rendering a
    header full of zeros is noise, so sections gate on *signal*, not
    mere key presence.
    """
    for name, value in snapshot.counters.items():
        if value and name.startswith(prefixes):
            return True
    for name, value in snapshot.gauges.items():
        if value and name.startswith(prefixes):
            return True
    for name, state in snapshot.histograms.items():
        if state.count and name.startswith(prefixes):
            return True
    return False


def _fleet_health(snapshot: MetricsSnapshot) -> Optional[FleetHealth]:
    """Fold ``fleet.*`` metrics into the stats section (None when absent)."""
    counters = snapshot.counters
    events = counters.get("fleet.events", 0)
    if not _section_live(snapshot, (FLEET_PREFIX, SHARD_PREFIX)):
        return None
    families: Dict[str, List[int]] = {}
    for name, value in counters.items():
        if not name.startswith("fleet.family."):
            continue
        family, _, metric = name[len("fleet.family."):].rpartition(".")
        if not family:
            continue
        entry = families.setdefault(family, [0, 0])
        if metric == "malware":
            entry[0] = value
        elif metric == "deactivated":
            entry[1] = value
    family_rows: List[FamilyRow] = [
        (family, arrivals, deactivated,
         deactivated / arrivals if arrivals else 0.0)
        for family, (arrivals, deactivated) in sorted(families.items())]
    run_wall = snapshot.histograms.get(FLEET_RUN_WALLCLOCK)
    events_per_sec = None
    if run_wall is not None and run_wall.total > 0 and events:
        events_per_sec = events / (run_wall.total / 1e9)
    latency = snapshot.histograms.get("fleet.event_latency_ns")
    return FleetHealth(
        events=events,
        deactivated=counters.get("fleet.deactivated", 0),
        benign_ok=counters.get("fleet.benign_ok", 0),
        resets=counters.get("fleet.resets", 0),
        event_errors=counters.get("fleet.event_errors", 0),
        retries=counters.get("fleet.retries", 0),
        queue_depth_hwm=int(snapshot.gauges.get("fleet.queue_depth_hwm",
                                                0.0)),
        backpressure_stalls=counters.get("fleet.backpressure_stalls", 0),
        degraded_chunks=counters.get("fleet.degraded_chunks", 0),
        events_per_sec=events_per_sec,
        latency_count=latency.count if latency else 0,
        latency_p50_ns=latency.percentile(50) if latency else 0,
        latency_p99_ns=latency.percentile(99) if latency else 0,
        family_rows=family_rows,
        shards=int(snapshot.gauges.get("shard.count", 0.0)),
        shard_rounds=counters.get("shard.rounds", 0),
        shard_rounds_resumed=counters.get("shard.rounds_resumed", 0))


def _serve_health(snapshot: MetricsSnapshot) -> Optional[ServeHealth]:
    """Fold ``serve.*`` counters into the stats section (None when absent)."""
    counters = snapshot.counters
    if not _section_live(snapshot, (SERVE_PREFIX,)):
        return None
    return ServeHealth(
        requests=counters.get("serve.requests", 0),
        submits=counters.get("serve.submits", 0),
        events=counters.get("serve.events", 0),
        verdicts=counters.get("serve.verdicts", 0),
        rejections=counters.get("serve.rejections", 0),
        errors=counters.get("serve.errors", 0))


def _dbops_health(snapshot: MetricsSnapshot) -> Optional[DbopsHealth]:
    """Fold ``dbops.*`` metrics into the stats section (None when absent)."""
    counters = snapshot.counters
    if not _section_live(snapshot, (DBOPS_PREFIX,)):
        return None
    return DbopsHealth(
        cycles=counters.get("dbops.cycles", 0),
        skipped_cycles=counters.get("dbops.skipped_cycles", 0),
        published=counters.get("dbops.published", 0),
        resources_added=counters.get("dbops.resources_added", 0),
        stamped_batches=counters.get("dbops.stamped_batches", 0),
        rollbacks=counters.get("dbops.rollbacks", 0),
        target_version=int(snapshot.gauges.get("dbops.target_version",
                                               0.0)))


def summarize_records(records: Iterable[dict]) -> StatsSummary:
    """Fold a record stream into the ``repro stats`` summary."""
    record_counts: Dict[str, int] = {}
    event_categories: Dict[str, int] = {}
    snapshot = MetricsSnapshot.empty()
    samples = errors = 0
    for record in records:
        record_type = record["type"]
        record_counts[record_type] = record_counts.get(record_type, 0) + 1
        if record_type == "metrics":
            snapshot = snapshot.merge(
                MetricsSnapshot.from_dict(record["snapshot"]))
        elif record_type == "event":
            category = record["category"]
            event_categories[category] = \
                event_categories.get(category, 0) + 1
        elif record_type == "sample":
            samples += 1
        elif record_type == "error":
            errors += 1
    return StatsSummary(
        record_counts=record_counts, snapshot=snapshot,
        event_categories=event_categories,
        api_rows=_latency_rows(snapshot, API_LATENCY_PREFIX),
        hook_rows=_latency_rows(snapshot, HOOK_LATENCY_PREFIX),
        samples=samples, errors=errors,
        wallclock_rows=_latency_rows(snapshot, WALLCLOCK_PREFIX),
        fleet=_fleet_health(snapshot),
        serve=_serve_health(snapshot),
        dbops=_dbops_health(snapshot))
