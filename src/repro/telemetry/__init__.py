"""Zero-dependency metrics + tracing for the deception engine.

Three layers (see ``docs/OBSERVABILITY.md``):

* :mod:`repro.telemetry.metrics` — :class:`Counter` /
  :class:`LatencyHistogram` / :class:`Gauge` primitives and the
  process-local :data:`TELEMETRY` registry, a cheap no-op while disabled;
* :mod:`repro.telemetry.snapshot` — mergeable :class:`MetricsSnapshot`
  objects that workers ship back inside sweep result envelopes, with
  pool-wide totals that exactly match a serial run;
* :mod:`repro.telemetry.export` — the JSONL structured-trace schema behind
  ``repro sweep --telemetry`` and ``repro stats``.
"""

from . import export
from .metrics import (Counter, Gauge, LatencyHistogram, MetricsRegistry,
                      TELEMETRY, get_registry, recording)
from .snapshot import (HistogramState, MetricsSnapshot, WALLCLOCK_PREFIX,
                       bucket_index, bucket_upper_bound)

__all__ = [
    "Counter", "Gauge", "HistogramState", "LatencyHistogram",
    "MetricsRegistry", "MetricsSnapshot", "TELEMETRY", "WALLCLOCK_PREFIX",
    "bucket_index", "bucket_upper_bound", "export", "get_registry",
    "recording",
]
