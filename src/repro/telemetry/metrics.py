"""Metric primitives and the process-local registry.

The live half of the telemetry layer: :class:`Counter`, :class:`Gauge` and
:class:`LatencyHistogram` accumulate in plain Python attributes, and one
process-local :data:`TELEMETRY` registry owns them all. Hot paths guard
every recording with a single ``TELEMETRY.enabled`` attribute check, so the
disabled-mode cost of instrumentation is one boolean load per call site —
measured by ``benchmarks/bench_telemetry.py``.

Latencies on simulation hot paths are recorded in **virtual-clock
nanoseconds** (deterministic); host-clock measurements must use the
``wallclock.`` prefix (see :mod:`repro.telemetry.snapshot`).
"""

from __future__ import annotations

import contextlib
from typing import Dict, Iterator, List, Optional

from .snapshot import (HistogramState, MetricsSnapshot, WALLCLOCK_PREFIX,
                       _trim, bucket_index)

__all__ = [
    "Counter", "Gauge", "LatencyHistogram", "MetricsRegistry", "TELEMETRY",
    "WALLCLOCK_PREFIX", "get_registry", "recording",
]


class Counter:
    """Monotonically increasing integer metric."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """Last-written value metric (merged across workers by max)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class LatencyHistogram:
    """Geometric-bucket histogram of non-negative integer observations.

    Buckets are powers of two (see :func:`~repro.telemetry.snapshot.\
bucket_index`), so two histograms merge by exact bucket addition and
    percentile estimates are identical however the observations were
    sharded across workers.
    """

    __slots__ = ("name", "_count", "_total", "_buckets")

    def __init__(self, name: str) -> None:
        self.name = name
        self._count = 0
        self._total = 0
        self._buckets: List[int] = []

    def record(self, value: int) -> None:
        v = int(value)
        if v < 0:
            v = 0
        index = bucket_index(v)
        buckets = self._buckets
        if index >= len(buckets):
            buckets.extend([0] * (index + 1 - len(buckets)))
        buckets[index] += 1
        self._count += 1
        self._total += v

    @property
    def count(self) -> int:
        return self._count

    @property
    def total(self) -> int:
        return self._total

    @property
    def mean(self) -> float:
        return self.state().mean

    def percentile(self, p: float) -> int:
        return self.state().percentile(p)

    def state(self) -> HistogramState:
        return HistogramState(self._count, self._total,
                              _trim(tuple(self._buckets)))


class MetricsRegistry:
    """All metrics of one process, with cheap no-op behaviour when disabled.

    ``count``/``observe``/``set_gauge`` return immediately unless
    :attr:`enabled` is set; ``counter``/``gauge``/``histogram`` hand out
    live metric objects regardless (for callers that manage their own
    recording, e.g. the overhead experiment). The registry is
    single-threaded by design, like the simulation it instruments.
    """

    __slots__ = ("enabled", "_counters", "_gauges", "_histograms")

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, LatencyHistogram] = {}

    # -- lifecycle -----------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Drop all recorded values (the enabled flag is left alone)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    # -- metric handles ------------------------------------------------------

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge(name)
        return gauge

    def histogram(self, name: str) -> LatencyHistogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = LatencyHistogram(name)
        return histogram

    # -- guarded fast-path recording ----------------------------------------

    def count(self, name: str, n: int = 1) -> None:
        if not self.enabled:
            return
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        counter.value += n

    def observe(self, name: str, value: int) -> None:
        if not self.enabled:
            return
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = LatencyHistogram(name)
        histogram.record(value)

    def set_gauge(self, name: str, value: float) -> None:
        if not self.enabled:
            return
        self.gauge(name).set(value)

    # -- snapshotting --------------------------------------------------------

    def snapshot(self) -> MetricsSnapshot:
        return MetricsSnapshot(
            {name: c.value for name, c in self._counters.items()},
            {name: g.value for name, g in self._gauges.items()},
            {name: h.state() for name, h in self._histograms.items()})


#: The process-local registry every instrumented hot path records into.
TELEMETRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return TELEMETRY


@contextlib.contextmanager
def recording(registry: Optional[MetricsRegistry] = None
              ) -> Iterator[MetricsRegistry]:
    """Enable ``registry`` (default: the global one) for the with-block."""
    reg = registry if registry is not None else TELEMETRY
    prior = reg.enabled
    reg.enable()
    try:
        yield reg
    finally:
        reg.enabled = prior
