"""Mergeable, picklable metric snapshots.

A :class:`MetricsSnapshot` is the *data* side of the telemetry layer: plain
counters, gauges and histogram states frozen out of a
:class:`~repro.telemetry.metrics.MetricsRegistry`. Snapshots cross process
boundaries inside the parallel sweep's result envelopes, and the parent
folds them together with :meth:`MetricsSnapshot.merge` — which is
associative and commutative, so pool-wide totals are independent of worker
scheduling and exactly match a serial run.

Two conventions keep that determinism guarantee honest:

* Latency histograms on simulation hot paths record **virtual-clock
  nanoseconds**, which are bit-for-bit reproducible.
* Anything measured against the *host* clock lives under the
  ``wallclock.`` name prefix and is excluded by
  :meth:`MetricsSnapshot.deterministic`, the view the byte-identical
  serial-vs-pool comparison is defined over.
"""

from __future__ import annotations

import dataclasses
import json
import math
from typing import Dict, Mapping, Tuple

#: Name prefix for host-clock measurements (excluded from determinism).
WALLCLOCK_PREFIX = "wallclock."

#: Name prefix for dispatch-shape metrics — counts that depend on how
#: work was scheduled (dirty-subsystem counts per delta restore, shared
#: registry hits/misses), not on what the workload computed. Like
#: ``wallclock.*``, legitimately different between serial and pooled
#: executions of the same corpus, so excluded from determinism.
DISPATCH_PREFIX = "parallel."


def bucket_index(value: int) -> int:
    """Geometric bucket for ``value``: 0 for 0, else ``bit_length``.

    Bucket ``i`` (``i >= 1``) covers ``[2**(i-1), 2**i - 1]``; merging two
    histograms is therefore exact bucket-wise addition, no rebinning.
    """
    v = int(value)
    return v.bit_length() if v > 0 else 0


def bucket_upper_bound(index: int) -> int:
    return 0 if index == 0 else (1 << index) - 1


def _trim(buckets: Tuple[int, ...]) -> Tuple[int, ...]:
    length = len(buckets)
    while length and buckets[length - 1] == 0:
        length -= 1
    return buckets[:length]


@dataclasses.dataclass(frozen=True)
class HistogramState:
    """Frozen histogram: count, total, and geometric bucket occupancy."""

    count: int = 0
    total: int = 0
    buckets: Tuple[int, ...] = ()

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> int:
        """Deterministic percentile estimate (bucket upper bound)."""
        if self.count <= 0:
            return 0
        rank = max(1, math.ceil(self.count * p / 100.0))
        cumulative = 0
        for index, occupancy in enumerate(self.buckets):
            cumulative += occupancy
            if cumulative >= rank:
                return bucket_upper_bound(index)
        return bucket_upper_bound(max(0, len(self.buckets) - 1))

    def merge(self, other: "HistogramState") -> "HistogramState":
        if not other.count:
            return self
        if not self.count:
            return other
        length = max(len(self.buckets), len(other.buckets))
        mine, theirs = self.buckets, other.buckets
        merged = tuple(
            (mine[i] if i < len(mine) else 0) +
            (theirs[i] if i < len(theirs) else 0)
            for i in range(length))
        return HistogramState(self.count + other.count,
                              self.total + other.total, merged)

    def diff_from(self, earlier: "HistogramState") -> "HistogramState":
        """The delta recorded since ``earlier`` (which must be a prefix)."""
        if earlier.count > self.count or earlier.total > self.total:
            raise ValueError("earlier histogram is not a subset")
        length = max(len(self.buckets), len(earlier.buckets))
        mine, base = self.buckets, earlier.buckets
        deltas = []
        for i in range(length):
            delta = (mine[i] if i < len(mine) else 0) - \
                (base[i] if i < len(base) else 0)
            if delta < 0:
                raise ValueError("earlier histogram is not a subset")
            deltas.append(delta)
        return HistogramState(self.count - earlier.count,
                              self.total - earlier.total,
                              _trim(tuple(deltas)))

    def to_dict(self) -> dict:
        return {"count": self.count, "total": self.total,
                "buckets": list(self.buckets)}

    @classmethod
    def from_dict(cls, data: Mapping) -> "HistogramState":
        return cls(int(data["count"]), int(data["total"]),
                   _trim(tuple(int(b) for b in data["buckets"])))


@dataclasses.dataclass(frozen=True)
class MetricsSnapshot:
    """One frozen view of a registry, or a merge of many such views."""

    counters: Dict[str, int] = dataclasses.field(default_factory=dict)
    gauges: Dict[str, float] = dataclasses.field(default_factory=dict)
    histograms: Dict[str, HistogramState] = \
        dataclasses.field(default_factory=dict)

    @classmethod
    def empty(cls) -> "MetricsSnapshot":
        return cls()

    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """Combine two snapshots: counters/histograms add, gauges take max.

        All three operations are associative and commutative with
        :meth:`empty` as the identity, so any fold order over worker
        snapshots yields identical totals.
        """
        counters = dict(self.counters)
        for name, value in other.counters.items():
            counters[name] = counters.get(name, 0) + value
        gauges = dict(self.gauges)
        for name, value in other.gauges.items():
            gauges[name] = max(gauges[name], value) if name in gauges \
                else value
        histograms = dict(self.histograms)
        for name, state in other.histograms.items():
            histograms[name] = histograms[name].merge(state) \
                if name in histograms else state
        return MetricsSnapshot(counters, gauges, histograms)

    def diff_from(self, earlier: "MetricsSnapshot") -> "MetricsSnapshot":
        """Activity recorded since ``earlier``.

        Zero-delta entries are dropped, so a job's delta looks the same
        whether the registry started empty (a fresh pool worker) or
        carried history (the serial path, a reused worker) — the property
        the serial-vs-pool byte-identity guarantee rests on. Gauges keep
        only values that changed or appeared.
        """
        counters = {}
        for name, value in self.counters.items():
            delta = value - earlier.counters.get(name, 0)
            if delta < 0:
                raise ValueError(f"counter {name} went backwards")
            if delta:
                counters[name] = delta
        gauges = {name: value for name, value in self.gauges.items()
                  if earlier.gauges.get(name) != value}
        histograms = {}
        for name, state in self.histograms.items():
            base = earlier.histograms.get(name)
            delta_state = state.diff_from(base) if base is not None else state
            if delta_state.count:
                histograms[name] = delta_state
        return MetricsSnapshot(counters, gauges, histograms)

    def deterministic(self) -> "MetricsSnapshot":
        """This snapshot without host-clock (``wallclock.*``) and
        dispatch-shape (``parallel.*``) metrics — what may be compared
        across serial/pooled/delta execution paths."""
        keep = lambda name: not (name.startswith(WALLCLOCK_PREFIX)  # noqa: E731
                                 or name.startswith(DISPATCH_PREFIX))
        return MetricsSnapshot(
            {n: v for n, v in self.counters.items() if keep(n)},
            {n: v for n, v in self.gauges.items() if keep(n)},
            {n: s for n, s in self.histograms.items() if keep(n)})

    def totals(self) -> Dict[str, int]:
        """Flat counter view: counters plus per-histogram count/total."""
        flat = dict(self.counters)
        for name, state in self.histograms.items():
            flat[f"{name}.count"] = state.count
            flat[f"{name}.total"] = state.total
        return flat

    @property
    def is_empty(self) -> bool:
        return not (self.counters or self.gauges or self.histograms)

    def to_dict(self) -> dict:
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {name: state.to_dict()
                           for name, state in self.histograms.items()},
        }

    def to_json(self) -> str:
        """Canonical (sorted-key) JSON — the byte-identity comparison form."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def from_dict(cls, data: Mapping) -> "MetricsSnapshot":
        return cls(
            {str(n): int(v) for n, v in data.get("counters", {}).items()},
            {str(n): float(v) for n, v in data.get("gauges", {}).items()},
            {str(n): HistogramState.from_dict(v)
             for n, v in data.get("histograms", {}).items()})
