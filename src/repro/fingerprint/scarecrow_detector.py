"""The anti-Scarecrow adversary of Section VI-B.

"Once the malware authors are aware of SCARECROW ... the best way to
detect SCARECROW is to check conflicting resources. For example, malware
can check whether the underlying system bestows multiple VM features from
different vendors ... This could be considered impossible because neither a
production nor an analysis environment could belong to multiple VMs
simultaneously."

:func:`detect_scarecrow` implements exactly that consistency audit; the
tests show the paper's sketched countermeasure — exclusive profiles —
defeating it.
"""

from __future__ import annotations

import dataclasses
from typing import List, Tuple

from ..winapi.calling import ApiContext
from ..winsim.errors import Win32Error, nt_success


@dataclasses.dataclass(frozen=True)
class ConsistencyFinding:
    """One impossible combination observed on the machine."""

    description: str
    vendors: Tuple[str, ...]


def _vendor_evidence(api: ApiContext) -> dict:
    """Collect per-vendor VM evidence through the (hookable) API surface."""
    evidence = {"vbox": [], "vmware": [], "qemu": [], "bochs": [],
                "wine": []}

    err, handle = api.RegOpenKeyExA(
        "HKEY_LOCAL_MACHINE",
        "SOFTWARE\\Oracle\\VirtualBox Guest Additions")
    if err == Win32Error.ERROR_SUCCESS:
        evidence["vbox"].append("guest-additions registry key")
        api.RegCloseKey(handle)
    err, handle = api.RegOpenKeyExA("HKEY_LOCAL_MACHINE",
                                    "SOFTWARE\\VMware, Inc.\\VMware Tools")
    if err == Win32Error.ERROR_SUCCESS:
        evidence["vmware"].append("VMware Tools registry key")
        api.RegCloseKey(handle)

    status, _ = api.NtQueryAttributesFile(
        "C:\\Windows\\System32\\drivers\\VBoxMouse.sys")
    if nt_success(status):
        evidence["vbox"].append("VBoxMouse.sys")
    status, _ = api.NtQueryAttributesFile(
        "C:\\Windows\\System32\\drivers\\vmmouse.sys")
    if nt_success(status):
        evidence["vmware"].append("vmmouse.sys")

    err, handle = api.RegOpenKeyExA("HKEY_LOCAL_MACHINE",
                                    "HARDWARE\\Description\\System")
    if err == Win32Error.ERROR_SUCCESS:
        err, bios = api.RegQueryValueExA(handle, "SystemBiosVersion")
        api.RegCloseKey(handle)
        if err == Win32Error.ERROR_SUCCESS and isinstance(bios, str):
            lowered = bios.lower()
            for vendor, marker in (("vbox", "vbox"), ("qemu", "qemu"),
                                   ("bochs", "bochs"), ("vmware", "vmware")):
                if marker in lowered:
                    evidence[vendor].append("SystemBiosVersion marker")

    base = api.GetModuleHandleA("kernel32.dll")
    if base is not None and \
            api.GetProcAddress(base, "wine_get_unix_file_name") is not None:
        evidence["wine"].append("wine export")
    return evidence


def detect_scarecrow(api: ApiContext) -> List[ConsistencyFinding]:
    """Audit the environment for physically impossible vendor mixes.

    Returns the list of impossible combinations found; empty means the
    environment is (from this angle) internally consistent.
    """
    evidence = _vendor_evidence(api)
    present = tuple(sorted(vendor for vendor, items in evidence.items()
                           if items))
    findings: List[ConsistencyFinding] = []
    if len(present) >= 2:
        findings.append(ConsistencyFinding(
            "machine claims to be a guest of multiple hypervisors at once",
            present))
    bios_vendors = [vendor for vendor, items in evidence.items()
                    if "SystemBiosVersion marker" in items]
    if len(bios_vendors) >= 2:
        findings.append(ConsistencyFinding(
            "one BIOS string names multiple virtualization vendors",
            tuple(sorted(bios_vendors))))
    if evidence["wine"] and (evidence["vbox"] or evidence["vmware"]):
        findings.append(ConsistencyFinding(
            "Wine and a hardware hypervisor guest simultaneously",
            tuple(sorted(v for v in ("wine", "vbox", "vmware")
                         if evidence[v]))))
    return findings
