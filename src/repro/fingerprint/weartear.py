"""Wear-and-tear analysis-environment detection (Miramirkhani et al.,
S&P'17) — the Table III adversary.

44 "aging" artifacts across five categories characterize how *used* a
system is: pristine sandboxes score near zero on almost all of them, real
workstations accumulate large values. A decision tree over the artifacts
classifies a machine as ``sandbox`` or ``real``; per the paper, the top-5
artifacts (dnscacheEntries, sysevt, syssrc, deviceClsCount, autoRunCount)
appear in every tree, so Scarecrow only fakes those plus the whole
registry category to flip the verdict.

Artifacts whose sources Scarecrow hooks (DNS cache, event log, registry
cardinalities, registry quota) are measured strictly through the hooked API
surface; purely local enumerations (file counts) go through the filesystem
layer directly, matching the original tool's direct Win32 enumeration.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Tuple

from ..winapi.calling import ApiContext
from ..winsim.errors import nt_success

ArtifactFn = Callable[[ApiContext], float]


@dataclasses.dataclass(frozen=True)
class Artifact:
    name: str
    category: str
    probe: ArtifactFn


_ARTIFACTS: List[Artifact] = []


def _artifact(name: str, category: str) -> Callable[[ArtifactFn], ArtifactFn]:
    def decorator(probe: ArtifactFn) -> ArtifactFn:
        _ARTIFACTS.append(Artifact(name, category, probe))
        return probe

    return decorator


def all_artifacts() -> List[Artifact]:
    return list(_ARTIFACTS)


def category_sizes() -> Dict[str, int]:
    sizes: Dict[str, int] = {}
    for artifact in _ARTIFACTS:
        sizes[artifact.category] = sizes.get(artifact.category, 0) + 1
    return sizes


# -- shared registry-probing helpers ----------------------------------------

def _key_subkey_count(api: ApiContext, path: str) -> int:
    status, handle = api.NtOpenKeyEx(path)
    if not nt_success(status):
        return 0
    status, info = api.NtQueryKey(handle)
    api.NtClose(handle)
    return info["subkeys"] if nt_success(status) and info else 0


def _key_value_count(api: ApiContext, path: str) -> int:
    status, handle = api.NtOpenKeyEx(path)
    if not nt_success(status):
        return 0
    status, info = api.NtQueryKey(handle)
    api.NtClose(handle)
    return info["values"] if nt_success(status) and info else 0


def _count_files(api: ApiContext, directory: str) -> int:
    return sum(1 for _, node in api.machine.filesystem.walk(directory)
               if not node.is_dir)


def _file_size(api: ApiContext, path: str) -> int:
    node = api.machine.filesystem.stat(path)
    return node.size if node is not None and not node.is_dir else 0


def _profile_dir(api: ApiContext) -> str:
    return api.machine.user_profile_dir()


# ---------------------------------------------------------------------------
# System (8)
# ---------------------------------------------------------------------------

@_artifact("sysevt", "system")
def _sysevt(api: ApiContext) -> float:
    """Total system events, via EvtQuery/EvtNext (hooked by Scarecrow)."""
    query = api.EvtQuery("System")
    total = 0
    while True:
        batch = api.EvtNext(query, 512)
        if not batch:
            break
        total += len(batch)
    api.CloseHandle(query)
    return total


@_artifact("syssrc", "system")
def _syssrc(api: ApiContext) -> float:
    """Distinct sources among the most recent 8K system events."""
    query = api.EvtQuery("System")
    records = []
    while True:
        batch = api.EvtNext(query, 512)
        if not batch:
            break
        records.extend(batch)
    api.CloseHandle(query)
    return len({record.source for record in records[-8000:]})


@_artifact("uptimeMinutes", "system")
def _uptime_minutes(api: ApiContext) -> float:
    return api.GetTickCount() / 60_000


@_artifact("processCount", "system")
def _process_count(api: ApiContext) -> float:
    snapshot = api.CreateToolhelp32Snapshot()
    count = 0
    entry = api.Process32First(snapshot)
    while entry is not None:
        count += 1
        entry = api.Process32Next(snapshot)
    api.CloseHandle(snapshot)
    return count


@_artifact("windowCount", "system")
def _window_count(api: ApiContext) -> float:
    return len(api.EnumWindows())


@_artifact("installedServices", "system")
def _installed_services(api: ApiContext) -> float:
    return len(api.EnumServicesStatusA())


@_artifact("userTempFiles", "system")
def _user_temp_files(api: ApiContext) -> float:
    return _count_files(api,
                        f"{_profile_dir(api)}\\AppData\\Local\\Temp")


@_artifact("cpuCount", "system")
def _cpu_count(api: ApiContext) -> float:
    return api.GetSystemInfo().number_of_processors


# ---------------------------------------------------------------------------
# Disk (9)
# ---------------------------------------------------------------------------

@_artifact("totalDiskGB", "disk")
def _total_disk_gb(api: ApiContext) -> float:
    ok, _, total = api.GetDiskFreeSpaceExA("C:\\")
    return total / 1024 ** 3 if ok else 0


@_artifact("freeDiskRatio", "disk")
def _free_disk_ratio(api: ApiContext) -> float:
    ok, free, total = api.GetDiskFreeSpaceExA("C:\\")
    return free / total if ok and total else 0


@_artifact("userDocsCount", "disk")
def _user_docs_count(api: ApiContext) -> float:
    return _count_files(api, f"{_profile_dir(api)}\\Documents")


@_artifact("desktopFileCount", "disk")
def _desktop_file_count(api: ApiContext) -> float:
    return _count_files(api, f"{_profile_dir(api)}\\Desktop")


@_artifact("downloadsCount", "disk")
def _downloads_count(api: ApiContext) -> float:
    return _count_files(api, f"{_profile_dir(api)}\\Downloads")


@_artifact("prefetchCount", "disk")
def _prefetch_count(api: ApiContext) -> float:
    return _count_files(api, "C:\\Windows\\Prefetch")


@_artifact("tempFileCount", "disk")
def _temp_file_count(api: ApiContext) -> float:
    return _count_files(api, "C:\\Windows\\Temp")


@_artifact("programFilesCount", "disk")
def _program_files_count(api: ApiContext) -> float:
    return len(api.machine.filesystem.listdir("C:\\Program Files"))


@_artifact("recentDocsCount", "disk")
def _recent_docs_count(api: ApiContext) -> float:
    return _count_files(
        api, f"{_profile_dir(api)}\\AppData\\Roaming\\Microsoft\\Windows\\"
             "Recent")


# ---------------------------------------------------------------------------
# Network (7)
# ---------------------------------------------------------------------------

@_artifact("dnscacheEntries", "network")
def _dnscache_entries(api: ApiContext) -> float:
    """The #1 artifact — via DnsGetCacheDataTable (hooked by Scarecrow)."""
    return len(api.DnsGetCacheDataTable())


@_artifact("adapterCount", "network")
def _adapter_count(api: ApiContext) -> float:
    return len(api.GetAdaptersInfo())


@_artifact("wifiProfilesCount", "network")
def _wifi_profiles_count(api: ApiContext) -> float:
    return _key_subkey_count(
        api, "HKEY_LOCAL_MACHINE\\SOFTWARE\\Microsoft\\Windows NT\\"
             "CurrentVersion\\NetworkList\\Profiles")


@_artifact("hostsFileSize", "network")
def _hosts_file_size(api: ApiContext) -> float:
    return _file_size(api, "C:\\Windows\\System32\\drivers\\etc\\hosts")


@_artifact("networkCardsCount", "network")
def _network_cards_count(api: ApiContext) -> float:
    return _key_subkey_count(
        api, "HKEY_LOCAL_MACHINE\\SOFTWARE\\Microsoft\\Windows NT\\"
             "CurrentVersion\\NetworkCards")


@_artifact("certCount", "network")
def _cert_count(api: ApiContext) -> float:
    return _key_subkey_count(
        api, "HKEY_LOCAL_MACHINE\\SOFTWARE\\Microsoft\\SystemCertificates\\"
             "ROOT\\Certificates")


@_artifact("proxyConfigured", "network")
def _proxy_configured(api: ApiContext) -> float:
    status, handle = api.NtOpenKeyEx(
        "HKEY_CURRENT_USER\\Software\\Microsoft\\Windows\\CurrentVersion\\"
        "Internet Settings")
    if not nt_success(status):
        return 0
    status, data = api.NtQueryValueKey(handle, "ProxyEnable")
    api.NtClose(handle)
    return float(bool(nt_success(status) and data))


# ---------------------------------------------------------------------------
# Registry (13: the 11 Table III rows + the two top-5 registry reads)
# ---------------------------------------------------------------------------

@_artifact("deviceClsCount", "registry")
def _device_cls_count(api: ApiContext) -> float:
    return _key_subkey_count(
        api, "HKEY_LOCAL_MACHINE\\SYSTEM\\CurrentControlSet\\Control\\"
             "DeviceClasses")


@_artifact("autoRunCount", "registry")
def _auto_run_count(api: ApiContext) -> float:
    return _key_value_count(
        api, "HKEY_LOCAL_MACHINE\\SOFTWARE\\Microsoft\\Windows\\"
             "CurrentVersion\\Run")


@_artifact("regSize", "registry")
def _reg_size(api: ApiContext) -> float:
    from ..winapi.ntdll import SystemInformationClass
    status, info = api.NtQuerySystemInformation(
        SystemInformationClass.SystemRegistryQuotaInformation)
    return info["registry_quota_used"] if nt_success(status) and info else 0


@_artifact("uninstallCount", "registry")
def _uninstall_count(api: ApiContext) -> float:
    return _key_subkey_count(
        api, "HKEY_LOCAL_MACHINE\\SOFTWARE\\Microsoft\\Windows\\"
             "CurrentVersion\\Uninstall")


@_artifact("totalSharedDlls", "registry")
def _total_shared_dlls(api: ApiContext) -> float:
    return _key_value_count(
        api, "HKEY_LOCAL_MACHINE\\SOFTWARE\\Microsoft\\Windows\\"
             "CurrentVersion\\SharedDlls")


@_artifact("totalAppPaths", "registry")
def _total_app_paths(api: ApiContext) -> float:
    return _key_subkey_count(
        api, "HKEY_LOCAL_MACHINE\\SOFTWARE\\Microsoft\\Windows\\"
             "CurrentVersion\\App Paths")


@_artifact("totalActiveSetup", "registry")
def _total_active_setup(api: ApiContext) -> float:
    return _key_subkey_count(
        api, "HKEY_LOCAL_MACHINE\\SOFTWARE\\Microsoft\\Active Setup\\"
             "Installed Components")


@_artifact("totalMissingDlls", "registry")
def _total_missing_dlls(api: ApiContext) -> float:
    """SharedDlls entries whose backing file no longer exists."""
    status, handle = api.NtOpenKeyEx(
        "HKEY_LOCAL_MACHINE\\SOFTWARE\\Microsoft\\Windows\\CurrentVersion\\"
        "SharedDlls")
    if not nt_success(status):
        return 0
    missing = 0
    index = 0
    while True:
        st, entry = api.NtEnumerateValueKey(handle, index)
        if not nt_success(st) or entry is None:
            break
        path = entry[0]
        st_file, _ = api.NtQueryAttributesFile(path)
        if not nt_success(st_file):
            missing += 1
        index += 1
    api.NtClose(handle)
    return missing


@_artifact("usrassistCount", "registry")
def _usrassist_count(api: ApiContext) -> float:
    return _key_subkey_count(
        api, "HKEY_CURRENT_USER\\Software\\Microsoft\\Windows\\"
             "CurrentVersion\\Explorer\\UserAssist")


@_artifact("shimCacheCount", "registry")
def _shim_cache_count(api: ApiContext) -> float:
    return _key_value_count(
        api, "HKEY_LOCAL_MACHINE\\SYSTEM\\CurrentControlSet\\Control\\"
             "Session Manager\\AppCompatCache")


@_artifact("MUICacheEntries", "registry")
def _muicache_entries(api: ApiContext) -> float:
    return _key_value_count(
        api, "HKEY_CURRENT_USER\\Software\\Classes\\Local Settings\\"
             "Software\\Microsoft\\Windows\\Shell\\MuiCache")


@_artifact("FireruleCount", "registry")
def _firerule_count(api: ApiContext) -> float:
    return _key_value_count(
        api, "HKEY_LOCAL_MACHINE\\SYSTEM\\ControlSet001\\services\\"
             "SharedAccess\\Parameters\\FirewallPolicy\\FirewallRules")


@_artifact("USBStorCount", "registry")
def _usbstor_count(api: ApiContext) -> float:
    return _key_subkey_count(
        api, "HKEY_LOCAL_MACHINE\\SYSTEM\\CurrentControlSet\\Services\\"
             "UsbStor")


# ---------------------------------------------------------------------------
# Browser (7)
# ---------------------------------------------------------------------------

def _chrome_profile(api: ApiContext) -> str:
    return (f"{_profile_dir(api)}\\AppData\\Local\\Google\\Chrome\\"
            "User Data\\Default")


@_artifact("browserHistorySize", "browser")
def _browser_history_size(api: ApiContext) -> float:
    return _file_size(api, f"{_chrome_profile(api)}\\History")


@_artifact("browserCookiesSize", "browser")
def _browser_cookies_size(api: ApiContext) -> float:
    return _file_size(api, f"{_chrome_profile(api)}\\Cookies")


@_artifact("browserBookmarksSize", "browser")
def _browser_bookmarks_size(api: ApiContext) -> float:
    return _file_size(api, f"{_chrome_profile(api)}\\Bookmarks")


@_artifact("browserCacheEntries", "browser")
def _browser_cache_entries(api: ApiContext) -> float:
    return _count_files(api, f"{_chrome_profile(api)}\\Cache")


@_artifact("browserExtensionsCount", "browser")
def _browser_extensions_count(api: ApiContext) -> float:
    return len(api.machine.filesystem.listdir(
        f"{_chrome_profile(api)}\\Extensions"))


@_artifact("typedUrlsCount", "browser")
def _typed_urls_count(api: ApiContext) -> float:
    return _key_value_count(
        api, "HKEY_CURRENT_USER\\Software\\Microsoft\\Internet Explorer\\"
             "TypedURLs")


@_artifact("browserDownloadsCount", "browser")
def _browser_downloads_count(api: ApiContext) -> float:
    return _count_files(api, f"{_profile_dir(api)}\\Downloads")


# ---------------------------------------------------------------------------
# Measurement + classification
# ---------------------------------------------------------------------------

def measure_artifacts(api: ApiContext) -> Dict[str, float]:
    return {artifact.name: float(artifact.probe(api))
            for artifact in _ARTIFACTS}


#: The top-5 artifacts ("the most effective artifacts ... used by all of
#: their decision trees") with the sandbox-side thresholds of our tree.
TOP5_RULES: Tuple[Tuple[str, float], ...] = (
    ("dnscacheEntries", 10),
    ("sysevt", 12_000),
    ("syssrc", 12),
    ("deviceClsCount", 40),
    ("autoRunCount", 5),
)


@dataclasses.dataclass
class Classification:
    label: str                      # "sandbox" | "real"
    decisive_artifact: str
    decision_path: List[str]

    @property
    def is_sandbox(self) -> bool:
        return self.label == "sandbox"


def classify(values: Dict[str, float]) -> Classification:
    """Decision tree over the top-5 artifacts.

    Any artifact scoring below its sandbox threshold classifies the
    machine as an analysis environment — real machines comfortably clear
    every threshold, pristine images fail the very first.
    """
    path: List[str] = []
    for name, threshold in TOP5_RULES:
        value = values.get(name, 0.0)
        if value < threshold:
            path.append(f"{name}={value:g} < {threshold:g} -> sandbox")
            return Classification("sandbox", name, path)
        path.append(f"{name}={value:g} >= {threshold:g}")
    return Classification("real", "", path)


def fingerprint(api: ApiContext) -> Classification:
    """Measure then classify, in one call."""
    return classify(measure_artifacts(api))
