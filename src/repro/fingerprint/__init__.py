"""Third-party fingerprinting tools the evaluation pits Scarecrow against."""

from . import pafish, sandprint, weartear
from .pafish import (CATEGORY_ORDER, PafishCheck, PafishReport, run_pafish)
from .sandprint import (Fingerprint, SandboxMatcher, cluster_fingerprints,
                        collect_fingerprint, sandbox_indicators, similarity)
from .scarecrow_detector import (ConsistencyFinding, detect_scarecrow)
from .weartear import (Artifact, Classification, TOP5_RULES, all_artifacts,
                       classify, fingerprint, measure_artifacts)

__all__ = [
    "Artifact", "CATEGORY_ORDER", "Classification", "ConsistencyFinding",
    "Fingerprint", "PafishCheck", "SandboxMatcher", "cluster_fingerprints",
    "collect_fingerprint", "detect_scarecrow", "sandbox_indicators",
    "sandprint", "similarity",
    "PafishReport", "TOP5_RULES", "all_artifacts", "classify",
    "fingerprint", "measure_artifacts", "pafish", "run_pafish", "weartear",
]
