"""Pafish (Paranoid Fish) reimplementation — the Table II adversary.

Every check reads the simulated machine through the same API surface real
Pafish uses, so Scarecrow's hooks steer it exactly as in the paper. The
category inventory follows Table II's row structure (11 categories; the
per-category feature counts in parentheses match the table).

A check returning ``True`` means "traced" — evidence of an analysis
environment was found.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Tuple

from ..hooking.prologue import looks_hooked
from ..winapi.calling import ApiContext
from ..winsim.errors import Win32Error
from ..winsim.hardware import KNOWN_HV_VENDORS
from ..winsim.network import VBOX_OUI, VMWARE_OUIS

GIB = 1024 ** 3

#: Category display order, exactly as in Table II.
CATEGORY_ORDER: Tuple[str, ...] = (
    "Debuggers", "CPU information", "Generic sandbox", "Hook", "Sandboxie",
    "Wine", "VirtualBox", "VMware", "Qemu detection", "Bochs", "Cuckoo")

CheckFn = Callable[[ApiContext], bool]


@dataclasses.dataclass(frozen=True)
class PafishCheck:
    name: str
    category: str
    probe: CheckFn


_CHECKS: List[PafishCheck] = []


def _check(name: str, category: str) -> Callable[[CheckFn], CheckFn]:
    def decorator(probe: CheckFn) -> CheckFn:
        _CHECKS.append(PafishCheck(name, category, probe))
        return probe

    return decorator


def all_checks() -> List[PafishCheck]:
    return list(_CHECKS)


def category_sizes() -> Dict[str, int]:
    sizes: Dict[str, int] = {}
    for check in _CHECKS:
        sizes[check.category] = sizes.get(check.category, 0) + 1
    return sizes


# ---------------------------------------------------------------------------
# Debuggers (1)
# ---------------------------------------------------------------------------

@_check("dbg_isdebuggerpresent", "Debuggers")
def _dbg_isdebuggerpresent(api: ApiContext) -> bool:
    return bool(api.IsDebuggerPresent())


# ---------------------------------------------------------------------------
# CPU information (4)
# ---------------------------------------------------------------------------

@_check("cpu_rdtsc", "CPU information")
def _cpu_rdtsc(api: ApiContext) -> bool:
    """Plain back-to-back RDTSC deltas (unreliable; rarely fires)."""
    deltas = []
    for _ in range(8):
        before = api.rdtsc()
        after = api.rdtsc()
        deltas.append(after - before)
    return sum(deltas) / len(deltas) > 750


@_check("cpu_rdtsc_force_vmexit", "CPU information")
def _cpu_rdtsc_force_vmexit(api: ApiContext) -> bool:
    """RDTSC around CPUID: a trapping hypervisor inflates the delta."""
    deltas = []
    for _ in range(4):
        before = api.rdtsc()
        api.cpuid(1)
        after = api.rdtsc()
        deltas.append(after - before)
    return sum(deltas) / len(deltas) > 1000


@_check("cpu_hv_bit", "CPU information")
def _cpu_hv_bit(api: ApiContext) -> bool:
    return bool(api.cpuid(1)["ecx"] & (1 << 31))


@_check("cpu_known_vm_vendors", "CPU information")
def _cpu_known_vm_vendors(api: ApiContext) -> bool:
    regs = api.cpuid(0x40000000)
    raw = b"".join(regs[r].to_bytes(4, "little") for r in ("ebx", "ecx",
                                                           "edx"))
    vendor = raw.rstrip(b"\x00").decode("ascii", errors="replace")
    return vendor in KNOWN_HV_VENDORS


# ---------------------------------------------------------------------------
# Generic sandbox (12)
# ---------------------------------------------------------------------------

@_check("gen_mouse_activity", "Generic sandbox")
def _gen_mouse_activity(api: ApiContext) -> bool:
    """No cursor movement across a 2-second sleep ⇒ nobody is home."""
    first = api.GetCursorPos()
    api.Sleep(2000)
    second = api.GetCursorPos()
    return first == second


@_check("gen_username", "Generic sandbox")
def _gen_username(api: ApiContext) -> bool:
    return api.GetUserNameA().lower() in {
        "sandbox", "virus", "malware", "sample", "currentuser", "cuckoo",
        "honey"}


@_check("gen_filepath", "Generic sandbox")
def _gen_filepath(api: ApiContext) -> bool:
    path = api.GetModuleFileNameA(None).lower()
    return any(marker in path for marker in ("\\sample", "\\virus",
                                             "\\malware", "\\sandbox"))


@_check("gen_samplename", "Generic sandbox")
def _gen_samplename(api: ApiContext) -> bool:
    basename = api.GetModuleFileNameA(None).rsplit("\\", 1)[-1].lower()
    return basename in {"sample.exe", "malware.exe", "virus.exe", "test.exe"}


@_check("gen_disk_small", "Generic sandbox")
def _gen_disk_small(api: ApiContext) -> bool:
    ok, _, total = api.GetDiskFreeSpaceExA("C:\\")
    return ok and total < 60 * GIB


@_check("gen_disk_geometry", "Generic sandbox")
def _gen_disk_geometry(api: ApiContext) -> bool:
    from ..winapi.kernel32 import IOCTL_DISK_GET_DRIVE_GEOMETRY
    geometry = api.DeviceIoControl("\\\\.\\PhysicalDrive0",
                                   IOCTL_DISK_GET_DRIVE_GEOMETRY)
    if geometry is None:
        return False
    total = (geometry["cylinders"] * geometry["tracks_per_cylinder"] *
             geometry["sectors_per_track"] * geometry["bytes_per_sector"])
    return total < 80 * GIB


@_check("gen_ram_low", "Generic sandbox")
def _gen_ram_low(api: ApiContext) -> bool:
    return api.GlobalMemoryStatusEx().total_phys < 1 * GIB


@_check("gen_uptime", "Generic sandbox")
def _gen_uptime(api: ApiContext) -> bool:
    return api.GetTickCount() < 12 * 60 * 1000


@_check("gen_one_cpu", "Generic sandbox")
def _gen_one_cpu(api: ApiContext) -> bool:
    return api.GetSystemInfo().number_of_processors < 2


@_check("gen_sleep_patched", "Generic sandbox")
def _gen_sleep_patched(api: ApiContext) -> bool:
    before = api.GetTickCount()
    api.Sleep(500)
    after = api.GetTickCount()
    return (after - before) < 450


@_check("gen_vhd_boot", "Generic sandbox")
def _gen_vhd_boot(api: ApiContext) -> bool:
    supported, native = api.IsNativeVhdBoot()
    return supported and native


@_check("gen_dns_sinkhole", "Generic sandbox")
def _gen_dns_sinkhole(api: ApiContext) -> bool:
    return api.DnsQuery_A("pafish-canary.invalid-example-zone.com") is not None


# ---------------------------------------------------------------------------
# Hook (2)
# ---------------------------------------------------------------------------

@_check("hook_shellexecuteexw", "Hook")
def _hook_shellexecuteexw(api: ApiContext) -> bool:
    return looks_hooked(
        api.read_function_prologue("shell32.dll!ShellExecuteExW", 2))


@_check("hook_deletefile", "Hook")
def _hook_deletefile(api: ApiContext) -> bool:
    return looks_hooked(
        api.read_function_prologue("kernel32.dll!DeleteFileA", 2))


# ---------------------------------------------------------------------------
# Sandboxie (1) and Wine (2)
# ---------------------------------------------------------------------------

@_check("sbie_dll", "Sandboxie")
def _sbie_dll(api: ApiContext) -> bool:
    return api.GetModuleHandleA("SbieDll.dll") is not None


@_check("wine_export", "Wine")
def _wine_export(api: ApiContext) -> bool:
    base = api.GetModuleHandleA("kernel32.dll")
    return base is not None and \
        api.GetProcAddress(base, "wine_get_unix_file_name") is not None


@_check("wine_reg_key", "Wine")
def _wine_reg_key(api: ApiContext) -> bool:
    err, handle = api.RegOpenKeyExA("HKEY_CURRENT_USER", "Software\\Wine")
    if err == Win32Error.ERROR_SUCCESS:
        api.RegCloseKey(handle)
        return True
    return False


# ---------------------------------------------------------------------------
# VirtualBox (17)
# ---------------------------------------------------------------------------

def _reg_key_exists(api: ApiContext, hive: str, subkey: str) -> bool:
    err, handle = api.RegOpenKeyExA(hive, subkey)
    if err == Win32Error.ERROR_SUCCESS:
        api.RegCloseKey(handle)
        return True
    return False


def _reg_value_contains(api: ApiContext, hive: str, subkey: str,
                        value: str, needle: str) -> bool:
    err, handle = api.RegOpenKeyExA(hive, subkey)
    if err != Win32Error.ERROR_SUCCESS:
        return False
    err, data = api.RegQueryValueExA(handle, value)
    api.RegCloseKey(handle)
    return err == Win32Error.ERROR_SUCCESS and isinstance(data, str) and \
        needle.lower() in data.lower()


_SCSI_KEY = ("HARDWARE\\DEVICEMAP\\Scsi\\Scsi Port 0\\Scsi Bus 0\\"
             "Target Id 0\\Logical Unit Id 0")


@_check("vbox_reg_guest_additions", "VirtualBox")
def _vbox_reg_guest_additions(api: ApiContext) -> bool:
    return _reg_key_exists(api, "HKEY_LOCAL_MACHINE",
                           "SOFTWARE\\Oracle\\VirtualBox Guest Additions")


@_check("vbox_reg_bios_version", "VirtualBox")
def _vbox_reg_bios_version(api: ApiContext) -> bool:
    return _reg_value_contains(api, "HKEY_LOCAL_MACHINE",
                               "HARDWARE\\Description\\System",
                               "SystemBiosVersion", "VBOX")


@_check("vbox_reg_video_bios", "VirtualBox")
def _vbox_reg_video_bios(api: ApiContext) -> bool:
    return _reg_value_contains(api, "HKEY_LOCAL_MACHINE",
                               "HARDWARE\\Description\\System",
                               "VideoBiosVersion", "VIRTUALBOX")


@_check("vbox_reg_bios_date", "VirtualBox")
def _vbox_reg_bios_date(api: ApiContext) -> bool:
    return _reg_value_contains(api, "HKEY_LOCAL_MACHINE",
                               "HARDWARE\\Description\\System",
                               "SystemBiosDate", "06/23/99")


@_check("vbox_reg_acpi_dsdt", "VirtualBox")
def _vbox_reg_acpi_dsdt(api: ApiContext) -> bool:
    return _reg_key_exists(api, "HKEY_LOCAL_MACHINE",
                           "HARDWARE\\ACPI\\DSDT\\VBOX__")


@_check("vbox_reg_acpi_fadt", "VirtualBox")
def _vbox_reg_acpi_fadt(api: ApiContext) -> bool:
    return _reg_key_exists(api, "HKEY_LOCAL_MACHINE",
                           "HARDWARE\\ACPI\\FADT\\VBOX__")


@_check("vbox_reg_acpi_rsdt", "VirtualBox")
def _vbox_reg_acpi_rsdt(api: ApiContext) -> bool:
    return _reg_key_exists(api, "HKEY_LOCAL_MACHINE",
                           "HARDWARE\\ACPI\\RSDT\\VBOX__")


@_check("vbox_reg_ide_disk", "VirtualBox")
def _vbox_reg_ide_disk(api: ApiContext) -> bool:
    err, handle = api.RegOpenKeyExA(
        "HKEY_LOCAL_MACHINE", "SYSTEM\\CurrentControlSet\\Enum\\IDE")
    if err != Win32Error.ERROR_SUCCESS:
        return False
    index = 0
    found = False
    while True:
        err, name = api.RegEnumKeyExA(handle, index)
        if err != Win32Error.ERROR_SUCCESS or name is None:
            break
        if "vbox" in name.lower():
            found = True
            break
        index += 1
    api.RegCloseKey(handle)
    return found


@_check("vbox_reg_services", "VirtualBox")
def _vbox_reg_services(api: ApiContext) -> bool:
    return _reg_key_exists(
        api, "HKEY_LOCAL_MACHINE",
        "SYSTEM\\CurrentControlSet\\Services\\VBoxService")


@_check("vbox_driver_files", "VirtualBox")
def _vbox_driver_files(api: ApiContext) -> bool:
    from ..winapi.kernel32 import INVALID_FILE_ATTRIBUTES
    for name in ("VBoxMouse.sys", "VBoxGuest.sys", "VBoxSF.sys"):
        path = f"C:\\Windows\\System32\\drivers\\{name}"
        if api.GetFileAttributesA(path) != INVALID_FILE_ATTRIBUTES:
            return True
    return False


@_check("vbox_window", "VirtualBox")
def _vbox_window(api: ApiContext) -> bool:
    return api.FindWindowA("VBoxTrayToolWndClass") is not None


@_check("vbox_processes", "VirtualBox")
def _vbox_processes(api: ApiContext) -> bool:
    wanted = {"vboxservice.exe", "vboxtray.exe"}
    snapshot = api.CreateToolhelp32Snapshot()
    entry = api.Process32First(snapshot)
    found = False
    while entry is not None:
        if entry[1].lower() in wanted:
            found = True
            break
        entry = api.Process32Next(snapshot)
    api.CloseHandle(snapshot)
    return found


@_check("vbox_devices", "VirtualBox")
def _vbox_devices(api: ApiContext) -> bool:
    for device in ("\\\\.\\VBoxGuest", "\\\\.\\VBoxMiniRdrDN"):
        handle = api.CreateFileA(device)
        if handle:
            api.CloseHandle(handle)
            return True
    return False


@_check("vbox_scsi_identifier", "VirtualBox")
def _vbox_scsi_identifier(api: ApiContext) -> bool:
    return _reg_value_contains(api, "HKEY_LOCAL_MACHINE", _SCSI_KEY,
                               "Identifier", "VBOX")


@_check("vbox_mac", "VirtualBox")
def _vbox_mac(api: ApiContext) -> bool:
    return any(":".join(mac.upper().split(":")[:3]) == VBOX_OUI
               for _, mac, _ in api.GetAdaptersInfo())


@_check("vbox_firmware", "VirtualBox")
def _vbox_firmware(api: ApiContext) -> bool:
    blob = api.GetSystemFirmwareTable("RSMB").lower()
    return b"vbox" in blob or b"virtualbox" in blob or b"innotek" in blob


@_check("vbox_net_share", "VirtualBox")
def _vbox_net_share(api: ApiContext) -> bool:
    provider = api.WNetGetProviderNameA(0x00250000)
    return provider is not None and "virtualbox" in provider.lower()


# ---------------------------------------------------------------------------
# VMware (8)
# ---------------------------------------------------------------------------

@_check("vmware_reg_tools", "VMware")
def _vmware_reg_tools(api: ApiContext) -> bool:
    return _reg_key_exists(api, "HKEY_LOCAL_MACHINE",
                           "SOFTWARE\\VMware, Inc.\\VMware Tools")


@_check("vmware_driver_vmmouse", "VMware")
def _vmware_driver_vmmouse(api: ApiContext) -> bool:
    from ..winapi.kernel32 import INVALID_FILE_ATTRIBUTES
    return api.GetFileAttributesA(
        "C:\\Windows\\System32\\drivers\\vmmouse.sys") != \
        INVALID_FILE_ATTRIBUTES


@_check("vmware_driver_vmhgfs", "VMware")
def _vmware_driver_vmhgfs(api: ApiContext) -> bool:
    from ..winapi.kernel32 import INVALID_FILE_ATTRIBUTES
    return api.GetFileAttributesA(
        "C:\\Windows\\System32\\drivers\\vmhgfs.sys") != \
        INVALID_FILE_ATTRIBUTES


@_check("vmware_device_vmci", "VMware")
def _vmware_device_vmci(api: ApiContext) -> bool:
    handle = api.CreateFileA("\\\\.\\vmci")
    if handle:
        api.CloseHandle(handle)
        return True
    return False


@_check("vmware_mac", "VMware")
def _vmware_mac(api: ApiContext) -> bool:
    return any(":".join(mac.upper().split(":")[:3]) in VMWARE_OUIS
               for _, mac, _ in api.GetAdaptersInfo())


@_check("vmware_scsi_identifier", "VMware")
def _vmware_scsi_identifier(api: ApiContext) -> bool:
    return _reg_value_contains(api, "HKEY_LOCAL_MACHINE", _SCSI_KEY,
                               "Identifier", "VMWARE")


@_check("vmware_firmware", "VMware")
def _vmware_firmware(api: ApiContext) -> bool:
    return b"vmware" in api.GetSystemFirmwareTable("RSMB").lower()


@_check("vmware_adapter_name", "VMware")
def _vmware_adapter_name(api: ApiContext) -> bool:
    return any("vmware" in description.lower()
               for _, _, description in api.GetAdaptersInfo())


# ---------------------------------------------------------------------------
# Qemu (3) and Bochs (3)
# ---------------------------------------------------------------------------

_CPU_BRAND_KEY = "HARDWARE\\DESCRIPTION\\System\\CentralProcessor\\0"


@_check("qemu_reg_bios", "Qemu detection")
def _qemu_reg_bios(api: ApiContext) -> bool:
    return _reg_value_contains(api, "HKEY_LOCAL_MACHINE",
                               "HARDWARE\\Description\\System",
                               "SystemBiosVersion", "QEMU")


@_check("qemu_cpu_brand", "Qemu detection")
def _qemu_cpu_brand(api: ApiContext) -> bool:
    return _reg_value_contains(api, "HKEY_LOCAL_MACHINE", _CPU_BRAND_KEY,
                               "ProcessorNameString", "QEMU")


@_check("qemu_scsi_identifier", "Qemu detection")
def _qemu_scsi_identifier(api: ApiContext) -> bool:
    return _reg_value_contains(api, "HKEY_LOCAL_MACHINE", _SCSI_KEY,
                               "Identifier", "QEMU")


@_check("bochs_reg_bios", "Bochs")
def _bochs_reg_bios(api: ApiContext) -> bool:
    return _reg_value_contains(api, "HKEY_LOCAL_MACHINE",
                               "HARDWARE\\Description\\System",
                               "SystemBiosVersion", "BOCHS")


@_check("bochs_cpu_brand", "Bochs")
def _bochs_cpu_brand(api: ApiContext) -> bool:
    return _reg_value_contains(api, "HKEY_LOCAL_MACHINE", _CPU_BRAND_KEY,
                               "ProcessorNameString", "BOCHS")


@_check("bochs_cpu_amd_quirk", "Bochs")
def _bochs_cpu_amd_quirk(api: ApiContext) -> bool:
    """Bochs reports AMD vendor with missing brand leaves — probe both."""
    regs = api.cpuid(0)
    raw = b"".join(regs[r].to_bytes(4, "little")
                   for r in ("ebx", "edx", "ecx"))
    vendor = raw.rstrip(b"\x00").decode("ascii", errors="replace")
    return vendor == "AuthenticAMD" and _reg_value_contains(
        api, "HKEY_LOCAL_MACHINE", _CPU_BRAND_KEY, "ProcessorNameString",
        "Bochs")


# ---------------------------------------------------------------------------
# Cuckoo (3)
# ---------------------------------------------------------------------------

@_check("cuckoo_monitor_dll", "Cuckoo")
def _cuckoo_monitor_dll(api: ApiContext) -> bool:
    return api.GetModuleHandleA("cuckoomon.dll") is not None


@_check("cuckoo_pipe", "Cuckoo")
def _cuckoo_pipe(api: ApiContext) -> bool:
    handle = api.CreateFileA("\\\\.\\pipe\\cuckoo")
    if handle:
        api.CloseHandle(handle)
        return True
    return False


@_check("cuckoo_agent_file", "Cuckoo")
def _cuckoo_agent_file(api: ApiContext) -> bool:
    from ..winapi.kernel32 import INVALID_FILE_ATTRIBUTES
    return api.GetFileAttributesA("C:\\agent.py") != INVALID_FILE_ATTRIBUTES


# ---------------------------------------------------------------------------
# Runner
# ---------------------------------------------------------------------------

@dataclasses.dataclass
class PafishReport:
    """Outcome of one Pafish execution."""

    results: Dict[str, bool]

    def triggered(self) -> List[str]:
        return [name for name, hit in self.results.items() if hit]

    def category_counts(self) -> Dict[str, int]:
        counts = {category: 0 for category in CATEGORY_ORDER}
        by_name = {check.name: check.category for check in _CHECKS}
        for name, hit in self.results.items():
            if hit:
                counts[by_name[name]] += 1
        return counts

    def total_triggered(self) -> int:
        return sum(self.results.values())


def run_pafish(api: ApiContext) -> PafishReport:
    """Execute every check as the given process on the given machine."""
    return PafishReport({check.name: bool(check.probe(api))
                         for check in _CHECKS})
