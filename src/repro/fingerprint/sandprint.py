"""SandPrint-style sandbox fingerprinting (Yokoyama et al., RAID'16).

SandPrint submits a probe binary to many analysis services, collects an
environment fingerprint from each execution, and clusters the returns:
submissions landing in a dense cluster came from the same sandbox fleet,
and a fresh execution matching a known cluster is running *in* a sandbox —
even a bare-metal one, which Pafish-style checks miss.

We reproduce the pipeline: :func:`collect_fingerprint` is the probe,
:func:`cluster_fingerprints` the aggregation, and
:class:`SandboxMatcher` the detection step. The Scarecrow twist the tests
exercise: a protected end-user machine *matches the sandbox clusters*,
which is exactly the indistinguishability the paper claims — from the
attacker's intelligence pipeline's point of view, the end host looks like
yet another analysis node.
"""

from __future__ import annotations

import dataclasses
from typing import FrozenSet, List, Sequence, Tuple

from ..winapi.calling import ApiContext

GIB = 1024 ** 3


@dataclasses.dataclass(frozen=True)
class Fingerprint:
    """One probe submission's view of its execution environment."""

    label: str
    hostname: str
    username: str
    cpu_cores: int
    ram_bucket_gb: int
    disk_bucket_gb: int
    uptime_bucket: str           # "minutes" | "hours" | "days"
    parent_process: str
    debugger_present: bool
    analysis_processes: FrozenSet[str]
    mac_oui: str

    def feature_items(self) -> FrozenSet[str]:
        """The fingerprint as a comparable feature set."""
        items = {
            f"user:{self.username.lower()}",
            f"cores:{self.cpu_cores}",
            f"ram:{self.ram_bucket_gb}",
            f"disk:{self.disk_bucket_gb}",
            f"uptime:{self.uptime_bucket}",
            f"parent:{self.parent_process.lower()}",
            f"dbg:{self.debugger_present}",
            f"oui:{self.mac_oui}",
        }
        items.update(f"proc:{name}" for name in self.analysis_processes)
        return frozenset(items)


def _uptime_bucket(tick_ms: int) -> str:
    if tick_ms < 60 * 60 * 1000:
        return "minutes"
    if tick_ms < 24 * 60 * 60 * 1000:
        return "hours"
    return "days"


_ANALYSIS_PROCESS_MARKERS = (
    "vbox", "vmware", "wireshark", "procmon", "olydbg", "ollydbg", "idaq",
    "idap", "windbg", "fiddler", "sbie", "joebox", "python", "analyzer",
)


def collect_fingerprint(api: ApiContext, label: str = "") -> Fingerprint:
    """What the submitted probe binary reports home."""
    from ..winapi.ntdll import ProcessInformationClass
    memory = api.GlobalMemoryStatusEx()
    ok, _, disk_total = api.GetDiskFreeSpaceExA("C:\\")
    _, info = api.NtQueryInformationProcess(
        ProcessInformationClass.ProcessBasicInformation)
    parent_name = "?"
    analysis: set = set()
    snapshot = api.CreateToolhelp32Snapshot()
    entry = api.Process32First(snapshot)
    while entry is not None:
        pid, name = entry
        if info and pid == info["parent_pid"]:
            parent_name = name
        lowered = name.lower()
        if any(marker in lowered for marker in _ANALYSIS_PROCESS_MARKERS):
            analysis.add(lowered)
        entry = api.Process32Next(snapshot)
    api.CloseHandle(snapshot)
    adapters = api.GetAdaptersInfo()
    oui = ":".join(adapters[0][1].upper().split(":")[:3]) if adapters else ""
    return Fingerprint(
        label=label,
        hostname=api.GetComputerNameA(),
        username=api.GetUserNameA(),
        cpu_cores=api.GetSystemInfo().number_of_processors,
        ram_bucket_gb=max(1, round(memory.total_phys / GIB)),
        disk_bucket_gb=max(1, round(disk_total / (10 * GIB)) * 10)
        if ok else 0,
        uptime_bucket=_uptime_bucket(api.GetTickCount()),
        parent_process=parent_name,
        debugger_present=bool(api.IsDebuggerPresent()),
        analysis_processes=frozenset(analysis),
        mac_oui=oui)


def similarity(first: Fingerprint, second: Fingerprint) -> float:
    """Jaccard similarity over feature items."""
    a, b = first.feature_items(), second.feature_items()
    union = a | b
    return len(a & b) / len(union) if union else 1.0


def cluster_fingerprints(fingerprints: Sequence[Fingerprint],
                         threshold: float = 0.6) -> List[List[Fingerprint]]:
    """Greedy agglomerative clustering by pairwise similarity.

    Deterministic: fingerprints join the first existing cluster whose
    *seed* they resemble beyond ``threshold``.
    """
    clusters: List[List[Fingerprint]] = []
    for fingerprint in fingerprints:
        for cluster in clusters:
            if similarity(cluster[0], fingerprint) >= threshold:
                cluster.append(fingerprint)
                break
        else:
            clusters.append([fingerprint])
    return clusters


#: Feature predicates marking a fingerprint as analysis-like. SandPrint's
#: cluster matching identifies *specific* sandbox installations; these
#: indicators capture the generic "this looks like an analysis node"
#: signal that a Scarecrow-protected host deliberately emits.
def sandbox_indicators(fingerprint: Fingerprint) -> FrozenSet[str]:
    indicators = set()
    if fingerprint.cpu_cores <= 1:
        indicators.add("single-core")
    if fingerprint.ram_bucket_gb <= 1:
        indicators.add("tiny-ram")
    if fingerprint.disk_bucket_gb <= 100:
        indicators.add("small-disk")
    if fingerprint.uptime_bucket == "minutes":
        indicators.add("fresh-boot")
    if fingerprint.parent_process.lower() not in ("explorer.exe", "?"):
        indicators.add("daemon-parent")
    if fingerprint.debugger_present:
        indicators.add("debugger")
    if fingerprint.analysis_processes:
        indicators.add("analysis-processes")
    return frozenset(indicators)


class SandboxMatcher:
    """Detection step: does a fresh execution match a known sandbox?"""

    def __init__(self, known_sandbox_fingerprints: Sequence[Fingerprint],
                 threshold: float = 0.6) -> None:
        self.known = list(known_sandbox_fingerprints)
        self.threshold = threshold

    def match(self, fingerprint: Fingerprint
              ) -> Tuple[bool, float, str]:
        """Returns ``(is_sandbox, best_score, best_label)``."""
        best_score = 0.0
        best_label = ""
        for known in self.known:
            score = similarity(known, fingerprint)
            if score > best_score:
                best_score, best_label = score, known.label
        return (best_score >= self.threshold, best_score, best_label)
