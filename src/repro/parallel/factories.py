"""Named machine-factory registry for the parallel sweep engine.

Worker processes cannot receive closures: a pool worker rebuilds its
:class:`~repro.winsim.machine.Machine` either from a *named* factory
(resolved inside the worker after import, so nothing but the short name
crosses the process boundary) or from a picklable module-level callable.

The built-in names cover every environment the experiments use; call
:func:`register_machine_factory` to add project-specific ones.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Union

from ..winsim.machine import Machine

MachineFactory = Callable[[], Machine]
#: A factory reference: a registered name or a picklable callable.
FactorySpec = Union[str, MachineFactory]

_REGISTRY: Dict[str, MachineFactory] = {}


def register_machine_factory(name: str, factory: MachineFactory,
                             replace: bool = False) -> None:
    """Register ``factory`` under ``name`` for use across worker processes.

    Registration happens at import time of the defining module, so worker
    processes (which import this package afresh) see the same names.
    """
    if not replace and name in _REGISTRY and _REGISTRY[name] is not factory:
        raise ValueError(f"machine factory {name!r} already registered")
    _REGISTRY[name] = factory


def resolve_machine_factory(spec: FactorySpec) -> MachineFactory:
    """Turn a factory spec (name or callable) into a callable."""
    if callable(spec):
        return spec
    _ensure_builtins()
    try:
        return _REGISTRY[spec]
    except KeyError:
        raise KeyError(
            f"unknown machine factory {spec!r}; known: "
            f"{', '.join(available_factories())}") from None


def available_factories() -> List[str]:
    _ensure_builtins()
    return sorted(_REGISTRY)


# -- built-in factories --------------------------------------------------------

def _bare_metal() -> Machine:
    from ..analysis.environments import build_bare_metal_sandbox
    return build_bare_metal_sandbox()


def _bare_metal_light() -> Machine:
    """The Figure 4 factory: bare metal without the aging pass (faster)."""
    from ..analysis.environments import build_bare_metal_sandbox
    return build_bare_metal_sandbox(aged=False)


def _cuckoo_vm() -> Machine:
    from ..analysis.environments import build_cuckoo_vm_sandbox
    return build_cuckoo_vm_sandbox()


def _cuckoo_vm_transparent() -> Machine:
    from ..analysis.environments import build_cuckoo_vm_sandbox
    return build_cuckoo_vm_sandbox(transparent=True)


def _end_user() -> Machine:
    from ..analysis.environments import build_end_user_machine
    return build_end_user_machine()


def _end_user_with_documents() -> Machine:
    """The case-study factory: an end-user host with documents at risk."""
    from ..experiments.casestudies import _end_user_factory
    return _end_user_factory()


_BUILTINS = {
    "bare-metal": _bare_metal,
    "bare-metal-light": _bare_metal_light,
    "cuckoo-vm": _cuckoo_vm,
    "cuckoo-vm-transparent": _cuckoo_vm_transparent,
    "end-user": _end_user,
    "end-user-documents": _end_user_with_documents,
}


def _ensure_builtins() -> None:
    for name, factory in _BUILTINS.items():
        _REGISTRY.setdefault(name, factory)
