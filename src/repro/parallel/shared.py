"""Fork-inherited shared worker state: build once, inherit for free.

On fork-capable platforms a pool worker is a copy-on-write clone of the
parent at fork time. Anything the parent placed in this module's registry
*before* creating the pool is therefore already present in every worker —
no pickling, no transfer, no per-worker rebuild. The parent publishes the
frozen deception database and a pre-built
:class:`~repro.parallel.template.MachineTemplate` here, and workers look
them up by key in their initializer.

The registry is advisory, never load-bearing: every lookup validates what
it finds (content fingerprint for the database blob, type and delta mode
for the template) and a miss simply falls back to the pickled-transfer
path that spawn-start-method platforms always use. The sweep reports
which path each worker actually took (``shared_state_used`` /
``ChunkHeader.shared_database``), so "zero-copy" is an observed fact, not
an assumption.

Keys are content-derived: the database key is a crc32:length fingerprint
of the exact snapshot blob being shipped, so a worker that inherited a
*different* database (stale module state, corrupted registry) cannot
silently use it — the fingerprint check recomputes the crc inline and
refuses the hit.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from ..core.database import FrozenDeceptionDatabase
from ..telemetry.metrics import TELEMETRY
from .template import MachineTemplate

#: Module-level registry inherited through fork. Keyed by
#: ``(kind, fingerprint)``.
_REGISTRY: Dict[Tuple[str, str], Any] = {}


@dataclass(frozen=True)
class SharedKeys:
    """Registry keys a sweep passes to its workers through initargs.

    Only the *keys* travel through the pool (a few dozen bytes); the
    payloads they name ride the fork. ``None`` means the parent did not
    publish that payload (spawn platform, or shared state disabled).
    """

    database: Optional[str] = None
    template: Optional[str] = None


def database_fingerprint(blob: bytes) -> str:
    """Content fingerprint of a pickled database snapshot."""
    return f"{zlib.crc32(blob) & 0xFFFFFFFF:08x}:{len(blob)}"


def template_key(factory_name: str, factory_id: int, delta: object) -> str:
    """Registry key for a pre-built template.

    Includes the resolved callable's ``id()``: a forked child sees the
    same object at the same address, while a spawn child (fresh import)
    almost certainly does not — a cheap way to make stale hits unlikely
    on top of the type/delta validation at lookup.
    """
    return f"{factory_name}:{factory_id:#x}:delta={delta!r}"


def publish_database(blob: bytes, database: Any) -> str:
    """Publish a rehydrated frozen database under its blob fingerprint."""
    key = database_fingerprint(blob)
    _REGISTRY[("database", key)] = database
    return key


def publish_template(key: str, template: MachineTemplate) -> str:
    """Publish a pre-built machine template under ``key``."""
    _REGISTRY[("template", key)] = template
    return key


def lookup_database(key: Optional[str], blob: bytes) -> Optional[Any]:
    """The inherited database for ``key`` — or None, falling back to
    pickled transfer.

    Validates by recomputing the crc32:length fingerprint of ``blob``
    inline (not through :func:`database_fingerprint`, so a monkeypatched
    helper cannot vouch for a corrupted registry): a key that does not
    match the blob the sweep actually shipped is refused, as is a
    registry value that is not a :class:`FrozenDeceptionDatabase`.
    """
    if key is None:
        return None
    expected = f"{zlib.crc32(blob) & 0xFFFFFFFF:08x}:{len(blob)}"
    if key != expected:
        TELEMETRY.count("parallel.shared_db_misses")
        return None
    found = _REGISTRY.get(("database", key))
    if not isinstance(found, FrozenDeceptionDatabase):
        TELEMETRY.count("parallel.shared_db_misses")
        return None
    TELEMETRY.count("parallel.shared_db_hits")
    return found


def lookup_template(key: Optional[str],
                    delta: object) -> Optional[MachineTemplate]:
    """The inherited pre-built template for ``key`` — or None.

    Refuses entries that are not a built :class:`MachineTemplate` with
    the requested delta mode (corruption, or a sweep reconfigured between
    publish and fork).
    """
    if key is None:
        return None
    found = _REGISTRY.get(("template", key))
    if (not isinstance(found, MachineTemplate) or not found.built
            or found.delta != delta):
        TELEMETRY.count("parallel.shared_template_misses")
        return None
    TELEMETRY.count("parallel.shared_template_hits")
    return found


def clear() -> None:
    """Drop everything published (test hook)."""
    _REGISTRY.clear()
