"""Picklable result envelopes for the parallel sweep engine.

Workers cannot ship a live :class:`~repro.winsim.machine.Machine` (or its
attached controller) back to the parent — nor should they: the parent only
consumes traces, results and verdicts. A :class:`PairEnvelope` carries the
full :class:`~repro.experiments.runner.PairOutcome` with per-run machine
references stripped, plus a :class:`SweepStats` record; a
:class:`SweepError` is the structured failure report a sweep records
instead of aborting (the graceful-degradation story).
"""

from __future__ import annotations

import dataclasses
import os
from typing import Optional, Union

from ..telemetry.snapshot import MetricsSnapshot


@dataclasses.dataclass(frozen=True)
class SweepStats:
    """Per-sample execution statistics attached to every outcome."""

    sample_md5: str
    index: int
    worker_pid: int
    retry_count: int
    wall_time_s: float
    #: Fingerprint attempts Scarecrow's engine logged during the with-run.
    fingerprint_events: int
    #: Evasion predicates the sample evaluated across both configurations.
    checks_evaluated: int
    #: Kernel events captured across both traces.
    trace_events: int


@dataclasses.dataclass(frozen=True)
class SweepError:
    """One sample that kept failing after its retry budget."""

    index: int
    sample_md5: str
    error_type: str
    message: str
    traceback: str
    worker_pid: int
    retry_count: int
    #: Telemetry delta recorded while the job failed (None when disabled).
    metrics: Optional[MetricsSnapshot] = None

    def __str__(self) -> str:
        return (f"sample {self.sample_md5} (#{self.index}): "
                f"{self.error_type}: {self.message} "
                f"[worker {self.worker_pid}, {self.retry_count} retries]")


@dataclasses.dataclass
class PairEnvelope:
    """One successful pair execution, ready to cross a process boundary."""

    index: int
    outcome: "PairOutcome"
    stats: SweepStats
    #: Telemetry delta recorded while this pair executed (None when the
    #: telemetry layer is disabled). Deltas from every envelope merge into
    #: pool-wide totals identical to a serial run.
    metrics: Optional[MetricsSnapshot] = None

    def detached(self) -> "PairEnvelope":
        """A copy with machine/controller references stripped.

        Everything the experiments consume — traces, run results, root
        pids, the comparison verdict — survives; only the live simulation
        objects are dropped.
        """
        return dataclasses.replace(self, outcome=detach_outcome(self.outcome))


SweepEntry = Union[PairEnvelope, SweepError]


def detach_outcome(outcome: "PairOutcome") -> "PairOutcome":
    """Copy of ``outcome`` with live machine/controller references stripped.

    The picklable core every comparison works on — also what the
    template-parity check hashes when proving a templated run matches its
    fresh-factory reference byte for byte.
    """
    return dataclasses.replace(
        outcome,
        without=dataclasses.replace(outcome.without,
                                    machine=None, controller=None),
        with_scarecrow=dataclasses.replace(outcome.with_scarecrow,
                                           machine=None, controller=None))


def canonical_entry(entry: SweepEntry) -> SweepEntry:
    """``entry`` with host-noise fields normalised for cross-path comparison.

    Worker pids, host wall-clock seconds and ``wallclock.*`` latency
    metrics legitimately differ between serial, templated-serial and
    pooled executions of the same corpus; nothing else may. The canonical
    form therefore pickles byte-identically across all three paths — the
    property the benchmark and the parity tests assert.
    """
    metrics = (entry.metrics.deterministic()
               if entry.metrics is not None else None)
    if isinstance(entry, SweepError):
        return dataclasses.replace(entry, worker_pid=0, metrics=metrics)
    stats = dataclasses.replace(entry.stats, worker_pid=0, wall_time_s=0.0)
    return dataclasses.replace(entry, stats=stats, metrics=metrics)


def build_envelope(index: int, outcome: "PairOutcome", retry_count: int,
                   wall_time_s: float,
                   metrics: Optional[MetricsSnapshot] = None
                   ) -> PairEnvelope:
    """Wrap a finished pair with its execution statistics."""
    controller = outcome.with_scarecrow.controller
    fingerprint_events = (len(controller.fingerprint_events())
                          if controller is not None else 0)
    checks = (len(outcome.without.result.checks_evaluated) +
              len(outcome.with_scarecrow.result.checks_evaluated))
    trace_events = (len(outcome.without.trace) +
                    len(outcome.with_scarecrow.trace))
    stats = SweepStats(
        sample_md5=outcome.sample.md5, index=index,
        worker_pid=os.getpid(), retry_count=retry_count,
        wall_time_s=wall_time_s, fingerprint_events=fingerprint_events,
        checks_evaluated=checks, trace_events=trace_events)
    return PairEnvelope(index=index, outcome=outcome, stats=stats,
                        metrics=metrics)
