"""Picklable result envelopes for the parallel sweep engine.

Workers cannot ship a live :class:`~repro.winsim.machine.Machine` (or its
attached controller) back to the parent — nor should they: the parent only
consumes traces, results and verdicts. A :class:`PairEnvelope` carries the
full :class:`~repro.experiments.runner.PairOutcome` with per-run machine
references stripped, plus a :class:`SweepStats` record; a
:class:`SweepError` is the structured failure report a sweep records
instead of aborting (the graceful-degradation story).

The second half of this module is the *binary* wire format those entries
cross the process boundary in. A chunk of results travels as one framed
blob: a magic/version preamble, a :class:`ChunkHeader` describing the
worker that produced it (pid, whether it ran on fork-shared state, its
delta-restore counters), then one self-delimiting record frame per entry.
Each frame names the record type it carries, stores a crc32 of its
payload, and compresses the payload when that is a win — and each entry
is pickled *separately* inside its frame, so decoded entries are free of
cross-entry object sharing and stay byte-identical to individually
submitted jobs. Corruption anywhere (bad magic, wrong version, crc
mismatch, type-tag mismatch) raises :class:`EnvelopeError` at decode;
the sweep degrades the affected chunk to per-job errors instead of
aborting.
"""

from __future__ import annotations

import dataclasses
import os
import pickle
import struct
import zlib
from typing import List, Optional, Tuple, Union

from ..telemetry.snapshot import MetricsSnapshot


@dataclasses.dataclass(frozen=True)
class SweepStats:
    """Per-sample execution statistics attached to every outcome."""

    sample_md5: str
    index: int
    worker_pid: int
    retry_count: int
    wall_time_s: float
    #: Fingerprint attempts Scarecrow's engine logged during the with-run.
    fingerprint_events: int
    #: Evasion predicates the sample evaluated across both configurations.
    checks_evaluated: int
    #: Kernel events captured across both traces.
    trace_events: int


@dataclasses.dataclass(frozen=True)
class SweepError:
    """One sample that kept failing after its retry budget."""

    index: int
    sample_md5: str
    error_type: str
    message: str
    traceback: str
    worker_pid: int
    retry_count: int
    #: Telemetry delta recorded while the job failed (None when disabled).
    metrics: Optional[MetricsSnapshot] = None

    def __str__(self) -> str:
        return (f"sample {self.sample_md5} (#{self.index}): "
                f"{self.error_type}: {self.message} "
                f"[worker {self.worker_pid}, {self.retry_count} retries]")


@dataclasses.dataclass
class PairEnvelope:
    """One successful pair execution, ready to cross a process boundary."""

    index: int
    outcome: "PairOutcome"
    stats: SweepStats
    #: Telemetry delta recorded while this pair executed (None when the
    #: telemetry layer is disabled). Deltas from every envelope merge into
    #: pool-wide totals identical to a serial run.
    metrics: Optional[MetricsSnapshot] = None

    def detached(self) -> "PairEnvelope":
        """A copy with machine/controller references stripped.

        Everything the experiments consume — traces, run results, root
        pids, the comparison verdict — survives; only the live simulation
        objects are dropped.
        """
        return dataclasses.replace(self, outcome=detach_outcome(self.outcome))


SweepEntry = Union[PairEnvelope, SweepError]


def detach_outcome(outcome: "PairOutcome") -> "PairOutcome":
    """Copy of ``outcome`` with live machine/controller references stripped.

    The picklable core every comparison works on — also what the
    template-parity check hashes when proving a templated run matches its
    fresh-factory reference byte for byte.
    """
    return dataclasses.replace(
        outcome,
        without=dataclasses.replace(outcome.without,
                                    machine=None, controller=None),
        with_scarecrow=dataclasses.replace(outcome.with_scarecrow,
                                           machine=None, controller=None))


def canonical_entry(entry: SweepEntry) -> SweepEntry:
    """``entry`` with host-noise fields normalised for cross-path comparison.

    Worker pids, host wall-clock seconds and ``wallclock.*`` latency
    metrics legitimately differ between serial, templated-serial and
    pooled executions of the same corpus; nothing else may. The canonical
    form therefore pickles byte-identically across all three paths — the
    property the benchmark and the parity tests assert.
    """
    metrics = (entry.metrics.deterministic()
               if entry.metrics is not None else None)
    if isinstance(entry, SweepError):
        return dataclasses.replace(entry, worker_pid=0, metrics=metrics)
    stats = dataclasses.replace(entry.stats, worker_pid=0, wall_time_s=0.0)
    return dataclasses.replace(entry, stats=stats, metrics=metrics)


def build_envelope(index: int, outcome: "PairOutcome", retry_count: int,
                   wall_time_s: float,
                   metrics: Optional[MetricsSnapshot] = None
                   ) -> PairEnvelope:
    """Wrap a finished pair with its execution statistics."""
    controller = outcome.with_scarecrow.controller
    fingerprint_events = (len(controller.fingerprint_events())
                          if controller is not None else 0)
    checks = (len(outcome.without.result.checks_evaluated) +
              len(outcome.with_scarecrow.result.checks_evaluated))
    trace_events = (len(outcome.without.trace) +
                    len(outcome.with_scarecrow.trace))
    stats = SweepStats(
        sample_md5=outcome.sample.md5, index=index,
        worker_pid=os.getpid(), retry_count=retry_count,
        wall_time_s=wall_time_s, fingerprint_events=fingerprint_events,
        checks_evaluated=checks, trace_events=trace_events)
    return PairEnvelope(index=index, outcome=outcome, stats=stats,
                        metrics=metrics)


# -- binary wire format --------------------------------------------------------

class EnvelopeError(RuntimeError):
    """A framed record or chunk failed validation at decode time."""


#: Frame preamble: magic, version, flags, type-tag length.
_FRAME_MAGIC = b"RE"
_FRAME_VERSION = 1
_FRAME_HEAD = struct.Struct(">2sBBB")      # magic, version, flags, kind_len
_FRAME_BODY = struct.Struct(">II")         # payload_len, crc32

_CHUNK_MAGIC = b"RCK1"
_CHUNK_HEAD = struct.Struct(">4sH")        # magic, record count

#: Payload is zlib-compressed (set only when compression actually shrank it).
FLAG_COMPRESSED = 0x01


@dataclasses.dataclass(frozen=True)
class ChunkHeader:
    """Worker-side provenance attached to every result chunk.

    This is how "zero-copy" stays an observed fact: each chunk states
    whether its worker ran on the fork-inherited database/template or fell
    back to pickled transfer, and how many delta restores it performed
    while producing these entries.
    """

    worker_pid: int
    #: Worker resolved its database from the fork-shared registry.
    shared_database: bool = False
    #: Worker resolved its pre-built template from the fork-shared registry.
    shared_template: bool = False
    #: Delta (dirty-set) restores performed while this chunk executed.
    delta_restores: int = 0
    #: Full restores performed while this chunk executed.
    full_restores: int = 0
    #: Total dirty-subsystem count across this chunk's delta restores.
    dirty_subsystems: int = 0


def encode_record(record: object) -> bytes:
    """Frame one record: type-tagged, crc-protected, compressed when smaller.

    The record is pickled on its own — never batched with its chunk
    siblings — which is what keeps decoded entries byte-identical to
    entries that crossed the boundary one pickle at a time.
    """
    kind = type(record).__name__.encode("ascii")
    if len(kind) > 255:
        raise EnvelopeError(f"record type name too long: {len(kind)}")
    raw = pickle.dumps(record)
    compressed = zlib.compress(raw, 6)
    flags = 0
    payload = raw
    if len(compressed) < len(raw):
        flags |= FLAG_COMPRESSED
        payload = compressed
    return b"".join((
        _FRAME_HEAD.pack(_FRAME_MAGIC, _FRAME_VERSION, flags, len(kind)),
        kind,
        _FRAME_BODY.pack(len(payload), zlib.crc32(payload) & 0xFFFFFFFF),
        payload,
    ))


def _decode_frame(data: bytes, offset: int) -> Tuple[object, int]:
    """Decode one frame at ``offset``; returns (record, next_offset)."""
    head_end = offset + _FRAME_HEAD.size
    if head_end > len(data):
        raise EnvelopeError("truncated frame head")
    magic, version, flags, kind_len = _FRAME_HEAD.unpack_from(data, offset)
    if magic != _FRAME_MAGIC:
        raise EnvelopeError(f"bad frame magic {magic!r}")
    if version != _FRAME_VERSION:
        raise EnvelopeError(f"unsupported frame version {version}")
    kind_end = head_end + kind_len
    body_end = kind_end + _FRAME_BODY.size
    if body_end > len(data):
        raise EnvelopeError("truncated frame body")
    kind = data[head_end:kind_end].decode("ascii")
    payload_len, crc = _FRAME_BODY.unpack_from(data, kind_end)
    payload_end = body_end + payload_len
    if payload_end > len(data):
        raise EnvelopeError("truncated frame payload")
    payload = data[body_end:payload_end]
    if zlib.crc32(payload) & 0xFFFFFFFF != crc:
        raise EnvelopeError(f"crc mismatch in {kind} frame")
    if flags & FLAG_COMPRESSED:
        try:
            payload = zlib.decompress(payload)
        except zlib.error as exc:
            raise EnvelopeError(f"corrupt compressed payload: {exc}") from exc
    try:
        record = pickle.loads(payload)
    except Exception as exc:
        raise EnvelopeError(f"unpicklable {kind} payload: {exc}") from exc
    if type(record).__name__ != kind:
        raise EnvelopeError(
            f"frame tagged {kind} decoded to {type(record).__name__}")
    return record, payload_end


def decode_record(data: bytes) -> object:
    """Decode a single framed record; the whole buffer must be consumed."""
    record, end = _decode_frame(data, 0)
    if end != len(data):
        raise EnvelopeError(f"{len(data) - end} trailing bytes after frame")
    return record


def encode_chunk(entries: List[SweepEntry], header: ChunkHeader) -> bytes:
    """Frame a chunk: preamble, header frame, one frame per entry."""
    frames = [encode_record(header)]
    frames.extend(encode_record(entry) for entry in entries)
    return _CHUNK_HEAD.pack(_CHUNK_MAGIC, len(entries)) + b"".join(frames)


def decode_chunk(data: bytes) -> Tuple[List[SweepEntry], ChunkHeader]:
    """Decode a framed chunk back to its entries and provenance header."""
    if len(data) < _CHUNK_HEAD.size:
        raise EnvelopeError("truncated chunk head")
    magic, count = _CHUNK_HEAD.unpack_from(data, 0)
    if magic != _CHUNK_MAGIC:
        raise EnvelopeError(f"bad chunk magic {magic!r}")
    offset = _CHUNK_HEAD.size
    header, offset = _decode_frame(data, offset)
    if not isinstance(header, ChunkHeader):
        raise EnvelopeError(
            f"chunk header frame decoded to {type(header).__name__}")
    entries: List[SweepEntry] = []
    for _ in range(count):
        record, offset = _decode_frame(data, offset)
        entries.append(record)
    if offset != len(data):
        raise EnvelopeError(
            f"{len(data) - offset} trailing bytes after chunk")
    return entries, header
