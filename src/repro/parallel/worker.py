"""Worker-side execution of sweep jobs.

Each pool worker holds its own machine source — a
:class:`~repro.parallel.template.MachineTemplate` built once at
initialisation (the default), or a plain per-run factory — plus a
read-only :class:`~repro.core.database.FrozenDeceptionDatabase` rehydrated
from the snapshot the parent shipped through the pool initializer and the
shared :class:`~repro.core.profiles.ScarecrowConfig`. Jobs arrive in
:class:`PairChunk` batches (one pool round-trip amortised over the chunk)
and retry in place (same worker, same deserialized sample) up to their
retry budget before turning into a
:class:`~repro.parallel.envelope.SweepError`.
"""

from __future__ import annotations

import dataclasses
import os
import pickle
import time
import traceback
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from ..core.database import (DatabaseSnapshot, DeceptionDatabase,
                             FrozenDeceptionDatabase)
from ..core.profiles import ScarecrowConfig
from ..malware.sample import EvasiveSample
from ..telemetry.metrics import TELEMETRY
from ..telemetry.snapshot import MetricsSnapshot
from . import shared
from .envelope import (ChunkHeader, PairEnvelope, SweepEntry, SweepError,
                       build_envelope, detach_outcome, encode_chunk)
from .factories import FactorySpec, MachineFactory, resolve_machine_factory
from .template import TEMPLATE_PARITY_ERROR, DeltaMode, MachineTemplate

#: Per-process worker state, filled by :func:`initialize_worker`.
_STATE: Dict[str, Any] = {}

#: ``template`` argument values accepted by :func:`initialize_worker` and
#: :class:`~repro.parallel.sweep.ParallelSweep`.
TemplateMode = Union[bool, str]


@dataclasses.dataclass
class PairJob:
    """One (sample, submission index) unit of sweep work."""

    index: int
    sample: EvasiveSample
    max_retries: int = 1


@dataclasses.dataclass
class PairChunk:
    """A batch of :class:`PairJob` submitted as one pool round-trip."""

    jobs: List[PairJob]


def _timed_factory(build: MachineFactory) -> MachineFactory:
    """Wrap a machine source so acquisition cost lands in telemetry.

    Covers both flavours — full factory builds and template restores —
    under the one ``wallclock.machine_setup_ns`` histogram, so the
    setup-vs-execute split (against ``wallclock.job_ns``) is measured, not
    inferred. The ``wallclock.`` prefix keeps it out of deterministic
    serial-vs-pool comparisons, like every other host-time metric.
    """
    def timed() -> Any:
        if not TELEMETRY.enabled:
            return build()
        start = time.perf_counter_ns()
        machine = build()
        TELEMETRY.observe("wallclock.machine_setup_ns",
                          time.perf_counter_ns() - start)
        return machine
    return timed


def initialize_worker(factory_spec: FactorySpec,
                      db_snapshot: Union[DatabaseSnapshot, bytes],
                      config: Optional[ScarecrowConfig],
                      telemetry: bool = False,
                      template: TemplateMode = False,
                      delta: DeltaMode = True,
                      shared_keys: Optional[shared.SharedKeys] = None) -> None:
    """Pool/serial initializer: build this worker's private fixtures.

    ``db_snapshot`` is either a live :class:`DatabaseSnapshot` or its
    pre-pickled bytes (what :class:`~repro.parallel.sweep.ParallelSweep`
    ships, so serial and pooled workers deserialize the exact same blob).

    ``template`` selects the machine source: ``False`` rebuilds from the
    factory on every run, ``True`` builds a :class:`MachineTemplate` once
    here and rewinds it between runs, and ``"verify"`` templates *and*
    re-runs every sample on a fresh machine, flagging any divergence as a
    ``TemplateParityError`` entry. ``delta`` is handed to the template
    (dirty-set restores, full restores, or delta-verify).

    ``shared_keys`` names payloads the parent published to the
    fork-shared registry (:mod:`repro.parallel.shared`) before creating
    the pool. Every lookup validates and falls back to the pickled /
    rebuild path on a miss — spawn platforms, corrupted registries and
    stale keys all degrade to exactly the pre-shared behaviour, and
    ``worker_shared_flags`` reports which path this worker actually took.
    """
    TELEMETRY.enabled = bool(telemetry)
    keys = shared_keys or shared.SharedKeys()
    blob = (db_snapshot if isinstance(db_snapshot, bytes)
            else pickle.dumps(db_snapshot))
    database = shared.lookup_database(keys.database, blob)
    _STATE["shared_database"] = database is not None
    if database is None:
        database = FrozenDeceptionDatabase.from_snapshot(pickle.loads(blob))
    factory = resolve_machine_factory(factory_spec)
    machine_template: Optional[MachineTemplate] = None
    _STATE["shared_template"] = False
    if template:
        machine_template = shared.lookup_template(keys.template, delta)
        if machine_template is not None:
            _STATE["shared_template"] = True
        else:
            machine_template = MachineTemplate(factory, delta=delta)
            _build_template(machine_template)
        _STATE["factory"] = _timed_factory(machine_template.checkout)
    else:
        _STATE["factory"] = _timed_factory(factory)
    _STATE["template"] = machine_template
    _STATE["fresh_factory"] = factory
    _STATE["verify"] = template == "verify"
    _STATE["database"] = database
    _STATE["config"] = config


def _build_template(machine_template: MachineTemplate) -> None:
    """Eager template build, timed separately from per-job restores."""
    if not TELEMETRY.enabled:
        machine_template.build()
        return
    start = time.perf_counter_ns()
    machine_template.build()
    TELEMETRY.observe("wallclock.template_build_ns",
                      time.perf_counter_ns() - start)


def reset_worker() -> None:
    """Drop initializer state (test hook)."""
    _STATE.clear()


def execute_pair_job(job: PairJob) -> SweepEntry:
    """Entry point the executors submit; relies on initializer state."""
    entry = run_pair_job(job, _STATE["factory"], _STATE["database"],
                         _STATE["config"])
    if _STATE.get("verify") and isinstance(entry, PairEnvelope):
        parity_error = _check_template_parity(job, entry)
        if parity_error is not None:
            return parity_error
    return entry


def execute_pair_chunk(chunk: PairChunk) -> bytes:
    """Run a chunk of jobs; returns one framed binary chunk envelope.

    Entries are pickled one frame at a time inside the envelope (see
    :func:`~repro.parallel.envelope.encode_record`), which keeps the
    parent's decoded entries free of cross-entry object sharing — chunked
    results stay byte-identical to individually-submitted jobs. The
    :class:`~repro.parallel.envelope.ChunkHeader` carries this worker's
    shared-state provenance and the restore work the chunk cost.
    """
    template: Optional[MachineTemplate] = _STATE.get("template")
    before = _restore_counters(template)
    entries = [execute_pair_job(job) for job in chunk.jobs]
    after = _restore_counters(template)
    header = ChunkHeader(
        worker_pid=os.getpid(),
        shared_database=bool(_STATE.get("shared_database")),
        shared_template=bool(_STATE.get("shared_template")),
        delta_restores=after[0] - before[0],
        full_restores=after[1] - before[1],
        dirty_subsystems=after[2] - before[2])
    return encode_chunk(entries, header)


def _restore_counters(template: Optional[MachineTemplate]
                      ) -> Tuple[int, int, int]:
    """(delta restores, full restores, dirty subsystems) so far."""
    if template is None:
        return (0, 0, 0)
    return (template.delta_restore_count, template.full_restore_count,
            template.dirty_subsystem_total)


def _check_template_parity(job: PairJob,
                           entry: PairEnvelope) -> Optional[SweepError]:
    """Re-run ``job`` on a fresh-factory machine; compare pickled outcomes.

    The reference run executes with telemetry disabled so it cannot
    pollute the job's recorded metrics delta.
    """
    prior_enabled = TELEMETRY.enabled
    TELEMETRY.enabled = False
    try:
        from ..experiments.runner import run_pair
        reference = run_pair(job.sample, _STATE["fresh_factory"],
                             _STATE["database"], _STATE["config"])
    except Exception as exc:
        return SweepError(
            index=job.index, sample_md5=job.sample.md5,
            error_type=TEMPLATE_PARITY_ERROR,
            message=("fresh-factory reference run failed: "
                     f"{type(exc).__name__}: {exc}"),
            traceback=traceback.format_exc(), worker_pid=os.getpid(),
            retry_count=entry.stats.retry_count)
    finally:
        TELEMETRY.enabled = prior_enabled
    expected = pickle.dumps(detach_outcome(reference))
    actual = pickle.dumps(entry.outcome)
    if actual == expected:
        return None
    return SweepError(
        index=job.index, sample_md5=job.sample.md5,
        error_type=TEMPLATE_PARITY_ERROR,
        message=("templated outcome diverged from fresh-factory reference "
                 f"({len(actual)} vs {len(expected)} pickled bytes)"),
        traceback="", worker_pid=os.getpid(),
        retry_count=entry.stats.retry_count)


def _job_metrics_baseline() -> Optional[MetricsSnapshot]:
    """Pre-job snapshot, or None when the telemetry layer is disabled.

    Job metrics are captured as a *delta* against this baseline rather
    than by resetting the registry, so an enclosing measurement (a CLI
    ``--telemetry`` run, a long-lived serial process) keeps accumulating —
    and the delta is identical whether the registry started empty (a
    fresh pool worker) or carried history (the serial path).
    """
    return TELEMETRY.snapshot() if TELEMETRY.enabled else None


def _finish_job_metrics(baseline: Optional[MetricsSnapshot], kind: str,
                        retries: int, wall_time_s: float,
                        failed: bool = False) -> Optional[MetricsSnapshot]:
    if baseline is None:
        return None
    TELEMETRY.count(f"worker.{kind}s")
    if failed:
        TELEMETRY.count(f"worker.{kind}s_failed")
    if retries:
        TELEMETRY.count("worker.retries", retries)
    TELEMETRY.observe(f"wallclock.{kind}_ns", int(wall_time_s * 1e9))
    return TELEMETRY.snapshot().diff_from(baseline)


def run_pair_job(job: PairJob, factory: MachineFactory,
                 database: DeceptionDatabase,
                 config: Optional[ScarecrowConfig]) -> SweepEntry:
    """Run one pair with in-worker retry; never raises."""
    from ..experiments.runner import run_pair
    start = time.perf_counter()
    baseline = _job_metrics_baseline()
    retries = 0
    while True:
        try:
            outcome = run_pair(job.sample, factory, database, config)
            break
        except Exception as exc:
            if retries >= job.max_retries:
                metrics = _finish_job_metrics(
                    baseline, "job", retries, time.perf_counter() - start,
                    failed=True)
                return SweepError(
                    index=job.index, sample_md5=job.sample.md5,
                    error_type=type(exc).__name__, message=str(exc),
                    traceback=traceback.format_exc(),
                    worker_pid=os.getpid(), retry_count=retries,
                    metrics=metrics)
            retries += 1
    wall_time_s = time.perf_counter() - start
    metrics = _finish_job_metrics(baseline, "job", retries, wall_time_s)
    envelope = build_envelope(job.index, outcome, retries, wall_time_s,
                              metrics=metrics)
    return envelope.detached()


# -- generic task workers (table2/table3-style independent cells) -------------

@dataclasses.dataclass
class TaskJob:
    """One independent callable: module-level ``fn(*args)``."""

    index: int
    label: str
    fn: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    max_retries: int = 1


@dataclasses.dataclass(frozen=True)
class TaskResult:
    """Ordered result of one task; ``error`` is set instead of raising."""

    index: int
    label: str
    value: Any = None
    error: Optional[SweepError] = None
    worker_pid: int = -1
    retry_count: int = 0
    wall_time_s: float = 0.0
    #: Telemetry delta recorded while the task ran (None when disabled).
    metrics: Optional[MetricsSnapshot] = None

    @property
    def ok(self) -> bool:
        return self.error is None


def execute_task_job(job: TaskJob) -> TaskResult:
    """Run one independent task with in-worker retry; never raises."""
    start = time.perf_counter()
    baseline = _job_metrics_baseline()
    retries = 0
    while True:
        try:
            value = job.fn(*job.args)
            break
        except Exception as exc:
            if retries >= job.max_retries:
                wall_time_s = time.perf_counter() - start
                return TaskResult(
                    index=job.index, label=job.label,
                    error=SweepError(
                        index=job.index, sample_md5=job.label,
                        error_type=type(exc).__name__, message=str(exc),
                        traceback=traceback.format_exc(),
                        worker_pid=os.getpid(), retry_count=retries),
                    worker_pid=os.getpid(), retry_count=retries,
                    wall_time_s=wall_time_s,
                    metrics=_finish_job_metrics(baseline, "task", retries,
                                                wall_time_s, failed=True))
            retries += 1
    wall_time_s = time.perf_counter() - start
    return TaskResult(index=job.index, label=job.label, value=value,
                      worker_pid=os.getpid(), retry_count=retries,
                      wall_time_s=wall_time_s,
                      metrics=_finish_job_metrics(baseline, "task", retries,
                                                  wall_time_s))
