"""Worker-side execution of sweep jobs.

Each pool worker holds its own machine factory, a read-only
:class:`~repro.core.database.FrozenDeceptionDatabase` rehydrated from the
snapshot the parent shipped through the pool initializer, and the shared
:class:`~repro.core.profiles.ScarecrowConfig`. Jobs retry in place (same
worker, same deserialized sample) up to their retry budget before turning
into a :class:`~repro.parallel.envelope.SweepError`.
"""

from __future__ import annotations

import dataclasses
import os
import time
import traceback
from typing import Any, Callable, Dict, Optional, Tuple

from ..core.database import (DatabaseSnapshot, DeceptionDatabase,
                             FrozenDeceptionDatabase)
from ..core.profiles import ScarecrowConfig
from ..malware.sample import EvasiveSample
from ..telemetry.metrics import TELEMETRY
from ..telemetry.snapshot import MetricsSnapshot
from .envelope import SweepEntry, SweepError, build_envelope
from .factories import FactorySpec, MachineFactory, resolve_machine_factory

#: Per-process worker state, filled by :func:`initialize_worker`.
_STATE: Dict[str, Any] = {}


@dataclasses.dataclass
class PairJob:
    """One (sample, submission index) unit of sweep work."""

    index: int
    sample: EvasiveSample
    max_retries: int = 1


def initialize_worker(factory_spec: FactorySpec,
                      db_snapshot: DatabaseSnapshot,
                      config: Optional[ScarecrowConfig],
                      telemetry: bool = False) -> None:
    """Pool/serial initializer: build this worker's private fixtures."""
    _STATE["factory"] = resolve_machine_factory(factory_spec)
    _STATE["database"] = FrozenDeceptionDatabase.from_snapshot(db_snapshot)
    _STATE["config"] = config
    TELEMETRY.enabled = bool(telemetry)


def reset_worker() -> None:
    """Drop initializer state (test hook)."""
    _STATE.clear()


def execute_pair_job(job: PairJob) -> SweepEntry:
    """Entry point the executors submit; relies on initializer state."""
    return run_pair_job(job, _STATE["factory"], _STATE["database"],
                        _STATE["config"])


def _job_metrics_baseline() -> Optional[MetricsSnapshot]:
    """Pre-job snapshot, or None when the telemetry layer is disabled.

    Job metrics are captured as a *delta* against this baseline rather
    than by resetting the registry, so an enclosing measurement (a CLI
    ``--telemetry`` run, a long-lived serial process) keeps accumulating —
    and the delta is identical whether the registry started empty (a
    fresh pool worker) or carried history (the serial path).
    """
    return TELEMETRY.snapshot() if TELEMETRY.enabled else None


def _finish_job_metrics(baseline: Optional[MetricsSnapshot], kind: str,
                        retries: int, wall_time_s: float,
                        failed: bool = False) -> Optional[MetricsSnapshot]:
    if baseline is None:
        return None
    TELEMETRY.count(f"worker.{kind}s")
    if failed:
        TELEMETRY.count(f"worker.{kind}s_failed")
    if retries:
        TELEMETRY.count("worker.retries", retries)
    TELEMETRY.observe(f"wallclock.{kind}_ns", int(wall_time_s * 1e9))
    return TELEMETRY.snapshot().diff_from(baseline)


def run_pair_job(job: PairJob, factory: MachineFactory,
                 database: DeceptionDatabase,
                 config: Optional[ScarecrowConfig]) -> SweepEntry:
    """Run one pair with in-worker retry; never raises."""
    from ..experiments.runner import run_pair
    start = time.perf_counter()
    baseline = _job_metrics_baseline()
    retries = 0
    while True:
        try:
            outcome = run_pair(job.sample, factory, database, config)
            break
        except Exception as exc:
            if retries >= job.max_retries:
                metrics = _finish_job_metrics(
                    baseline, "job", retries, time.perf_counter() - start,
                    failed=True)
                return SweepError(
                    index=job.index, sample_md5=job.sample.md5,
                    error_type=type(exc).__name__, message=str(exc),
                    traceback=traceback.format_exc(),
                    worker_pid=os.getpid(), retry_count=retries,
                    metrics=metrics)
            retries += 1
    wall_time_s = time.perf_counter() - start
    metrics = _finish_job_metrics(baseline, "job", retries, wall_time_s)
    envelope = build_envelope(job.index, outcome, retries, wall_time_s,
                              metrics=metrics)
    return envelope.detached()


# -- generic task workers (table2/table3-style independent cells) -------------

@dataclasses.dataclass
class TaskJob:
    """One independent callable: module-level ``fn(*args)``."""

    index: int
    label: str
    fn: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    max_retries: int = 1


@dataclasses.dataclass(frozen=True)
class TaskResult:
    """Ordered result of one task; ``error`` is set instead of raising."""

    index: int
    label: str
    value: Any = None
    error: Optional[SweepError] = None
    worker_pid: int = -1
    retry_count: int = 0
    wall_time_s: float = 0.0
    #: Telemetry delta recorded while the task ran (None when disabled).
    metrics: Optional[MetricsSnapshot] = None

    @property
    def ok(self) -> bool:
        return self.error is None


def execute_task_job(job: TaskJob) -> TaskResult:
    """Run one independent task with in-worker retry; never raises."""
    start = time.perf_counter()
    baseline = _job_metrics_baseline()
    retries = 0
    while True:
        try:
            value = job.fn(*job.args)
            break
        except Exception as exc:
            if retries >= job.max_retries:
                wall_time_s = time.perf_counter() - start
                return TaskResult(
                    index=job.index, label=job.label,
                    error=SweepError(
                        index=job.index, sample_md5=job.label,
                        error_type=type(exc).__name__, message=str(exc),
                        traceback=traceback.format_exc(),
                        worker_pid=os.getpid(), retry_count=retries),
                    worker_pid=os.getpid(), retry_count=retries,
                    wall_time_s=wall_time_s,
                    metrics=_finish_job_metrics(baseline, "task", retries,
                                                wall_time_s, failed=True))
            retries += 1
    wall_time_s = time.perf_counter() - start
    return TaskResult(index=job.index, label=job.label, value=value,
                      worker_pid=os.getpid(), retry_count=retries,
                      wall_time_s=wall_time_s,
                      metrics=_finish_job_metrics(baseline, "task", retries,
                                                  wall_time_s))
