"""Parallel corpus execution engine.

Every experiment funnels its sample pairs through this package:
:class:`ParallelSweep` shards a corpus across a process pool (with an
in-process fallback), each worker building its machine **once** from a
named factory — a :class:`MachineTemplate` rewinds it between jobs — plus
a read-only snapshot of the shared deception database, and the results
are reassembled in submission order — parallel output is byte-identical
to the serial path (``template="verify"`` proves it per job). Jobs ship
in auto-sized chunks to amortise pickle/IPC cost. Failures degrade to
structured :class:`SweepError` entries; every outcome carries a
:class:`SweepStats` record.
"""

from .envelope import (ChunkHeader, EnvelopeError, PairEnvelope, SweepEntry,
                       SweepError, SweepStats, build_envelope,
                       canonical_entry, decode_chunk, decode_record,
                       detach_outcome, encode_chunk, encode_record)
from .executor import (ImmediateFuture, SerialExecutor, fork_available,
                       pool_context, should_use_process_pool)
from .factories import (available_factories, register_machine_factory,
                        resolve_machine_factory)
from .sweep import (DEFAULT_FACTORY, ParallelSweep, SweepExecutionError,
                    SweepResult, auto_chunksize,
                    make_executor, run_submissions, run_tasks,
                    run_tasks_or_raise)
from .shared import SharedKeys, database_fingerprint
from .template import (TEMPLATE_PARITY_ERROR, MachineTemplate,
                       TemplateParityError)
from .worker import (PairChunk, PairJob, TaskJob, TaskResult,
                     execute_pair_chunk, execute_pair_job, execute_task_job,
                     initialize_worker, run_pair_job)

__all__ = [
    "ChunkHeader", "DEFAULT_FACTORY", "EnvelopeError", "ImmediateFuture",
    "MachineTemplate", "PairChunk",
    "PairEnvelope", "PairJob", "ParallelSweep", "SerialExecutor",
    "SharedKeys", "SweepEntry", "SweepError", "SweepExecutionError",
    "SweepResult", "SweepStats", "TEMPLATE_PARITY_ERROR",
    "TemplateParityError", "TaskJob", "TaskResult",
    "auto_chunksize", "available_factories", "build_envelope",
    "canonical_entry", "database_fingerprint", "decode_chunk",
    "decode_record", "detach_outcome", "encode_chunk", "encode_record",
    "execute_pair_chunk",
    "execute_pair_job", "execute_task_job", "fork_available",
    "initialize_worker", "make_executor", "pool_context",
    "register_machine_factory", "resolve_machine_factory", "run_pair_job",
    "run_submissions", "run_tasks", "run_tasks_or_raise",
    "should_use_process_pool",
]
