"""Parallel corpus execution engine.

Every experiment funnels its sample pairs through this package:
:class:`ParallelSweep` shards a corpus across a process pool (with an
in-process fallback), each worker building its own machine from a named
factory and a read-only snapshot of the shared deception database, and the
results are reassembled in submission order — parallel output is
byte-identical to the serial path. Failures degrade to structured
:class:`SweepError` entries; every outcome carries a :class:`SweepStats`
record.
"""

from .envelope import (PairEnvelope, SweepEntry, SweepError, SweepStats,
                       build_envelope)
from .executor import (ImmediateFuture, SerialExecutor, fork_available,
                       should_use_process_pool)
from .factories import (available_factories, register_machine_factory,
                        resolve_machine_factory)
from .sweep import (DEFAULT_FACTORY, ParallelSweep, SweepExecutionError,
                    SweepResult, run_tasks, run_tasks_or_raise)
from .worker import (PairJob, TaskJob, TaskResult, execute_pair_job,
                     execute_task_job, initialize_worker, run_pair_job)

__all__ = [
    "DEFAULT_FACTORY", "ImmediateFuture", "PairEnvelope", "PairJob",
    "ParallelSweep", "SerialExecutor", "SweepEntry", "SweepError",
    "SweepExecutionError", "SweepResult", "SweepStats", "TaskJob",
    "TaskResult", "available_factories", "build_envelope",
    "execute_pair_job", "execute_task_job", "fork_available",
    "initialize_worker", "register_machine_factory",
    "resolve_machine_factory", "run_pair_job", "run_tasks",
    "run_tasks_or_raise", "should_use_process_pool",
]
