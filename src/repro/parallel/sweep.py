"""`ParallelSweep` — the corpus execution engine.

Shards ``(sample, config)`` pairs across a process pool (or the in-process
fallback), reassembles results in submission order, and degrades
gracefully: a sample whose execution keeps failing becomes a structured
:class:`~repro.parallel.envelope.SweepError` entry instead of aborting the
sweep. With one shared read-only deception database snapshot per pool and
one templated (or fresh) machine per run, parallel output is
byte-identical to the serial path.

Two cost levers make the pool actually beat the serial path:

* **Machine templating** (default on): each worker builds its factory
  machine once and rewinds it between jobs via
  :class:`~repro.parallel.template.MachineTemplate`, instead of paying a
  full environment build twice per sample.
* **Chunked dispatch**: jobs ship to the pool in auto-sized chunks
  (:func:`auto_chunksize`, the ``ProcessPoolExecutor.map`` heuristic) so
  submission pickling and IPC amortise across the chunk — results still
  come back submission-ordered with per-job error isolation.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import math
import pickle
import time
import traceback
import warnings
from typing import Any, Callable, List, Optional, Sequence, Tuple, Union

from ..core.database import DeceptionDatabase
from ..core.profiles import ScarecrowConfig
from ..malware.sample import EvasiveSample
from ..telemetry.metrics import TELEMETRY
from ..telemetry.snapshot import MetricsSnapshot
from . import shared
from .envelope import (ChunkHeader, PairEnvelope, SweepEntry, SweepError,
                       SweepStats, canonical_entry, decode_chunk)
from .executor import SerialExecutor, pool_context, should_use_process_pool
from .factories import FactorySpec, resolve_machine_factory
from .template import DeltaMode, MachineTemplate
from .worker import (PairChunk, PairJob, TaskJob, TaskResult, TemplateMode,
                     execute_pair_chunk, execute_pair_job, execute_task_job,
                     initialize_worker)

#: Default machine factory — matches ``run_pair``'s historical default
#: (:func:`repro.analysis.environments.build_bare_metal_sandbox`).
DEFAULT_FACTORY = "bare-metal"


class SweepExecutionError(RuntimeError):
    """Raised by :meth:`SweepResult.outcomes_or_raise` when entries failed."""

    def __init__(self, errors: List[SweepError]) -> None:
        super().__init__(
            f"{len(errors)} sample(s) failed: " +
            "; ".join(str(error) for error in errors[:3]) +
            ("..." if len(errors) > 3 else ""))
        self.errors = errors


@dataclasses.dataclass
class SweepResult:
    """Entries in submission order, plus sweep-level metadata."""

    entries: List[SweepEntry]
    max_workers: int
    used_process_pool: bool
    wall_time_s: float
    #: True only when *every* result chunk reported that its worker ran on
    #: the fork-inherited database (and template, when templating was on)
    #: — an observed fact from :class:`ChunkHeader` provenance, never an
    #: assumption. Spawn platforms and corrupted registries report False.
    shared_state_used: bool = False
    #: Per-chunk worker provenance, in completion-collection order.
    chunk_headers: List[ChunkHeader] = dataclasses.field(default_factory=list)

    def delta_restores(self) -> int:
        """Dirty-set restores performed across all workers' chunks."""
        return sum(h.delta_restores for h in self.chunk_headers)

    def full_restores(self) -> int:
        return sum(h.full_restores for h in self.chunk_headers)

    def dirty_subsystems(self) -> int:
        """Total dirty-subsystem count across all delta restores."""
        return sum(h.dirty_subsystems for h in self.chunk_headers)

    @property
    def outcomes(self) -> List["PairOutcome"]:
        """Successful outcomes, submission-ordered."""
        return [entry.outcome for entry in self.entries
                if isinstance(entry, PairEnvelope)]

    @property
    def errors(self) -> List[SweepError]:
        return [entry for entry in self.entries
                if isinstance(entry, SweepError)]

    @property
    def stats(self) -> List[SweepStats]:
        return [entry.stats for entry in self.entries
                if isinstance(entry, PairEnvelope)]

    @property
    def comparisons(self) -> List["ComparisonResult"]:
        return [outcome.comparison for outcome in self.outcomes]

    def outcomes_or_raise(self) -> List["PairOutcome"]:
        errors = self.errors
        if errors:
            raise SweepExecutionError(errors)
        return self.outcomes

    def total_retries(self) -> int:
        return sum(s.retry_count for s in self.stats) + \
            sum(e.retry_count for e in self.errors)

    def merged_metrics(self) -> Optional[MetricsSnapshot]:
        """Pool-wide telemetry totals folded from every entry's delta.

        Merging is associative and commutative, so the result is the same
        regardless of which worker ran which job — and (modulo the
        ``wallclock.*`` host-time metrics, see
        :meth:`~repro.telemetry.snapshot.MetricsSnapshot.deterministic`)
        identical between serial and pooled runs. ``None`` when the sweep
        ran with telemetry disabled.
        """
        merged: Optional[MetricsSnapshot] = None
        for entry in self.entries:
            if entry.metrics is not None:
                merged = (entry.metrics if merged is None
                          else merged.merge(entry.metrics))
        return merged

    def canonical_entries(self) -> List[SweepEntry]:
        """Entries with host-noise normalised (see
        :func:`~repro.parallel.envelope.canonical_entry`) — the form that
        pickles byte-identically across serial, templated-serial and
        pooled executions of the same corpus."""
        return [canonical_entry(entry) for entry in self.entries]


class ParallelSweep:
    """Worker-pool corpus executor with deterministic, ordered output.

    ``machine_factory`` is a registered factory name (see
    :mod:`repro.parallel.factories`) or a picklable module-level callable;
    closures only work on the in-process path and are rejected up front
    when a process pool would be used.
    """

    def __init__(self, max_workers: int = 1,
                 machine_factory: Optional[FactorySpec] = None,
                 database: Optional[DeceptionDatabase] = None,
                 config: Optional[ScarecrowConfig] = None,
                 max_retries: int = 1,
                 telemetry: Optional[bool] = None,
                 template: TemplateMode = True,
                 chunksize: Optional[int] = None,
                 delta: DeltaMode = True,
                 shared_state: bool = True) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if chunksize is not None and chunksize < 1:
            raise ValueError("chunksize must be >= 1")
        if template not in (True, False, "verify"):
            raise ValueError(
                "template must be True, False or 'verify', "
                f"got {template!r}")
        if delta not in (True, False, "verify"):
            raise ValueError(
                f"delta must be True, False or 'verify', got {delta!r}")
        self.max_workers = max_workers
        self.machine_factory = machine_factory or DEFAULT_FACTORY
        self.database = database
        self.config = config
        self.max_retries = max_retries
        #: None = inherit the process-wide ``TELEMETRY.enabled`` flag at
        #: :meth:`run` time; True/False force it for this sweep's workers.
        self.telemetry = telemetry
        #: Machine-reuse mode: True (default) templates each worker's
        #: machine, False rebuilds per run, "verify" templates and proves
        #: byte-parity against a fresh-factory reference run per job.
        self.template = template
        #: Jobs per pool submission; None = auto (see :func:`auto_chunksize`).
        self.chunksize = chunksize
        #: Template rewind strategy: True (default) restores only the
        #: subsystems each job dirtied, False always restores everything,
        #: "verify" delta-restores and proves skipped subsystems clean.
        self.delta = delta
        #: Publish the frozen database and a pre-built template to the
        #: fork-shared registry before creating the pool, so workers
        #: inherit them instead of rebuilding (spawn platforms fall back
        #: to the pickled path automatically).
        self.shared_state = shared_state

    def run(self, samples: Sequence[EvasiveSample]) -> SweepResult:
        """Execute every sample pair; results come back submission-ordered."""
        start = time.perf_counter()
        jobs = [PairJob(index, sample, self.max_retries)
                for index, sample in enumerate(samples)]
        database = self.database or DeceptionDatabase()
        # Pre-pickled (and memoized) snapshot bytes ship to serial and
        # pooled initializers alike, so both deserialize the same blob and
        # repeated sweeps over one database skip re-serialization.
        snapshot_blob = database.snapshot_bytes()
        config = self.config
        use_pool = should_use_process_pool(self.max_workers)
        if use_pool:
            self._require_picklable_factory()
        else:
            # Replicate the pool's *submission* pipe: pool workers receive
            # deserialized jobs and initializer state, whose strings are
            # distinct objects from the module literals the run produces.
            # Round-tripping here keeps serial output byte-identical to the
            # pool path. (The factory spec is exempt so in-process sweeps
            # can still use closures.)
            config, jobs = pickle.loads(pickle.dumps((config, jobs)))
        telemetry_on = (TELEMETRY.enabled if self.telemetry is None
                        else bool(self.telemetry))
        shared_keys = (self._publish_shared(snapshot_blob)
                       if self.shared_state else shared.SharedKeys())
        initargs = (self.machine_factory, snapshot_blob, config,
                    telemetry_on, self.template, self.delta, shared_keys)
        workers = self.max_workers if use_pool else 1
        chunksize = self.chunksize or auto_chunksize(len(jobs), workers)
        chunks = [PairChunk(jobs[i:i + chunksize])
                  for i in range(0, len(jobs), chunksize)]
        headers: List[ChunkHeader] = []

        def unwrap_chunk(blob: bytes) -> List[SweepEntry]:
            chunk_entries, header = decode_chunk(blob)
            headers.append(header)
            return chunk_entries

        # On the serial path the initializer runs in *this* process and
        # flips the shared registry flag; restore it once the sweep ends.
        prior_enabled = TELEMETRY.enabled
        try:
            entries, used_pool = run_submissions(chunks, execute_pair_chunk,
                                           initargs, workers,
                                           unwrap=unwrap_chunk)
        finally:
            TELEMETRY.enabled = prior_enabled
        shared_used = bool(headers) and all(
            h.shared_database and (h.shared_template or not self.template)
            for h in headers)
        return SweepResult(entries=entries, max_workers=self.max_workers,
                           used_process_pool=used_pool,
                           wall_time_s=time.perf_counter() - start,
                           shared_state_used=shared_used,
                           chunk_headers=headers)

    def _publish_shared(self, snapshot_blob: bytes) -> shared.SharedKeys:
        """Pre-fork: rehydrate the database and build the template once.

        Whatever lands in :mod:`repro.parallel.shared` before the pool
        forks is inherited by every worker copy-on-write. Workers
        validate each key and fall back to the pickled/rebuild path on a
        miss, so this is pure optimisation — never correctness-bearing.
        """
        from ..core.database import FrozenDeceptionDatabase
        db_key = shared.publish_database(
            snapshot_blob,
            FrozenDeceptionDatabase.from_snapshot(pickle.loads(snapshot_blob)))
        template_key: Optional[str] = None
        if self.template:
            factory = resolve_machine_factory(self.machine_factory)
            factory_name = (self.machine_factory
                            if isinstance(self.machine_factory, str)
                            else getattr(factory, "__qualname__", "factory"))
            template_key = shared.template_key(factory_name, id(factory),
                                               self.delta)
            template = MachineTemplate(factory, delta=self.delta)
            template.build()
            shared.publish_template(template_key, template)
        return shared.SharedKeys(database=db_key, template=template_key)

    def _require_picklable_factory(self) -> None:
        resolve_machine_factory(self.machine_factory)  # fail fast on names
        try:
            pickle.dumps(self.machine_factory)
        except Exception as exc:
            raise ValueError(
                "machine_factory is not picklable for the process pool; "
                "register it via repro.parallel.register_machine_factory "
                "and pass its name instead") from exc


def auto_chunksize(n_jobs: int, workers: int) -> int:
    """`ProcessPoolExecutor.map`'s heuristic: ~4 chunks per worker.

    Large enough to amortise submission pickling and IPC, small enough
    that stragglers still rebalance across the pool.
    """
    return max(1, math.ceil(n_jobs / (workers * 4)))


def make_executor(initargs: Optional[tuple], workers: int,
                  initializer: Optional[Callable[..., None]] = None
                  ) -> Tuple[Any, bool]:
    """Build the process pool, or the serial stand-in; returns (executor,
    used_process_pool).

    The pool runs on ``fork`` where available and the platform default
    context otherwise (:func:`~repro.parallel.executor.pool_context`); if
    pool construction itself fails the sweep degrades to in-process
    execution with a warning instead of aborting — ``used_process_pool``
    reflects what actually ran. ``initializer`` defaults to the sweep's
    :func:`~repro.parallel.worker.initialize_worker`; other subsystems
    (``repro.fleet``) pass their own.
    """
    if initializer is None:
        initializer = initialize_worker if initargs else None
    if workers > 1:
        try:
            executor: Any = concurrent.futures.ProcessPoolExecutor(
                max_workers=workers, mp_context=pool_context(),
                initializer=initializer, initargs=initargs or ())
            return executor, True
        except Exception as exc:
            warnings.warn(
                f"process pool unavailable ({type(exc).__name__}: {exc}); "
                "running in-process", RuntimeWarning, stacklevel=3)
    return SerialExecutor(initializer=initializer,
                          initargs=initargs or ()), False


def run_submissions(jobs: Sequence[Any], worker_fn: Callable[[Any], Any],
                    initargs: Optional[tuple], workers: int,
                    unwrap: Optional[Callable[[Any], List[Any]]] = None,
                    initializer: Optional[Callable[..., None]] = None
                    ) -> Tuple[List[Any], bool]:
    """Submit jobs to the chosen executor; collect in submission order.

    Returns ``(entries, used_process_pool)``. A submission may be a
    :class:`PairChunk`, whose result ``unwrap`` flattens back into
    individual entries. Executor-level failures (broken pool, unpicklable
    payloads) *and* unwrap failures (a corrupt binary chunk envelope
    raising :class:`~repro.parallel.envelope.EnvelopeError`) degrade to
    per-job :class:`SweepError`/:class:`TaskResult` entries so one bad
    job — or one bad chunk — cannot sink the sweep.
    """
    executor, used_pool = make_executor(initargs, workers, initializer)
    entries: List[Any] = []
    with executor:
        futures = [executor.submit(worker_fn, job) for job in jobs]
        for job, future in zip(jobs, futures):
            try:
                result = future.result()
                unwrapped = (unwrap(result) if unwrap is not None
                             else [result])
            except Exception as exc:
                entries.extend(_submission_failures(job, exc))
                continue
            entries.extend(unwrapped)
    return entries, used_pool


def _submission_failures(job: Any, exc: Exception) -> List[Any]:
    """Executor-level failure entries: one per job inside the submission."""
    if isinstance(job, PairChunk):
        return [_executor_failure(chunk_job, exc) for chunk_job in job.jobs]
    return [_executor_failure(job, exc)]


def _executor_failure(job: Any, exc: Exception) -> Any:
    """Wrap an executor-level failure for one job."""
    error = SweepError(
        index=job.index,
        sample_md5=getattr(getattr(job, "sample", None), "md5",
                           getattr(job, "label", "?")),
        error_type=type(exc).__name__, message=str(exc),
        traceback=traceback.format_exc(), worker_pid=-1, retry_count=0)
    if isinstance(job, TaskJob):
        return TaskResult(index=job.index, label=job.label, error=error)
    return error


# -- generic independent-task engine ------------------------------------------

TaskSpec = Tuple[str, Callable[..., Any], Tuple[Any, ...]]


def run_tasks(tasks: Sequence[TaskSpec], max_workers: int = 1,
              max_retries: int = 1) -> List[TaskResult]:
    """Run independent ``(label, fn, args)`` tasks, ordered like ``tasks``.

    The generic sibling of :class:`ParallelSweep` for experiment cells that
    are not sample pairs (Table II's environment×config matrix, Table III's
    per-machine measurements). ``fn`` must be a module-level callable when
    more than one worker is requested.
    """
    jobs = [TaskJob(index, label, fn, tuple(args), max_retries)
            for index, (label, fn, args) in enumerate(tasks)]
    workers = max_workers if should_use_process_pool(max_workers) else 1
    results, _ = run_submissions(jobs, execute_task_job, None, workers)
    return results


def run_tasks_or_raise(tasks: Sequence[TaskSpec], max_workers: int = 1,
                       max_retries: int = 1) -> List[Any]:
    """Like :func:`run_tasks` but unwraps values, raising on any failure."""
    results = run_tasks(tasks, max_workers=max_workers,
                        max_retries=max_retries)
    errors = [r.error for r in results if r.error is not None]
    if errors:
        raise SweepExecutionError(errors)
    return [r.value for r in results]
