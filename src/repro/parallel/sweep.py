"""`ParallelSweep` — the corpus execution engine.

Shards ``(sample, config)`` pairs across a process pool (or the in-process
fallback), reassembles results in submission order, and degrades
gracefully: a sample whose execution keeps failing becomes a structured
:class:`~repro.parallel.envelope.SweepError` entry instead of aborting the
sweep. With one shared read-only deception database snapshot per pool and
one fresh machine per run, parallel output is byte-identical to the serial
path.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import pickle
import time
import traceback
from typing import Any, Callable, List, Optional, Sequence, Tuple, Union

from ..core.database import DeceptionDatabase
from ..core.profiles import ScarecrowConfig
from ..malware.sample import EvasiveSample
from ..telemetry.metrics import TELEMETRY
from ..telemetry.snapshot import MetricsSnapshot
from .envelope import PairEnvelope, SweepEntry, SweepError, SweepStats
from .executor import SerialExecutor, should_use_process_pool
from .factories import FactorySpec, resolve_machine_factory
from .worker import (PairJob, TaskJob, TaskResult, execute_pair_job,
                     execute_task_job, initialize_worker)

#: Default machine factory — matches ``run_pair``'s historical default
#: (:func:`repro.analysis.environments.build_bare_metal_sandbox`).
DEFAULT_FACTORY = "bare-metal"


class SweepExecutionError(RuntimeError):
    """Raised by :meth:`SweepResult.outcomes_or_raise` when entries failed."""

    def __init__(self, errors: List[SweepError]) -> None:
        super().__init__(
            f"{len(errors)} sample(s) failed: " +
            "; ".join(str(error) for error in errors[:3]) +
            ("..." if len(errors) > 3 else ""))
        self.errors = errors


@dataclasses.dataclass
class SweepResult:
    """Entries in submission order, plus sweep-level metadata."""

    entries: List[SweepEntry]
    max_workers: int
    used_process_pool: bool
    wall_time_s: float

    @property
    def outcomes(self) -> List["PairOutcome"]:
        """Successful outcomes, submission-ordered."""
        return [entry.outcome for entry in self.entries
                if isinstance(entry, PairEnvelope)]

    @property
    def errors(self) -> List[SweepError]:
        return [entry for entry in self.entries
                if isinstance(entry, SweepError)]

    @property
    def stats(self) -> List[SweepStats]:
        return [entry.stats for entry in self.entries
                if isinstance(entry, PairEnvelope)]

    @property
    def comparisons(self) -> List["ComparisonResult"]:
        return [outcome.comparison for outcome in self.outcomes]

    def outcomes_or_raise(self) -> List["PairOutcome"]:
        errors = self.errors
        if errors:
            raise SweepExecutionError(errors)
        return self.outcomes

    def total_retries(self) -> int:
        return sum(s.retry_count for s in self.stats) + \
            sum(e.retry_count for e in self.errors)

    def merged_metrics(self) -> Optional[MetricsSnapshot]:
        """Pool-wide telemetry totals folded from every entry's delta.

        Merging is associative and commutative, so the result is the same
        regardless of which worker ran which job — and (modulo the
        ``wallclock.*`` host-time metrics, see
        :meth:`~repro.telemetry.snapshot.MetricsSnapshot.deterministic`)
        identical between serial and pooled runs. ``None`` when the sweep
        ran with telemetry disabled.
        """
        merged: Optional[MetricsSnapshot] = None
        for entry in self.entries:
            if entry.metrics is not None:
                merged = (entry.metrics if merged is None
                          else merged.merge(entry.metrics))
        return merged


class ParallelSweep:
    """Worker-pool corpus executor with deterministic, ordered output.

    ``machine_factory`` is a registered factory name (see
    :mod:`repro.parallel.factories`) or a picklable module-level callable;
    closures only work on the in-process path and are rejected up front
    when a process pool would be used.
    """

    def __init__(self, max_workers: int = 1,
                 machine_factory: Optional[FactorySpec] = None,
                 database: Optional[DeceptionDatabase] = None,
                 config: Optional[ScarecrowConfig] = None,
                 max_retries: int = 1,
                 telemetry: Optional[bool] = None) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.max_workers = max_workers
        self.machine_factory = machine_factory or DEFAULT_FACTORY
        self.database = database
        self.config = config
        self.max_retries = max_retries
        #: None = inherit the process-wide ``TELEMETRY.enabled`` flag at
        #: :meth:`run` time; True/False force it for this sweep's workers.
        self.telemetry = telemetry

    def run(self, samples: Sequence[EvasiveSample]) -> SweepResult:
        """Execute every sample pair; results come back submission-ordered."""
        start = time.perf_counter()
        jobs = [PairJob(index, sample, self.max_retries)
                for index, sample in enumerate(samples)]
        database = self.database or DeceptionDatabase()
        snapshot = database.snapshot()
        config = self.config
        use_pool = should_use_process_pool(self.max_workers)
        if use_pool:
            self._require_picklable_factory()
        else:
            # Replicate the pool's *submission* pipe: pool workers receive
            # deserialized jobs and initializer state, whose strings are
            # distinct objects from the module literals the run produces.
            # Round-tripping here keeps serial output byte-identical to the
            # pool path. (The factory spec is exempt so in-process sweeps
            # can still use closures.)
            snapshot, config, jobs = pickle.loads(
                pickle.dumps((snapshot, config, jobs)))
        telemetry_on = (TELEMETRY.enabled if self.telemetry is None
                        else bool(self.telemetry))
        initargs = (self.machine_factory, snapshot, config, telemetry_on)
        # On the serial path the initializer runs in *this* process and
        # flips the shared registry flag; restore it once the sweep ends.
        prior_enabled = TELEMETRY.enabled
        try:
            entries = _run_jobs(jobs, execute_pair_job, initargs,
                                self.max_workers if use_pool else 1)
        finally:
            TELEMETRY.enabled = prior_enabled
        return SweepResult(entries=entries, max_workers=self.max_workers,
                           used_process_pool=use_pool,
                           wall_time_s=time.perf_counter() - start)

    def _require_picklable_factory(self) -> None:
        resolve_machine_factory(self.machine_factory)  # fail fast on names
        try:
            pickle.dumps(self.machine_factory)
        except Exception as exc:
            raise ValueError(
                "machine_factory is not picklable for the process pool; "
                "register it via repro.parallel.register_machine_factory "
                "and pass its name instead") from exc


def _run_jobs(jobs: Sequence[Any], worker_fn: Callable[[Any], Any],
              initargs: Optional[tuple], workers: int) -> List[Any]:
    """Submit jobs to the chosen executor; collect in submission order.

    Executor-level failures (broken pool, unpicklable payloads) degrade to
    per-job :class:`SweepError`/:class:`TaskResult` entries so one bad job
    cannot sink the sweep.
    """
    if workers > 1:
        import multiprocessing
        executor: Any = concurrent.futures.ProcessPoolExecutor(
            max_workers=workers,
            mp_context=multiprocessing.get_context("fork"),
            initializer=initialize_worker if initargs else None,
            initargs=initargs or ())
    else:
        executor = SerialExecutor(
            initializer=initialize_worker if initargs else None,
            initargs=initargs or ())
    entries: List[Any] = []
    with executor:
        futures = [executor.submit(worker_fn, job) for job in jobs]
        for job, future in zip(jobs, futures):
            try:
                entries.append(future.result())
            except Exception as exc:
                entries.append(_executor_failure(job, exc))
    return entries


def _executor_failure(job: Any, exc: Exception) -> Any:
    """Wrap an executor-level failure for one job."""
    error = SweepError(
        index=job.index,
        sample_md5=getattr(getattr(job, "sample", None), "md5",
                           getattr(job, "label", "?")),
        error_type=type(exc).__name__, message=str(exc),
        traceback=traceback.format_exc(), worker_pid=-1, retry_count=0)
    if isinstance(job, TaskJob):
        return TaskResult(index=job.index, label=job.label, error=error)
    return error


# -- generic independent-task engine ------------------------------------------

TaskSpec = Tuple[str, Callable[..., Any], Tuple[Any, ...]]


def run_tasks(tasks: Sequence[TaskSpec], max_workers: int = 1,
              max_retries: int = 1) -> List[TaskResult]:
    """Run independent ``(label, fn, args)`` tasks, ordered like ``tasks``.

    The generic sibling of :class:`ParallelSweep` for experiment cells that
    are not sample pairs (Table II's environment×config matrix, Table III's
    per-machine measurements). ``fn`` must be a module-level callable when
    more than one worker is requested.
    """
    jobs = [TaskJob(index, label, fn, tuple(args), max_retries)
            for index, (label, fn, args) in enumerate(tasks)]
    workers = max_workers if should_use_process_pool(max_workers) else 1
    return _run_jobs(jobs, execute_task_job, None, workers)


def run_tasks_or_raise(tasks: Sequence[TaskSpec], max_workers: int = 1,
                       max_retries: int = 1) -> List[Any]:
    """Like :func:`run_tasks` but unwraps values, raising on any failure."""
    results = run_tasks(tasks, max_workers=max_workers,
                        max_retries=max_retries)
    errors = [r.error for r in results if r.error is not None]
    if errors:
        raise SweepExecutionError(errors)
    return [r.value for r in results]
