"""Machine templating: build a worker's machine once, rewind between jobs.

The PR-1 pool rebuilt a full winsim machine from scratch for *every run of
every sample* — registry hive, filesystem tree, wear-and-tear artifacts,
process table — which is why `BENCH_parallel.json` recorded the pooled
sweep losing to the serial path. Cuckoo-style sandbox farms avoid exactly
this by taking one VM snapshot and restoring it between detonations
(PAPERS.md: Cuckoo; MalGene); :class:`MachineTemplate` is that
snapshot/restore loop for the simulated substrate. A worker builds its
factory machine once, captures a deep
:meth:`~repro.winsim.machine.Machine.snapshot_state` (registry,
filesystem, process table, handles, DNS cache, event log, clock), and each
:meth:`MachineTemplate.checkout` rewinds the same machine in place instead
of reconstructing it.

Parity is a feature, not a hope: a restored machine produces pickled
outcomes byte-identical to a fresh factory build, and
``ParallelSweep(template="verify")`` proves it per job by re-running every
sample on a fresh machine and comparing the pickled, detached outcomes
(divergence surfaces as a ``TemplateParityError`` sweep entry).
"""

from __future__ import annotations

from typing import Optional

from ..winsim.machine import Machine
from .factories import FactorySpec, resolve_machine_factory

#: ``SweepError.error_type`` recorded when a templated run diverges from
#: its fresh-factory reference in ``template="verify"`` mode.
TEMPLATE_PARITY_ERROR = "TemplateParityError"


class MachineTemplate:
    """One machine, built once, rewound to its captured state on demand.

    Checkouts alias the *same* :class:`~repro.winsim.machine.Machine`
    object: callers must be done with one checkout before taking the next
    — exactly the sweep worker's run-one-job-at-a-time discipline. Not
    thread-safe for the same reason.
    """

    def __init__(self, factory: FactorySpec) -> None:
        self._build_machine = resolve_machine_factory(factory)
        self._machine: Optional[Machine] = None
        self._state: Optional[dict] = None
        self._pristine = False
        #: Restores performed so far (observability / test hook).
        self.restore_count = 0

    @property
    def built(self) -> bool:
        return self._machine is not None

    def build(self) -> Machine:
        """Build the machine and capture its template state (idempotent)."""
        if self._machine is None:
            self._machine = self._build_machine()
            self._state = self._machine.snapshot_state()
            self._pristine = True
        return self._machine

    def checkout(self) -> Machine:
        """The template machine, rewound to its captured state.

        The first checkout after :meth:`build` returns the machine as-is
        (it is already in the captured state); every later checkout
        performs an in-place :meth:`~repro.winsim.machine.Machine.
        restore_state`, which is what makes templated jobs cheaper than
        factory reconstruction.
        """
        machine = self.build()
        if self._pristine:
            self._pristine = False
            return machine
        assert self._state is not None
        machine.restore_state(self._state)
        self.restore_count += 1
        return machine
