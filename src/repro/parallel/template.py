"""Machine templating: build a worker's machine once, rewind between jobs.

The PR-1 pool rebuilt a full winsim machine from scratch for *every run of
every sample* — registry hive, filesystem tree, wear-and-tear artifacts,
process table — which is why `BENCH_parallel.json` recorded the pooled
sweep losing to the serial path. Cuckoo-style sandbox farms avoid exactly
this by taking one VM snapshot and restoring it between detonations
(PAPERS.md: Cuckoo; MalGene); :class:`MachineTemplate` is that
snapshot/restore loop for the simulated substrate. A worker builds its
factory machine once, captures a deep
:meth:`~repro.winsim.machine.Machine.snapshot_state` (registry,
filesystem, process table, handles, DNS cache, event log, clock), and each
:meth:`MachineTemplate.checkout` rewinds the same machine in place instead
of reconstructing it.

Dirty-set delta-restore goes one step further. Every tracked winsim
subsystem carries a ``mutations`` generation counter; by comparing the
counters at the previous checkout against the counters now, the template
knows exactly which subsystems a job touched and rewinds only those
(:data:`~repro.winsim.machine.TRACKED_SUBSYSTEMS`). The registry and the
event log — the two most expensive restores by an order of magnitude —
are untouched by most probe workloads, so skipping their rewind is where
the dispatch tax dies. Cheap untracked state (identity, OS version,
clock, hardware, processes, handles) is restored unconditionally.

Parity is a feature, not a hope: a restored machine produces pickled
outcomes byte-identical to a fresh factory build, and
``ParallelSweep(template="verify")`` proves it per job by re-running every
sample on a fresh machine and comparing the pickled, detached outcomes
(divergence surfaces as a ``TemplateParityError`` sweep entry). The
delta layer has its own verify mode: ``MachineTemplate(delta="verify")``
cross-checks every subsystem the delta claimed clean against the captured
template state and raises :class:`TemplateParityError` on divergence.
"""

from __future__ import annotations

import time
from typing import Optional, Set, Union

from ..telemetry.metrics import TELEMETRY
from ..winsim.machine import TRACKED_SUBSYSTEMS, Machine
from .factories import FactorySpec, resolve_machine_factory

#: ``SweepError.error_type`` recorded when a templated run diverges from
#: its fresh-factory reference in ``template="verify"`` mode — and the
#: ``__name__`` of :class:`TemplateParityError`, so delta-verify failures
#: land under the same type label.
TEMPLATE_PARITY_ERROR = "TemplateParityError"

#: Every key :meth:`~repro.winsim.machine.Machine.snapshot_state` may
#: produce on a stock machine. A subclass that snapshots extra state the
#: generation counters do not cover makes delta-restore unsound; the
#: template detects this at build time and falls back to full restores.
_KNOWN_STATE_KEYS = frozenset(TRACKED_SUBSYSTEMS) | {
    "identity", "os_version", "clock", "hardware",
    "processes", "handles", "explorer_pid",
}

_DELTA_MODES = (True, False, "verify")

#: ``delta`` argument values accepted by :class:`MachineTemplate`,
#: :class:`~repro.parallel.sweep.ParallelSweep` and
#: :class:`~repro.fleet.service.FleetService`.
DeltaMode = Union[bool, str]


class TemplateParityError(RuntimeError):
    """A subsystem the delta-restore claimed clean diverged from the
    captured template state (``delta="verify"`` cross-check)."""


class MachineTemplate:
    """One machine, built once, rewound to its captured state on demand.

    Checkouts alias the *same* :class:`~repro.winsim.machine.Machine`
    object: callers must be done with one checkout before taking the next
    — exactly the sweep worker's run-one-job-at-a-time discipline. Not
    thread-safe for the same reason.

    ``delta`` picks the rewind strategy:

    * ``True`` (default) — restore only the subsystems whose generation
      counters moved since the last checkout.
    * ``False`` — always full :meth:`~repro.winsim.machine.Machine.
      restore_state` (the pre-delta behaviour).
    * ``"verify"`` — delta-restore, then prove every subsystem the delta
      skipped still matches the template state; divergence raises
      :class:`TemplateParityError`.
    """

    def __init__(self, factory: FactorySpec, delta: object = True) -> None:
        if delta not in _DELTA_MODES:
            raise ValueError(
                f"delta must be one of {_DELTA_MODES}, got {delta!r}")
        self._build_machine = resolve_machine_factory(factory)
        self._machine: Optional[Machine] = None
        self._state: Optional[dict] = None
        self._versions: Optional[dict] = None
        self._pristine = False
        self.delta = delta
        #: False when the machine snapshots state the generation counters
        #: do not cover (unknown snapshot key) — every checkout then falls
        #: back to a full restore, honestly counted in
        #: ``parallel.delta_fallbacks``.
        self.delta_capable = True
        #: Restores performed so far (observability / test hook).
        self.restore_count = 0
        #: Of those, how many went through the delta path / the full path.
        self.delta_restore_count = 0
        self.full_restore_count = 0
        #: Dirty set of the most recent delta checkout (test hook).
        self.last_dirty: Set[str] = set()
        #: Cumulative dirty-subsystem count across all delta checkouts
        #: (chunk headers report the per-chunk delta of this).
        self.dirty_subsystem_total = 0

    @property
    def built(self) -> bool:
        return self._machine is not None

    def build(self) -> Machine:
        """Build the machine and capture its template state (idempotent)."""
        if self._machine is None:
            self._machine = self._build_machine()
            self._state = self._machine.snapshot_state()
            self.delta_capable = set(self._state) <= _KNOWN_STATE_KEYS
            self._versions = self._machine.subsystem_versions()
            self._pristine = True
        return self._machine

    def checkout(self) -> Machine:
        """The template machine, rewound to its captured state.

        The first checkout after :meth:`build` returns the machine as-is
        (it is already in the captured state); every later checkout
        rewinds in place — fully, or by dirty set when ``delta`` is on —
        which is what makes templated jobs cheaper than factory
        reconstruction.
        """
        machine = self.build()
        if self._pristine:
            self._pristine = False
            return machine
        assert self._state is not None and self._versions is not None
        if self.delta is False:
            self._restore_full(machine)
            return machine
        if not self.delta_capable:
            self._restore_full(machine)
            TELEMETRY.count("parallel.delta_fallbacks")
            return machine

        current = machine.subsystem_versions()
        dirty = {name for name in TRACKED_SUBSYSTEMS
                 if current[name] != self._versions[name]}
        started = time.perf_counter_ns() if TELEMETRY.enabled else 0
        machine.restore_state(self._state, subsystems=dirty)
        if TELEMETRY.enabled:
            TELEMETRY.observe("wallclock.delta_restore_ns",
                              time.perf_counter_ns() - started)
            TELEMETRY.count("parallel.dirty_subsystems", len(dirty))
        self._versions = machine.subsystem_versions()
        self.restore_count += 1
        self.delta_restore_count += 1
        self.last_dirty = dirty
        self.dirty_subsystem_total += len(dirty)
        if self.delta == "verify":
            self._verify_clean(machine, dirty)
        return machine

    def _restore_full(self, machine: Machine) -> None:
        machine.restore_state(self._state)
        self._versions = machine.subsystem_versions()
        self.restore_count += 1
        self.full_restore_count += 1
        self.last_dirty = set(TRACKED_SUBSYSTEMS)

    def _verify_clean(self, machine: Machine, dirty: Set[str]) -> None:
        """Prove that subsystems the delta skipped match the template.

        Compares live subsystem snapshots against the captured state with
        ``==`` (not pickled bytes: process/handle snapshots hold live
        objects whose byte form is not stable, but tracked subsystem
        snapshots are plain value containers).
        """
        assert self._state is not None
        diverged = [name for name in TRACKED_SUBSYSTEMS
                    if name not in dirty
                    and getattr(machine, name).snapshot() != self._state[name]]
        if diverged:
            raise TemplateParityError(
                "delta-restore claimed these subsystems clean but they "
                f"diverged from the template: {', '.join(sorted(diverged))}")
