"""Executor selection: process pool when possible, in-process otherwise.

The sweep engine runs on a real :class:`concurrent.futures.ProcessPoolExecutor`
when more than one worker is requested. It prefers the ``fork`` start
method (copy-on-write semantics make worker bring-up cheap and
deterministic); where ``fork`` is unavailable the platform-default context
is used instead, with a one-line warning — worker bring-up is slower
there, but the pool still works because everything that crosses the
boundary (factory names, pre-pickled database snapshots, job chunks) is
picklable by construction. ``max_workers=1`` gets :class:`SerialExecutor`,
an in-process stand-in with the same ``submit``/``shutdown`` surface, so
callers never branch.
"""

from __future__ import annotations

import multiprocessing
import pickle
import warnings
from typing import Any, Callable, Optional


class ImmediateFuture:
    """Future-alike whose work ran eagerly at submit time.

    With ``roundtrip`` the result is passed through ``pickle`` exactly as a
    process-pool result pipe would — the in-process fallback then emits
    byte-identical payloads to the pool path (object-identity sharing inside
    results is broken the same way on both).
    """

    def __init__(self, fn: Callable[..., Any], args: tuple,
                 roundtrip: bool = False) -> None:
        self._exception: Optional[BaseException] = None
        self._result: Any = None
        try:
            result = fn(*args)
            if roundtrip:
                result = pickle.loads(pickle.dumps(result))
            self._result = result
        except BaseException as exc:  # parity with Future.result()
            self._exception = exc

    def result(self, timeout: Optional[float] = None) -> Any:
        if self._exception is not None:
            raise self._exception
        return self._result

    def exception(self, timeout: Optional[float] = None
                  ) -> Optional[BaseException]:
        return self._exception

    def done(self) -> bool:
        return True


class SerialExecutor:
    """In-process fallback with the executor surface the sweep uses.

    An optional ``initializer`` runs once at construction, mirroring the
    process-pool initializer protocol, so the worker module's state setup
    is identical on both paths.
    """

    def __init__(self, initializer: Optional[Callable[..., None]] = None,
                 initargs: tuple = (), roundtrip: bool = True) -> None:
        self._roundtrip = roundtrip
        if initializer is not None:
            initializer(*initargs)

    def submit(self, fn: Callable[..., Any], *args: Any) -> ImmediateFuture:
        return ImmediateFuture(fn, args, roundtrip=self._roundtrip)

    def shutdown(self, wait: bool = True, **_kwargs: Any) -> None:
        pass

    def __enter__(self) -> "SerialExecutor":
        return self

    def __exit__(self, *_exc_info: Any) -> None:
        self.shutdown()


def fork_available() -> bool:
    """True when the deterministic ``fork`` start method exists."""
    return "fork" in multiprocessing.get_all_start_methods()


def pool_context() -> "multiprocessing.context.BaseContext":
    """The multiprocessing context the sweep pool should run on.

    ``fork`` when the platform has it; otherwise the platform default
    (``spawn`` on Windows/macOS-default builds), announced with a one-line
    warning because worker bring-up re-imports the package instead of
    inheriting the parent image.
    """
    if fork_available():
        return multiprocessing.get_context("fork")
    context = multiprocessing.get_context()
    warnings.warn(
        f"'fork' start method unavailable; process pool falling back to "
        f"{context.get_start_method()!r} (slower worker bring-up)",
        RuntimeWarning, stacklevel=2)
    return context


def should_use_process_pool(max_workers: int) -> bool:
    """True when a real process pool should serve this worker count.

    Platforms without ``fork`` no longer force the serial path — they get
    the default start method via :func:`pool_context` instead.
    """
    return max_workers > 1
