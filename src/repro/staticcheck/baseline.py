"""Baseline files — grandfathered findings that do not fail the lint.

A baseline is a committed JSON document listing suppression keys (see
:func:`repro.staticcheck.finding.suppression_key`) for findings the tree
deliberately keeps: today that is the host-clock usage inside
``repro.parallel`` that feeds the ``wallclock.*`` telemetry metrics.
Each entry carries the rule, path and line text it was minted from, so a
reviewer can audit the file without recomputing hashes.

Workflow: ``repro lint --write-baseline`` regenerates the file from the
current findings; editing a baselined line changes its key and the
finding resurfaces on the next run. Keys are path-relative, so the lint
must run from the repository root (the hygiene test does).
"""

from __future__ import annotations

import dataclasses
import json
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from .finding import Finding, keyed_findings

#: Default committed baseline, resolved relative to the working directory.
DEFAULT_BASELINE_PATH = ".scarelint-baseline.json"

_SCHEMA_VERSION = 1


class BaselineFormatError(ValueError):
    """Raised for files that do not parse as a version-1 baseline."""


@dataclasses.dataclass(frozen=True)
class BaselineEntry:
    """One suppression: the key plus the context it was minted from."""

    key: str
    rule: str = ""
    path: str = ""
    line_text: str = ""
    reason: str = ""

    def to_dict(self) -> Dict[str, str]:
        payload = {"key": self.key, "rule": self.rule, "path": self.path,
                   "line_text": self.line_text}
        if self.reason:
            payload["reason"] = self.reason
        return payload


@dataclasses.dataclass
class Baseline:
    """The set of suppressed finding keys, with load/save/apply."""

    entries: List[BaselineEntry] = dataclasses.field(default_factory=list)

    def keys(self) -> Set[str]:
        return {entry.key for entry in self.entries}

    def __len__(self) -> int:
        return len(self.entries)

    # -- application ---------------------------------------------------------

    def apply(self, findings: Iterable[Finding]
              ) -> Tuple[List[Finding], List[Finding], List[BaselineEntry]]:
        """Split findings into (unbaselined, suppressed, stale entries).

        Stale entries are baseline keys no current finding produced —
        usually a fixed violation whose suppression should be deleted.
        """
        keys = self.keys()
        matched: Set[str] = set()
        kept: List[Finding] = []
        suppressed: List[Finding] = []
        for finding, key in keyed_findings(findings):
            if key in keys:
                matched.add(key)
                suppressed.append(finding)
            else:
                kept.append(finding)
        stale = [entry for entry in self.entries
                 if entry.key not in matched]
        return kept, suppressed, stale

    # -- construction --------------------------------------------------------

    @classmethod
    def from_findings(cls, findings: Iterable[Finding],
                      reason: str = "") -> "Baseline":
        entries = [BaselineEntry(key=key, rule=finding.rule,
                                 path=finding.path,
                                 line_text=finding.line_text.strip(),
                                 reason=reason)
                   for finding, key in keyed_findings(findings)]
        return cls(entries=entries)

    # -- persistence ---------------------------------------------------------

    @classmethod
    def load(cls, path: str) -> "Baseline":
        with open(path, "r", encoding="utf-8") as handle:
            try:
                payload = json.load(handle)
            except json.JSONDecodeError as exc:
                raise BaselineFormatError(
                    f"{path}: not valid JSON: {exc}") from exc
        if not isinstance(payload, dict) or \
                payload.get("version") != _SCHEMA_VERSION:
            raise BaselineFormatError(
                f"{path}: expected a version-{_SCHEMA_VERSION} baseline "
                f"object")
        raw = payload.get("suppressions", [])
        if not isinstance(raw, list):
            raise BaselineFormatError(f"{path}: 'suppressions' must be a "
                                      f"list")
        entries = []
        for index, item in enumerate(raw):
            if not isinstance(item, dict) or "key" not in item:
                raise BaselineFormatError(
                    f"{path}: suppression #{index} lacks a 'key'")
            entries.append(BaselineEntry(
                key=str(item["key"]), rule=str(item.get("rule", "")),
                path=str(item.get("path", "")),
                line_text=str(item.get("line_text", "")),
                reason=str(item.get("reason", ""))))
        return cls(entries=entries)

    def save(self, path: str) -> None:
        payload = {
            "version": _SCHEMA_VERSION,
            "suppressions": [entry.to_dict() for entry in
                             sorted(self.entries,
                                    key=lambda e: (e.path, e.rule, e.key))],
        }
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")


def load_or_empty(path: str) -> Baseline:
    """Load ``path``; a missing file is an empty baseline (not an error)."""
    try:
        return Baseline.load(path)
    except FileNotFoundError:
        return Baseline()
