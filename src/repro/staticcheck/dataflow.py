"""Whole-program state-integrity rules (SC006–SC008) and taint upgrades.

These are the scarelint v2 rules, all project-scope, all built on the
:mod:`repro.staticcheck.callgraph` summaries. They audit the three
invariants the PR-6 execution modes (dirty-set delta-restore, fork-shared
zero-copy templates, binary chunk envelopes) quietly depend on:

* **SC006 mutation-tracking soundness** — every public method of a
  :data:`repro.winsim.machine.TRACKED_SUBSYSTEMS` class that writes
  instance state, directly or through any chain of helpers, must also
  (transitively) bump a ``mutations`` generation counter or write
  through a notify-on-write tagged container (TagDict-style). A missed
  bump makes delta-restore silently skip a dirty subsystem.
* **SC007 worker-boundary fork/pickle safety** — ``repro.parallel`` and
  ``repro.fleet`` objects cross the worker boundary (chunk envelopes,
  shared-state registry). Locks, open files, generators, frames, and
  module references stored in instance state do not survive that
  crossing; module-level mutable globals silently diverge between
  parent and forked workers unless registered in
  :data:`FORK_SAFE_GLOBALS` (each entry documents its fork story).
* **SC008 snapshot completeness** — a class offering
  ``snapshot``/``restore`` (or ``snapshot_state``/``restore_state``)
  must have every attribute it ever assigns either reachable from that
  pair's same-class call closure or listed in an in-code
  ``_SNAPSHOT_EXEMPT`` class tuple explaining itself.

On top of the same graph, SC001/SC002 gain project-scope taint variants:
a deterministic-zone function calling an *out-of-zone* helper whose call
closure reaches a host-clock/host-entropy primitive is a finding at the
call site — the laundering pattern file-scope import matching misses.
In-zone primitive use stays the file-scope checkers' job (and keeps its
existing baseline entries).

Like SC004, the machine-anchored rule disarms when its anchor module
(``repro.winsim.machine``) is not part of the scan, so linting a single
unrelated file stays cheap and quiet.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

from .callgraph import CallGraph, FunctionSummary
from .cache import FileContext
from .finding import Finding, SEVERITY_ERROR
from .registry import DETERMINISTIC_ZONES, ProjectContext, project_checker

#: Anchor for SC006: the module declaring the tracked-subsystem contract.
MACHINE_MODULE = "repro.winsim.machine"
TRACKED_CONSTANT = "TRACKED_SUBSYSTEMS"

#: Dirty-journal bookkeeping attributes: writing these *is* the tracking
#: machinery, not tracked state (SC006), and they are deliberately
#: rebuilt rather than snapshotted (SC008).
JOURNAL_ATTRS = frozenset({"_dirty_paths", "_dirty_pids",
                           "_last_restored_state"})

#: Class-level marker tuple naming attributes deliberately excluded from
#: snapshot/restore coverage; each use must carry a comment saying why.
SNAPSHOT_EXEMPT_MARKER = "_SNAPSHOT_EXEMPT"

#: Module-level mutable globals in the worker zones with a known fork
#: story. Everything else is an SC007 finding.
#:
#: * ``repro.parallel.shared._REGISTRY`` — the sanctioned pre-fork
#:   publication channel itself (fingerprint-validated lookups).
#: * ``repro.parallel.factories._REGISTRY`` / ``_BUILTINS`` — machine
#:   factory catalogues, registered at import time in every process.
#: * ``repro.parallel.worker._STATE`` — per-worker scratch explicitly
#:   rebuilt from the chunk header on first use.
#: * ``repro.fleet.service._FLEET_STATE`` — the fleet twin of
#:   ``worker._STATE``: per-worker fixtures filled by
#:   ``initialize_fleet_worker`` in every process (serial and pooled).
FORK_SAFE_GLOBALS: FrozenSet[Tuple[str, str]] = frozenset({
    ("repro.parallel.shared", "_REGISTRY"),
    ("repro.parallel.factories", "_REGISTRY"),
    ("repro.parallel.factories", "_BUILTINS"),
    ("repro.parallel.worker", "_STATE"),
    ("repro.fleet.service", "_FLEET_STATE"),
})

#: Modules whose objects cross the fork/pickle worker boundary.
#: ``repro.serve`` is audited too: the server shares the fleet's worker
#: runtime, so any module-level state it grows must be fork-safe (or
#: registered) before a pooled backend ever becomes an option.
WORKER_ZONES = ("repro.parallel", "repro.fleet", "repro.serve")

#: snapshot/restore method-name pairs SC008 audits.
SNAPSHOT_PAIRS = (("snapshot", "restore"),
                  ("snapshot_state", "restore_state"))

_RESOURCE_LABELS = {
    "lock": "a synchronization primitive (lock/event/semaphore)",
    "open-file": "an open file object",
    "generator": "a generator",
    "frame": "a frame reference",
    "module-ref": "a module object reference",
}


def graph_for(ctx: ProjectContext) -> CallGraph:
    """The project call graph, built once and shared by every v2 rule."""
    graph = getattr(ctx, "_scarelint_graph", None)
    if graph is None:
        graph = CallGraph(ctx.files)
        ctx._scarelint_graph = graph
    return graph


def _in_zone(module: str) -> bool:
    return any(module == zone or module.startswith(zone + ".")
               for zone in DETERMINISTIC_ZONES)


def _finding(by_module: Dict[str, FileContext], module: str, rule: str,
             line: int, message: str) -> Optional[Finding]:
    fc = by_module.get(module)
    if fc is None:
        return None
    return fc.finding(rule, line, message, severity=SEVERITY_ERROR)


def _resolve_class(graph: CallGraph, module: str,
                   name: str) -> Tuple[Optional[str], Optional[str]]:
    """``(defining module, class name)`` for a constructor name."""
    mod = graph.modules.get(module)
    if mod is None:
        return (None, None)
    if name in mod.classes:
        return (module, name)
    target = mod.imports.get(name)
    if target is not None and target[1] is not None:
        target_mod = graph.modules.get(target[0])
        if target_mod is not None and target[1] in target_mod.classes:
            return (target[0], target[1])
    return (None, None)


# ---------------------------------------------------------------------------
# SC006 — mutation-tracking soundness
# ---------------------------------------------------------------------------

def tracked_subsystem_classes(graph: CallGraph
                              ) -> Dict[str, Tuple[str, str]]:
    """``subsystem attr → (module, class)`` from the machine anchor.

    Derived statically: the ``TRACKED_SUBSYSTEMS`` string tuple names the
    attributes, and ``Machine.__init__``'s ``self.<attr> = Class()``
    assignments (resolved through the machine module's imports) name the
    classes. A new tracked subsystem is audited the moment it is wired
    into the machine, with no checker-side list to update.
    """
    mod = graph.modules.get(MACHINE_MODULE)
    if mod is None:
        return {}
    tracked = mod.constants.get(TRACKED_CONSTANT)
    init = mod.functions.get("Machine.__init__")
    if not tracked or init is None:
        return {}
    out: Dict[str, Tuple[str, str]] = {}
    for write in init.self_writes:
        if write.attr not in tracked or not write.value_ctor:
            continue
        target_mod, target_cls = _resolve_class(graph, MACHINE_MODULE,
                                                write.value_ctor)
        if target_mod is not None and target_cls is not None:
            out[write.attr] = (target_mod, target_cls)
    return out


def _tagged_attrs(graph: CallGraph) -> Dict[Tuple[str, str],
                                            FrozenSet[str]]:
    """Per-class attrs backed by notify-on-write (TagDict-style) containers.

    An attribute counts as tagged when ``__init__`` assigns it a
    constructor whose class defines ``__setitem__`` with transitive
    ``mutations``-bump evidence — writing *into* such a container is
    itself bump evidence.
    """
    out: Dict[Tuple[str, str], FrozenSet[str]] = {}
    for fn in graph.functions():
        if fn.cls is None or fn.name != "__init__":
            continue
        tagged = set()
        for write in fn.self_writes:
            if not write.value_ctor:
                continue
            ctor_mod, ctor_cls = _resolve_class(graph, fn.module,
                                                write.value_ctor)
            if ctor_mod is None:
                continue
            setitem = graph.function(ctor_mod, f"{ctor_cls}.__setitem__")
            if setitem is None:
                continue
            if any(reached.bumps_mutations
                   for reached in graph.closure(setitem)):
                tagged.add(write.attr)
        if tagged:
            out[(fn.module, fn.cls)] = frozenset(tagged)
    return out


def _is_state_write(write) -> bool:
    return write.attr not in JOURNAL_ATTRS and write.attr != "mutations"


@project_checker(
    "SC006", "mutation-tracking",
    "tracked-subsystem methods must bump `mutations` when they write "
    "instance state (directly or through helpers)")
def check_mutation_tracking(ctx: ProjectContext) -> List[Finding]:
    graph = graph_for(ctx)
    tracked = tracked_subsystem_classes(graph)
    if not tracked:
        return []                       # anchor module not in this scan
    by_module = ctx.by_module()
    tagged = _tagged_attrs(graph)

    write_seeds: Dict[Tuple[str, str], str] = {}
    bump_seeds: Dict[Tuple[str, str], str] = {}
    for fn in graph.functions():
        # Constructors write fresh objects, not tracked subsystem state.
        state_writes = ([] if fn.name == "__init__" else
                        sorted((w.line, w.attr) for w in fn.self_writes
                               if _is_state_write(w)))
        if state_writes:
            line, attr = state_writes[0]
            write_seeds[fn.key] = \
                f"'{attr}' in {fn.module}.{fn.qualname} (line {line})"
        if fn.bumps_mutations:
            bump_seeds[fn.key] = f"{fn.module}.{fn.qualname}"
        elif fn.cls is not None:
            cls_tagged = tagged.get((fn.module, fn.cls), frozenset())
            if any(w.attr in cls_tagged and w.via in ("item", "mutcall")
                   for w in fn.self_writes):
                bump_seeds[fn.key] = \
                    f"{fn.module}.{fn.qualname} (tagged container)"
    writes = graph.propagate(write_seeds)
    bumps = graph.propagate(bump_seeds)

    findings: List[Finding] = []
    for subsystem in sorted(tracked):
        module, cls = tracked[subsystem]
        info = graph.class_info(module, cls)
        if info is None:
            continue
        for name in sorted(info.methods):
            if name.startswith("_"):
                continue
            fn = graph.function(module, f"{cls}.{name}")
            if fn is None or fn.key not in writes or fn.key in bumps:
                continue
            finding = _finding(
                by_module, module, "SC006", fn.line,
                f"{cls}.{name}() (subsystem '{subsystem}') writes "
                f"instance state ({writes[fn.key]}) without bumping a "
                f"`mutations` generation counter; dirty-set delta-restore "
                f"will miss this mutation")
            if finding is not None:
                findings.append(finding)
    return findings


# ---------------------------------------------------------------------------
# SC007 — worker-boundary fork/pickle safety
# ---------------------------------------------------------------------------

def _returned_resource_map(graph: CallGraph
                           ) -> Dict[Tuple[str, str], Tuple[str, str]]:
    """``function key → (resource kind, witness)`` for resource returns.

    Propagates only through ``return f(...)`` call chains — a helper
    that merely *uses* a lock internally does not mark its callers.
    """
    out: Dict[Tuple[str, str], Tuple[str, str]] = {}
    for fn in graph.functions():
        if fn.returned_resources:
            line, kind = sorted(fn.returned_resources)[0]
            out[fn.key] = (kind,
                           f"{fn.module}.{fn.qualname} (line {line})")
    changed = True
    while changed:
        changed = False
        for fn in graph.functions():
            if fn.key in out:
                continue
            for call in fn.return_calls:
                hit: Optional[Tuple[str, str]] = None
                for callee in graph.resolve(fn, call):
                    if callee.is_generator:
                        hit = ("generator",
                               f"{callee.module}.{callee.qualname}")
                        break
                    if callee.key in out:
                        hit = out[callee.key]
                        break
                if hit is not None:
                    out[fn.key] = hit
                    changed = True
                    break
    return out


def _call_resource(graph: CallGraph, fn: FunctionSummary, call,
                   returned: Dict[Tuple[str, str], Tuple[str, str]]
                   ) -> Optional[Tuple[str, str]]:
    for callee in graph.resolve(fn, call):
        if callee.is_generator:
            return ("generator", f"{callee.module}.{callee.qualname}")
        if callee.key in returned:
            return returned[callee.key]
    return None


@project_checker(
    "SC007", "worker-boundary",
    "repro.parallel/repro.fleet state must be fork/pickle-safe: no "
    "locks, open files, generators, frames, or unregistered module-level "
    "mutable globals")
def check_worker_boundary(ctx: ProjectContext) -> List[Finding]:
    graph = graph_for(ctx)
    by_module = ctx.by_module()
    returned = _returned_resource_map(graph)
    findings: List[Finding] = []
    for module in sorted(graph.modules):
        if not any(module == zone or module.startswith(zone + ".")
                   for zone in WORKER_ZONES):
            continue
        mod = graph.modules[module]
        for assign in mod.global_assigns:
            if assign.name.startswith("__"):
                continue                     # __all__ and friends
            kind = assign.resource
            witness = None
            if kind is None and assign.value_call is not None:
                # Module-level ``X = make_lock()`` laundering.
                pseudo = FunctionSummary(module=module,
                                         qualname=assign.name, cls=None,
                                         name=assign.name,
                                         line=assign.line)
                hit = _call_resource(graph, pseudo, assign.value_call,
                                     returned)
                if hit is not None:
                    kind, witness = hit
            if kind is not None:
                detail = f" (via {witness})" if witness else ""
                finding = _finding(
                    by_module, module, "SC007", assign.line,
                    f"module-level '{assign.name}' holds "
                    f"{_RESOURCE_LABELS[kind]}{detail}; it cannot cross "
                    f"the fork/pickle worker boundary")
                if finding is not None:
                    findings.append(finding)
                continue
            if assign.mutable_kind is not None and \
                    (module, assign.name) not in FORK_SAFE_GLOBALS:
                finding = _finding(
                    by_module, module, "SC007", assign.line,
                    f"module-level mutable global '{assign.name}' "
                    f"({assign.mutable_kind}) is not registered in "
                    f"FORK_SAFE_GLOBALS; forked workers inherit a "
                    f"diverging copy — publish it through "
                    f"repro.parallel.shared or document its fork story")
                if finding is not None:
                    findings.append(finding)
        for qualname in sorted(mod.functions):
            fn = mod.functions[qualname]
            for write in fn.self_writes:
                kind = write.value_resource
                witness = None
                if kind is None and write.value_call is not None:
                    hit = _call_resource(graph, fn, write.value_call,
                                         returned)
                    if hit is not None:
                        kind, witness = hit
                if kind is None:
                    continue
                detail = f" (via {witness})" if witness else ""
                finding = _finding(
                    by_module, module, "SC007", write.line,
                    f"{fn.qualname} stores {_RESOURCE_LABELS[kind]} in "
                    f"instance attribute '{write.attr}'{detail}; the "
                    f"object will not survive the fork/pickle worker "
                    f"boundary")
                if finding is not None:
                    findings.append(finding)
    return findings


# ---------------------------------------------------------------------------
# SC008 — snapshot completeness
# ---------------------------------------------------------------------------

@project_checker(
    "SC008", "snapshot-completeness",
    "every attribute a snapshot-bearing class assigns must be covered by "
    "its snapshot/restore closure or listed in _SNAPSHOT_EXEMPT")
def check_snapshot_completeness(ctx: ProjectContext) -> List[Finding]:
    graph = graph_for(ctx)
    by_module = ctx.by_module()
    findings: List[Finding] = []
    for module in sorted(graph.modules):
        if not _in_zone(module):
            continue
        mod = graph.modules[module]
        for cls_name in sorted(mod.classes):
            info = mod.classes[cls_name]
            pairs = [pair for pair in SNAPSHOT_PAIRS
                     if set(pair) <= info.methods]
            if not pairs:
                continue
            assigned: Dict[str, int] = {}
            for method in sorted(info.methods):
                fn = mod.functions.get(f"{cls_name}.{method}")
                if fn is None:
                    continue
                for write in fn.self_writes:
                    if write.via in ("assign", "ann", "aug"):
                        line = assigned.get(write.attr, write.line)
                        assigned[write.attr] = min(line, write.line)
            covered = set()
            for pair in pairs:
                for method in pair:
                    fn = mod.functions.get(f"{cls_name}.{method}")
                    if fn is None:
                        continue
                    for reached in graph.closure(fn,
                                                 same_class_only=True):
                        covered |= reached.self_reads
                        covered |= {w.attr for w in reached.self_writes}
            exempt = set(info.constants.get(SNAPSHOT_EXEMPT_MARKER, ()))
            exempt |= JOURNAL_ATTRS
            for attr in sorted(assigned):
                if attr in covered or attr in exempt:
                    continue
                finding = _finding(
                    by_module, module, "SC008", assigned[attr],
                    f"{cls_name} assigns attribute '{attr}' but its "
                    f"snapshot/restore closure never touches it; a "
                    f"restore leaves stale state behind (cover it or "
                    f"list it in {SNAPSHOT_EXEMPT_MARKER} with a reason)")
                if finding is not None:
                    findings.append(finding)
    return findings


# ---------------------------------------------------------------------------
# SC001/SC002 — interprocedural taint upgrades
# ---------------------------------------------------------------------------

def _taint_findings(ctx: ProjectContext, rule: str, primitive_attr: str,
                    noun: str, remedy: str) -> List[Finding]:
    graph = graph_for(ctx)
    by_module = ctx.by_module()
    seeds: Dict[Tuple[str, str], str] = {}
    for fn in graph.functions():
        primitives = getattr(fn, primitive_attr)
        if primitives:
            line, desc = sorted(primitives)[0]
            seeds[fn.key] = \
                f"{desc} in {fn.module}.{fn.qualname} (line {line})"
    tainted = graph.propagate(seeds)

    # One finding per call line; smallest witness wins ties so serial
    # and pooled runs render identically.
    per_line: Dict[Tuple[str, int], str] = {}
    for fn in graph.functions():
        if not _in_zone(fn.module):
            continue
        for callee_key, call in graph.resolved_calls(fn):
            if callee_key not in tainted or _in_zone(callee_key[0]):
                continue
            message = (f"call into {callee_key[0]}.{callee_key[1]}() "
                       f"reaches {noun} ({tainted[callee_key]}); {remedy}")
            key = (fn.module, call.line)
            if key not in per_line or message < per_line[key]:
                per_line[key] = message
    findings: List[Finding] = []
    for (module, line) in sorted(per_line):
        finding = _finding(by_module, module, rule, line, per_line[(module,
                                                                    line)])
        if finding is not None:
            findings.append(finding)
    return findings


@project_checker(
    "SC001", "wallclock-taint",
    "deterministic zones must not reach the host clock through "
    "out-of-zone helpers")
def check_clock_taint(ctx: ProjectContext) -> List[Finding]:
    return _taint_findings(
        ctx, "SC001", "clock_primitives", "the host clock",
        "derive timing from machine.clock instead")


@project_checker(
    "SC002", "entropy-taint",
    "deterministic zones must not reach host entropy through "
    "out-of-zone helpers")
def check_entropy_taint(ctx: ProjectContext) -> List[Finding]:
    return _taint_findings(
        ctx, "SC002", "entropy_primitives", "host entropy",
        "derive values from the seeded deception database instead")
