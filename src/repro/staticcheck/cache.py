"""Shared AST-parse cache and the per-file checker context.

Every file-scope checker sees the same :class:`FileContext` — source,
split lines, parsed AST, and the dotted module name when the file lives
under a ``repro`` package root — so a file is read and parsed exactly
once per process however many checkers inspect it. The cache keys on
``(path, mtime_ns, size)``; a run that lints the tree and then re-lints
after an edit reparses only the changed files.
"""

from __future__ import annotations

import ast
import dataclasses
import os
from typing import Dict, List, Optional, Tuple

from .finding import Finding, SEVERITY_ERROR

#: Rule id for files that do not parse at all.
SYNTAX_RULE = "SC000"


@dataclasses.dataclass
class FileContext:
    """Everything checkers may want to know about one source file."""

    path: str                    #: normalized posix-relative path
    source: str
    lines: List[str]             #: source split into lines (1-based access
                                 #: via :meth:`line_text`)
    tree: Optional[ast.AST]      #: ``None`` when the file failed to parse
    module: Optional[str]        #: dotted name (``repro.winsim.clock``) or
                                 #: ``None`` outside a ``repro`` tree
    parse_error: Optional[Finding] = None

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def finding(self, rule: str, line: int, message: str,
                severity: str = SEVERITY_ERROR) -> Finding:
        """Build a finding anchored to ``line`` with its text captured."""
        return Finding(rule=rule, path=self.path, line=line,
                       message=message, severity=severity,
                       line_text=self.line_text(line))


def module_name_for(path: str) -> Optional[str]:
    """Dotted module name for a file under a ``repro`` package root.

    ``src/repro/winsim/clock.py`` → ``repro.winsim.clock``;
    ``src/repro/winsim/__init__.py`` → ``repro.winsim``; paths without a
    ``repro`` component → ``None`` (zone-gated checkers skip them).
    """
    parts = list(os.path.normpath(path).split(os.sep))
    if not parts or not parts[-1].endswith(".py"):
        return None
    parts[-1] = parts[-1][:-3]
    if parts[-1] == "__init__":
        parts.pop()
    try:
        anchor = parts.index("repro")
    except ValueError:
        return None
    dotted = [p for p in parts[anchor:] if p]
    return ".".join(dotted) if dotted else None


def normalize_path(path: str) -> str:
    """Posix-style path relative to the working directory."""
    return os.path.relpath(path).replace(os.sep, "/")


def build_context(path: str, source: str,
                  module: Optional[str] = None) -> FileContext:
    """Parse ``source`` into a context (no filesystem access, no cache)."""
    norm = normalize_path(path)
    lines = source.splitlines()
    if module is None:
        module = module_name_for(path)
    try:
        tree: Optional[ast.AST] = ast.parse(source, filename=norm)
        error = None
    except SyntaxError as exc:
        tree = None
        error = Finding(rule=SYNTAX_RULE, path=norm,
                        line=exc.lineno or 0,
                        message=f"syntax error: {exc.msg}",
                        line_text=(lines[exc.lineno - 1].strip()
                                   if exc.lineno and
                                   exc.lineno <= len(lines) else ""))
    return FileContext(path=norm, source=source, lines=lines, tree=tree,
                       module=module, parse_error=error)


class ParseCache:
    """Process-local ``path → FileContext`` cache keyed on file identity."""

    def __init__(self) -> None:
        self._entries: Dict[str, Tuple[Tuple[int, int], FileContext]] = {}
        self.hits = 0
        self.misses = 0

    def get(self, path: str) -> FileContext:
        stat = os.stat(path)
        identity = (stat.st_mtime_ns, stat.st_size)
        cached = self._entries.get(path)
        if cached is not None and cached[0] == identity:
            self.hits += 1
            return cached[1]
        self.misses += 1
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        context = build_context(path, source)
        self._entries[path] = (identity, context)
        return context

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0


#: The cache shared by a process's lint runs (workers inherit an empty
#: one at fork time; the serial path reuses parses across stages).
PARSE_CACHE = ParseCache()
