"""SC003 — import-graph layering for the ``repro`` package.

The reproduction's layer order is load-bearing (see ``repro/__init__``):
``winsim`` is the closed substrate at the bottom, ``winapi`` and
``hooking`` sit on it, ``core`` (Scarecrow itself) on those. A
``winsim → winapi/core/hooking`` import would let machine state reach
back into the deception layer — precisely the kind of self-referential
coupling HookChain-style bypasses exploit — and a ``winapi → core``
import would make the API table depend on the thing that hooks it.

This checker parses every scanned ``repro.*`` file's imports, resolves
relative imports to dotted module names, and reports:

* forbidden layer edges (including imports deferred into function
  bodies — a layering leak is a leak wherever the import statement
  sits), and
* cycles among *module-top-level* imports (deferred imports are the
  sanctioned way to break a cycle, so they are excluded here).
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .cache import FileContext
from .finding import Finding
from .registry import ProjectContext, project_checker

#: ``(importing layer, imported layer)`` pairs that violate the order.
FORBIDDEN_EDGES: Tuple[Tuple[str, str], ...] = (
    ("winsim", "winapi"), ("winsim", "core"), ("winsim", "hooking"),
    ("winapi", "core"),
)


@dataclasses.dataclass(frozen=True)
class ImportEdge:
    """One resolved import: ``src`` module imports ``dst`` module."""

    src: str
    dst: str
    line: int
    deferred: bool      #: True when the import sits inside a function


def layer_of(module: str) -> Optional[str]:
    """The top-level ``repro`` subpackage a module belongs to."""
    parts = module.split(".")
    if len(parts) >= 2 and parts[0] == "repro":
        return parts[1]
    return None


def _resolve_relative(module: str, is_package: bool, level: int,
                      target: Optional[str]) -> Optional[str]:
    """Absolute dotted name for a level-``level`` relative import."""
    parts = module.split(".")
    if not is_package:
        parts = parts[:-1]              # the containing package
    drop = level - 1
    if drop:
        if drop >= len(parts):
            return None
        parts = parts[:-drop]
    if target:
        parts = parts + target.split(".")
    return ".".join(parts) if parts else None


def extract_edges(ctx: FileContext,
                  known_modules: Set[str]) -> List[ImportEdge]:
    """All ``repro.*`` imports of one file, resolved against the scan set.

    ``from pkg import name`` resolves to ``pkg.name`` when that is a
    scanned module (a submodule import), otherwise to ``pkg`` (a symbol
    import executing the package/module itself).
    """
    if ctx.tree is None or ctx.module is None:
        return []
    is_package = ctx.path.endswith("__init__.py")
    edges: List[ImportEdge] = []

    def add(target: Optional[str], line: int, deferred: bool) -> None:
        if target and target.split(".")[0] == "repro" and \
                target != ctx.module:
            edges.append(ImportEdge(ctx.module, target, line, deferred))

    def visit(node: ast.AST, deferred: bool) -> None:
        for child in ast.iter_child_nodes(node):
            child_deferred = deferred or isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda))
            if isinstance(child, ast.Import):
                for alias in child.names:
                    add(alias.name, child.lineno, deferred)
            elif isinstance(child, ast.ImportFrom):
                if child.level == 0:
                    base = child.module
                else:
                    base = _resolve_relative(ctx.module, is_package,
                                             child.level, child.module)
                if base is None:
                    continue
                for alias in child.names:
                    sub = f"{base}.{alias.name}"
                    add(sub if sub in known_modules else base,
                        child.lineno, deferred)
            else:
                visit(child, child_deferred)

    visit(ctx.tree, deferred=False)
    return edges


def find_cycles(edges: Sequence[ImportEdge]) -> List[List[str]]:
    """Strongly connected components with >1 node (or a self-loop)."""
    graph: Dict[str, Set[str]] = {}
    for edge in edges:
        graph.setdefault(edge.src, set()).add(edge.dst)
        graph.setdefault(edge.dst, set())
    # Tarjan, iterative; output deterministically ordered.
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    counter = [0]
    cycles: List[List[str]] = []

    def strongconnect(root: str) -> None:
        work = [(root, iter(sorted(graph[root])))]
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in index:
                    index[succ] = lowlink[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(sorted(graph[succ]))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1 or \
                        node in graph.get(node, ()):
                    cycles.append(sorted(component))

    for node in sorted(graph):
        if node not in index:
            strongconnect(node)
    return sorted(cycles)


def layering_findings(files: Sequence[FileContext]) -> List[Finding]:
    """The SC003 core, separated for direct use in tests."""
    known = {ctx.module for ctx in files if ctx.module is not None}
    by_module = {ctx.module: ctx for ctx in files if ctx.module is not None}
    all_edges: List[ImportEdge] = []
    for ctx in files:
        all_edges.extend(extract_edges(ctx, known))

    findings: List[Finding] = []
    for edge in all_edges:
        src_layer, dst_layer = layer_of(edge.src), layer_of(edge.dst)
        if (src_layer, dst_layer) in FORBIDDEN_EDGES:
            ctx = by_module[edge.src]
            findings.append(ctx.finding(
                "SC003", edge.line,
                f"layering violation: {src_layer} must not import "
                f"{dst_layer} ({edge.src} -> {edge.dst})"))

    toplevel = [edge for edge in all_edges
                if not edge.deferred and edge.dst in known]
    for cycle in find_cycles(toplevel):
        members = set(cycle)
        anchor = next(edge for edge in toplevel
                      if edge.src in members and edge.dst in members)
        ctx = by_module[anchor.src]
        findings.append(ctx.finding(
            "SC003", anchor.line,
            "import cycle among top-level imports: " +
            " <-> ".join(cycle)))
    return findings


@project_checker("SC003", "layering",
                 "the repro layer order (winsim < winapi/hooking < core) "
                 "must hold and the import graph must be acyclic")
def check_layering(ctx: ProjectContext) -> List[Finding]:
    return layering_findings(ctx.files)
