"""Whole-program call graph and per-function dataflow summaries.

Scarelint v1 was strictly file-scope: every rule saw one AST at a time,
so a zone function calling an out-of-zone wrapper around ``time.time()``
— or a tracked-subsystem mutator whose ``mutations`` bump lives three
helpers away — was invisible. This module is the project-wide layer the
v2 rules (SC006–SC008, and the interprocedural SC001/SC002 upgrade in
:mod:`repro.staticcheck.dataflow`) stand on:

* **module resolution** — every scanned ``repro.*`` file's imports are
  resolved to dotted module names (reusing the relative-import logic the
  SC003 layering checker established), so cross-module call edges are
  import-precise rather than name-guessed;
* **per-function summaries** — one AST walk per function records its
  self-attribute writes and reads, ``mutations``-counter bumps, call
  sites, host-clock/entropy primitive reads, created fork/pickle-unsafe
  resources, and return shape (nested functions and lambdas fold into
  their enclosing function: a closure that reads the clock makes its
  builder clock-reading, which is the semantics the taint rules want);
* **fixpoint propagation** — :meth:`CallGraph.propagate` pushes any
  seed property backwards over the call graph until stable, carrying a
  deterministic witness string for the finding message.

Resolution is deliberately asymmetric: cross-module edges exist *only*
through imports (module aliases and from-imported symbols), while
intra-module ``obj.method()`` calls fall back to class-hierarchy-lite
(every same-module method of that name). Over-approximate edges are safe
for the rules built here — they can only make a function look *more*
covered (bump evidence, snapshot coverage) or be pruned by the
out-of-zone filter (taint).
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .cache import FileContext
from .layering import _resolve_relative

#: Host-clock primitive functions by module root (``None`` = any attr).
#: ``random`` rides under the clock family to match file-scope SC001
#: (``FORBIDDEN_TIME_MODULES``); seeded ``random.Random(x)`` construction
#: is deterministic and deliberately NOT a primitive.
CLOCK_FUNCS_BY_ROOT = {
    "time": None,
    "random": frozenset({
        "random", "randint", "randrange", "randbytes", "choice", "choices",
        "shuffle", "uniform", "sample", "getrandbits", "gauss", "seed",
        "triangular", "betavariate", "expovariate", "normalvariate",
        "lognormvariate", "paretovariate", "vonmisesvariate",
        "weibullvariate",
    }),
    "datetime": frozenset({"now", "utcnow", "today"}),
}

#: Host-entropy primitive functions by module root (``None`` = any attr).
ENTROPY_FUNCS_BY_ROOT = {
    "uuid": frozenset({"uuid1", "uuid4", "getnode"}),
    "secrets": None,
    "os": frozenset({"urandom"}),
}

#: Container-mutating method names: a call ``self.x.append(...)`` is a
#: write to the contents of attribute ``x``.
MUTATING_METHODS = frozenset({
    "append", "add", "remove", "pop", "clear", "update", "discard",
    "insert", "extend", "setdefault", "popitem", "appendleft", "extendleft",
})

#: ``module → {constructor names}`` whose instances do not survive the
#: fork/pickle worker boundary (SC007's resource catalogue).
_LOCK_MODULES = ("threading", "multiprocessing", "_thread")
_LOCK_CTORS = frozenset({"Lock", "RLock", "Condition", "Semaphore",
                         "BoundedSemaphore", "Event", "Barrier"})
_FILE_CTORS = {("io", "open"), ("os", "fdopen"), ("gzip", "open"),
               ("tempfile", "TemporaryFile"),
               ("tempfile", "NamedTemporaryFile")}
_FRAME_CTORS = {("sys", "_getframe"), ("inspect", "currentframe"),
                ("inspect", "stack")}


@dataclasses.dataclass(frozen=True)
class CallSite:
    """One call expression, with a resolution hint.

    ``kind`` is how the callee expression was shaped:

    * ``"self"`` — ``self.name(...)`` (first-argument receiver);
    * ``"module"`` — ``alias.name(...)`` where ``alias`` imports a module
      (``target`` holds its dotted name);
    * ``"symbol"`` — ``NAME(...)`` where ``NAME`` was from-imported
      (``target`` holds the defining module, ``name`` the symbol);
    * ``"symbol-attr"`` — ``NAME.name(...)`` on a from-imported symbol
      (a method call on an object defined in ``target``);
    * ``"local"`` — a bare in-module call ``name(...)``;
    * ``"dyn"`` — any other receiver (``x.name()``, ``f().name()``),
      resolved class-hierarchy-lite within the same module.
    """

    kind: str
    name: str
    line: int
    target: Optional[str] = None


@dataclasses.dataclass(frozen=True)
class AttrWrite:
    """One write to ``self.<attr>`` (or to its contents)."""

    attr: str
    line: int
    #: ``"assign"``/``"aug"``/``"ann"`` create-or-rebind writes;
    #: ``"item"`` subscript stores; ``"mutcall"`` mutating method calls;
    #: ``"del"`` deletions.
    via: str
    #: Last dotted component of a constructor call on the right-hand side
    #: (``self.registry = Registry()`` → ``"Registry"``), for class
    #: resolution of tracked subsystems and tagged containers.
    value_ctor: Optional[str] = None
    #: The right-hand-side call, when the value is a call (resource
    #: laundering propagates through it).
    value_call: Optional[CallSite] = None
    #: Fork/pickle-unsafe resource kind created directly on the
    #: right-hand side (``"lock"``, ``"open-file"``, ``"generator"``,
    #: ``"frame"``, ``"module-ref"``).
    value_resource: Optional[str] = None


@dataclasses.dataclass(frozen=True)
class GlobalAssign:
    """One module-level name binding."""

    name: str
    line: int
    #: ``"dict"``/``"list"``/``"set"``/``"deque"``/... when the value is
    #: a mutable container expression, else None.
    mutable_kind: Optional[str] = None
    resource: Optional[str] = None
    value_call: Optional[CallSite] = None


@dataclasses.dataclass
class FunctionSummary:
    """Everything the dataflow rules want to know about one function."""

    module: str
    qualname: str                    #: ``"Registry.set_value"`` / ``"f"``
    cls: Optional[str]
    name: str
    line: int
    self_writes: List[AttrWrite] = dataclasses.field(default_factory=list)
    self_reads: Set[str] = dataclasses.field(default_factory=set)
    #: Writes any attribute named ``mutations`` on *any* receiver
    #: (``self.mutations += 1`` and ``owner.mutations += 1`` both count).
    bumps_mutations: bool = False
    calls: List[CallSite] = dataclasses.field(default_factory=list)
    #: ``(line, description)`` of direct host-clock reads.
    clock_primitives: List[Tuple[int, str]] = \
        dataclasses.field(default_factory=list)
    #: ``(line, description)`` of direct host-entropy reads.
    entropy_primitives: List[Tuple[int, str]] = \
        dataclasses.field(default_factory=list)
    #: Resource kinds appearing directly in ``return`` expressions.
    returned_resources: List[Tuple[int, str]] = \
        dataclasses.field(default_factory=list)
    #: Calls appearing directly in ``return`` expressions (resource
    #: laundering propagates through these).
    return_calls: List[CallSite] = dataclasses.field(default_factory=list)
    #: The function's own body yields (nested defs excluded).
    is_generator: bool = False

    @property
    def key(self) -> Tuple[str, str]:
        return (self.module, self.qualname)

    def merge(self, other: "FunctionSummary") -> None:
        """Fold another summary in (property getter/setter pairs)."""
        self.self_writes.extend(other.self_writes)
        self.self_reads |= other.self_reads
        self.bumps_mutations |= other.bumps_mutations
        self.calls.extend(other.calls)
        self.clock_primitives.extend(other.clock_primitives)
        self.entropy_primitives.extend(other.entropy_primitives)
        self.returned_resources.extend(other.returned_resources)
        self.return_calls.extend(other.return_calls)
        self.is_generator |= other.is_generator


@dataclasses.dataclass
class ClassInfo:
    """One class: its methods plus statically-readable class constants."""

    name: str
    line: int
    bases: List[str]
    methods: Set[str] = dataclasses.field(default_factory=set)
    #: Class-level ``NAME = ("a", "b")`` string tuples (markers such as
    #: ``_SNAPSHOT_EXEMPT`` live here).
    constants: Dict[str, Tuple[str, ...]] = \
        dataclasses.field(default_factory=dict)


@dataclasses.dataclass
class ModuleSummary:
    """Per-module view: functions, classes, imports, globals."""

    module: str
    path: str
    functions: Dict[str, FunctionSummary] = \
        dataclasses.field(default_factory=dict)
    classes: Dict[str, ClassInfo] = dataclasses.field(default_factory=dict)
    #: local name → ``(dotted module, symbol-or-None)``.
    imports: Dict[str, Tuple[str, Optional[str]]] = \
        dataclasses.field(default_factory=dict)
    global_assigns: List[GlobalAssign] = \
        dataclasses.field(default_factory=list)
    #: Module-level ``NAME = ("a", ...)`` string tuples.
    constants: Dict[str, Tuple[str, ...]] = \
        dataclasses.field(default_factory=dict)
    #: methods-by-name index for class-hierarchy-lite resolution.
    methods_by_name: Dict[str, List[str]] = \
        dataclasses.field(default_factory=dict)


def _dotted_tail(expr: ast.expr) -> Optional[str]:
    """``Name``/``Attribute`` chain rendered dotted, else None."""
    parts: List[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _string_tuple(expr: ast.expr) -> Optional[Tuple[str, ...]]:
    """The value of a tuple/list of string constants, else None."""
    if not isinstance(expr, (ast.Tuple, ast.List)):
        return None
    items = []
    for element in expr.elts:
        if not isinstance(element, ast.Constant) or \
                not isinstance(element.value, str):
            return None
        items.append(element.value)
    return tuple(items)


def _mutable_kind(expr: ast.expr) -> Optional[str]:
    """Mutable-container kind of a module-level value expression."""
    if isinstance(expr, (ast.Dict, ast.DictComp)):
        return "dict"
    if isinstance(expr, (ast.List, ast.ListComp)):
        return "list"
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return "set"
    if isinstance(expr, ast.Call):
        callee = _dotted_tail(expr.func)
        if callee is None:
            return None
        tail = callee.split(".")[-1]
        if tail in ("dict", "list", "set", "defaultdict", "deque",
                    "Counter", "OrderedDict", "bytearray"):
            return tail
    return None


class _FunctionVisitor:
    """One pass over a function body, nested defs folded in."""

    def __init__(self, summary: FunctionSummary, self_name: Optional[str],
                 builder: "_ModuleBuilder") -> None:
        self.summary = summary
        self.self_name = self_name
        self.builder = builder

    # -- value classification -------------------------------------------------

    def classify_resource(self, expr: ast.expr) -> Optional[str]:
        """Fork/pickle-unsafe resource kind created by ``expr``."""
        if isinstance(expr, ast.GeneratorExp):
            return "generator"
        if isinstance(expr, ast.Name):
            target = self.builder.imports.get(expr.id)
            if target is not None and target[1] is None:
                return "module-ref"
            return None
        if not isinstance(expr, ast.Call):
            return None
        func = expr.func
        if isinstance(func, ast.Name):
            target = self.builder.imports.get(func.id)
            if func.id == "open" and target is None:
                return "open-file"
            if target is not None and target[1] is not None:
                root = target[0].split(".")[0]
                if root in _LOCK_MODULES and target[1] in _LOCK_CTORS:
                    return "lock"
                if (root, target[1]) in _FILE_CTORS | _FRAME_CTORS:
                    return ("frame" if (root, target[1]) in _FRAME_CTORS
                            else "open-file")
            return None
        if isinstance(func, ast.Attribute) and \
                isinstance(func.value, ast.Name):
            target = self.builder.imports.get(func.value.id)
            if target is None or target[1] is not None:
                return None
            root = target[0].split(".")[0]
            if root in _LOCK_MODULES and func.attr in _LOCK_CTORS:
                return "lock"
            if (root, func.attr) in _FILE_CTORS:
                return "open-file"
            if (root, func.attr) in _FRAME_CTORS:
                return "frame"
        return None

    def _call_site(self, call: ast.Call) -> Optional[CallSite]:
        func = call.func
        line = call.lineno
        if isinstance(func, ast.Name):
            target = self.builder.imports.get(func.id)
            if target is not None and target[1] is not None:
                return CallSite("symbol", target[1], line, target[0])
            if target is not None:
                return None                   # calling a module object
            return CallSite("local", func.id, line)
        if isinstance(func, ast.Attribute):
            value = func.value
            if isinstance(value, ast.Name):
                if value.id == self.self_name and self.self_name:
                    return CallSite("self", func.attr, line)
                target = self.builder.imports.get(value.id)
                if target is not None and target[1] is None:
                    return CallSite("module", func.attr, line, target[0])
                if target is not None:
                    return CallSite("symbol-attr", func.attr, line,
                                    target[0])
            return CallSite("dyn", func.attr, line)
        return None

    def _record_primitive(self, call: ast.Call) -> None:
        func = call.func
        line = call.lineno
        if isinstance(func, ast.Name):
            if func.id == "hash" and call.args and \
                    func.id not in self.builder.imports:
                self.summary.entropy_primitives.append((line, "hash()"))
                return
            target = self.builder.imports.get(func.id)
            if target is None or target[1] is None:
                return
            self._classify_primitive(target[0].split(".")[0], target[1],
                                     bool(call.args), line,
                                     f"{target[0]}.{target[1]}()")
            return
        dotted = _dotted_tail(func)
        if dotted is None:
            return
        parts = dotted.split(".")
        if len(parts) < 2:
            return
        target = self.builder.imports.get(parts[0])
        if target is None:
            return
        self._classify_primitive(target[0].split(".")[0], parts[-1],
                                 bool(call.args), line,
                                 f"{target[0]}.{'.'.join(parts[1:])}()")

    def _classify_primitive(self, root: str, attr: str, has_args: bool,
                            line: int, desc: str) -> None:
        # Unseeded Random() draws its seed from the OS; seeded is fine.
        if root == "random" and attr in ("Random", "SystemRandom"):
            if attr == "SystemRandom" or not has_args:
                self.summary.entropy_primitives.append((line, desc))
            return
        clock = CLOCK_FUNCS_BY_ROOT.get(root)
        if root in CLOCK_FUNCS_BY_ROOT and (clock is None or attr in clock):
            self.summary.clock_primitives.append((line, desc))
            return
        entropy = ENTROPY_FUNCS_BY_ROOT.get(root)
        if root in ENTROPY_FUNCS_BY_ROOT and \
                (entropy is None or attr in entropy):
            self.summary.entropy_primitives.append((line, desc))

    # -- write extraction -----------------------------------------------------

    def _attr_write(self, target: ast.expr, via: str,
                    value: Optional[ast.expr]) -> None:
        """Record a write through ``target`` (attribute or subscript)."""
        node = target
        if isinstance(node, ast.Subscript):
            via = "item"
            node = node.value
        if not isinstance(node, ast.Attribute):
            return
        # Walk attribute chains to the rooting name: ``self.a.b`` and
        # ``self.a[k]`` are both content writes to ``a``.
        chain: List[str] = []
        while isinstance(node, ast.Attribute):
            chain.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return
        attr = chain[-1]
        if chain[0] == "mutations":
            self.summary.bumps_mutations = True
        if node.id != self.self_name or not self.self_name:
            return
        if len(chain) > 1:
            via = "item"                      # content write, not rebind
        ctor = None
        value_call = None
        resource = None
        if value is not None:
            if isinstance(value, ast.Call):
                dotted = _dotted_tail(value.func)
                ctor = dotted.split(".")[-1] if dotted else None
                value_call = self._call_site(value)
            resource = self.classify_resource(value)
        self.summary.self_writes.append(AttrWrite(
            attr=attr, line=target.lineno, via=via, value_ctor=ctor,
            value_call=value_call, value_resource=resource))

    # -- traversal -----------------------------------------------------------

    def visit(self, body: Sequence[ast.stmt]) -> None:
        for node in body:
            for child in ast.walk(node):
                self._inspect(child)
        self.summary.is_generator = self._own_body_yields(body)

    def _own_body_yields(self, body: Sequence[ast.stmt]) -> bool:
        stack: List[ast.AST] = list(body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                continue                       # nested scope's yields
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                return True
            stack.extend(ast.iter_child_nodes(node))
        return False

    def _inspect(self, node: ast.AST) -> None:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                for leaf in (target.elts
                             if isinstance(target, ast.Tuple)
                             else [target]):
                    self._attr_write(leaf, "assign", node.value)
        elif isinstance(node, ast.AugAssign):
            self._attr_write(node.target, "aug", node.value)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            self._attr_write(node.target, "ann", node.value)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                self._attr_write(target, "del", None)
        elif isinstance(node, ast.Call):
            self._record_primitive(node)
            site = self._call_site(node)
            if site is not None:
                self.summary.calls.append(site)
            func = node.func
            if isinstance(func, ast.Attribute) and \
                    func.attr in MUTATING_METHODS:
                self._attr_write(func.value, "mutcall", None)
        elif isinstance(node, ast.Attribute) and \
                isinstance(node.ctx, ast.Load) and \
                isinstance(node.value, ast.Name) and \
                node.value.id == self.self_name and self.self_name:
            self.summary.self_reads.add(node.attr)
        elif isinstance(node, ast.Return) and node.value is not None:
            resource = self.classify_resource(node.value)
            if resource is not None:
                self.summary.returned_resources.append(
                    (node.lineno, resource))
            if isinstance(node.value, ast.Call):
                site = self._call_site(node.value)
                if site is not None:
                    self.summary.return_calls.append(site)


class _ModuleBuilder:
    """Builds one :class:`ModuleSummary` from a parsed file."""

    def __init__(self, ctx: FileContext,
                 known_modules: Set[str]) -> None:
        self.ctx = ctx
        self.known = known_modules
        self.imports: Dict[str, Tuple[str, Optional[str]]] = {}
        self.summary = ModuleSummary(module=ctx.module or "",
                                     path=ctx.path)

    def build(self) -> ModuleSummary:
        tree = self.ctx.tree
        assert tree is not None
        self._collect_imports(tree)
        self.summary.imports = self.imports
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(node, cls=None)
            elif isinstance(node, ast.ClassDef):
                self._add_class(node)
            elif isinstance(node, ast.Assign) and \
                    len(node.targets) == 1 and \
                    isinstance(node.targets[0], ast.Name):
                self._add_global(node.targets[0].id, node)
            elif isinstance(node, ast.AnnAssign) and \
                    isinstance(node.target, ast.Name) and \
                    node.value is not None:
                self._add_global(node.target.id, node)
        for qualname, fn in self.summary.functions.items():
            if fn.cls is not None:
                self.summary.methods_by_name.setdefault(
                    fn.name, []).append(qualname)
        return self.summary

    def _collect_imports(self, tree: ast.AST) -> None:
        is_package = self.ctx.path.endswith("__init__.py")
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self.imports[alias.asname] = (alias.name, None)
                    else:
                        root = alias.name.split(".")[0]
                        self.imports.setdefault(root, (root, None))
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0:
                    base = node.module
                else:
                    base = _resolve_relative(self.ctx.module or "",
                                             is_package, node.level,
                                             node.module)
                if base is None:
                    continue
                for alias in node.names:
                    local = alias.asname or alias.name
                    submodule = f"{base}.{alias.name}"
                    if submodule in self.known:
                        self.imports[local] = (submodule, None)
                    else:
                        self.imports[local] = (base, alias.name)

    def _add_function(self, node: ast.AST, cls: Optional[str]) -> None:
        name = node.name
        qualname = f"{cls}.{name}" if cls else name
        args = node.args
        self_name = None
        if cls is not None and (args.posonlyargs or args.args):
            first = (args.posonlyargs or args.args)[0]
            self_name = first.arg
        summary = FunctionSummary(module=self.summary.module,
                                  qualname=qualname, cls=cls, name=name,
                                  line=node.lineno)
        _FunctionVisitor(summary, self_name, self).visit(node.body)
        existing = self.summary.functions.get(qualname)
        if existing is not None:       # property getter/setter pair
            existing.merge(summary)
        else:
            self.summary.functions[qualname] = summary

    def _add_class(self, node: ast.ClassDef) -> None:
        info = ClassInfo(name=node.name, line=node.lineno,
                         bases=[b for b in
                                (_dotted_tail(base) for base in node.bases)
                                if b is not None])
        for child in node.body:
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info.methods.add(child.name)
                self._add_function(child, cls=node.name)
            elif isinstance(child, ast.Assign) and \
                    len(child.targets) == 1 and \
                    isinstance(child.targets[0], ast.Name):
                values = _string_tuple(child.value)
                if values is not None:
                    info.constants[child.targets[0].id] = values
        self.summary.classes[node.name] = info

    def _add_global(self, name: str, node: ast.stmt) -> None:
        value = node.value
        values = _string_tuple(value)
        if values is not None:
            self.summary.constants[name] = values
        visitor = _FunctionVisitor(
            FunctionSummary(module=self.summary.module, qualname=name,
                            cls=None, name=name, line=node.lineno),
            None, self)
        value_call = (visitor._call_site(value)
                      if isinstance(value, ast.Call) else None)
        self.summary.global_assigns.append(GlobalAssign(
            name=name, line=node.lineno, mutable_kind=_mutable_kind(value),
            resource=visitor.classify_resource(value),
            value_call=value_call))


class CallGraph:
    """Project-wide summaries plus call resolution and fixpoints."""

    def __init__(self, files: Sequence[FileContext]) -> None:
        known = {ctx.module for ctx in files if ctx.module is not None}
        self.modules: Dict[str, ModuleSummary] = {}
        for ctx in files:
            if ctx.module is None or ctx.tree is None:
                continue
            self.modules[ctx.module] = _ModuleBuilder(ctx, known).build()
        self._resolved: Dict[Tuple[str, str],
                             List[Tuple[Tuple[str, str], CallSite]]] = {}

    # -- lookup ---------------------------------------------------------------

    def function(self, module: str,
                 qualname: str) -> Optional[FunctionSummary]:
        mod = self.modules.get(module)
        return mod.functions.get(qualname) if mod else None

    def functions(self) -> Iterable[FunctionSummary]:
        for module in sorted(self.modules):
            mod = self.modules[module]
            for qualname in sorted(mod.functions):
                yield mod.functions[qualname]

    def class_info(self, module: str, name: str) -> Optional[ClassInfo]:
        mod = self.modules.get(module)
        return mod.classes.get(name) if mod else None

    # -- resolution -----------------------------------------------------------

    def resolve(self, fn: FunctionSummary,
                call: CallSite) -> List[FunctionSummary]:
        """Best-effort callee summaries for one call site."""
        mod = self.modules.get(fn.module)
        if mod is None:
            return []
        out: List[FunctionSummary] = []
        if call.kind == "self" and fn.cls is not None:
            resolved = self._resolve_method(mod, fn.cls, call.name)
            if resolved is not None:
                return [resolved]
            return self._methods_named(mod, call.name)
        if call.kind == "local":
            local = mod.functions.get(call.name)
            if local is not None:
                return [local]
            if call.name in mod.classes:
                ctor = mod.functions.get(f"{call.name}.__init__")
                return [ctor] if ctor is not None else []
            return []
        if call.kind == "symbol":
            target = self.modules.get(call.target or "")
            if target is None:
                return []
            symbol = target.functions.get(call.name)
            if symbol is not None:
                return [symbol]
            if call.name in target.classes:
                ctor = target.functions.get(f"{call.name}.__init__")
                return [ctor] if ctor is not None else []
            return []
        if call.kind == "module":
            target = self.modules.get(call.target or "")
            if target is None:
                return []
            symbol = target.functions.get(call.name)
            if symbol is not None:
                return [symbol]
            if call.name in target.classes:
                ctor = target.functions.get(f"{call.name}.__init__")
                return [ctor] if ctor is not None else []
            return []
        if call.kind == "symbol-attr":
            target = self.modules.get(call.target or "")
            if target is None:
                return []
            return self._methods_named(target, call.name)
        if call.kind == "dyn":
            return self._methods_named(mod, call.name)
        return []

    def _resolve_method(self, mod: ModuleSummary, cls: str,
                        name: str) -> Optional[FunctionSummary]:
        """``self.name`` against the class, then same-module bases."""
        seen: Set[str] = set()
        current: Optional[str] = cls
        while current is not None and current not in seen:
            seen.add(current)
            info = mod.classes.get(current)
            if info is None:
                return None
            if name in info.methods:
                return mod.functions.get(f"{current}.{name}")
            current = info.bases[0] if info.bases else None
        return None

    def _methods_named(self, mod: ModuleSummary,
                       name: str) -> List[FunctionSummary]:
        return [mod.functions[qualname]
                for qualname in mod.methods_by_name.get(name, [])]

    def resolved_calls(self, fn: FunctionSummary
                       ) -> List[Tuple[Tuple[str, str], CallSite]]:
        """Memoised ``(callee key, call site)`` pairs for ``fn``."""
        cached = self._resolved.get(fn.key)
        if cached is None:
            cached = []
            for call in fn.calls:
                for callee in self.resolve(fn, call):
                    cached.append((callee.key, call))
            self._resolved[fn.key] = cached
        return cached

    # -- fixpoint -------------------------------------------------------------

    def propagate(self, seeds: Dict[Tuple[str, str], str]
                  ) -> Dict[Tuple[str, str], str]:
        """Backward closure of a seed property over the call graph.

        ``seeds`` maps function keys to witness strings. Returns the map
        extended to every function whose call closure reaches a seed;
        the witness is inherited deterministically (first over sorted
        callers, smallest witness on ties).
        """
        marked = dict(seeds)
        ordered = list(self.functions())
        changed = True
        while changed:
            changed = False
            for fn in ordered:
                if fn.key in marked:
                    continue
                witnesses = sorted(
                    marked[callee_key]
                    for callee_key, _ in self.resolved_calls(fn)
                    if callee_key in marked)
                if witnesses:
                    marked[fn.key] = witnesses[0]
                    changed = True
        return marked

    def closure(self, fn: FunctionSummary,
                same_class_only: bool = False
                ) -> List[FunctionSummary]:
        """Functions reachable from ``fn`` (itself included), BFS order.

        ``same_class_only`` restricts traversal to ``self.*`` calls
        resolved within ``fn``'s own class — the coverage closure SC008
        uses, where every reached ``self`` is provably the same object.
        """
        seen: Set[Tuple[str, str]] = {fn.key}
        order = [fn]
        queue = [fn]
        while queue:
            current = queue.pop(0)
            for callee_key, call in self.resolved_calls(current):
                if same_class_only and (call.kind != "self" or
                                        callee_key[0] != fn.module):
                    continue
                if callee_key in seen:
                    continue
                callee = self.function(*callee_key)
                if callee is None:
                    continue
                if same_class_only and callee.cls != fn.cls:
                    continue
                seen.add(callee_key)
                order.append(callee)
                queue.append(callee)
        return order
