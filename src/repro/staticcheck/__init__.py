"""``scarelint`` — the reproduction's static-analysis subsystem.

Machine-checks the invariants the paper states and the rest of the tree
assumes: the winsim substrate stays virtual-clock-deterministic (SC001)
and entropy-free (SC002) — both enforced at the import site (file scope)
*and* through helper chains (whole-program taint) — the layer order
holds and the import graph is acyclic (SC003), the 29-API hook contract
of Section III-A resolves against real prologue-bearing exports with
full handler coverage (SC004), no layer silently swallows exceptions
(SC005), every tracked-subsystem mutation bumps its ``mutations``
generation counter (SC006), nothing fork/pickle-unsafe crosses the
worker boundary (SC007), and snapshot/restore pairs cover every
attribute their class assigns (SC008). SC006–SC008 ride on the
:mod:`repro.staticcheck.callgraph` whole-program dataflow layer.

Entry points: ``repro lint`` (CLI), :func:`run_lint` (library),
``tests/test_hygiene.py`` (the in-tree zero-unbaselined-findings gate).
Rule catalogue and baseline workflow: docs/STATIC_ANALYSIS.md.
"""

from .baseline import (Baseline, BaselineEntry, BaselineFormatError,
                       DEFAULT_BASELINE_PATH, load_or_empty)
from .cache import (FileContext, PARSE_CACHE, ParseCache, build_context,
                    module_name_for)
from .finding import (Finding, SEVERITY_ERROR, SEVERITY_WARNING,
                      keyed_findings, suppression_key)
from .registry import (CheckerSpec, DETERMINISTIC_ZONES, ProjectContext,
                       all_checkers, checker, ensure_builtin_checkers,
                       file_checkers, get_checker, project_checker,
                       project_checkers)
from .callgraph import CallGraph, FunctionSummary, ModuleSummary
from .runner import (FileTaskResult, LintReport, changed_files,
                     collect_files, filter_checkers, lint_file,
                     render_human, render_json, run_lint, write_baseline)

__all__ = [
    "Baseline", "BaselineEntry", "BaselineFormatError", "CallGraph",
    "CheckerSpec", "DEFAULT_BASELINE_PATH", "DETERMINISTIC_ZONES",
    "FileContext", "FileTaskResult", "Finding", "FunctionSummary",
    "LintReport", "ModuleSummary", "PARSE_CACHE", "ParseCache",
    "ProjectContext", "SEVERITY_ERROR", "SEVERITY_WARNING",
    "all_checkers", "build_context", "changed_files", "checker",
    "collect_files", "ensure_builtin_checkers", "file_checkers",
    "filter_checkers", "get_checker", "keyed_findings", "lint_file",
    "load_or_empty", "module_name_for", "project_checker",
    "project_checkers", "render_human", "render_json", "run_lint",
    "suppression_key", "write_baseline",
]
