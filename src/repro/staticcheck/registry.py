"""Checker registry: rule metadata, zone gating, and lookup.

Checkers come in two scopes:

* **file** — a callable ``(FileContext) -> List[Finding]`` run once per
  parsed file, optionally gated to the *deterministic zones* (the
  subpackages whose behaviour must be byte-reproducible across serial
  and pooled runs);
* **project** — a callable ``(ProjectContext) -> List[Finding]`` run
  once per lint over every scanned file, for cross-file invariants
  (import layering, the 29-API hook contract).

Registration happens at import time of the defining module;
:func:`ensure_builtin_checkers` imports the in-tree checker modules so
callers never depend on import order.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .cache import FileContext

#: Subpackages that must stay free of host time and host entropy.
#: ``winsim`` is the simulated machine itself; ``winapi`` and ``hooking``
#: sit directly on top of it and fabricate values malware observes;
#: ``core`` is the deception engine; ``parallel`` must produce output
#: byte-identical to the serial path (its deliberate wall-clock metrics
#: are baselined, not exempted). ``repro.parallel.template`` is listed
#: explicitly even though the ``repro.parallel`` prefix already covers it:
#: the template layer snapshots and rewinds whole-machine state, so a
#: host-clock or host-entropy leak there would silently break the
#: templated-equals-fresh byte-parity guarantee.
#: ``repro.fleet`` joins the zones because its whole contract is replay:
#: the event stream, the admission plan and every latency number must be
#: pure functions of the seed — scheduling runs on the endpoints' virtual
#: clocks, never the host's. ``repro.serve`` joins for the same reason:
#: a served verdict must be a pure function of the submitted events, and
#: admission backpressure is expressed in queue occupancy, never time.
DETERMINISTIC_ZONES: Tuple[str, ...] = (
    "repro.winsim", "repro.winapi", "repro.hooking", "repro.core",
    "repro.parallel", "repro.parallel.template", "repro.fleet",
    "repro.serve", "repro.dbops",
)

FileCheckFn = Callable[[FileContext], List["Finding"]]
ProjectCheckFn = Callable[["ProjectContext"], List["Finding"]]


@dataclasses.dataclass
class ProjectContext:
    """Cross-file view handed to project-scope checkers."""

    files: List[FileContext]

    def by_module(self) -> Dict[str, FileContext]:
        return {ctx.module: ctx for ctx in self.files
                if ctx.module is not None}

    def find(self, module: str) -> Optional[FileContext]:
        for ctx in self.files:
            if ctx.module == module:
                return ctx
        return None


@dataclasses.dataclass(frozen=True)
class CheckerSpec:
    """One registered checker plus its catalogue metadata."""

    rule: str
    name: str
    description: str
    scope: str                       #: ``"file"`` or ``"project"``
    fn: Callable[..., List["Finding"]]
    #: Module-name prefixes the checker applies to; ``None`` = every file.
    zones: Optional[Tuple[str, ...]] = None

    def applies_to(self, module: Optional[str]) -> bool:
        if self.zones is None:
            return True
        if module is None:
            return False
        return any(module == zone or module.startswith(zone + ".")
                   for zone in self.zones)


# Keyed on (rule, scope): a rule id may have both a file-scope checker
# (direct primitive use, v1) and a project-scope one (taint through
# helpers, v2) — SC001/SC002 have exactly that split.
_REGISTRY: Dict[Tuple[str, str], CheckerSpec] = {}


def register(spec: CheckerSpec) -> CheckerSpec:
    if spec.scope not in ("file", "project"):
        raise ValueError(f"unknown checker scope {spec.scope!r}")
    if (spec.rule, spec.scope) in _REGISTRY:
        raise ValueError(
            f"duplicate {spec.scope}-scope checker rule {spec.rule}")
    _REGISTRY[(spec.rule, spec.scope)] = spec
    return spec


def checker(rule: str, name: str, description: str,
            zones: Optional[Sequence[str]] = None
            ) -> Callable[[FileCheckFn], FileCheckFn]:
    """Decorator registering a file-scope checker."""

    def decorate(fn: FileCheckFn) -> FileCheckFn:
        register(CheckerSpec(rule=rule, name=name, description=description,
                             scope="file", fn=fn,
                             zones=tuple(zones) if zones else None))
        return fn

    return decorate


def project_checker(rule: str, name: str, description: str
                    ) -> Callable[[ProjectCheckFn], ProjectCheckFn]:
    """Decorator registering a project-scope checker."""

    def decorate(fn: ProjectCheckFn) -> ProjectCheckFn:
        register(CheckerSpec(rule=rule, name=name, description=description,
                             scope="project", fn=fn))
        return fn

    return decorate


def ensure_builtin_checkers() -> None:
    """Import the in-tree checker modules (idempotent)."""
    from . import checkers, contract, dataflow, layering  # noqa: F401


def all_checkers() -> List[CheckerSpec]:
    ensure_builtin_checkers()
    return sorted(_REGISTRY.values(),
                  key=lambda spec: (spec.rule, spec.scope))


def get_checker(rule: str, scope: Optional[str] = None) -> CheckerSpec:
    """Look up a checker; with ``scope=None`` file-scope wins ties."""
    ensure_builtin_checkers()
    if scope is not None:
        return _REGISTRY[(rule, scope)]
    for preferred in ("file", "project"):
        spec = _REGISTRY.get((rule, preferred))
        if spec is not None:
            return spec
    raise KeyError(rule)


def file_checkers() -> List[CheckerSpec]:
    return [spec for spec in all_checkers() if spec.scope == "file"]


def project_checkers() -> List[CheckerSpec]:
    return [spec for spec in all_checkers() if spec.scope == "project"]
