"""File-scope checkers: SC001 clock-discipline, SC002 host-entropy,
SC005 exception-discipline.

SC001 and SC002 guard the *deterministic zones* (see
:data:`repro.staticcheck.registry.DETERMINISTIC_ZONES`): any host clock
or host entropy reaching the simulation substrate reopens exactly the
timing/entropy side channels the deception exists to close, and breaks
the serial-vs-pooled byte-identity the parallel engine guarantees.
SC005 applies tree-wide: a silently swallowed exception in a deception
handler turns a fabricated answer into an accidental passthrough.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Tuple

from .cache import FileContext
from .finding import Finding
from .registry import DETERMINISTIC_ZONES, checker

# -- SC001: clock discipline --------------------------------------------------

#: Modules whose very import means host nondeterminism in a zone.
FORBIDDEN_TIME_MODULES = ("time", "random", "datetime")

#: ``obj.method`` calls that read the host clock even when the module
#: import itself arrived through an allowed path.
FORBIDDEN_METHOD_CALLS = {
    ("datetime", "now"), ("datetime", "utcnow"), ("datetime", "today"),
    ("date", "today"), ("time", "time"), ("time", "perf_counter"),
    ("time", "perf_counter_ns"), ("time", "monotonic"),
    ("random", "random"),
}


def _module_root(name: str) -> str:
    return name.split(".", 1)[0]


@checker("SC001", "clock-discipline",
         "host time/randomness (time, random, datetime) is forbidden in "
         "deterministic zones; use the machine's virtual clock",
         zones=DETERMINISTIC_ZONES)
def check_clock_discipline(ctx: FileContext) -> List[Finding]:
    findings: List[Finding] = []
    if ctx.tree is None:
        return findings
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = _module_root(alias.name)
                if root in FORBIDDEN_TIME_MODULES:
                    findings.append(ctx.finding(
                        "SC001", node.lineno,
                        f"import {alias.name}: use the machine's virtual "
                        f"clock, not the host {root!r} module"))
        elif isinstance(node, ast.ImportFrom):
            root = _module_root(node.module or "")
            if node.level == 0 and root in FORBIDDEN_TIME_MODULES:
                names = ", ".join(alias.name for alias in node.names)
                findings.append(ctx.finding(
                    "SC001", node.lineno,
                    f"from {node.module} import {names}: use the "
                    f"machine's virtual clock, not the host {root!r} "
                    f"module"))
        elif isinstance(node, ast.Call):
            func = node.func
            if (isinstance(func, ast.Attribute) and
                    isinstance(func.value, ast.Name) and
                    (func.value.id, func.attr) in FORBIDDEN_METHOD_CALLS):
                findings.append(ctx.finding(
                    "SC001", node.lineno,
                    f"{func.value.id}.{func.attr}() reads host state; "
                    f"derive it from machine.clock instead"))
    return findings


# -- SC002: host entropy ------------------------------------------------------

#: Modules whose import injects host entropy into a deterministic zone.
FORBIDDEN_ENTROPY_MODULES = ("uuid", "secrets")


def _is_set_expression(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (isinstance(node, ast.Call) and
            isinstance(node.func, ast.Name) and node.func.id == "set")


@checker("SC002", "host-entropy",
         "host entropy (uuid, secrets, os.urandom, salted hash(), "
         "unordered set iteration) is forbidden in deterministic zones",
         zones=DETERMINISTIC_ZONES)
def check_host_entropy(ctx: FileContext) -> List[Finding]:
    findings: List[Finding] = []
    if ctx.tree is None:
        return findings
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = _module_root(alias.name)
                if root in FORBIDDEN_ENTROPY_MODULES:
                    findings.append(ctx.finding(
                        "SC002", node.lineno,
                        f"import {alias.name}: host entropy; derive "
                        f"identifiers from seeded machine state"))
        elif isinstance(node, ast.ImportFrom):
            root = _module_root(node.module or "")
            if node.level == 0 and root in FORBIDDEN_ENTROPY_MODULES:
                findings.append(ctx.finding(
                    "SC002", node.lineno,
                    f"from {node.module} import ...: host entropy; derive "
                    f"identifiers from seeded machine state"))
        elif isinstance(node, ast.Call):
            func = node.func
            if (isinstance(func, ast.Attribute) and
                    isinstance(func.value, ast.Name) and
                    func.value.id == "os" and func.attr == "urandom"):
                findings.append(ctx.finding(
                    "SC002", node.lineno,
                    "os.urandom() draws host entropy; use seeded state"))
            elif isinstance(func, ast.Name) and func.id == "hash" and \
                    node.args:
                findings.append(ctx.finding(
                    "SC002", node.lineno,
                    "builtin hash() is salted per process "
                    "(PYTHONHASHSEED); use a deterministic digest such "
                    "as zlib.crc32"))
        elif isinstance(node, ast.For) and _is_set_expression(node.iter):
            findings.append(ctx.finding(
                "SC002", node.lineno,
                "iterating a set feeds hash-order nondeterminism into "
                "output; iterate sorted(...) instead"))
    return findings


# -- SC005: exception discipline ----------------------------------------------

#: Modules allowed to swallow broad exceptions (none today; entries must
#: carry a justification in docs/STATIC_ANALYSIS.md).
EXCEPTION_ALLOWLIST: Tuple[str, ...] = ()

_BROAD_EXCEPTIONS = ("Exception", "BaseException")


def _names_broad_exception(expr: Optional[ast.expr]) -> bool:
    if expr is None:                      # bare ``except:``
        return True
    if isinstance(expr, ast.Name):
        return expr.id in _BROAD_EXCEPTIONS
    if isinstance(expr, ast.Tuple):
        return any(_names_broad_exception(item) for item in expr.elts)
    return False


def _body_is_silent(body: List[ast.stmt]) -> bool:
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and \
                isinstance(stmt.value, ast.Constant) and \
                stmt.value.value is Ellipsis:
            continue
        return False
    return True


@checker("SC005", "exception-discipline",
         "bare 'except:' and silently swallowed broad excepts hide "
         "failures; catch specific exceptions or handle the error")
def check_exception_discipline(ctx: FileContext) -> List[Finding]:
    findings: List[Finding] = []
    if ctx.tree is None or (ctx.module or "") in EXCEPTION_ALLOWLIST:
        return findings
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if node.type is None:
            findings.append(ctx.finding(
                "SC005", node.lineno,
                "bare 'except:' catches SystemExit/KeyboardInterrupt; "
                "name the exception type"))
        elif _names_broad_exception(node.type) and \
                _body_is_silent(node.body):
            findings.append(ctx.finding(
                "SC005", node.lineno,
                "broad except with an empty body silently swallows "
                "errors; handle or re-raise"))
    return findings
